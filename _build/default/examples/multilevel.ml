(** Multi-level (hierarchical) partitioning — the paper's §2.4, Figures 9
    and 10.

    Builds the [orders] table partitioned by month (level 1) and region
    (level 2), prints the partition-selection table of Figure 10, and runs
    queries restricting either or both levels.

    Run with: [dune exec examples/multilevel.exe] *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Part = Mpp_catalog.Partition
module Dist = Mpp_catalog.Distribution
module Storage = Mpp_storage.Storage
module Plan = Mpp_plan.Plan

let regions = [ "Region 1"; "Region 2" ]

let () =
  let catalog = Cat.create () in
  let partitioning =
    Part.two_level
      ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
      ~table_name:"orders"
      ~level1:{ Part.key_index = 2; key_name = "date"; scheme = Part.Range }
      ~constrs1:(Part.monthly_ranges ~start_year:2012 ~start_month:1 ~months:24)
      ~level2:
        { Part.key_index = 3; key_name = "region"; scheme = Part.Categorical }
      ~constrs2:
        (Part.categorical (List.map (fun r -> [ Value.String r ]) regions))
  in
  let orders =
    Cat.add_table catalog ~name:"orders"
      ~columns:
        [ ("order_id", Value.Tint); ("amount", Value.Tfloat);
          ("date", Value.Tdate); ("region", Value.Tstring) ]
      ~distribution:(Dist.Hashed [ 0 ]) ~partitioning ()
  in
  Printf.printf "orders: 24 months x %d regions = %d leaf partitions\n\n"
    (List.length regions)
    (Mpp_catalog.Table.nparts orders);

  (* ---- Figure 10: per-predicate partition selection ------------------ *)
  let jan_2012 =
    Interval.Set.of_interval_opt
      (Interval.closed_open
         (Value.Date (Date.of_ymd 2012 1 1))
         (Value.Date (Date.of_ymd 2012 2 1)))
  in
  let region1 = Interval.Set.point (Value.String "Region 1") in
  let cases =
    [ ("date = 'Jan-2012'", [| Some jan_2012; None |]);
      ("region = 'Region 1'", [| None; Some region1 |]);
      ("date = 'Jan-2012' AND region = 'Region 1'",
       [| Some jan_2012; Some region1 |]);
      ("Φ", [| None; None |]) ]
  in
  Printf.printf "%-45s %s\n" "partPredicate" "#selected partition OIDs";
  List.iter
    (fun (label, restrictions) ->
      let oids = Part.select_oids partitioning restrictions in
      Printf.printf "%-45s %d%s\n" label (List.length oids)
        (if List.length oids <= 4 then
           " (" ^ String.concat ", " (List.map string_of_int oids) ^ ")"
         else ""))
    cases;

  (* ---- load and query ------------------------------------------------ *)
  let storage = Storage.create ~nsegments:4 in
  let start = Date.of_ymd 2012 1 1 in
  for i = 0 to 9_999 do
    Storage.insert storage orders
      [| Value.Int i;
         Value.Float (float_of_int (i mod 500));
         Value.Date (Date.add_days start (i * 730 / 10_000));
         Value.String (List.nth regions (i mod 2)) |]
  done;
  let optimizer = Orca.Optimizer.create ~catalog () in
  let run sql =
    Printf.printf "\n%s\n" sql;
    let plan =
      Orca.Optimizer.optimize optimizer (Mpp_sql.Sql.to_logical catalog sql)
    in
    let rows, metrics = Mpp_exec.Exec.run ~catalog ~storage plan in
    Printf.printf "-> %s rows, %d of %d leaf partitions scanned\n"
      (match rows with
      | [ r ] -> Value.to_string r.(0)
      | rs -> string_of_int (List.length rs) ^ " result")
      (Mpp_exec.Metrics.parts_scanned_of metrics ~root_oid:orders.oid)
      (Mpp_catalog.Table.nparts orders)
  in
  run "SELECT count(*) FROM orders WHERE date >= '2013-10-01' AND date <= \
       '2013-12-31'";
  run "SELECT count(*) FROM orders WHERE region = 'Region 1'";
  run "SELECT count(*) FROM orders WHERE date >= '2013-10-01' AND region = \
       'Region 2'";
  run "SELECT count(*) FROM orders"

(** Star schema and dynamic partition elimination — the paper's Figures 3,
    4, 6 and 8.

    Builds the TPC-DS-style star schema, then runs:
    - the Figure-4 query (fact partitioned on a surrogate date key, the
      selection happens through an IN subquery on [date_dim]);
    - the Figure-6 three-table join ([sales_fact ⋈ date_dim ⋈ customer]),
      showing the two PartitionSelectors of Figure 8(b);
    and compares Orca against the legacy Planner on each.

    Run with: [dune exec examples/star_schema.exe] *)

module Plan = Mpp_plan.Plan
module W = Mpp_workload

let show env title sql =
  Printf.printf "=== %s\n%s\n\n" title sql;
  let logical = Mpp_sql.Sql.to_logical env.W.Runner.catalog sql in
  let orca =
    Orca.Optimizer.optimize
      (Orca.Optimizer.create ~stats:env.W.Runner.stats
         ~catalog:env.W.Runner.catalog ())
      logical
  in
  Printf.printf "Orca plan:\n%s\n" (Plan.to_string orca);
  let planner =
    Mpp_planner.Planner.plan
      (Mpp_planner.Planner.create ~catalog:env.W.Runner.catalog ())
      logical
  in
  let run plan =
    Mpp_exec.Exec.run ~catalog:env.W.Runner.catalog
      ~storage:env.W.Runner.storage plan
  in
  let orca_rows, orca_m = run orca in
  let planner_rows, planner_m = run planner in
  let fact = Mpp_catalog.Catalog.find env.W.Runner.catalog "store_sales" in
  let ws = Mpp_catalog.Catalog.find env.W.Runner.catalog "web_sales" in
  let parts m =
    Mpp_exec.Metrics.parts_scanned_of m ~root_oid:fact.Mpp_catalog.Table.oid
    + Mpp_exec.Metrics.parts_scanned_of m ~root_oid:ws.Mpp_catalog.Table.oid
  in
  Printf.printf
    "results match: %b | fact partitions scanned — Orca: %d, Planner: %d, \
     plan size — Orca: %.1f KB, Planner: %.1f KB\n\n"
    (orca_rows = planner_rows) (parts orca_m) (parts planner_m)
    (Mpp_plan.Plan_size.kilobytes ~catalog:env.W.Runner.catalog orca)
    (Mpp_plan.Plan_size.kilobytes ~catalog:env.W.Runner.catalog planner)

let () =
  let env = W.Runner.setup_env ~scale:1 () in
  (* Figure 4: the IN-subquery form over the normalized (Figure 3) schema —
     the partitioning keys of the fact are only known after evaluating the
     subquery on the dimension. *)
  show env "Figure 4: dynamic elimination through an IN subquery"
    "SELECT avg(ws_price) FROM web_sales WHERE ws_sold_date_id IN (SELECT \
     d_date_id FROM date_dim WHERE d_year = 2013 AND d_month BETWEEN 10 AND \
     12)";
  (* Figure 6: sales in California in the last quarter — two selectors, one
     static (folded from the Select) and one join-driven, as in Figure 8(b). *)
  show env "Figure 6: star join with two PartitionSelectors"
    "SELECT count(*) FROM store_sales s, date_dim d, customer c WHERE \
     d.d_month BETWEEN 10 AND 12 AND d.d_year = 2013 AND c.c_state = 'CA' \
     AND d.d_date = s.ss_sold_date AND c.c_id = s.ss_customer"

(** Quickstart: the paper's Figures 1, 2 and 5 in a few dozen lines.

    Creates the [orders] table partitioned by month over two years, loads
    synthetic data, and runs the Figure-2 query — watch the optimizer place
    a PartitionSelector so that only the last quarter's three partitions are
    scanned.

    Run with: [dune exec examples/quickstart.exe] *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Part = Mpp_catalog.Partition
module Dist = Mpp_catalog.Distribution
module Storage = Mpp_storage.Storage
module Plan = Mpp_plan.Plan

let () =
  (* -------- catalog: orders partitioned by month (paper Figure 1) ----- *)
  let catalog = Cat.create () in
  let partitioning =
    Part.single_level
      ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
      ~key_index:2 ~key_name:"date" ~scheme:Part.Range ~table_name:"orders"
      (Part.monthly_ranges ~start_year:2012 ~start_month:1 ~months:24)
  in
  let orders =
    Cat.add_table catalog ~name:"orders"
      ~columns:
        [ ("order_id", Value.Tint); ("amount", Value.Tfloat);
          ("date", Value.Tdate) ]
      ~distribution:(Dist.Hashed [ 0 ]) ~partitioning ()
  in
  Printf.printf "created %s with %d monthly partitions\n" orders.name
    (Mpp_catalog.Table.nparts orders);

  (* -------- load two years of synthetic orders ------------------------ *)
  let storage = Storage.create ~nsegments:4 in
  let start = Date.of_ymd 2012 1 1 in
  for i = 0 to 9_999 do
    Storage.insert storage orders
      [| Value.Int i;
         Value.Float (float_of_int (10 + (i mod 490)));
         Value.Date (Date.add_days start (i * 730 / 10_000)) |]
  done;
  Printf.printf "loaded %d rows across %d segments\n\n"
    (Storage.count_table storage orders)
    (Storage.nsegments storage);

  (* -------- the Figure-2 query: summarize the last quarter ------------ *)
  let sql =
    "SELECT avg(amount) FROM orders WHERE date BETWEEN '2013-10-01' AND \
     '2013-12-31'"
  in
  Printf.printf "%s\n\n" sql;
  let logical = Mpp_sql.Sql.to_logical catalog sql in
  let optimizer = Orca.Optimizer.create ~catalog () in
  let plan = Orca.Optimizer.optimize optimizer logical in
  Printf.printf "plan (note the PartitionSelector/DynamicScan pair):\n%s\n"
    (Plan.to_string plan);

  let rows, metrics = Mpp_exec.Exec.run ~catalog ~storage plan in
  (match rows with
  | [ row ] -> Printf.printf "avg(amount) = %s\n" (Value.to_string row.(0))
  | _ -> assert false);
  Printf.printf "partitions scanned: %d of %d (static elimination)\n\n"
    (Mpp_exec.Metrics.parts_scanned_of metrics ~root_oid:orders.oid)
    (Mpp_catalog.Table.nparts orders);

  (* -------- Figure 5(a): full scan still uses the same pair ----------- *)
  let full = Mpp_sql.Sql.to_logical catalog "SELECT count(*) FROM orders" in
  let full_plan = Orca.Optimizer.optimize optimizer full in
  let rows, metrics = Mpp_exec.Exec.run ~catalog ~storage full_plan in
  (match rows with
  | [ row ] -> Printf.printf "count(*) = %s " (Value.to_string row.(0))
  | _ -> assert false);
  Printf.printf "(full scan: %d of %d partitions — the Φ selector)\n"
    (Mpp_exec.Metrics.parts_scanned_of metrics ~root_oid:orders.oid)
    (Mpp_catalog.Table.nparts orders)

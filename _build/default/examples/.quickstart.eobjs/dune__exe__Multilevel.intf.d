examples/multilevel.mli:

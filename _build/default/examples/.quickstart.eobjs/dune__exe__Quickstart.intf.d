examples/quickstart.mli:

examples/quickstart.ml: Array Date Mpp_catalog Mpp_exec Mpp_expr Mpp_plan Mpp_sql Mpp_storage Orca Printf Value

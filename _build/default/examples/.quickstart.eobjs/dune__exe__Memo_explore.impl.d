examples/memo_explore.ml: Expr List Mpp_catalog Mpp_expr Mpp_plan Option Orca Printf Value

examples/star_schema.mli:

examples/memo_explore.mli:

examples/star_schema.ml: Mpp_catalog Mpp_exec Mpp_plan Mpp_planner Mpp_sql Mpp_workload Orca Printf

examples/prepared_statements.mli:

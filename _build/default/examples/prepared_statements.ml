(** Prepared statements — the second dynamic-elimination case the paper's
    introduction calls out: "in the case of prepared statements with
    parameters … parameter values are only provided at runtime".

    The query is optimized once with placeholders; each execution binds
    different parameter values and the (unchanged) plan's PartitionSelector
    selects different partitions.

    Run with: [dune exec examples/prepared_statements.exe] *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Part = Mpp_catalog.Partition
module Dist = Mpp_catalog.Distribution
module Storage = Mpp_storage.Storage
module Plan = Mpp_plan.Plan

let () =
  let catalog = Cat.create () in
  let partitioning =
    Part.single_level
      ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
      ~key_index:1 ~key_name:"amount" ~scheme:Part.Range ~table_name:"orders"
      (Part.int_ranges ~start:0 ~width:100 ~count:10)
  in
  let orders =
    Cat.add_table catalog ~name:"orders"
      ~columns:[ ("order_id", Value.Tint); ("amount", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 0 ]) ~partitioning ()
  in
  let storage = Storage.create ~nsegments:4 in
  for i = 0 to 9_999 do
    Storage.insert storage orders [| Value.Int i; Value.Int (i mod 1000) |]
  done;

  let sql = "SELECT count(*) FROM orders WHERE amount >= $1 AND amount < $2" in
  Printf.printf "PREPARE q AS %s\n\n" sql;
  let plan =
    Orca.Optimizer.optimize
      (Orca.Optimizer.create ~catalog ())
      (Mpp_sql.Sql.to_logical catalog sql)
  in
  Printf.printf "plan, optimized once (parameters still symbolic):\n%s\n"
    (Plan.to_string plan);

  let execute lo hi =
    (* parameter slots are 1-based in SQL; index 0 is unused *)
    let params = [| Value.Null; Value.Int lo; Value.Int hi |] in
    let rows, metrics = Mpp_exec.Exec.run ~params ~catalog ~storage plan in
    Printf.printf "EXECUTE q(%d, %d) -> count=%s, %d of %d partitions scanned\n"
      lo hi
      (match rows with [ r ] -> Value.to_string r.(0) | _ -> "?")
      (Mpp_exec.Metrics.parts_scanned_of metrics ~root_oid:orders.oid)
      (Mpp_catalog.Table.nparts orders)
  in
  execute 0 100;
  execute 150 450;
  execute 900 2000;
  execute 0 1000

(** Memo exploration — the paper's §3.1, Figures 13 and 14.

    For [SELECT * FROM R, S WHERE R.pk = S.a] (R partitioned and hash
    distributed, S hash distributed) the Cascades-style memo enumerates the
    plan space under distribution and partition-propagation properties and
    picks the cheapest valid plan.  Only the alternative that replicates S
    beneath a PartitionSelector can perform partition selection — the
    paper's Plan 4.

    Run with: [dune exec examples/memo_explore.exe] *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Part = Mpp_catalog.Partition
module Dist = Mpp_catalog.Distribution
module Plan = Mpp_plan.Plan

let () =
  let catalog = Cat.create () in
  let partitioning =
    Part.single_level
      ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
      ~key_index:0 ~key_name:"pk" ~scheme:Part.Range ~table_name:"r"
      (Part.int_ranges ~start:0 ~width:10 ~count:100)
  in
  let r =
    Cat.add_table catalog ~name:"r"
      ~columns:[ ("pk", Value.Tint); ("x", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 0 ]) ~partitioning ()
  in
  let s =
    Cat.add_table catalog ~name:"s"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 0 ]) ()
  in
  let logical =
    Orca.Logical.join
      (Expr.eq
         (Expr.col (Mpp_catalog.Table.colref r ~rel:0 "pk"))
         (Expr.col (Mpp_catalog.Table.colref s ~rel:1 "a")))
      (Orca.Logical.get ~rel:0 "r")
      (Orca.Logical.get ~rel:1 "s")
  in
  print_endline "SELECT * FROM R, S WHERE R.pk = S.a   (R partitioned on pk)";
  print_endline "";

  (* ---- the plan space (Figure 14) ------------------------------------ *)
  let alternatives = Orca.Memo.plan_space ~catalog ~limit:12 logical in
  Printf.printf "the memo enumerates %d valid plan shapes, e.g.:\n\n"
    (List.length alternatives);
  List.iteri
    (fun i plan ->
      let selects =
        Plan.fold
          (fun acc n ->
            acc
            ||
            match n with
            | Plan.Partition_selector { predicates; child = Some _; _ } ->
                List.exists Option.is_some predicates
            | _ -> false)
          false plan
      in
      if i < 4 then
        Printf.printf "Plan %d%s:\n%s\n" (i + 1)
          (if selects then "  <- performs partition selection (paper Plan 4)"
           else "")
          (Plan.to_string plan))
    alternatives;

  (* ---- the best plan -------------------------------------------------- *)
  match Orca.Memo.best_plan ~catalog logical with
  | Some (plan, cost) ->
      Printf.printf "best plan (cost %.0f):\n%s\n" cost (Plan.to_string plan);
      Printf.printf "valid per the Motion/selector rule of Section 3.1: %b\n"
        (Mpp_plan.Plan_valid.is_valid plan)
  | None -> print_endline "no plan found"

(** SQL facade: parse + bind in one call.  The dialect covers the shapes the
    paper's examples use: SELECT with joins (comma list and JOIN … ON),
    WHERE with BETWEEN / IN lists / IN (SELECT …) subqueries (bound as semi
    joins) / IS NULL, GROUP BY, ORDER BY, LIMIT, aggregates, `$n`
    parameters, plus UPDATE … FROM, DELETE FROM … USING and
    INSERT … VALUES. *)

exception Error of string

val to_logical : Mpp_catalog.Catalog.t -> string -> Orca.Logical.t
(** Parse and bind; raises {!Error} with a readable message on lex, parse or
    bind failures. *)

val parse : string -> Ast.statement
val bind : Mpp_catalog.Catalog.t -> Ast.statement -> Orca.Logical.t

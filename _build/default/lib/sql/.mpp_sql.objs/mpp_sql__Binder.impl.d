lib/sql/binder.ml: Array Ast Colref Expr List Mpp_catalog Mpp_expr Mpp_plan Orca Printf String Value

lib/sql/sql.mli: Ast Mpp_catalog Orca

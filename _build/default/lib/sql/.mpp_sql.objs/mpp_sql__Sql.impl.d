lib/sql/sql.ml: Binder Lexer Orca Parser

lib/sql/parser.ml: Ast Lexer List Mpp_expr Printf

lib/sql/ast.ml: List Mpp_expr

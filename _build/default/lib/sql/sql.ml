(** Facade: parse + bind in one call. *)

exception Error of string

(** [to_logical catalog sql] parses [sql] and binds it against [catalog].
    Raises {!Error} with a human-readable message on any failure. *)
let to_logical catalog (sql : string) : Orca.Logical.t =
  try Binder.bind catalog (Parser.parse sql) with
  | Lexer.Lex_error m -> raise (Error ("lex error: " ^ m))
  | Parser.Parse_error m -> raise (Error ("parse error: " ^ m))
  | Binder.Bind_error m -> raise (Error ("bind error: " ^ m))

let parse = Parser.parse
let bind = Binder.bind

(** Recursive-descent parser for the SQL subset.

    Grammar (informal):
    {v
    statement := select | update | delete | insert
    select    := SELECT items FROM from (JOIN table [alias] ON expr)*
                 [WHERE expr] [GROUP BY exprs] [ORDER BY exprs] [LIMIT n]
    update    := UPDATE t [alias] SET col = expr, ... [FROM from] [WHERE expr]
    delete    := DELETE FROM t [alias] [USING from] [WHERE expr]
    insert    := INSERT INTO t [(cols)] VALUES (exprs) [, (exprs)]*
    expr      := or-chain of AND-chains of atoms with comparisons,
                 BETWEEN/IN/IS NULL postfixes, arithmetic +-*/% terms
    v} *)

open Lexer

exception Parse_error of string

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> EOF

let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect st tok =
  if peek st = tok then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found %s" (token_to_string tok)
            (token_to_string (peek st))))

let expect_kw st kw =
  match peek st with
  | IDENT s when s = kw -> advance st
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "expected %s but found %s" kw (token_to_string t)))

let accept_kw st kw =
  match peek st with
  | IDENT s when s = kw ->
      advance st;
      true
  | _ -> false

let ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | t -> raise (Parse_error ("expected identifier, found " ^ token_to_string t))

let reserved =
  [ "select"; "from"; "where"; "group"; "order"; "by"; "limit"; "join";
    "inner"; "left"; "on"; "and"; "or"; "not"; "between"; "in"; "is";
    "null"; "as"; "update"; "set"; "delete"; "using"; "asc"; "desc";
    "insert"; "into"; "values" ]

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let left = parse_and st in
  if accept_kw st "or" then Ast.E_or (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if accept_kw st "and" then Ast.E_and (left, parse_and st) else left

and parse_not st =
  if accept_kw st "not" then Ast.E_not (parse_not st) else parse_comparison st

and parse_comparison st =
  let left = parse_additive st in
  match peek st with
  | EQ -> advance st; Ast.E_cmp (Mpp_expr.Expr.Eq, left, parse_additive st)
  | NEQ -> advance st; Ast.E_cmp (Mpp_expr.Expr.Neq, left, parse_additive st)
  | LT -> advance st; Ast.E_cmp (Mpp_expr.Expr.Lt, left, parse_additive st)
  | LE -> advance st; Ast.E_cmp (Mpp_expr.Expr.Le, left, parse_additive st)
  | GT -> advance st; Ast.E_cmp (Mpp_expr.Expr.Gt, left, parse_additive st)
  | GE -> advance st; Ast.E_cmp (Mpp_expr.Expr.Ge, left, parse_additive st)
  | IDENT "between" ->
      advance st;
      let lo = parse_additive st in
      expect_kw st "and";
      let hi = parse_additive st in
      Ast.E_between (left, lo, hi)
  | IDENT "in" ->
      advance st;
      expect st LPAREN;
      let result =
        match peek st with
        | IDENT "select" -> Ast.E_in_select (left, parse_select st)
        | _ ->
            let rec items acc =
              let e = parse_expr st in
              if peek st = COMMA then begin
                advance st;
                items (e :: acc)
              end
              else List.rev (e :: acc)
            in
            Ast.E_in_list (left, items [])
      in
      expect st RPAREN;
      result
  | IDENT "is" ->
      advance st;
      if accept_kw st "not" then begin
        expect_kw st "null";
        Ast.E_not (Ast.E_is_null left)
      end
      else begin
        expect_kw st "null";
        Ast.E_is_null left
      end
  | _ -> left

and parse_additive st =
  let rec go left =
    match peek st with
    | PLUS -> advance st; go (Ast.E_arith (Mpp_expr.Expr.Add, left, parse_multiplicative st))
    | MINUS -> advance st; go (Ast.E_arith (Mpp_expr.Expr.Sub, left, parse_multiplicative st))
    | _ -> left
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go left =
    match peek st with
    | STAR -> advance st; go (Ast.E_arith (Mpp_expr.Expr.Mul, left, parse_primary st))
    | SLASH -> advance st; go (Ast.E_arith (Mpp_expr.Expr.Div, left, parse_primary st))
    | PERCENT -> advance st; go (Ast.E_arith (Mpp_expr.Expr.Mod, left, parse_primary st))
    | _ -> left
  in
  go (parse_primary st)

and parse_primary st : Ast.expr =
  match peek st with
  | INT i -> advance st; Ast.E_int i
  | FLOAT f -> advance st; Ast.E_float f
  | STRING s -> advance st; Ast.E_string s
  | PARAM i -> advance st; Ast.E_param i
  | MINUS ->
      advance st;
      (match parse_primary st with
      | Ast.E_int i -> Ast.E_int (-i)
      | Ast.E_float f -> Ast.E_float (-.f)
      | e -> Ast.E_arith (Mpp_expr.Expr.Sub, Ast.E_int 0, e))
  | STAR -> advance st; Ast.E_star
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | IDENT "null" -> advance st; Ast.E_null
  | IDENT "date"
    when (match peek2 st with STRING _ -> true | _ -> false) -> (
      (* DATE '2013-10-01' literal; plain `date` is an ordinary column *)
      advance st;
      match peek st with
      | STRING s -> advance st; Ast.E_string s
      | _ -> assert false)
  | IDENT name -> (
      advance st;
      match peek st with
      | LPAREN ->
          advance st;
          let args =
            if peek st = RPAREN then []
            else
              let rec items acc =
                let e = parse_expr st in
                if peek st = COMMA then begin advance st; items (e :: acc) end
                else List.rev (e :: acc)
              in
              items []
          in
          expect st RPAREN;
          Ast.E_func (name, args)
      | DOT ->
          advance st;
          let col = ident st in
          Ast.E_column (Some name, col)
      | _ -> Ast.E_column (None, name))
  | t -> raise (Parse_error ("unexpected token " ^ token_to_string t))

(* ------------------------------------------------------------------ *)
(* FROM clause                                                         *)
(* ------------------------------------------------------------------ *)

and parse_from_item st : Ast.from_item =
  let table = ident st in
  let table_alias =
    match peek st with
    | IDENT a when not (List.mem a reserved) ->
        advance st;
        Some a
    | IDENT "as" ->
        advance st;
        Some (ident st)
    | _ -> None
  in
  { Ast.table; table_alias }

and parse_from_list st : Ast.from_item list * Ast.expr list =
  let rec go items preds =
    let item = parse_from_item st in
    let items = items @ [ item ] in
    match peek st with
    | COMMA ->
        advance st;
        go items preds
    | IDENT "join" | IDENT "inner" ->
        if accept_kw st "inner" then ();
        expect_kw st "join";
        let item2 = parse_from_item st in
        expect_kw st "on";
        let pred = parse_expr st in
        let rec joins items preds =
          match peek st with
          | IDENT "join" | IDENT "inner" ->
              if accept_kw st "inner" then ();
              expect_kw st "join";
              let it = parse_from_item st in
              expect_kw st "on";
              let p = parse_expr st in
              joins (items @ [ it ]) (preds @ [ p ])
          | _ -> (items, preds)
        in
        joins (items @ [ item2 ]) (preds @ [ pred ])
    | _ -> (items, preds)
  in
  go [] []

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and parse_select st : Ast.select =
  expect_kw st "select";
  let rec items acc =
    let item = parse_expr st in
    let alias =
      if accept_kw st "as" then Some (ident st)
      else
        match peek st with
        | IDENT a when not (List.mem a reserved) ->
            advance st;
            Some a
        | _ -> None
    in
    let acc = acc @ [ { Ast.item; alias } ] in
    if peek st = COMMA then begin
      advance st;
      items acc
    end
    else acc
  in
  let items = items [] in
  expect_kw st "from";
  let from, join_on = parse_from_list st in
  let where = if accept_kw st "where" then Some (parse_expr st) else None in
  let group_by =
    if accept_kw st "group" then begin
      expect_kw st "by";
      let rec go acc =
        let e = parse_expr st in
        if peek st = COMMA then begin advance st; go (acc @ [ e ]) end
        else acc @ [ e ]
      in
      go []
    end
    else []
  in
  let order_by =
    if accept_kw st "order" then begin
      expect_kw st "by";
      let rec go acc =
        let e = parse_expr st in
        let _ = accept_kw st "asc" || accept_kw st "desc" in
        if peek st = COMMA then begin advance st; go (acc @ [ e ]) end
        else acc @ [ e ]
      in
      go []
    end
    else []
  in
  let limit =
    if accept_kw st "limit" then
      match peek st with
      | INT i ->
          advance st;
          Some i
      | t -> raise (Parse_error ("expected integer after LIMIT, found " ^ token_to_string t))
    else None
  in
  { Ast.items; from; join_on; where; group_by; order_by; limit }

and parse_update st : Ast.update =
  expect_kw st "update";
  let u_table = ident st in
  let u_alias =
    match peek st with
    | IDENT a when not (List.mem a reserved) -> advance st; Some a
    | _ -> None
  in
  expect_kw st "set";
  let rec sets acc =
    let col = ident st in
    expect st EQ;
    let e = parse_expr st in
    let acc = acc @ [ (col, e) ] in
    if peek st = COMMA then begin advance st; sets acc end else acc
  in
  let u_set = sets [] in
  let u_from =
    if accept_kw st "from" then fst (parse_from_list st) else []
  in
  let u_where = if accept_kw st "where" then Some (parse_expr st) else None in
  { Ast.u_table; u_alias; u_set; u_from; u_where }

and parse_insert st : Ast.insert =
  expect_kw st "insert";
  expect_kw st "into";
  let i_table = ident st in
  let i_columns =
    if peek st = LPAREN then begin
      advance st;
      let rec cols acc =
        let c = ident st in
        if peek st = COMMA then begin advance st; cols (acc @ [ c ]) end
        else acc @ [ c ]
      in
      let cs = cols [] in
      expect st RPAREN;
      Some cs
    end
    else None
  in
  expect_kw st "values";
  let row () =
    expect st LPAREN;
    let rec items acc =
      let e = parse_expr st in
      if peek st = COMMA then begin advance st; items (acc @ [ e ]) end
      else acc @ [ e ]
    in
    let r = items [] in
    expect st RPAREN;
    r
  in
  let rec rows acc =
    let r = row () in
    if peek st = COMMA then begin advance st; rows (acc @ [ r ]) end
    else acc @ [ r ]
  in
  { Ast.i_table; i_columns; i_rows = rows [] }

and parse_delete st : Ast.delete =
  expect_kw st "delete";
  expect_kw st "from";
  let d_table = ident st in
  let d_alias =
    match peek st with
    | IDENT a when not (List.mem a reserved) -> advance st; Some a
    | _ -> None
  in
  let d_using =
    if accept_kw st "using" then fst (parse_from_list st) else []
  in
  let d_where = if accept_kw st "where" then Some (parse_expr st) else None in
  { Ast.d_table; d_alias; d_using; d_where }

(** Parse one SQL statement. *)
let parse (sql : string) : Ast.statement =
  let st = { toks = tokenize sql } in
  let stmt =
    match peek st with
    | IDENT "select" -> Ast.Select (parse_select st)
    | IDENT "update" -> Ast.Update (parse_update st)
    | IDENT "delete" -> Ast.Delete (parse_delete st)
    | IDENT "insert" -> Ast.Insert (parse_insert st)
    | t -> raise (Parse_error ("expected statement, found " ^ token_to_string t))
  in
  if peek st = SEMI then advance st;
  (match peek st with
  | EOF -> ()
  | t -> raise (Parse_error ("trailing input: " ^ token_to_string t)));
  ignore (peek2 st);
  stmt

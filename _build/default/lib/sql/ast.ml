(** Abstract syntax of the supported SQL subset (pre-binding: names, not
    column references). *)

type expr =
  | E_int of int
  | E_float of float
  | E_string of string
  | E_null
  | E_param of int
  | E_star  (** only valid inside count( * ) or a bare select list *)
  | E_column of string option * string  (** optional qualifier, column *)
  | E_cmp of Mpp_expr.Expr.cmp_op * expr * expr
  | E_and of expr * expr
  | E_or of expr * expr
  | E_not of expr
  | E_arith of Mpp_expr.Expr.arith_op * expr * expr
  | E_between of expr * expr * expr
  | E_in_list of expr * expr list
  | E_in_select of expr * select  (** IN (SELECT col FROM ...) — semi join *)
  | E_is_null of expr
  | E_func of string * expr list  (** includes aggregates *)

and select_item = { item : expr; alias : string option }

and from_item = { table : string; table_alias : string option }

and select = {
  items : select_item list;
  from : from_item list;  (** comma list and/or JOIN chain, flattened *)
  join_on : expr list;  (** ON predicates collected from JOIN syntax *)
  where : expr option;
  group_by : expr list;
  order_by : expr list;
  limit : int option;
}

type update = {
  u_table : string;
  u_alias : string option;
  u_set : (string * expr) list;
  u_from : from_item list;
  u_where : expr option;
}

type delete = {
  d_table : string;
  d_alias : string option;
  d_using : from_item list;
  d_where : expr option;
}

type insert = {
  i_table : string;
  i_columns : string list option;  (** [None] = declared column order *)
  i_rows : expr list list;
}

type statement =
  | Select of select
  | Update of update
  | Delete of delete
  | Insert of insert

let aggregate_functions = [ "count"; "sum"; "avg"; "min"; "max" ]

let rec expr_has_aggregate = function
  | E_func (f, _) when List.mem f aggregate_functions -> true
  | E_func (_, args) -> List.exists expr_has_aggregate args
  | E_cmp (_, a, b) | E_and (a, b) | E_or (a, b) | E_arith (_, a, b) ->
      expr_has_aggregate a || expr_has_aggregate b
  | E_between (a, b, c) ->
      expr_has_aggregate a || expr_has_aggregate b || expr_has_aggregate c
  | E_not e | E_is_null e -> expr_has_aggregate e
  | E_in_list (e, es) -> List.exists expr_has_aggregate (e :: es)
  | E_in_select (e, _) -> expr_has_aggregate e
  | E_int _ | E_float _ | E_string _ | E_null | E_param _ | E_star
  | E_column _ ->
      false

(** Hand-rolled SQL lexer for the dialect subset the binder supports. *)

type token =
  | IDENT of string  (** lower-cased identifier *)
  | INT of int
  | FLOAT of float
  | STRING of string  (** contents of a '...' literal *)
  | PARAM of int  (** $1, $2, ... *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | SEMI
  | EOF

exception Lex_error of string

let keyword_like s = IDENT (String.lowercase_ascii s)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenize [input]; raises {!Lex_error} on malformed input. *)
let tokenize (input : string) : token list =
  let n = String.length input in
  let rec go i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if c = '-' && i + 1 < n && input.[i + 1] = '-' then begin
        (* line comment *)
        let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
        go (skip i) acc
      end
      else if is_ident_start c then begin
        let rec stop j = if j < n && is_ident_char input.[j] then stop (j + 1) else j in
        let j = stop i in
        go j (keyword_like (String.sub input i (j - i)) :: acc)
      end
      else if is_digit c then begin
        let rec stop j =
          if j < n && (is_digit input.[j] || input.[j] = '.') then stop (j + 1)
          else j
        in
        let j = stop i in
        let s = String.sub input i (j - i) in
        if String.contains s '.' then go j (FLOAT (float_of_string s) :: acc)
        else go j (INT (int_of_string s) :: acc)
      end
      else if c = '\'' then begin
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then raise (Lex_error "unterminated string literal")
          else if input.[j] = '\'' then
            if j + 1 < n && input.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              scan (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf input.[j];
            scan (j + 1)
          end
        in
        let j = scan (i + 1) in
        go j (STRING (Buffer.contents buf) :: acc)
      end
      else if c = '$' then begin
        let rec stop j = if j < n && is_digit input.[j] then stop (j + 1) else j in
        let j = stop (i + 1) in
        if j = i + 1 then raise (Lex_error "expected digits after $");
        go j (PARAM (int_of_string (String.sub input (i + 1) (j - i - 1))) :: acc)
      end
      else
        let two = if i + 1 < n then String.sub input i 2 else "" in
        match two with
        | "<>" | "!=" -> go (i + 2) (NEQ :: acc)
        | "<=" -> go (i + 2) (LE :: acc)
        | ">=" -> go (i + 2) (GE :: acc)
        | _ -> (
            match c with
            | '(' -> go (i + 1) (LPAREN :: acc)
            | ')' -> go (i + 1) (RPAREN :: acc)
            | ',' -> go (i + 1) (COMMA :: acc)
            | '.' -> go (i + 1) (DOT :: acc)
            | '*' -> go (i + 1) (STAR :: acc)
            | '+' -> go (i + 1) (PLUS :: acc)
            | '-' -> go (i + 1) (MINUS :: acc)
            | '/' -> go (i + 1) (SLASH :: acc)
            | '%' -> go (i + 1) (PERCENT :: acc)
            | '=' -> go (i + 1) (EQ :: acc)
            | '<' -> go (i + 1) (LT :: acc)
            | '>' -> go (i + 1) (GT :: acc)
            | ';' -> go (i + 1) (SEMI :: acc)
            | _ -> raise (Lex_error (Printf.sprintf "unexpected character %c" c)))
  in
  go 0 []

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> "'" ^ s ^ "'"
  | PARAM i -> "$" ^ string_of_int i
  | LPAREN -> "(" | RPAREN -> ")" | COMMA -> "," | DOT -> "." | STAR -> "*"
  | PLUS -> "+" | MINUS -> "-" | SLASH -> "/" | PERCENT -> "%"
  | EQ -> "=" | NEQ -> "<>" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | SEMI -> ";" | EOF -> "<eof>"

(** Name resolution and translation of parsed SQL into {!Orca.Logical}
    trees.

    The binder assigns range-table indices to FROM items in order, resolves
    (possibly qualified) column names against the catalog, coerces string
    literals compared against date columns, splits the WHERE clause into
    per-relation filters and join predicates, and builds a left-deep join
    tree in FROM order (join-order search is the optimizer's job).  IN
    (SELECT ...) subqueries become semi joins. *)

open Mpp_expr
module Logical = Orca.Logical
module Plan = Mpp_plan.Plan
module Table = Mpp_catalog.Table

exception Bind_error of string

type entry = { alias : string; rel : int; table : Table.t }

type scope = entry list

let make_scope catalog ~first_rel (items : Ast.from_item list) : scope =
  List.mapi
    (fun i (it : Ast.from_item) ->
      let table =
        match Mpp_catalog.Catalog.find_opt catalog it.Ast.table with
        | Some t -> t
        | None -> raise (Bind_error ("unknown table " ^ it.Ast.table))
      in
      {
        alias = (match it.Ast.table_alias with Some a -> a | None -> it.Ast.table);
        rel = first_rel + i;
        table;
      })
    items

let lookup_column (scope : scope) ~qualifier ~column : Colref.t =
  match qualifier with
  | Some q -> (
      match List.find_opt (fun e -> String.equal e.alias q) scope with
      | None -> raise (Bind_error ("unknown table alias " ^ q))
      | Some e -> (
          try Table.colref e.table ~rel:e.rel column
          with Invalid_argument _ ->
            raise
              (Bind_error (Printf.sprintf "table %s has no column %s" q column))))
  | None -> (
      let hits =
        List.filter_map
          (fun e ->
            try Some (Table.colref e.table ~rel:e.rel column)
            with Invalid_argument _ -> None)
          scope
      in
      match hits with
      | [ c ] -> c
      | [] -> raise (Bind_error ("unknown column " ^ column))
      | _ -> raise (Bind_error ("ambiguous column " ^ column)))

(* Coerce a string literal to a date when compared against a date column. *)
let coerce_pair a b =
  let dtype_of = function
    | Expr.Col (c : Colref.t) -> Some c.Colref.dtype
    | _ -> None
  in
  let coerce target e =
    match (target, e) with
    | Some Value.Tdate, Expr.Const (Value.String s) -> (
        try Expr.Const (Value.date_of_string s) with _ -> e)
    | _ -> e
  in
  (coerce (dtype_of b) a, coerce (dtype_of a) b)

type bound = {
  expr : Expr.t;
  semis : (Expr.t * Logical.t) list;
      (** semi-join obligations from IN (SELECT ...): (predicate, subtree) *)
}

let pure expr = { expr; semis = [] }

let rec bind_expr catalog (scope : scope) ~next_rel (e : Ast.expr) : bound =
  let recurse = bind_expr catalog scope ~next_rel in
  match e with
  | Ast.E_int i -> pure (Expr.int i)
  | Ast.E_float f -> pure (Expr.Const (Value.Float f))
  | Ast.E_string s -> pure (Expr.str s)
  | Ast.E_null -> pure (Expr.Const Value.Null)
  | Ast.E_param i -> pure (Expr.Param i)
  | Ast.E_star -> raise (Bind_error "* is only valid in count(*)")
  | Ast.E_column (q, c) ->
      pure (Expr.col (lookup_column scope ~qualifier:q ~column:c))
  | Ast.E_cmp (op, a, b) ->
      let ba = recurse a and bb = recurse b in
      let ea, eb = coerce_pair ba.expr bb.expr in
      { expr = Expr.Cmp (op, ea, eb); semis = ba.semis @ bb.semis }
  | Ast.E_and (a, b) ->
      let ba = recurse a and bb = recurse b in
      { expr = Expr.conj [ ba.expr; bb.expr ]; semis = ba.semis @ bb.semis }
  | Ast.E_or (a, b) ->
      let ba = recurse a and bb = recurse b in
      { expr = Expr.Or [ ba.expr; bb.expr ]; semis = ba.semis @ bb.semis }
  | Ast.E_not a ->
      let ba = recurse a in
      { ba with expr = Expr.Not ba.expr }
  | Ast.E_arith (op, a, b) ->
      let ba = recurse a and bb = recurse b in
      { expr = Expr.Arith (op, ba.expr, bb.expr); semis = ba.semis @ bb.semis }
  | Ast.E_between (e, lo, hi) ->
      let be = recurse e and blo = recurse lo and bhi = recurse hi in
      let lo1, _ = coerce_pair blo.expr be.expr in
      let hi1, _ = coerce_pair bhi.expr be.expr in
      {
        expr = Expr.between be.expr lo1 hi1;
        semis = be.semis @ blo.semis @ bhi.semis;
      }
  | Ast.E_in_list (e, items) ->
      let be = recurse e in
      let values =
        List.map
          (fun it ->
            match (recurse it).expr with
            | Expr.Const v -> (
                match (be.expr, v) with
                | Expr.Col c, Value.String s when c.Colref.dtype = Value.Tdate
                  -> (
                    try Value.date_of_string s with _ -> v)
                | _ -> v)
            | _ -> raise (Bind_error "IN list must contain literals"))
          items
      in
      { be with expr = Expr.In_list (be.expr, values) }
  | Ast.E_is_null e ->
      let be = recurse e in
      { be with expr = Expr.Is_null be.expr }
  | Ast.E_in_select (e, sub) ->
      let be = recurse e in
      let sub_tree, sub_col = bind_in_subquery catalog ~next_rel sub in
      let lhs, rhs = coerce_pair be.expr (Expr.col sub_col) in
      {
        expr = Expr.true_;
        semis = be.semis @ [ (Expr.eq lhs rhs, sub_tree) ];
      }
  | Ast.E_func (f, args) -> bind_func catalog scope ~next_rel f args

and bind_func catalog scope ~next_rel f args : bound =
  if List.mem f Ast.aggregate_functions then
    raise (Bind_error ("aggregate " ^ f ^ " not allowed here"))
  else
    let bs = List.map (bind_expr catalog scope ~next_rel) args in
    {
      expr = Expr.Func (f, List.map (fun b -> b.expr) bs);
      semis = List.concat_map (fun b -> b.semis) bs;
    }

(* Bind the restricted subquery form of IN (SELECT col FROM t [WHERE ...]). *)
and bind_in_subquery catalog ~next_rel (sub : Ast.select) :
    Logical.t * Colref.t =
  (match (sub.Ast.group_by, sub.Ast.order_by, sub.Ast.limit) with
  | [], [], None -> ()
  | _ ->
      raise (Bind_error "IN subquery must be a plain SELECT col FROM ... WHERE"));
  (match sub.Ast.from with
  | [ _ ] -> ()
  | _ -> raise (Bind_error "IN subquery must reference exactly one table"));
  let scope = make_scope catalog ~first_rel:!next_rel sub.Ast.from in
  next_rel := !next_rel + 1;
  let col =
    match sub.Ast.items with
    | [ { Ast.item = Ast.E_column (q, c); _ } ] ->
        lookup_column scope ~qualifier:q ~column:c
    | _ -> raise (Bind_error "IN subquery must select exactly one column")
  in
  let entry = List.hd scope in
  let tree = Logical.get ~rel:entry.rel entry.table.Table.name in
  let tree =
    match sub.Ast.where with
    | None -> tree
    | Some w ->
        let bw = bind_expr catalog scope ~next_rel w in
        if bw.semis <> [] then
          raise (Bind_error "nested IN subqueries are not supported");
        Logical.select bw.expr tree
  in
  (tree, col)

(* ------------------------------------------------------------------ *)
(* Join-tree construction                                              *)
(* ------------------------------------------------------------------ *)

(* Split bound conjuncts into per-relation filters and join predicates, and
   assemble a left-deep join tree in FROM order. *)
let build_join_tree (scope : scope) (conjuncts : Expr.t list) : Logical.t =
  let filters_for rel =
    List.filter (fun c -> Expr.rels c = [ rel ]) conjuncts
  in
  let base (e : entry) =
    let g = Logical.get ~rel:e.rel e.table.Table.name in
    match filters_for e.rel with
    | [] -> g
    | fs -> Logical.select (Expr.conj fs) g
  in
  match scope with
  | [] -> raise (Bind_error "empty FROM clause")
  | first :: rest ->
      let used = ref [ first.rel ] in
      let remaining =
        ref
          (List.filter
             (fun c -> match Expr.rels c with [] | [ _ ] -> false | _ -> true)
             conjuncts)
      in
      List.fold_left
        (fun tree e ->
          used := e.rel :: !used;
          let applicable, rest_preds =
            List.partition
              (fun c ->
                let rs = Expr.rels c in
                List.mem e.rel rs && List.for_all (fun r -> List.mem r !used) rs)
              !remaining
          in
          remaining := rest_preds;
          let pred =
            match applicable with [] -> Expr.true_ | ps -> Expr.conj ps
          in
          Logical.join pred tree (base e))
        (base first) rest

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let bind_agg_item catalog scope ~next_rel (it : Ast.select_item) :
    string * Plan.agg_fun =
  let name f =
    match it.Ast.alias with Some a -> a | None -> f
  in
  match it.Ast.item with
  | Ast.E_func ("count", [ Ast.E_star ]) -> (name "count", Plan.Count_star)
  | Ast.E_func (f, [ arg ]) when List.mem f Ast.aggregate_functions ->
      let b = bind_expr catalog scope ~next_rel arg in
      if b.semis <> [] then raise (Bind_error "subquery in aggregate");
      ( name f,
        match f with
        | "count" -> Plan.Count b.expr
        | "sum" -> Plan.Sum b.expr
        | "avg" -> Plan.Avg b.expr
        | "min" -> Plan.Min b.expr
        | "max" -> Plan.Max b.expr
        | _ -> assert false )
  | _ -> raise (Bind_error "expected aggregate function in select list")

let bind_select catalog (s : Ast.select) : Logical.t =
  let scope = make_scope catalog ~first_rel:0 s.Ast.from in
  let next_rel = ref (List.length scope) in
  let where_conjuncts, semis =
    let preds =
      s.Ast.join_on @ (match s.Ast.where with None -> [] | Some w -> [ w ])
    in
    List.fold_left
      (fun (cs, ss) p ->
        let b = bind_expr catalog scope ~next_rel p in
        (cs @ Expr.conjuncts b.expr, ss @ b.semis))
      ([], []) preds
  in
  let tree = build_join_tree scope where_conjuncts in
  (* semi joins from IN (SELECT ...) wrap the main tree *)
  let tree =
    List.fold_left
      (fun t (pred, sub) -> Logical.join ~kind:Plan.Semi pred t sub)
      tree semis
  in
  let has_agg =
    s.Ast.group_by <> []
    || List.exists (fun it -> Ast.expr_has_aggregate it.Ast.item) s.Ast.items
  in
  let tree =
    if has_agg then begin
      let group_by =
        List.map
          (fun g ->
            let b = bind_expr catalog scope ~next_rel g in
            b.expr)
          s.Ast.group_by
      in
      let agg_items =
        List.filter (fun it -> Ast.expr_has_aggregate it.Ast.item) s.Ast.items
      in
      let aggs = List.map (bind_agg_item catalog scope ~next_rel) agg_items in
      Logical.aggregate ~group_by aggs tree
    end
    else begin
      let tree =
        match s.Ast.order_by with
        | [] -> tree
        | keys ->
            let keys =
              List.map
                (fun k -> (bind_expr catalog scope ~next_rel k).expr)
                keys
            in
            Logical.Sort { keys; child = tree }
      in
      match s.Ast.items with
      | [ { Ast.item = Ast.E_star; _ } ] -> tree
      | items ->
          let exprs =
            List.mapi
              (fun i it ->
                let b = bind_expr catalog scope ~next_rel it.Ast.item in
                let name =
                  match it.Ast.alias with
                  | Some a -> a
                  | None -> (
                      match it.Ast.item with
                      | Ast.E_column (_, c) -> c
                      | _ -> Printf.sprintf "col%d" (i + 1))
                in
                (name, b.expr))
              items
          in
          Logical.Project { exprs; child = tree }
    end
  in
  match s.Ast.limit with
  | None -> tree
  | Some rows -> Logical.Limit { rows; child = tree }

let bind_update catalog (u : Ast.update) : Logical.t =
  let target_item = { Ast.table = u.Ast.u_table; table_alias = u.Ast.u_alias } in
  let scope = make_scope catalog ~first_rel:0 (target_item :: u.Ast.u_from) in
  let next_rel = ref (List.length scope) in
  let conjuncts =
    match u.Ast.u_where with
    | None -> []
    | Some w ->
        let b = bind_expr catalog scope ~next_rel w in
        if b.semis <> [] then raise (Bind_error "IN subquery in UPDATE");
        Expr.conjuncts b.expr
  in
  let tree = build_join_tree scope conjuncts in
  let target = (List.hd scope).table in
  let set_cols =
    List.map
      (fun (c, e) ->
        let b = bind_expr catalog scope ~next_rel e in
        (* coerce literals to the target column's declared type *)
        let expr =
          match (Table.col_type target c, b.expr) with
          | Value.Tdate, Expr.Const (Value.String s) -> (
              try Expr.Const (Value.date_of_string s) with _ -> b.expr)
          | Value.Tfloat, Expr.Const (Value.Int i) ->
              Expr.Const (Value.Float (float_of_int i))
          | _ -> b.expr
        in
        (c, expr))
      u.Ast.u_set
  in
  Logical.Update { rel = 0; table_name = u.Ast.u_table; set_cols; child = tree }

let bind_delete catalog (d : Ast.delete) : Logical.t =
  let target_item = { Ast.table = d.Ast.d_table; table_alias = d.Ast.d_alias } in
  let scope = make_scope catalog ~first_rel:0 (target_item :: d.Ast.d_using) in
  let next_rel = ref (List.length scope) in
  let conjuncts =
    match d.Ast.d_where with
    | None -> []
    | Some w ->
        let b = bind_expr catalog scope ~next_rel w in
        if b.semis <> [] then raise (Bind_error "IN subquery in DELETE");
        Expr.conjuncts b.expr
  in
  let tree = build_join_tree scope conjuncts in
  Logical.Delete { rel = 0; table_name = d.Ast.d_table; child = tree }

let bind_insert catalog (i : Ast.insert) : Logical.t =
  let table =
    match Mpp_catalog.Catalog.find_opt catalog i.Ast.i_table with
    | Some t -> t
    | None -> raise (Bind_error ("unknown table " ^ i.Ast.i_table))
  in
  let columns =
    match i.Ast.i_columns with
    | Some cs -> cs
    | None -> Array.to_list (Array.map fst table.Table.columns)
  in
  let indices =
    List.map
      (fun c ->
        try Table.col_index table c
        with Invalid_argument _ ->
          raise (Bind_error (Printf.sprintf "table %s has no column %s"
                               i.Ast.i_table c)))
      columns
  in
  let ncols = Table.ncols table in
  let coerce dtype e =
    match (dtype, e) with
    | Value.Tdate, Expr.Const (Value.String s) -> (
        try Expr.Const (Value.date_of_string s) with _ -> e)
    | Value.Tfloat, Expr.Const (Value.Int n) ->
        Expr.Const (Value.Float (float_of_int n))
    | _ -> e
  in
  let rows =
    List.map
      (fun row ->
        if List.length row <> List.length columns then
          raise (Bind_error "INSERT row arity does not match column list");
        (* rows in declared column order, NULL for unmentioned columns *)
        let slots = Array.make ncols (Expr.Const Value.Null) in
        List.iter2
          (fun idx e ->
            let b = bind_expr catalog [] ~next_rel:(ref 0) e in
            if b.semis <> [] then
              raise (Bind_error "subqueries are not allowed in VALUES");
            slots.(idx) <- coerce (snd table.Table.columns.(idx)) b.expr)
          indices row;
        Array.to_list slots)
      i.Ast.i_rows
  in
  Logical.Insert { table_name = i.Ast.i_table; rows }

(** Bind a parsed statement to a logical tree. *)
let bind catalog : Ast.statement -> Logical.t = function
  | Ast.Select s -> bind_select catalog s
  | Ast.Update u -> bind_update catalog u
  | Ast.Delete d -> bind_delete catalog d
  | Ast.Insert i -> bind_insert catalog i

lib/plan/plan.mli: Colref Expr Format Mpp_catalog Mpp_expr

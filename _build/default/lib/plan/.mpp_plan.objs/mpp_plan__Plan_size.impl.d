lib/plan/plan_size.ml: List Mpp_catalog Mpp_expr Plan

lib/plan/plan_valid.mli: Plan

lib/plan/plan.ml: Colref Expr Format Int List Mpp_catalog Mpp_expr Printf String

lib/plan/plan_size.mli: Mpp_catalog Plan

lib/plan/plan_valid.ml: List Plan Printf

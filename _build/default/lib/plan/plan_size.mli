(** The plan-size model behind the paper's §4.4 experiments: per-node
    headers, serialized expressions, a fat relation descriptor per scan
    (which makes Planner-style partition enumerations grow with the
    partition count), and the partition-constraint metadata each
    PartitionSelector ships to segments (the mild Orca growth of Figures
    18(b)/(c)).  Constants are calibrated to plan structure, not to
    Greenplum's absolute byte counts. *)

val bytes : catalog:Mpp_catalog.Catalog.t -> Plan.t -> int
(** Serialized size in bytes; [catalog] supplies partition counts for the
    selector metadata charge. *)

val kilobytes : catalog:Mpp_catalog.Catalog.t -> Plan.t -> float

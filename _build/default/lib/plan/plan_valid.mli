(** Structural validity of plans with partition selection (paper §3.1,
    Figure 12): every DynamicScan needs a matching PartitionSelector, no
    Motion may separate a communicating pair from their lowest common
    ancestor (Motions are process boundaries), and within a Sequence the
    producer must run before the consumer. *)

type violation =
  | Motion_between of int
      (** a Motion separates the selector and scan of this part_scan_id *)
  | Unmatched_scan of int  (** DynamicScan with no PartitionSelector *)
  | Unmatched_selector of int  (** PartitionSelector with no DynamicScan *)
  | Consumer_before_producer of int
      (** within a Sequence, the DynamicScan executes before its selector *)

val violation_to_string : violation -> string

val check : Plan.t -> violation list
(** All violations, deduplicated; [[]] means the plan is well-formed. *)

val is_valid : Plan.t -> bool

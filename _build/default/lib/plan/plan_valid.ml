(** Structural validity of plans containing partition selection.

    Two rules from the paper:
    - every [DynamicScan] must have a matching [PartitionSelector] somewhere
      in the plan (and vice versa);
    - a communicating selector/scan pair relies on shared memory, so no
      [Motion] may sit between either of them and their lowest common
      ancestor (§3.1, Figure 12) — a Motion is a process boundary.

    [check] walks the tree once, carrying unmatched producer/consumer
    endpoints upward; passing a [Motion] taints the endpoints below it, and
    a pair that meets with a tainted endpoint is a violation. *)

type role = Producer | Consumer

type endpoint = { id : int; role : role; crossed_motion : bool }

type violation =
  | Motion_between of int
      (** a Motion separates the selector and scan of this part_scan_id *)
  | Unmatched_scan of int  (** DynamicScan with no PartitionSelector *)
  | Unmatched_selector of int  (** PartitionSelector with no DynamicScan *)
  | Consumer_before_producer of int
      (** within a Sequence, the DynamicScan executes before its selector *)

let violation_to_string = function
  | Motion_between id ->
      Printf.sprintf "Motion between PartitionSelector and DynamicScan %d" id
  | Unmatched_scan id ->
      Printf.sprintf "DynamicScan %d has no PartitionSelector" id
  | Unmatched_selector id ->
      Printf.sprintf "PartitionSelector %d has no DynamicScan" id
  | Consumer_before_producer id ->
      Printf.sprintf
        "DynamicScan %d executes before its PartitionSelector in a Sequence" id

(* Match producers with consumers present in [endpoints]; report Motion
   violations; return the leftovers.  A producer may serve several consumers
   (the Planner's guarded per-partition scans all read the same channel), so
   matching is by id: once both roles are present, every endpoint of that id
   resolves here, and any of them having crossed a Motion is a violation. *)
let match_pairs endpoints violations =
  List.filter
    (fun e ->
      let both_roles =
        List.exists (fun e' -> e'.id = e.id && e'.role = Producer) endpoints
        && List.exists (fun e' -> e'.id = e.id && e'.role = Consumer) endpoints
      in
      if both_roles && e.crossed_motion then
        violations := Motion_between e.id :: !violations;
      not both_roles)
    endpoints

let check (plan : Plan.t) : violation list =
  let violations = ref [] in
  let rec walk (p : Plan.t) : endpoint list =
    let own =
      match p with
      | Plan.Partition_selector { part_scan_id; _ } ->
          [ { id = part_scan_id; role = Producer; crossed_motion = false } ]
      | Plan.Dynamic_scan { part_scan_id; _ } ->
          [ { id = part_scan_id; role = Consumer; crossed_motion = false } ]
      | Plan.Table_scan { guard = Some id; _ } ->
          [ { id; role = Consumer; crossed_motion = false } ]
      | _ -> []
    in
    let from_children =
      match p with
      | Plan.Sequence cs ->
          (* A Sequence orders execution left to right: a consumer appearing
             in an earlier child than its producer never receives OIDs. *)
          let per_child = List.map walk cs in
          List.iteri
            (fun i eps ->
              List.iter
                (fun e ->
                  if e.role = Consumer then
                    List.iteri
                      (fun j eps' ->
                        if j > i then
                          List.iter
                            (fun e' ->
                              if e'.role = Producer && e'.id = e.id then
                                violations :=
                                  Consumer_before_producer e.id :: !violations)
                            eps')
                      per_child)
                eps)
            per_child;
          List.concat per_child
      | _ -> List.concat_map walk (Plan.children p)
    in
    let endpoints = own @ from_children in
    let leftovers = match_pairs endpoints violations in
    match p with
    | Plan.Motion _ ->
        List.map (fun e -> { e with crossed_motion = true }) leftovers
    | _ -> leftovers
  in
  let leftovers = walk plan in
  List.iter
    (fun e ->
      violations :=
        (match e.role with
        | Producer -> Unmatched_selector e.id
        | Consumer -> Unmatched_scan e.id)
        :: !violations)
    leftovers;
  List.sort_uniq compare (List.rev !violations)

let is_valid plan = check plan = []

lib/catalog/builtins.ml: Array Catalog Interval List Mpp_expr Option Partition Printf Table Value

lib/catalog/catalog.ml: Array Hashtbl Int List Partition Table

lib/catalog/partition.ml: Array Date Format Interval List Mpp_expr Printf Seq String Value

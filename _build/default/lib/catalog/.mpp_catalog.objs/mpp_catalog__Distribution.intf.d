lib/catalog/distribution.mli: Format Mpp_expr

lib/catalog/distribution.ml: Array Format List Mpp_expr String

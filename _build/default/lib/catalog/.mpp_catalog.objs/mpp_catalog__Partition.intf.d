lib/catalog/partition.mli: Date Format Interval Mpp_expr Value

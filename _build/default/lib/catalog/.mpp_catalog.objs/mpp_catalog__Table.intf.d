lib/catalog/table.mli: Colref Distribution Format Mpp_expr Partition Value

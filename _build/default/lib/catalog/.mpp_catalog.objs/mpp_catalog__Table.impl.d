lib/catalog/table.ml: Array Colref Distribution Format List Mpp_expr Option Partition Printf String Value

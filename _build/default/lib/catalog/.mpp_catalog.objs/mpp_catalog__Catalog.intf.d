lib/catalog/catalog.mli: Distribution Mpp_expr Partition Table

lib/catalog/builtins.mli: Catalog Interval Mpp_expr Partition Value

(** Table descriptors: schema, distribution policy and optional partitioning
    metadata.  A partitioned table is its {e root} OID; the leaves are
    separate physical tables with their own OIDs (paper §3.2). *)

open Mpp_expr

type t = {
  oid : Partition.oid;  (** root OID *)
  name : string;
  columns : (string * Value.datatype) array;
  distribution : Distribution.t;
  partitioning : Partition.t option;
}

val is_partitioned : t -> bool
val ncols : t -> int

val col_index : t -> string -> int
(** Raises [Invalid_argument] for unknown columns. *)

val col_type : t -> string -> Value.datatype

val colref : t -> rel:int -> string -> Colref.t
(** Column reference for this table used as range-table entry [rel]. *)

val colrefs : t -> rel:int -> Colref.t list

val part_key_colrefs : t -> rel:int -> Colref.t list
(** Partitioning-key column references, one per level; [[]] when the table
    is not partitioned. *)

val nparts : t -> int
(** 1 for unpartitioned tables. *)

val pp : Format.formatter -> t -> unit

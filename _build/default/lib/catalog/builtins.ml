(** The built-in partition-selection functions of paper §3.2, Table 1.

    These are the runtime face of the catalog: query plans invoke them (see
    the expansions in paper Figure 15) to enumerate child partitions, to map
    a key value to its partition, and to read partition range constraints.
    The fourth builtin, [partition_propagation], is the side-effecting push
    of an OID into a DynamicScan's channel and lives in the executor
    ({!Mpp_exec.Channel.propagate}); its signature is documented here for
    completeness. *)

open Mpp_expr

let partitioning_of cat root_oid =
  match (Catalog.find_oid cat root_oid).Table.partitioning with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "builtin: oid %d is not a partitioned table" root_oid)

(** [partition_expansion cat root_oid] — set of all leaf partition OIDs of
    the given root. *)
let partition_expansion cat root_oid : Partition.oid list =
  Partition.leaf_oids (partitioning_of cat root_oid)

(** [partition_selection cat root_oid values] — OID of the leaf partition
    containing the given partitioning-key value(s) (one per level), or
    [None] for the invalid partition ⊥. *)
let partition_selection cat root_oid (values : Value.t array) :
    Partition.oid option =
  let p = partitioning_of cat root_oid in
  Option.map
    (fun (lf : Partition.leaf) -> lf.leaf_oid)
    (Partition.route p values)

type constraint_row = {
  part_oid : Partition.oid;
  min : Value.t option;  (** [None] = unbounded below *)
  min_incl : bool;
  max : Value.t option;  (** [None] = unbounded above *)
  max_incl : bool;
  is_default : bool;
}

(** [partition_constraints cat root_oid] — one row per leaf with its
    level-0 range constraint, in the (oid, min, minincl, max, maxincl) shape
    of Table 1.  Only meaningful for single-arm range constraints; a
    multi-arm constraint reports its overall hull. *)
let partition_constraints cat root_oid : constraint_row list =
  let p = partitioning_of cat root_oid in
  Array.to_list p.Partition.leaves
  |> List.map (fun (lf : Partition.leaf) ->
         match lf.Partition.bounds.(0) with
         | Partition.Default ->
             {
               part_oid = lf.leaf_oid;
               min = None;
               min_incl = false;
               max = None;
               max_incl = false;
               is_default = true;
             }
         | Partition.Cset s ->
             let intervals = Interval.Set.to_list s in
             let lo =
               match intervals with
               | { Interval.lo; _ } :: _ -> lo
               | [] -> Interval.Neg_inf
             in
             let hi =
               match List.rev intervals with
               | { Interval.hi; _ } :: _ -> hi
               | [] -> Interval.Pos_inf
             in
             let dec = function
               | Interval.Neg_inf | Interval.Pos_inf -> (None, false)
               | Interval.B (v, incl) -> (Some v, incl)
             in
             let min, min_incl = dec lo and max, max_incl = dec hi in
             {
               part_oid = lf.leaf_oid;
               min;
               min_incl;
               max;
               max_incl;
               is_default = false;
             })

(** Per-level restriction-driven selection — the engine behind both static
    and dynamic partition elimination.  [restrictions] holds one optional
    interval set per partitioning level. *)
let partition_select_restricted cat root_oid
    (restrictions : Interval.Set.t option array) : Partition.oid list =
  Partition.select_oids (partitioning_of cat root_oid) restrictions

(** The built-in partition-selection functions of paper §3.2, Table 1 — the
    runtime face of the catalog, invoked by query plans (Figure 15).  The
    fourth builtin, [partition_propagation], is the side-effecting OID push
    and lives in the executor ({!Mpp_exec.Channel.propagate}). *)

open Mpp_expr

val partition_expansion : Catalog.t -> int -> Partition.oid list
(** All leaf partition OIDs of the given root OID. *)

val partition_selection :
  Catalog.t -> int -> Value.t array -> Partition.oid option
(** Leaf containing the given partitioning-key value(s), one per level;
    [None] is the invalid partition ⊥. *)

type constraint_row = {
  part_oid : Partition.oid;
  min : Value.t option;  (** [None] = unbounded below *)
  min_incl : bool;
  max : Value.t option;  (** [None] = unbounded above *)
  max_incl : bool;
  is_default : bool;
}

val partition_constraints : Catalog.t -> int -> constraint_row list
(** One row per leaf with its level-0 range constraint, in the
    (oid, min, minincl, max, maxincl) shape of Table 1. *)

val partition_select_restricted :
  Catalog.t -> int -> Interval.Set.t option array -> Partition.oid list
(** Per-level restriction-driven selection — the engine behind both static
    and dynamic partition elimination. *)

(** Data-distribution policies of an MPP table (paper §3.1).

    Distribution is orthogonal to partitioning: a table is distributed
    across segments (by hashing some columns, by replication, or randomly)
    and each segment's slice may additionally be partitioned. *)

type t =
  | Hashed of int list
      (** hash-distributed on the given column indices; tuples live on
          segment [hash(cols) mod nsegments] *)
  | Replicated  (** a full copy of the table on every segment *)
  | Random  (** round-robin; no co-location guarantees *)
  | Singleton  (** the whole table on one host (e.g. the master) *)

let equal a b =
  match (a, b) with
  | Hashed xs, Hashed ys -> xs = ys
  | Replicated, Replicated | Random, Random | Singleton, Singleton -> true
  | (Hashed _ | Replicated | Random | Singleton), _ -> false

let to_string = function
  | Hashed cols ->
      "hashed(" ^ String.concat "," (List.map string_of_int cols) ^ ")"
  | Replicated -> "replicated"
  | Random -> "random"
  | Singleton -> "singleton"

let pp fmt d = Format.pp_print_string fmt (to_string d)

(** The cluster-wide hash used both for hash-distributed storage and for
    Redistribute Motions, so that equal keys always land on the same
    segment. *)
let hash_values (vs : Mpp_expr.Value.t list) =
  List.fold_left (fun acc v -> (acc * 31) + Mpp_expr.Value.hash v) 17 vs

let segment_for_values ~nsegments vs = abs (hash_values vs) mod nsegments

(** Segment assignment of a tuple under this policy.  [None] means the tuple
    belongs on every segment (replicated). *)
let segment_of ~nsegments policy (tuple : Mpp_expr.Value.t array) ~rowno =
  match policy with
  | Replicated -> None
  | Singleton -> Some 0
  | Random -> Some (rowno mod nsegments)
  | Hashed cols ->
      Some
        (segment_for_values ~nsegments
           (List.map (fun c -> tuple.(c)) cols))

(** Partitioning metadata: the logical model of paper §2.1 plus the
    multi-level extension of §2.4.

    A partitioned table has a list of {e levels} (key column + scheme) and
    {e leaf} partitions, each a separate physical table (own OID) carrying
    one constraint per level in the §3.2 normal form — an interval set — or
    [Default], the catch-all for values (including NULL) no sibling accepts.

    This module implements the paper's two functions:
    - [f_T] — {!route}: key values → leaf (or ⊥);
    - [f*_T] — {!select}: per-level restrictions → the leaves that can hold
      satisfying tuples (an over-approximation, never dropping a qualifying
      leaf). *)

open Mpp_expr

type oid = int
type scheme = Range | Categorical

type level = { key_index : int; key_name : string; scheme : scheme }

type constr =
  | Cset of Interval.Set.t
      (** the values this partition accepts at this level *)
  | Default  (** everything the siblings reject, and NULLs *)

type leaf = {
  leaf_oid : oid;
  leaf_name : string;
  bounds : constr array;  (** one constraint per level, root to leaf *)
}

type t = { levels : level array; leaves : leaf array }

val nlevels : t -> int
val nparts : t -> int
val leaf_oids : t -> oid list
val key_indices : t -> int list
val find_leaf : t -> oid -> leaf option

val route : t -> Value.t array -> leaf option
(** [f_T]: the leaf that must store a tuple with these key values (one per
    level); [None] is the invalid partition ⊥. *)

val select : t -> Interval.Set.t option array -> leaf list
(** [f*_T]: leaves that may hold satisfying tuples under the given per-level
    restrictions ([None] = no predicate on that level).  Sound by
    construction. *)

val select_oids : t -> Interval.Set.t option array -> oid list

(** {2 Constructors for common layouts} *)

val single_level :
  alloc_oid:(unit -> oid) ->
  key_index:int ->
  key_name:string ->
  scheme:scheme ->
  table_name:string ->
  constr list ->
  t

val monthly_ranges : start_year:int -> start_month:int -> months:int -> constr list
(** Monthly range partitions — the chronological layout of paper Figure 1. *)

val daily_ranges : start_date:Date.t -> width_days:int -> count:int -> constr list
val int_ranges : start:int -> width:int -> count:int -> constr list

val categorical : Value.t list list -> constr list
(** One categorical partition per value list. *)

val two_level :
  alloc_oid:(unit -> oid) ->
  table_name:string ->
  level1:level ->
  constrs1:constr list ->
  level2:level ->
  constrs2:constr list ->
  t
(** Cross product of two levels (the orders-by-date-and-region layout of
    paper Figure 9). *)

val multi_level :
  alloc_oid:(unit -> oid) ->
  table_name:string ->
  (level * constr list) list ->
  t
(** Arbitrary-depth hierarchy as the cross product of per-level constraint
    lists. *)

val pp_constr : Format.formatter -> constr -> unit
val pp : Format.formatter -> t -> unit

(** Data-distribution policies of an MPP table (paper §3.1).  Distribution
    is orthogonal to partitioning: a table is spread across segments, and
    each segment's slice may additionally be partitioned. *)

type t =
  | Hashed of int list
      (** hash-distributed on the given column indices: tuples live on
          segment [hash(cols) mod nsegments] *)
  | Replicated  (** a full copy on every segment *)
  | Random  (** round-robin; no co-location guarantees *)
  | Singleton  (** the whole table on one host *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val hash_values : Mpp_expr.Value.t list -> int
(** The cluster-wide hash shared by hashed storage and Redistribute Motions,
    so equal keys always land on the same segment. *)

val segment_for_values : nsegments:int -> Mpp_expr.Value.t list -> int

val segment_of :
  nsegments:int -> t -> Mpp_expr.Value.t array -> rowno:int -> int option
(** Segment assignment of a tuple under this policy; [None] means "every
    segment" (replicated).  [rowno] drives the round-robin of [Random]. *)

(** Table descriptors: schema, distribution policy and optional partitioning
    metadata.  A partitioned table is represented by its {e root} OID; its
    leaves are separate physical tables with their own OIDs, exactly as in
    the paper's runtime (§3.2). *)

open Mpp_expr

type t = {
  oid : Partition.oid;  (** root OID *)
  name : string;
  columns : (string * Value.datatype) array;
  distribution : Distribution.t;
  partitioning : Partition.t option;
}

let is_partitioned t = Option.is_some t.partitioning
let ncols t = Array.length t.columns

let col_index t name =
  let n = ncols t in
  let rec go i =
    if i >= n then
      invalid_arg (Printf.sprintf "Table.col_index: %s has no column %s" t.name name)
    else if String.equal (fst t.columns.(i)) name then i
    else go (i + 1)
  in
  go 0

let col_type t name = snd t.columns.(col_index t name)

(** Column reference for column [name] of this table used as range-table
    entry [rel]. *)
let colref t ~rel name =
  let index = col_index t name in
  Colref.make ~rel ~index ~name ~dtype:(snd t.columns.(index))

(** All column references of the table for range-table entry [rel]. *)
let colrefs t ~rel =
  Array.to_list
    (Array.mapi
       (fun index (name, dtype) -> Colref.make ~rel ~index ~name ~dtype)
       t.columns)

(** Partitioning-key column references (per level), for instance [rel]. *)
let part_key_colrefs t ~rel =
  match t.partitioning with
  | None -> []
  | Some p ->
      Array.to_list p.Partition.levels
      |> List.map (fun (lv : Partition.level) ->
             let name, dtype = t.columns.(lv.key_index) in
             Colref.make ~rel ~index:lv.key_index ~name ~dtype)

let nparts t =
  match t.partitioning with None -> 1 | Some p -> Partition.nparts p

let pp fmt t =
  Format.fprintf fmt "@[<v>table %s (oid %d) %a@," t.name t.oid
    Distribution.pp t.distribution;
  Array.iter
    (fun (n, d) ->
      Format.fprintf fmt "  %s %s@," n (Value.datatype_to_string d))
    t.columns;
  (match t.partitioning with
  | None -> ()
  | Some p -> Partition.pp fmt p);
  Format.fprintf fmt "@]"

(** Partitioning metadata: the logical model of paper §2.1 plus the
    multi-level extension of §2.4.

    A partitioned table carries a list of {e levels}, each naming a
    partitioning-key column and a scheme (range or categorical).  Its data is
    held by {e leaf} partitions; each leaf has an OID, a physical-table name
    and one constraint per level.  Constraints are in the paper's §3.2 normal
    form: [pk ∈ ∪ᵢ (aᵢ₁, aᵢₖ)], i.e. an {!Mpp_expr.Interval.Set.t} — or
    [Default], the catch-all partition for values (including NULL) no sibling
    accepts.

    This module implements the two functions of §2.1:
    - [f_T] — {!route}: map a tuple's key values to its leaf (or ⊥);
    - [f*_T] — {!select}: map per-level restrictions to the set of leaf OIDs
      that can satisfy them (an over-approximation, never dropping a
      qualifying leaf). *)

open Mpp_expr

type oid = int

type scheme = Range | Categorical

type level = {
  key_index : int;  (** column position of the partitioning key *)
  key_name : string;
  scheme : scheme;
}

type constr =
  | Cset of Interval.Set.t
      (** the values this partition accepts at this level *)
  | Default  (** catch-all: everything the siblings reject, and NULLs *)

type leaf = {
  leaf_oid : oid;
  leaf_name : string;
  bounds : constr array;  (** one constraint per level, root to leaf *)
}

type t = { levels : level array; leaves : leaf array }

let nlevels t = Array.length t.levels
let nparts t = Array.length t.leaves
let leaf_oids t = Array.to_list (Array.map (fun l -> l.leaf_oid) t.leaves)

let key_indices t =
  Array.to_list (Array.map (fun lv -> lv.key_index) t.levels)

let find_leaf t oid =
  let n = Array.length t.leaves in
  let rec go i =
    if i >= n then None
    else if t.leaves.(i).leaf_oid = oid then Some t.leaves.(i)
    else go (i + 1)
  in
  go 0

(* The union of the sibling (non-default) constraints at [level], restricted
   to leaves matching [prefix_pred]; used to decide what a Default arm
   covers. *)
let covered_at t ~level ~prefix =
  Array.to_list t.leaves
  |> List.filter (fun lf ->
         let rec agrees i =
           i >= level
           || (match (lf.bounds.(i), prefix.(i)) with
              | Default, Default -> true
              | Cset a, Cset b -> Interval.Set.equal a b
              | (Default | Cset _), _ -> false)
              && agrees (i + 1)
         in
         agrees 0)
  |> List.filter_map (fun lf ->
         match lf.bounds.(level) with Cset s -> Some s | Default -> None)
  |> List.fold_left Interval.Set.union Interval.Set.empty

(** [f_T]: route a tuple's key values (one per level) to the leaf that must
    store it; [None] is the invalid partition ⊥ of §2.1. *)
let route t (keys : Value.t array) : leaf option =
  let n = nlevels t in
  assert (Array.length keys = n);
  let matches lf =
    let rec go i =
      if i >= n then true
      else
        (match lf.bounds.(i) with
        | Cset s -> (not (Value.is_null keys.(i))) && Interval.Set.contains s keys.(i)
        | Default ->
            (* Default accepts what no sibling (same prefix) covers. *)
            Value.is_null keys.(i)
            || not
                 (Interval.Set.contains
                    (covered_at t ~level:i ~prefix:lf.bounds)
                    keys.(i)))
        && go (i + 1)
    in
    go 0
  in
  Array.to_seq t.leaves |> Seq.filter matches |> fun s ->
  match s () with Seq.Nil -> None | Seq.Cons (lf, _) -> Some lf

(** [f*_T]: given an optional restriction per level ([None] = no predicate on
    that level's key), return the leaves that may hold satisfying tuples.
    Sound by construction: a leaf is excluded only when one of its level
    constraints provably cannot intersect the restriction. *)
let select t (restrictions : Interval.Set.t option array) : leaf list =
  let n = nlevels t in
  assert (Array.length restrictions = n);
  let survives lf =
    let rec go i =
      if i >= n then true
      else
        (match restrictions.(i) with
        | None -> true
        | Some r -> (
            match lf.bounds.(i) with
            | Cset s -> Interval.Set.overlaps_set s r
            | Default ->
                (* keep the default arm unless the restriction lies entirely
                   inside what the siblings cover *)
                let covered = covered_at t ~level:i ~prefix:lf.bounds in
                not (Interval.Set.is_empty (Interval.Set.diff r covered))))
        && go (i + 1)
    in
    go 0
  in
  Array.to_list t.leaves |> List.filter survives

let select_oids t restrictions =
  List.map (fun lf -> lf.leaf_oid) (select t restrictions)

(* ------------------------------------------------------------------ *)
(* Constructors for common partitioning layouts                        *)
(* ------------------------------------------------------------------ *)

(** Build single-level metadata from explicit per-leaf constraints.
    [alloc_oid] supplies fresh OIDs for the leaves. *)
let single_level ~alloc_oid ~key_index ~key_name ~scheme ~table_name constrs =
  let leaves =
    List.mapi
      (fun i c ->
        {
          leaf_oid = alloc_oid ();
          leaf_name = Printf.sprintf "%s_1_prt_%d" table_name (i + 1);
          bounds = [| c |];
        })
      constrs
    |> Array.of_list
  in
  { levels = [| { key_index; key_name; scheme } |]; leaves }

(** Monthly range partitions covering [months] months starting at the first
    of [start_year]-[start_month]; the classic chronological layout of the
    paper's Figure 1. *)
let monthly_ranges ~start_year ~start_month ~months =
  List.init months (fun i ->
      let lo = Date.add_months (Date.of_ymd start_year start_month 1) i in
      let hi = Date.add_months lo 1 in
      match Interval.closed_open (Value.Date lo) (Value.Date hi) with
      | Some iv -> Cset (Interval.Set.singleton iv)
      | None -> assert false)

(** [n] consecutive day-granularity range partitions of width [width_days]. *)
let daily_ranges ~start_date ~width_days ~count =
  List.init count (fun i ->
      let lo = Date.add_days start_date (i * width_days) in
      let hi = Date.add_days lo width_days in
      match Interval.closed_open (Value.Date lo) (Value.Date hi) with
      | Some iv -> Cset (Interval.Set.singleton iv)
      | None -> assert false)

(** Integer range partitions: part [i] holds [start + i*width, start +
    (i+1)*width). *)
let int_ranges ~start ~width ~count =
  List.init count (fun i ->
      let lo = start + (i * width) and hi = start + ((i + 1) * width) in
      match Interval.closed_open (Value.Int lo) (Value.Int hi) with
      | Some iv -> Cset (Interval.Set.singleton iv)
      | None -> assert false)

(** One categorical partition per value list. *)
let categorical values_per_part =
  List.map
    (fun vs -> Cset (Interval.Set.of_list (List.map Interval.point vs)))
    values_per_part

(** Two-level metadata as the cross product of per-level constraints (the
    orders-by-date-and-region layout of paper Figure 9). *)
let two_level ~alloc_oid ~table_name ~level1 ~constrs1 ~level2 ~constrs2 =
  let leaves =
    List.concat_map
      (fun (i, c1) ->
        List.map
          (fun (j, c2) ->
            {
              leaf_oid = alloc_oid ();
              leaf_name =
                Printf.sprintf "%s_1_prt_%d_2_prt_%d" table_name (i + 1) (j + 1);
              bounds = [| c1; c2 |];
            })
          (List.mapi (fun j c -> (j, c)) constrs2))
      (List.mapi (fun i c -> (i, c)) constrs1)
    |> Array.of_list
  in
  { levels = [| level1; level2 |]; leaves }

(** General n-level metadata as the cross product of per-level constraint
    lists — two_level generalized to arbitrary hierarchies. *)
let multi_level ~alloc_oid ~table_name (levels : (level * constr list) list) =
  if levels = [] then invalid_arg "Partition.multi_level: no levels";
  let rec product = function
    | [] -> [ [] ]
    | (_, constrs) :: rest ->
        let tails = product rest in
        List.concat_map
          (fun (i, c) -> List.map (fun tail -> (i, c) :: tail) tails)
          (List.mapi (fun i c -> (i, c)) constrs)
  in
  let leaves =
    product levels
    |> List.map (fun combo ->
           {
             leaf_oid = alloc_oid ();
             leaf_name =
               table_name
               ^ String.concat ""
                   (List.mapi
                      (fun lvl (i, _) ->
                        Printf.sprintf "_%d_prt_%d" (lvl + 1) (i + 1))
                      combo);
             bounds = Array.of_list (List.map snd combo);
           })
    |> Array.of_list
  in
  { levels = Array.of_list (List.map fst levels); leaves }

let pp_constr fmt = function
  | Default -> Format.pp_print_string fmt "DEFAULT"
  | Cset s -> Interval.Set.pp fmt s

let pp fmt t =
  Format.fprintf fmt "@[<v>partitioned by (%s), %d leaves@,"
    (String.concat ", "
       (Array.to_list (Array.map (fun lv -> lv.key_name) t.levels)))
    (nparts t);
  Array.iter
    (fun lf ->
      Format.fprintf fmt "  %s (oid %d): %s@," lf.leaf_name lf.leaf_oid
        (String.concat " / "
           (Array.to_list
              (Array.map (Format.asprintf "%a" pp_constr) lf.bounds))))
    t.leaves;
  Format.fprintf fmt "@]"

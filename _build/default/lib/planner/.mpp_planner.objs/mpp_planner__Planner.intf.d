lib/planner/planner.mli: Mpp_catalog Mpp_plan Orca

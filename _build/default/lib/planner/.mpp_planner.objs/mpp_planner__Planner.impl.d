lib/planner/planner.ml: Array Colref Expr List Mpp_catalog Mpp_expr Mpp_plan Orca String

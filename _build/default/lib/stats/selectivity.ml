(** Predicate selectivity estimation over a single relation instance.

    The estimator handles the shapes that matter for partitioned-table
    workloads — range and equality restrictions on (partitioning-key)
    columns — via the histogram, and falls back to textbook default
    selectivities elsewhere. *)

open Mpp_expr

let default_eq = 0.005
let default_range = 0.33
let default_other = 0.25

(* Selectivity of one conjunct against the stats of relation [rel]. *)
let rec conjunct_selectivity ~(stats : Stats.table_stats) ~rel e =
  match e with
  | Expr.Const (Value.Bool true) -> 1.0
  | Expr.Const (Value.Bool false) -> 0.0
  | Expr.And es ->
      List.fold_left
        (fun acc c -> acc *. conjunct_selectivity ~stats ~rel c)
        1.0 es
  | Expr.Or es ->
      (* inclusion-exclusion under independence *)
      List.fold_left
        (fun acc c ->
          let s = conjunct_selectivity ~stats ~rel c in
          acc +. s -. (acc *. s))
        0.0 es
  | Expr.Not e -> 1.0 -. conjunct_selectivity ~stats ~rel e
  | Expr.Is_null (Expr.Col c) when c.Colref.rel = rel ->
      if c.Colref.index < Array.length stats.columns then
        stats.columns.(c.Colref.index).null_frac
      else default_other
  | _ -> (
      (* try the histogram: single-column restriction on this relation *)
      match Expr.free_cols e with
      | [ c ] when c.Colref.rel = rel
                   && c.Colref.index < Array.length stats.columns -> (
          let col = stats.columns.(c.Colref.index) in
          match Expr.restriction c e with
          | Some set ->
              if Interval.Set.is_empty set then 0.0
              else Histogram.selectivity col.histogram set
          | None -> (
              match e with
              | Expr.Cmp (Expr.Eq, _, _) ->
                  1.0 /. float_of_int (max 1 col.ndv)
              | Expr.Cmp (_, _, _) -> default_range
              | _ -> default_other))
      | _ -> (
          match e with
          | Expr.Cmp (Expr.Eq, _, _) -> default_eq
          | Expr.Cmp (_, _, _) -> default_range
          | _ -> default_other))

(** Estimated fraction of rows of relation instance [rel] (with statistics
    [stats]) that satisfy [pred].  Conjuncts referencing other relations
    (join predicates) are ignored here — they are costed by the join
    estimator. *)
let estimate ~(stats : Stats.table_stats) ~rel pred =
  let local =
    List.filter
      (fun c -> match Expr.rels c with [ r ] -> r = rel | [] -> true | _ -> false)
      (Expr.conjuncts pred)
  in
  List.fold_left
    (fun acc c -> acc *. conjunct_selectivity ~stats ~rel c)
    1.0 local
  |> Float.max 0.0 |> Float.min 1.0

(** Join cardinality under the standard containment assumption:
    |R ⋈ S| = |R|·|S| / max(ndv(R.a), ndv(S.b)) for an equi-join. *)
let join_rows ~left_rows ~right_rows ~left_ndv ~right_ndv =
  let denom = float_of_int (max 1 (max left_ndv right_ndv)) in
  Float.max 1.0 (left_rows *. right_rows /. denom)

(** Predicate selectivity over a single relation instance: histogram-driven
    for the range/equality shapes that matter to partitioned workloads,
    textbook defaults elsewhere. *)

val estimate : stats:Stats.table_stats -> rel:int -> Mpp_expr.Expr.t -> float
(** Fraction of rows of relation instance [rel] satisfying the predicate's
    local conjuncts (join conjuncts are the join estimator's job); clamped
    to [\[0, 1\]]. *)

val join_rows :
  left_rows:float -> right_rows:float -> left_ndv:int -> right_ndv:int -> float
(** Equi-join cardinality under the containment assumption:
    |R ⋈ S| = |R|·|S| / max(ndv_l, ndv_r), at least 1. *)

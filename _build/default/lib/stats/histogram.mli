(** Equi-depth histograms over {!Mpp_expr.Value.t}: closed-open buckets
    (last closed) with row and distinct-value counts, driving the
    selectivity estimates of {!Selectivity}. *)

open Mpp_expr

type bucket = {
  lo : Value.t;
  hi : Value.t;
  rows : int;
  ndv : int;
  hi_inclusive : bool;
}

type t = { buckets : bucket array; null_rows : int; total_rows : int }

val empty : t

val build : ?nbuckets:int -> Value.t list -> t
(** Equi-depth histogram with at most [nbuckets] buckets (default 32);
    equal values never straddle a bucket boundary. *)

val ndv : t -> int
val min_value : t -> Value.t option
val max_value : t -> Value.t option

val selectivity : t -> Interval.Set.t -> float
(** Estimated fraction of non-null rows inside the set, in [\[0, 1\]];
    linear interpolation within numeric/date buckets, frequency (1/ndv) for
    point hits. *)

val pp : Format.formatter -> t -> unit

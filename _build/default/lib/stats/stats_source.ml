(** The optimizer's window onto statistics: a cache of analyzed tables plus
    an error-injection hook.

    [set_row_scale] multiplies the row-count estimate the optimizer sees for
    one table without touching the data — exactly the kind of cardinality
    misestimate the paper blames for its Table-3 / Figure-17 outliers, which
    we use to reproduce them deterministically. *)

type t = {
  catalog : Mpp_catalog.Catalog.t;
  storage : Mpp_storage.Storage.t;
  cache : (int, Stats.table_stats) Hashtbl.t;  (** by root OID *)
  row_scale : (int, float) Hashtbl.t;  (** injected misestimates *)
}

let create ~catalog ~storage =
  { catalog; storage; cache = Hashtbl.create 32; row_scale = Hashtbl.create 4 }

(** Inject a row-count misestimate: the optimizer will believe [table] has
    [factor] times its actual row count. *)
let set_row_scale t ~table_oid ~factor =
  Hashtbl.replace t.row_scale table_oid factor

let clear_row_scales t = Hashtbl.reset t.row_scale

let table_stats t (table : Mpp_catalog.Table.t) : Stats.table_stats =
  let base =
    match Hashtbl.find_opt t.cache table.oid with
    | Some s -> s
    | None ->
        let s = Stats.analyze t.storage table in
        Hashtbl.replace t.cache table.oid s;
        s
  in
  match Hashtbl.find_opt t.row_scale table.oid with
  | None -> base
  | Some f ->
      {
        base with
        rowcount =
          max 1 (int_of_float (float_of_int base.rowcount *. f));
      }

let column_stats t (table : Mpp_catalog.Table.t) ~col_index =
  (table_stats t table).columns.(col_index)

(** Invalidate the cache (after loading more data). *)
let refresh t = Hashtbl.reset t.cache

(** Table- and column-level statistics, collected by sampling the storage
    layer (the ANALYZE of the simulated system).

    The optimizer reads these through {!Stats_source}, which supports
    injecting deliberate misestimates — the mechanism we use to reproduce the
    paper's Table-3 outliers, where "cardinality estimation errors" lead Orca
    to sub-optimal plans (paper §4.3). *)

open Mpp_expr

type column_stats = {
  histogram : Histogram.t;
  ndv : int;
  null_frac : float;
}

type table_stats = {
  rowcount : int;
  avg_width : int;  (** average tuple width in bytes *)
  columns : column_stats array;
}

let tuple_width (tuple : Value.t array) =
  Array.fold_left (fun acc v -> acc + Value.serialized_size v) 0 tuple

(** Collect statistics for [table] by a full pass over storage (our tables
    are small; a real system would sample). *)
let analyze storage (table : Mpp_catalog.Table.t) : table_stats =
  let oids =
    match table.partitioning with
    | None -> [ table.oid ]
    | Some p -> Mpp_catalog.Partition.leaf_oids p
  in
  let rows = ref [] in
  let replicated =
    match table.distribution with
    | Mpp_catalog.Distribution.Replicated -> true
    | _ -> false
  in
  let nsegs = Mpp_storage.Storage.nsegments storage in
  let last_seg = if replicated then 0 else nsegs - 1 in
  List.iter
    (fun oid ->
      for seg = 0 to last_seg do
        Array.iter
          (fun t -> rows := t :: !rows)
          (Mpp_storage.Storage.scan storage ~segment:seg ~oid)
      done)
    oids;
  let all = !rows in
  let rowcount = List.length all in
  let ncols = Mpp_catalog.Table.ncols table in
  let columns =
    Array.init ncols (fun i ->
        let values = List.map (fun t -> t.(i)) all in
        let histogram = Histogram.build values in
        let nulls = List.length (List.filter Value.is_null values) in
        {
          histogram;
          ndv = max 1 (Histogram.ndv histogram);
          null_frac =
            (if rowcount = 0 then 0.0
             else float_of_int nulls /. float_of_int rowcount);
        })
  in
  let avg_width =
    if rowcount = 0 then 1
    else
      List.fold_left (fun acc t -> acc + tuple_width t) 0 all / rowcount
  in
  { rowcount; avg_width; columns }

(** Crude statistics when nothing has been analyzed: default row count and
    uniform columns. *)
let defaults (table : Mpp_catalog.Table.t) : table_stats =
  {
    rowcount = 1000;
    avg_width = 64;
    columns =
      Array.make (Mpp_catalog.Table.ncols table)
        { histogram = Histogram.empty; ndv = 100; null_frac = 0.0 };
  }

(** Table- and column-level statistics collected from storage — the ANALYZE
    of the simulated system. *)

type column_stats = {
  histogram : Histogram.t;
  ndv : int;
  null_frac : float;
}

type table_stats = {
  rowcount : int;
  avg_width : int;  (** average tuple width in bytes *)
  columns : column_stats array;
}

val analyze : Mpp_storage.Storage.t -> Mpp_catalog.Table.t -> table_stats
(** Full pass over the table's heaps (replicated tables counted once). *)

val defaults : Mpp_catalog.Table.t -> table_stats
(** Textbook defaults when nothing has been analyzed. *)

lib/stats/stats_source.ml: Array Hashtbl Mpp_catalog Mpp_storage Stats

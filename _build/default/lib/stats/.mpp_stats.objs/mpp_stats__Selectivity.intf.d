lib/stats/selectivity.mli: Mpp_expr Stats

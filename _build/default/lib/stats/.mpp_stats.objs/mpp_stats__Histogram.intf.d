lib/stats/histogram.mli: Format Interval Mpp_expr Value

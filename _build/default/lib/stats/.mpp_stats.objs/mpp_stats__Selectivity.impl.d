lib/stats/selectivity.ml: Array Colref Expr Float Histogram Interval List Mpp_expr Stats Value

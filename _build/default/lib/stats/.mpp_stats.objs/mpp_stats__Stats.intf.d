lib/stats/stats.mli: Histogram Mpp_catalog Mpp_storage

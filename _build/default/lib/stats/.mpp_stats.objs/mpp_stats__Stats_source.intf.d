lib/stats/stats_source.mli: Mpp_catalog Mpp_storage Stats

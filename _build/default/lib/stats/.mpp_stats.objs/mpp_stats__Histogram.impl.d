lib/stats/histogram.ml: Array Date Float Format Interval List Mpp_expr Value

lib/stats/stats.ml: Array Histogram List Mpp_catalog Mpp_expr Mpp_storage Value

(** Equi-depth histograms over {!Mpp_expr.Value.t}.

    Buckets are closed-open ranges except the last, which is closed; each
    bucket carries its row count and a distinct-value estimate.  Histograms
    drive the selectivity estimates of {!Selectivity}. *)

open Mpp_expr

type bucket = {
  lo : Value.t;
  hi : Value.t;
  rows : int;
  ndv : int;
  hi_inclusive : bool;
}

type t = { buckets : bucket array; null_rows : int; total_rows : int }

let empty = { buckets = [||]; null_rows = 0; total_rows = 0 }

(** Build an equi-depth histogram with at most [nbuckets] buckets. *)
let build ?(nbuckets = 32) (values : Value.t list) : t =
  let nulls, non_null = List.partition Value.is_null values in
  let sorted = List.sort Value.compare non_null |> Array.of_list in
  let n = Array.length sorted in
  let total_rows = n + List.length nulls in
  if n = 0 then { empty with null_rows = List.length nulls; total_rows }
  else begin
    let nbuckets = min nbuckets n in
    let per = max 1 (n / nbuckets) in
    let buckets = ref [] in
    let i = ref 0 in
    while !i < n do
      let start = !i in
      let stop0 = min (n - 1) (start + per - 1) in
      (* extend the bucket so equal values never straddle a boundary *)
      let stop = ref stop0 in
      while !stop < n - 1 && Value.equal sorted.(!stop) sorted.(!stop + 1) do
        incr stop
      done;
      let rows = !stop - start + 1 in
      let ndv = ref 1 in
      for k = start + 1 to !stop do
        if not (Value.equal sorted.(k) sorted.(k - 1)) then incr ndv
      done;
      buckets :=
        {
          lo = sorted.(start);
          hi = sorted.(!stop);
          rows;
          ndv = !ndv;
          hi_inclusive = !stop = n - 1;
        }
        :: !buckets;
      i := !stop + 1
    done;
    {
      buckets = Array.of_list (List.rev !buckets);
      null_rows = List.length nulls;
      total_rows;
    }
  end

let ndv t = Array.fold_left (fun acc b -> acc + b.ndv) 0 t.buckets

let min_value t =
  if Array.length t.buckets = 0 then None else Some t.buckets.(0).lo

let max_value t =
  let n = Array.length t.buckets in
  if n = 0 then None else Some t.buckets.(n - 1).hi

let bucket_interval b =
  if b.hi_inclusive then
    match Interval.make (Interval.B (b.lo, true)) (Interval.B (b.hi, true)) with
    | Some i -> i
    | None -> Interval.point b.lo
  else
    match Interval.closed_open b.lo b.hi with
    | Some i -> i
    | None -> Interval.point b.lo

(* Fraction of bucket [b] that interval [iv] covers, with linear
   interpolation for numeric/date domains and a containment test otherwise. *)
let bucket_fraction b iv =
  match Interval.intersect (bucket_interval b) iv with
  | None -> 0.0
  | Some cut when Interval.is_point cut <> None ->
      (* an equality hit: one of the bucket's distinct values *)
      1.0 /. float_of_int (max 1 b.ndv)
  | Some cut ->
      let numeric v =
        match v with
        | Value.Int i -> Some (float_of_int i)
        | Value.Float f -> Some f
        | Value.Date d -> Some (float_of_int (d : Date.t :> int))
        | _ -> None
      in
      (match (numeric b.lo, numeric b.hi) with
      | Some lo, Some hi when hi > lo ->
          let bound_val default = function
            | Interval.Neg_inf | Interval.Pos_inf -> default
            | Interval.B (v, _) -> (
                match numeric v with Some f -> f | None -> default)
          in
          let clo = bound_val lo cut.Interval.lo
          and chi = bound_val hi cut.Interval.hi in
          Float.max 0.0 (Float.min 1.0 ((chi -. clo) /. (hi -. lo)))
      | _ ->
          (* non-numeric: count the cut as covering the whole bucket if it
             spans both bucket ends, half otherwise *)
          if Interval.contains cut b.lo && Interval.contains cut b.hi then 1.0
          else 0.5)

(** Estimated fraction of non-null rows whose value falls in [set]. *)
let selectivity t (set : Interval.Set.t) =
  let non_null = t.total_rows - t.null_rows in
  if non_null = 0 then 0.0
  else if Interval.Set.is_full set then 1.0
  else
    let rows =
      Array.fold_left
        (fun acc b ->
          let f =
            List.fold_left
              (fun m iv -> Float.min 1.0 (m +. bucket_fraction b iv))
              0.0
              (Interval.Set.to_list set)
          in
          acc +. (f *. float_of_int b.rows))
        0.0 t.buckets
    in
    Float.max 0.0 (Float.min 1.0 (rows /. float_of_int non_null))

let pp fmt t =
  Format.fprintf fmt "@[<v>histogram: %d rows (%d null), %d buckets@,"
    t.total_rows t.null_rows (Array.length t.buckets);
  Array.iter
    (fun b ->
      Format.fprintf fmt "  [%a, %a%s rows=%d ndv=%d@," Value.pp b.lo Value.pp
        b.hi
        (if b.hi_inclusive then "]" else ")")
        b.rows b.ndv)
    t.buckets;
  Format.fprintf fmt "@]"

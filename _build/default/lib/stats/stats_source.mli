(** The optimizer's window onto statistics: a cache of analyzed tables plus
    an error-injection hook — {!set_row_scale} multiplies the row-count
    estimate the optimizer sees for one table, the mechanism behind the
    paper's Table-3 / Figure-17 sub-optimal-plan cases ("cardinality
    estimation errors"). *)

type t

val create :
  catalog:Mpp_catalog.Catalog.t -> storage:Mpp_storage.Storage.t -> t

val set_row_scale : t -> table_oid:int -> factor:float -> unit
val clear_row_scales : t -> unit

val table_stats : t -> Mpp_catalog.Table.t -> Stats.table_stats
(** Cached ANALYZE result, with any injected misestimate applied. *)

val column_stats : t -> Mpp_catalog.Table.t -> col_index:int -> Stats.column_stats

val refresh : t -> unit
(** Invalidate the cache (after loading more data). *)

(** PartitionSelector placement — the paper's Algorithms 1–4 (§2.3) with the
    multi-level extension of §2.4.

    Input: a physical tree containing DynamicScans but no selectors.
    Output: the same tree with every selector placed —

    - Filter predicates on the partitioning key fold into the spec on the
      way down (Algorithm 3), including a scan's own residual qual;
    - a join whose predicate constrains the key of a scan in its right
      (inner) child pushes the spec into its left (outer) child: dynamic
      partition elimination (Algorithm 4);
    - other operators forward specs toward the defining child or enforce
      them on top when the scan is out of scope (Algorithm 2);
    - a spec reaching its own DynamicScan becomes a leaf selector ordered by
      a [Sequence] (Figure 5(a–c)). *)

module Plan = Mpp_plan.Plan

val place_part_selectors :
  ?eliminate:bool -> Part_spec.t list -> Plan.t -> Plan.t
(** Algorithm 1 ([PlacePartSelectors]) over explicit input specs. *)

val initial_specs :
  catalog:Mpp_catalog.Catalog.t -> Plan.t -> Part_spec.t list
(** One fresh spec per unresolved DynamicScan in the tree. *)

val place : ?eliminate:bool -> catalog:Mpp_catalog.Catalog.t -> Plan.t -> Plan.t
(** End-to-end pass.  [eliminate:false] places only Φ selectors (no
    partition elimination — the Figure-17 ablation). *)

(** [PartSelectorSpec] — the compact description of the PartitionSelector
    that still needs to be placed for one unresolved DynamicScan (paper
    Figures 7 and 11).

    The multi-level form is used throughout: [keys] and [predicates] have one
    entry per partitioning level ([None] = no predicate on that level's key),
    which degenerates to the single-level Figure-7 structure for one-level
    tables. *)

open Mpp_expr

type t = {
  part_scan_id : int;
  root_oid : int;
  keys : Colref.t list;  (** partitioning-key colrefs, one per level *)
  predicates : Expr.t option list;  (** per-level partition predicates *)
}

(** A fresh spec for an unresolved DynamicScan: no predicates yet. *)
let initial ~part_scan_id ~root_oid ~keys =
  { part_scan_id; root_oid; keys; predicates = List.map (fun _ -> None) keys }

(** Augment the spec with newly found per-level predicates, conjoining with
    whatever was already accumulated (the [Conj] of Algorithms 3/4). *)
let add_predicates t (found : Expr.t option list) =
  {
    t with
    predicates =
      List.map2
        (fun existing newer ->
          match (existing, newer) with
          | None, p | p, None -> p
          | Some a, Some b -> Some (Expr.conj [ b; a ]))
        t.predicates found;
  }

let has_any_predicate t = List.exists Option.is_some t.predicates

let pp fmt t =
  Format.fprintf fmt "<%d, [%s], [%s]>" t.part_scan_id
    (String.concat "; " (List.map Colref.to_string t.keys))
    (String.concat "; "
       (List.map
          (function None -> "Φ" | Some p -> Expr.to_string p)
          t.predicates))

let to_string t = Format.asprintf "%a" pp t

(** Logical operator trees — the optimizer's input, as produced by a binder
    or built directly by tests and examples.

    Relation instances are identified by range-table index [rel]; tables are
    referenced by name and resolved against the catalog at optimization
    time. *)

open Mpp_expr
module Plan = Mpp_plan.Plan

type t =
  | Get of { rel : int; table_name : string }
  | Select of { pred : Expr.t; child : t }
  | Join of { kind : Plan.join_kind; pred : Expr.t; left : t; right : t }
  | Aggregate of {
      group_by : Expr.t list;
      aggs : (string * Plan.agg_fun) list;
      child : t;
    }
  | Project of { exprs : (string * Expr.t) list; child : t }
  | Sort of { keys : Expr.t list; child : t }
  | Limit of { rows : int; child : t }
  | Update of {
      rel : int;
      table_name : string;
      set_cols : (string * Expr.t) list;
      child : t;
    }
  | Delete of { rel : int; table_name : string; child : t }
  | Insert of { table_name : string; rows : Expr.t list list }

let get ~rel table_name = Get { rel; table_name }
let select pred child = Select { pred; child }
let join ?(kind = Plan.Inner) pred left right = Join { kind; pred; left; right }
let aggregate ?(group_by = []) aggs child = Aggregate { group_by; aggs; child }

let children = function
  | Get _ -> []
  | Select { child; _ }
  | Aggregate { child; _ }
  | Project { child; _ }
  | Sort { child; _ }
  | Limit { child; _ }
  | Update { child; _ }
  | Delete { child; _ } ->
      [ child ]
  | Join { left; right; _ } -> [ left; right ]
  | Insert _ -> []

let rec fold f acc t = List.fold_left (fold f) (f acc t) (children t)

(** All (rel, table_name) base accesses in the tree. *)
let base_tables t =
  fold
    (fun acc n ->
      match n with
      | Get { rel; table_name } -> (rel, table_name) :: acc
      | _ -> acc)
    [] t
  |> List.rev

let describe = function
  | Get { rel; table_name } -> Printf.sprintf "Get(%d, %s)" rel table_name
  | Select { pred; _ } -> "Select(" ^ Expr.to_string pred ^ ")"
  | Join { kind; pred; _ } ->
      Printf.sprintf "Join[%s](%s)" (Plan.join_kind_to_string kind)
        (Expr.to_string pred)
  | Aggregate { group_by; aggs; _ } ->
      Printf.sprintf "Aggregate(groups=%d, aggs=%d)" (List.length group_by)
        (List.length aggs)
  | Project { exprs; _ } -> Printf.sprintf "Project(%d)" (List.length exprs)
  | Sort _ -> "Sort"
  | Limit { rows; _ } -> Printf.sprintf "Limit(%d)" rows
  | Update { table_name; _ } -> "Update(" ^ table_name ^ ")"
  | Delete { table_name; _ } -> "Delete(" ^ table_name ^ ")"
  | Insert { table_name; rows } ->
      Printf.sprintf "Insert(%s, %d rows)" table_name (List.length rows)

let pp fmt t =
  let rec go indent n =
    Format.fprintf fmt "%s-> %s@," (String.make indent ' ') (describe n);
    List.iter (go (indent + 2)) (children n)
  in
  Format.fprintf fmt "@[<v>";
  go 0 t;
  Format.fprintf fmt "@]"

(** [PartSelectorSpec] — the compact description of the PartitionSelector
    still to be placed for one unresolved DynamicScan (paper Figures 7/11).
    Always in the multi-level form: one key and one optional predicate per
    partitioning level. *)

open Mpp_expr

type t = {
  part_scan_id : int;
  root_oid : int;
  keys : Colref.t list;  (** partitioning-key colrefs, one per level *)
  predicates : Expr.t option list;  (** per-level partition predicates *)
}

val initial : part_scan_id:int -> root_oid:int -> keys:Colref.t list -> t
(** A fresh spec with no predicates. *)

val add_predicates : t -> Expr.t option list -> t
(** Conjoin newly found per-level predicates with the accumulated ones (the
    [Conj] of Algorithms 3/4). *)

val has_any_predicate : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Logical operator trees — the optimizer's input, produced by the SQL
    binder or built directly.  Relation instances carry range-table indices;
    tables are referenced by name and resolved at optimization time. *)

open Mpp_expr
module Plan = Mpp_plan.Plan

type t =
  | Get of { rel : int; table_name : string }
  | Select of { pred : Expr.t; child : t }
  | Join of { kind : Plan.join_kind; pred : Expr.t; left : t; right : t }
  | Aggregate of {
      group_by : Expr.t list;
      aggs : (string * Plan.agg_fun) list;
      child : t;
    }
  | Project of { exprs : (string * Expr.t) list; child : t }
  | Sort of { keys : Expr.t list; child : t }
  | Limit of { rows : int; child : t }
  | Update of {
      rel : int;
      table_name : string;
      set_cols : (string * Expr.t) list;
      child : t;
    }
  | Delete of { rel : int; table_name : string; child : t }
  | Insert of { table_name : string; rows : Expr.t list list }

val get : rel:int -> string -> t
val select : Expr.t -> t -> t
val join : ?kind:Plan.join_kind -> Expr.t -> t -> t -> t

val aggregate :
  ?group_by:Expr.t list -> (string * Plan.agg_fun) list -> t -> t

val children : t -> t list
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

val base_tables : t -> (int * string) list
(** All (rel, table_name) base accesses, in tree order. *)

val describe : t -> string
val pp : Format.formatter -> t -> unit

lib/orca/part_spec.ml: Colref Expr Format List Mpp_expr Option String

lib/orca/memo.ml: Array Colref Expr Float Hashtbl List Logical Mpp_catalog Mpp_expr Mpp_plan Mpp_stats Option Part_spec Printf String

lib/orca/memo.mli: Logical Mpp_catalog Mpp_expr Mpp_plan Mpp_stats Part_spec

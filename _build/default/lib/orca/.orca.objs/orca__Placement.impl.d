lib/orca/placement.ml: Colref Expr List Logs Mpp_catalog Mpp_expr Mpp_plan Part_spec

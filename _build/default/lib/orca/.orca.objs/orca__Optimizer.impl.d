lib/orca/optimizer.ml: Array Colref Expr Float Interval List Logical Logs Mpp_catalog Mpp_expr Mpp_plan Mpp_stats Option Placement Printf String

lib/orca/part_spec.mli: Colref Expr Format Mpp_expr

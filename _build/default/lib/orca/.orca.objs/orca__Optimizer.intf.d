lib/orca/optimizer.mli: Logical Mpp_catalog Mpp_plan Mpp_stats

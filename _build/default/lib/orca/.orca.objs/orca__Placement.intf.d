lib/orca/placement.mli: Mpp_catalog Mpp_plan Part_spec

lib/orca/logical.ml: Expr Format List Mpp_expr Mpp_plan Printf String

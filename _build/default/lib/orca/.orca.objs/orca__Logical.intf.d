lib/orca/logical.mli: Expr Format Mpp_expr Mpp_plan

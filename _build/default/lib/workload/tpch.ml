(** TPC-H-like [lineitem] workload for the partitioning-overhead experiment
    (paper Table 2) and the plan-size experiment of Figure 18(a).

    Seven years of data (1992–1998, the TPC-H date range), partitioned at
    configurable granularity: the paper's scenarios are 42 two-month
    partitions, 84 monthly, 169 bi-weekly and 361 weekly. *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Part = Mpp_catalog.Partition
module Dist = Mpp_catalog.Distribution

type scenario = Unpartitioned | Parts_42 | Parts_84 | Parts_169 | Parts_361

let scenario_name = function
  | Unpartitioned -> "unpartitioned"
  | Parts_42 -> "42 (2-month)"
  | Parts_84 -> "84 (monthly)"
  | Parts_169 -> "169 (bi-weekly)"
  | Parts_361 -> "361 (weekly)"

let scenario_parts = function
  | Unpartitioned -> 1
  | Parts_42 -> 42
  | Parts_84 -> 84
  | Parts_169 -> 169
  | Parts_361 -> 361

let start = Date.of_ymd 1992 1 1
let years = 7
let total_days = 7 * 365 + 2 (* 1992 & 1996 are leap years *)

let columns =
  [ ("l_orderkey", Value.Tint);
    ("l_partkey", Value.Tint);
    ("l_quantity", Value.Tfloat);
    ("l_extendedprice", Value.Tfloat);
    ("l_shipdate", Value.Tdate) ]

let shipdate_index = 4

let constraints_for scenario =
  match scenario with
  | Unpartitioned -> None
  | Parts_42 ->
      (* two-month ranges over the 84 months *)
      Some
        (List.init 42 (fun i ->
             let lo = Date.add_months start (2 * i) in
             let hi = Date.add_months start (2 * (i + 1)) in
             match Interval.closed_open (Value.Date lo) (Value.Date hi) with
             | Some iv -> Part.Cset (Interval.Set.singleton iv)
             | None -> assert false))
  | Parts_84 ->
      Some (Part.monthly_ranges ~start_year:1992 ~start_month:1 ~months:84)
  | Parts_169 ->
      (* bi-weekly partitions covering the 7-year span (169 × 14 = 2366
         days ≥ 2557?  no — 169 × 14 = 2366 < 2557; widen the last one) *)
      Some
        (List.init 169 (fun i ->
             let lo = Date.add_days start (i * 14) in
             let hi =
               if i = 168 then Date.add_days start (total_days + 14)
               else Date.add_days lo 14
             in
             match Interval.closed_open (Value.Date lo) (Value.Date hi) with
             | Some iv -> Part.Cset (Interval.Set.singleton iv)
             | None -> assert false))
  | Parts_361 ->
      Some
        (List.init 361 (fun i ->
             let lo = Date.add_days start (i * 7) in
             let hi =
               if i = 360 then Date.add_days start (total_days + 7)
               else Date.add_days lo 7
             in
             match Interval.closed_open (Value.Date lo) (Value.Date hi) with
             | Some iv -> Part.Cset (Interval.Set.singleton iv)
             | None -> assert false))

(** Create the [lineitem] table for [scenario] and load [rows] rows spread
    uniformly over the 7-year range. *)
let setup ~catalog ~storage ~scenario ~rows : Mpp_catalog.Table.t =
  let partitioning =
    Option.map
      (fun constrs ->
        Part.single_level
          ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
          ~key_index:shipdate_index ~key_name:"l_shipdate" ~scheme:Part.Range
          ~table_name:"lineitem" constrs)
      (constraints_for scenario)
  in
  let table =
    Cat.add_table catalog ~name:"lineitem" ~columns
      ~distribution:(Dist.Hashed [ 0 ]) ?partitioning ()
  in
  let rng = Rng.create () in
  for i = 0 to rows - 1 do
    let day = i * total_days / rows in
    Mpp_storage.Storage.insert storage table
      [| Value.Int i;
         Value.Int (Rng.int rng 10_000);
         Value.Float (float_of_int (1 + Rng.int rng 50));
         Value.Float (Rng.float rng 10_000.0);
         Value.Date (Date.add_days start day) |]
  done;
  table

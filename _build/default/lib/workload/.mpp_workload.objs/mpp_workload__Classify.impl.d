lib/workload/classify.ml: Hashtbl List Queries Runner String

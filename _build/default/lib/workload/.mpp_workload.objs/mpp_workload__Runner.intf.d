lib/workload/runner.mli: Mpp_catalog Mpp_expr Mpp_plan Mpp_stats Mpp_storage Queries Tpcds

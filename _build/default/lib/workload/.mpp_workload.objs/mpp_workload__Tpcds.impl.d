lib/workload/tpcds.ml: Array Date Interval List Mpp_catalog Mpp_expr Mpp_storage Rng Value

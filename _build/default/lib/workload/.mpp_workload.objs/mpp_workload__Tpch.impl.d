lib/workload/tpch.ml: Date Interval List Mpp_catalog Mpp_expr Mpp_storage Option Rng Value

lib/workload/runner.ml: List Mpp_catalog Mpp_exec Mpp_expr Mpp_plan Mpp_planner Mpp_sql Mpp_stats Mpp_storage Orca Queries String Tpcds Unix

lib/workload/queries.ml: List String

(** Deterministic pseudo-random generator (xorshift64-star) so every workload
    build is reproducible across runs and machines. *)

type t = { mutable state : int64 }

let create ?(seed = 0x9E3779B97F4A7C15L) () =
  { state = (if seed = 0L then 1L else seed) }

let next t =
  let s = t.state in
  let s = Int64.logxor s (Int64.shift_left s 13) in
  let s = Int64.logxor s (Int64.shift_right_logical s 7) in
  let s = Int64.logxor s (Int64.shift_left s 17) in
  t.state <- s;
  s

(** Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int)
                  (Int64.of_int bound))

let float t max = float_of_int (int t 1_000_000) /. 1_000_000.0 *. max

let pick t arr = arr.(int t (Array.length arr))

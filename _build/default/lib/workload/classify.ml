(** Workload classification by partition-elimination outcome — the logic
    behind the paper's Table 3 and Figure 16. *)

type outcome = {
  query : Queries.query;
  orca_parts : int;
  planner_parts : int;
  total_parts : int;
  category : Queries.category;
}

let categorize ~orca ~planner ~total : Queries.category =
  if orca = planner then Queries.Equal
  else if orca < planner then
    if planner >= total then Queries.Orca_only else Queries.Orca_more
  else if orca >= total then Queries.Planner_only
  else Queries.Orca_fewer

(** Run every workload query under both optimizers and classify it. *)
let run_workload env : outcome list =
  List.map
    (fun qu ->
      let o = Runner.run env Runner.Orca qu in
      let p = Runner.run env Runner.Legacy_planner qu in
      let orca_parts = Runner.total_parts_scanned o in
      let planner_parts = Runner.total_parts_scanned p in
      let total_parts = Runner.total_parts o in
      {
        query = qu;
        orca_parts;
        planner_parts;
        total_parts;
        category = categorize ~orca:orca_parts ~planner:planner_parts
            ~total:total_parts;
      })
    Queries.all

(** Percentage breakdown by category, in the paper's Table-3 row order. *)
let breakdown (outcomes : outcome list) :
    (Queries.category * int * float) list =
  let n = List.length outcomes in
  List.map
    (fun cat ->
      let count =
        List.length (List.filter (fun o -> o.category = cat) outcomes)
      in
      (cat, count, 100.0 *. float_of_int count /. float_of_int (max 1 n)))
    [ Queries.Orca_only; Queries.Orca_more; Queries.Equal;
      Queries.Orca_fewer; Queries.Planner_only ]

(** Per-fact-table totals of partitions scanned across the whole workload
    (Figure 16). *)
let parts_by_table env :
    (string * int * int * int) list (* table, planner, orca, total *) =
  let acc : (string, int * int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun qu ->
      let o = Runner.run env Runner.Orca qu in
      let p = Runner.run env Runner.Legacy_planner qu in
      List.iter2
        (fun (name, oparts) (_, pparts) ->
          let po, pp, tot =
            match Hashtbl.find_opt acc name with
            | Some x -> x
            | None -> (0, 0, 0)
          in
          let total = List.assoc name o.Runner.parts_total in
          Hashtbl.replace acc name (po + oparts, pp + pparts, tot + total))
        o.Runner.parts_scanned p.Runner.parts_scanned)
    Queries.all;
  Hashtbl.fold
    (fun name (oparts, pparts, total) l -> (name, pparts, oparts, total) :: l)
    acc []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)

(** A scaled-down synthetic star schema with the structure of the TPC-DS
    subset the paper's evaluation uses (§4.3): the seven partitioned fact
    tables it names — store_sales, web_sales, catalog_sales, store_returns,
    web_returns, catalog_returns, inventory — plus the dimension tables the
    workload joins through.

    Layout highlights:
    - facts are hash-distributed and partitioned monthly over three years
      (2011-01 … 2013-12, 36 partitions);
    - [web_sales] is partitioned on an {e integer} surrogate date key
      ([ws_sold_date_id], the paper's Figure-3 normalized design), the rest
      directly on a date column;
    - [catalog_returns] is {e two-level} partitioned (month × channel,
      paper §2.4);
    - [inventory] uses bi-weekly partitions (79 of them);
    - dimensions are replicated, [date_dim] carrying both the date and the
      integer surrogate key. *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Part = Mpp_catalog.Partition
module Dist = Mpp_catalog.Distribution

let start_year = 2011
let months = 36
let start = Date.of_ymd start_year 1 1
let day_count = Date.add_months start months - start

(** Integer surrogate key for a date: days since the schema epoch. *)
let date_id_of d = d - start

let monthly_int_id_ranges () =
  List.init months (fun i ->
      let lo = date_id_of (Date.add_months start i) in
      let hi = date_id_of (Date.add_months start (i + 1)) in
      match Interval.closed_open (Value.Int lo) (Value.Int hi) with
      | Some iv -> Part.Cset (Interval.Set.singleton iv)
      | None -> assert false)

let biweekly_ranges () =
  let nparts = (day_count + 13) / 14 in
  List.init nparts (fun i ->
      let lo = Date.add_days start (i * 14) in
      let hi = Date.add_days lo 14 in
      match Interval.closed_open (Value.Date lo) (Value.Date hi) with
      | Some iv -> Part.Cset (Interval.Set.singleton iv)
      | None -> assert false)

let channels = [| "store"; "web"; "catalog" |]
let states = [| "CA"; "NY"; "TX"; "WA"; "OR"; "MA"; "IL"; "FL" |]
let categories =
  [| "books"; "music"; "electronics"; "home"; "sports"; "toys"; "garden";
     "jewelry"; "shoes"; "sports" |]

type schema = {
  date_dim : Mpp_catalog.Table.t;
  item : Mpp_catalog.Table.t;
  customer : Mpp_catalog.Table.t;
  store : Mpp_catalog.Table.t;
  warehouse : Mpp_catalog.Table.t;
  store_sales : Mpp_catalog.Table.t;
  web_sales : Mpp_catalog.Table.t;
  catalog_sales : Mpp_catalog.Table.t;
  store_returns : Mpp_catalog.Table.t;
  web_returns : Mpp_catalog.Table.t;
  catalog_returns : Mpp_catalog.Table.t;
  inventory : Mpp_catalog.Table.t;
}

let fact_tables s =
  [ s.store_sales; s.web_sales; s.catalog_sales; s.store_returns;
    s.web_returns; s.catalog_returns; s.inventory ]

(** Create the schema and load deterministic synthetic data.  [scale]
    multiplies the row counts (scale 1 ≈ 26k fact rows total). *)
let setup ?(scale = 1) ~catalog ~storage () : schema =
  let alloc () = Cat.alloc_oid catalog in
  let monthly key_index key_name table_name =
    Part.single_level ~alloc_oid:alloc ~key_index ~key_name ~scheme:Part.Range
      ~table_name
      (Part.monthly_ranges ~start_year ~start_month:1 ~months)
  in
  (* dimensions *)
  let date_dim =
    Cat.add_table catalog ~name:"date_dim"
      ~columns:
        [ ("d_date", Value.Tdate); ("d_date_id", Value.Tint);
          ("d_year", Value.Tint); ("d_month", Value.Tint);
          ("d_quarter", Value.Tint); ("d_dow", Value.Tint) ]
      ~distribution:Dist.Replicated ()
  in
  let item =
    Cat.add_table catalog ~name:"item"
      ~columns:
        [ ("i_id", Value.Tint); ("i_category", Value.Tstring);
          ("i_price", Value.Tfloat) ]
      ~distribution:Dist.Replicated ()
  in
  let customer =
    Cat.add_table catalog ~name:"customer"
      ~columns:[ ("c_id", Value.Tint); ("c_state", Value.Tstring) ]
      ~distribution:Dist.Replicated ()
  in
  let store =
    Cat.add_table catalog ~name:"store"
      ~columns:[ ("s_id", Value.Tint); ("s_state", Value.Tstring) ]
      ~distribution:Dist.Replicated ()
  in
  let warehouse =
    Cat.add_table catalog ~name:"warehouse"
      ~columns:[ ("w_id", Value.Tint); ("w_state", Value.Tstring) ]
      ~distribution:Dist.Replicated ()
  in
  (* facts *)
  let store_sales =
    Cat.add_table catalog ~name:"store_sales"
      ~columns:
        [ ("ss_sold_date", Value.Tdate); ("ss_item", Value.Tint);
          ("ss_customer", Value.Tint); ("ss_store", Value.Tint);
          ("ss_qty", Value.Tint); ("ss_price", Value.Tfloat) ]
      ~distribution:(Dist.Hashed [ 1 ])
      ~partitioning:(monthly 0 "ss_sold_date" "store_sales")
      ()
  in
  let web_sales =
    Cat.add_table catalog ~name:"web_sales"
      ~columns:
        [ ("ws_sold_date_id", Value.Tint); ("ws_item", Value.Tint);
          ("ws_customer", Value.Tint); ("ws_qty", Value.Tint);
          ("ws_price", Value.Tfloat) ]
      ~distribution:(Dist.Hashed [ 1 ])
      ~partitioning:
        (Part.single_level ~alloc_oid:alloc ~key_index:0
           ~key_name:"ws_sold_date_id" ~scheme:Part.Range
           ~table_name:"web_sales" (monthly_int_id_ranges ()))
      ()
  in
  let catalog_sales =
    Cat.add_table catalog ~name:"catalog_sales"
      ~columns:
        [ ("cs_sold_date", Value.Tdate); ("cs_item", Value.Tint);
          ("cs_qty", Value.Tint); ("cs_price", Value.Tfloat) ]
      ~distribution:(Dist.Hashed [ 1 ])
      ~partitioning:(monthly 0 "cs_sold_date" "catalog_sales")
      ()
  in
  let store_returns =
    Cat.add_table catalog ~name:"store_returns"
      ~columns:
        [ ("sr_returned_date", Value.Tdate); ("sr_item", Value.Tint);
          ("sr_qty", Value.Tint); ("sr_reason", Value.Tstring) ]
      ~distribution:(Dist.Hashed [ 1 ])
      ~partitioning:(monthly 0 "sr_returned_date" "store_returns")
      ()
  in
  let web_returns =
    Cat.add_table catalog ~name:"web_returns"
      ~columns:
        [ ("wr_returned_date", Value.Tdate); ("wr_item", Value.Tint);
          ("wr_qty", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 1 ])
      ~partitioning:(monthly 0 "wr_returned_date" "web_returns")
      ()
  in
  let catalog_returns =
    Cat.add_table catalog ~name:"catalog_returns"
      ~columns:
        [ ("cr_returned_date", Value.Tdate); ("cr_channel", Value.Tstring);
          ("cr_item", Value.Tint); ("cr_qty", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 2 ])
      ~partitioning:
        (Part.two_level ~alloc_oid:alloc ~table_name:"catalog_returns"
           ~level1:{ Part.key_index = 0; key_name = "cr_returned_date";
                     scheme = Part.Range }
           ~constrs1:(Part.monthly_ranges ~start_year ~start_month:1 ~months)
           ~level2:{ Part.key_index = 1; key_name = "cr_channel";
                     scheme = Part.Categorical }
           ~constrs2:
             (Part.categorical
                (List.map (fun c -> [ Value.String c ])
                   (Array.to_list channels))))
      ()
  in
  let inventory =
    Cat.add_table catalog ~name:"inventory"
      ~columns:
        [ ("inv_date", Value.Tdate); ("inv_item", Value.Tint);
          ("inv_warehouse", Value.Tint); ("inv_qty", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 1 ])
      ~partitioning:
        (Part.single_level ~alloc_oid:alloc ~key_index:0 ~key_name:"inv_date"
           ~scheme:Part.Range ~table_name:"inventory" (biweekly_ranges ()))
      ()
  in
  (* ---------------- data ---------------- *)
  let ins = Mpp_storage.Storage.insert storage in
  for d = 0 to day_count - 1 do
    let date = Date.add_days start d in
    ins date_dim
      [| Value.Date date; Value.Int d; Value.Int (Date.year date);
         Value.Int (Date.month date); Value.Int (Date.quarter date);
         Value.Int (Date.day_of_week date) |]
  done;
  let n_items = 200 * scale and n_customers = 400 * scale in
  let rng = Rng.create ~seed:42L () in
  for i = 0 to n_items - 1 do
    ins item
      [| Value.Int i; Value.String (Rng.pick rng categories);
         Value.Float (1.0 +. Rng.float rng 500.0) |]
  done;
  for c = 0 to n_customers - 1 do
    ins customer [| Value.Int c; Value.String (Rng.pick rng states) |]
  done;
  for s = 0 to 19 do
    ins store [| Value.Int s; Value.String (Rng.pick rng states) |]
  done;
  for w = 0 to 9 do
    ins warehouse [| Value.Int w; Value.String (Rng.pick rng states) |]
  done;
  let rand_date () = Date.add_days start (Rng.int rng day_count) in
  let n = 4000 * scale in
  for _ = 1 to n do
    ins store_sales
      [| Value.Date (rand_date ()); Value.Int (Rng.int rng n_items);
         Value.Int (Rng.int rng n_customers); Value.Int (Rng.int rng 20);
         Value.Int (1 + Rng.int rng 10); Value.Float (Rng.float rng 500.0) |]
  done;
  for _ = 1 to n do
    ins web_sales
      [| Value.Int (Rng.int rng day_count); Value.Int (Rng.int rng n_items);
         Value.Int (Rng.int rng n_customers); Value.Int (1 + Rng.int rng 10);
         Value.Float (Rng.float rng 500.0) |]
  done;
  for _ = 1 to n do
    ins catalog_sales
      [| Value.Date (rand_date ()); Value.Int (Rng.int rng n_items);
         Value.Int (1 + Rng.int rng 10); Value.Float (Rng.float rng 500.0) |]
  done;
  let reasons = [| "damaged"; "wrong size"; "changed mind"; "late" |] in
  for _ = 1 to n / 4 do
    ins store_returns
      [| Value.Date (rand_date ()); Value.Int (Rng.int rng n_items);
         Value.Int (1 + Rng.int rng 5); Value.String (Rng.pick rng reasons) |]
  done;
  for _ = 1 to n / 4 do
    ins web_returns
      [| Value.Date (rand_date ()); Value.Int (Rng.int rng n_items);
         Value.Int (1 + Rng.int rng 5) |]
  done;
  for _ = 1 to n / 4 do
    ins catalog_returns
      [| Value.Date (rand_date ()); Value.String (Rng.pick rng channels);
         Value.Int (Rng.int rng n_items); Value.Int (1 + Rng.int rng 5) |]
  done;
  for _ = 1 to n do
    ins inventory
      [| Value.Date (rand_date ()); Value.Int (Rng.int rng n_items);
         Value.Int (Rng.int rng 10); Value.Int (Rng.int rng 1000) |]
  done;
  {
    date_dim; item; customer; store; warehouse; store_sales; web_sales;
    catalog_sales; store_returns; web_returns; catalog_returns; inventory;
  }

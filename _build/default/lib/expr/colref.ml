(** Column references.

    A column reference names a column of one *relation instance* in a query:
    [rel] is the index of the instance in the query's range table (so the two
    sides of a self-join get distinct [rel]s), [name] is the column name and
    [index] its position in the instance's tuple layout.  Equality ignores
    [dtype], which is carried for convenience. *)

type t = {
  rel : int;  (** range-table index of the relation instance *)
  index : int;  (** column position within the instance's tuples *)
  name : string;
  dtype : Value.datatype;
}

let make ~rel ~index ~name ~dtype = { rel; index; name; dtype }

let equal a b = a.rel = b.rel && a.index = b.index && String.equal a.name b.name

let compare a b =
  let c = Int.compare a.rel b.rel in
  if c <> 0 then c
  else
    let c = Int.compare a.index b.index in
    if c <> 0 then c else String.compare a.name b.name

let pp fmt c = Format.fprintf fmt "%d.%s" c.rel c.name
let to_string c = Format.asprintf "%a" pp c

(** Proleptic-Gregorian calendar arithmetic.

    Dates are represented as a number of days since the epoch 1970-01-01
    (negative for earlier dates).  This gives dates a total order and cheap
    arithmetic, which the partitioning layer relies on: monthly partition
    bounds are just day numbers, and range tests are integer comparisons. *)

type t = int
(** Days since 1970-01-01. *)

let epoch_year = 1970

let is_leap_year y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year y then 29 else 28
  | _ -> invalid_arg "Date.days_in_month"

let days_in_year y = if is_leap_year y then 366 else 365

(* Count of days from 0000-03-01 to year [y], month [m] (1-12), day [d],
   using the standard civil-date algorithm (Howard Hinnant's days_from_civil),
   shifted so that 1970-01-01 = 0. *)
let of_ymd y m d =
  if m < 1 || m > 12 then invalid_arg "Date.of_ymd: month out of range";
  if d < 1 || d > days_in_month y m then
    invalid_arg "Date.of_ymd: day out of range";
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

(* Inverse of [of_ymd] (civil_from_days). *)
let to_ymd (z : t) =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (y, m, d)

let year t = let y, _, _ = to_ymd t in y
let month t = let _, m, _ = to_ymd t in m
let day t = let _, _, d = to_ymd t in d

(** ISO day of week: 1 = Monday ... 7 = Sunday. 1970-01-01 was a Thursday. *)
let day_of_week (t : t) =
  let d = ((t + 3) mod 7 + 7) mod 7 in
  d + 1

let add_days t n = t + n

(** First day of the month [n] months after the month containing [t]. *)
let add_months t n =
  let y, m, _ = to_ymd t in
  let mm = m - 1 + n in
  let y = y + (if mm >= 0 then mm / 12 else -(((-mm) + 11) / 12)) in
  let m = ((mm mod 12) + 12) mod 12 + 1 in
  of_ymd y m 1

let first_of_month t =
  let y, m, _ = to_ymd t in
  of_ymd y m 1

let quarter t = ((month t - 1) / 3) + 1

let compare = Int.compare
let equal = Int.equal

let to_string t =
  let y, m, d = to_ymd t in
  Printf.sprintf "%04d-%02d-%02d" y m d

(** Parses ["YYYY-MM-DD"]. *)
let of_string s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      try of_ymd (int_of_string y) (int_of_string m) (int_of_string d)
      with _ -> invalid_arg ("Date.of_string: " ^ s))
  | _ -> invalid_arg ("Date.of_string: " ^ s)

let pp fmt t = Format.pp_print_string fmt (to_string t)

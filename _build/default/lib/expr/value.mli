(** SQL values and their types — the common currency of the system: tuples
    are [Value.t array]s, partition bounds are [Value.t]s, the evaluator
    produces [Value.t]s.  [Null] is explicit and comparison helpers follow
    SQL's three-valued semantics. *)

type datatype = Tbool | Tint | Tfloat | Tstring | Tdate

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of Date.t

val datatype_of : t -> datatype option
(** [None] for [Null]. *)

val datatype_to_string : datatype -> string

val date_of_string : string -> t
(** [Date] value from ["YYYY-MM-DD"]. *)

val compare : t -> t -> int
(** Structural total order for sorting and data structures: [Null] first,
    then by type rank; ints and floats compare numerically across types. *)

val equal : t -> t -> bool

val sql_compare : t -> t -> int option
(** SQL comparison: [None] (unknown) when either side is [Null]. *)

val is_null : t -> bool

val to_bool : t -> bool option
(** [None] for [Null]; raises [Invalid_argument] on non-booleans. *)

val to_float : t -> float
(** Numeric coercion; raises [Invalid_argument] on non-numerics. *)

val to_int : t -> int

val hash : t -> int
(** Consistent with {!equal} for same-type values. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val serialized_size : t -> int
(** Bytes this value occupies in a serialized plan or tuple; drives the
    plan-size model of paper §4.4. *)

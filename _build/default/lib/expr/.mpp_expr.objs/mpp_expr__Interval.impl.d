lib/expr/interval.ml: Bool Format List Value

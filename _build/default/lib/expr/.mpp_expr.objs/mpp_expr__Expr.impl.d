lib/expr/expr.ml: Colref Date Float Format Interval List Option String Value

lib/expr/value.mli: Date Format

lib/expr/date.ml: Format Int Printf String

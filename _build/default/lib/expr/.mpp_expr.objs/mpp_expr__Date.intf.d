lib/expr/date.mli: Format

lib/expr/colref.mli: Format Value

lib/expr/interval.mli: Format Value

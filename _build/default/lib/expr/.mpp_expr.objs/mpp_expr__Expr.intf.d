lib/expr/expr.mli: Colref Format Interval Value

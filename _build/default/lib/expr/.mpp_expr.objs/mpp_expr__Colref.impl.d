lib/expr/colref.ml: Format Int String Value

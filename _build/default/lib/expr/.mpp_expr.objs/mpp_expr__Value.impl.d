lib/expr/value.ml: Bool Date Float Format Hashtbl Int Printf String

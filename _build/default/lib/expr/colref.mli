(** Column references: a column of one {e relation instance} in a query.
    [rel] is the range-table index (the two sides of a self-join get
    distinct [rel]s), [index] the column position in the instance's tuple
    layout.  Equality ignores [dtype]. *)

type t = {
  rel : int;  (** range-table index of the relation instance *)
  index : int;  (** column position within the instance's tuples *)
  name : string;
  dtype : Value.datatype;
}

val make : rel:int -> index:int -> name:string -> dtype:Value.datatype -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** SQL values and their types.

    This module is the common currency of the whole system: tuples are
    [Value.t array]s, partition bounds are [Value.t]s, and the expression
    evaluator produces [Value.t]s.  SQL [NULL] is an explicit constructor and
    all comparison helpers implement SQL's three-valued semantics where a
    comparison against [Null] is unknown (represented as [None]). *)

type datatype = Tbool | Tint | Tfloat | Tstring | Tdate

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of Date.t

let datatype_of = function
  | Null -> None
  | Bool _ -> Some Tbool
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | String _ -> Some Tstring
  | Date _ -> Some Tdate

let datatype_to_string = function
  | Tbool -> "bool"
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "text"
  | Tdate -> "date"

let date_of_string s = Date (Date.of_string s)

(** Structural total order, used for sorting and data structures.  [Null]
    sorts first; values of distinct types sort by type.  Ints and floats are
    compared numerically so that mixed-type keys behave sanely. *)
let compare a b =
  let rank = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ -> 2
    | Float _ -> 2
    | String _ -> 3
    | Date _ -> 4
  in
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | Date x, Date y -> Date.compare x y
  | (Null | Bool _ | Int _ | Float _ | String _ | Date _), _ ->
      Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(** SQL comparison: [None] when either side is [Null] (unknown). *)
let sql_compare a b =
  match (a, b) with Null, _ | _, Null -> None | _ -> Some (compare a b)

let is_null = function Null -> true | _ -> false

let to_bool = function
  | Bool b -> Some b
  | Null -> None
  | _ -> invalid_arg "Value.to_bool: not a boolean"

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> invalid_arg ("Value.to_float: " ^ (match datatype_of v with
      | Some d -> datatype_to_string d
      | None -> "null"))

let to_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | _ -> invalid_arg "Value.to_int"

let hash = function
  | Null -> 0
  | Bool b -> Hashtbl.hash b
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s
  | Date d -> Hashtbl.hash (d : Date.t :> int)

let to_string = function
  | Null -> "NULL"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | String s -> "'" ^ s ^ "'"
  | Date d -> "'" ^ Date.to_string d ^ "'"

let pp fmt v = Format.pp_print_string fmt (to_string v)

(** Size in bytes a value occupies when a plan or tuple is serialized; used
    by the plan-size model (paper §4.4). *)
let serialized_size = function
  | Null -> 1
  | Bool _ -> 1
  | Int _ -> 8
  | Float _ -> 8
  | String s -> 4 + String.length s
  | Date _ -> 4

(** Proleptic-Gregorian calendar arithmetic.

    Dates are a number of days since 1970-01-01 (negative before), giving a
    total order and cheap arithmetic: monthly partition bounds are day
    numbers and range tests are integer comparisons. *)

type t = int
(** Days since 1970-01-01. *)

val epoch_year : int

val is_leap_year : int -> bool

val days_in_month : int -> int -> int
(** [days_in_month y m] for month [m] (1–12); raises [Invalid_argument]
    otherwise. *)

val days_in_year : int -> int

val of_ymd : int -> int -> int -> t
(** [of_ymd y m d] — raises [Invalid_argument] when [m]/[d] are out of
    range for the given year. *)

val to_ymd : t -> int * int * int
(** Inverse of {!of_ymd}: [(year, month, day)]. *)

val year : t -> int
val month : t -> int
val day : t -> int

val day_of_week : t -> int
(** ISO numbering: 1 = Monday … 7 = Sunday. *)

val add_days : t -> int -> t

val add_months : t -> int -> t
(** First day of the month [n] months after the month containing [t]. *)

val first_of_month : t -> t

val quarter : t -> int
(** 1–4. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
(** ["YYYY-MM-DD"]. *)

val of_string : string -> t
(** Parses ["YYYY-MM-DD"]; raises [Invalid_argument] otherwise. *)

val pp : Format.formatter -> t -> unit

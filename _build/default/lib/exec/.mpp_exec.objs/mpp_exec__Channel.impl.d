lib/exec/channel.ml: Hashtbl Int List

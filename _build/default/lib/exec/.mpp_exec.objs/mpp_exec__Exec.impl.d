lib/exec/exec.ml: Array Channel Colref Expr Hashtbl Interval List Metrics Mpp_catalog Mpp_expr Mpp_plan Mpp_storage Printf Value

lib/exec/channel.mli:

lib/exec/metrics.mli: Format Hashtbl

lib/exec/exec.mli: Channel Metrics Mpp_catalog Mpp_expr Mpp_plan Mpp_storage Value

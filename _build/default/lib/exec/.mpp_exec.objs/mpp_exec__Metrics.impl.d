lib/exec/metrics.ml: Format Hashtbl

(** The shared-memory channel between a PartitionSelector (producer) and its
    DynamicScan (consumer) — paper §2.2.  Keyed by
    [(segment, part_scan_id)]: the optimizer guarantees both ends share a
    process on each segment.  {!propagate} is the runtime realization of the
    [partition_propagation] builtin of paper Table 1. *)

type t

val create : unit -> t

val propagate : t -> segment:int -> part_scan_id:int -> int -> unit
(** Push a selected partition OID (idempotent). *)

val consume : t -> segment:int -> part_scan_id:int -> int list
(** All OIDs pushed so far for this (segment, scan id), sorted. *)

val reset : t -> unit

(** The shared-memory channel between a PartitionSelector (producer) and its
    DynamicScan (consumer) — paper §2.2.

    Channels are keyed by [(segment, part_scan_id)]: selector and scan run in
    the same process on each segment (the optimizer guarantees no Motion
    separates them), so each segment has a private channel per scan id.
    {!propagate} is the runtime realization of the [partition_propagation]
    builtin of paper Table 1. *)

type t = { oids : (int * int, (int, unit) Hashtbl.t) Hashtbl.t }

let create () = { oids = Hashtbl.create 32 }

let slot t ~segment ~part_scan_id =
  let key = (segment, part_scan_id) in
  match Hashtbl.find_opt t.oids key with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 16 in
      Hashtbl.replace t.oids key s;
      s

(** Push a selected partition OID to the DynamicScan with the given id on
    the given segment (idempotent). *)
let propagate t ~segment ~part_scan_id oid =
  Hashtbl.replace (slot t ~segment ~part_scan_id) oid ()

(** All OIDs pushed so far for this (segment, scan id), sorted. *)
let consume t ~segment ~part_scan_id =
  Hashtbl.fold (fun oid () acc -> oid :: acc) (slot t ~segment ~part_scan_id) []
  |> List.sort Int.compare

let reset t = Hashtbl.reset t.oids

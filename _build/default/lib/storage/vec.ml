(** A minimal growable array (OCaml 5.1 predates [Dynarray]). *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let push v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    let ncap = if cap = 0 then 8 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit v.data 0 ndata 0 v.len;
    v.data <- ndata
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_array v = Array.sub v.data 0 v.len

(* Build the list directly (no intermediate array copy): scans of large
   heaps would otherwise allocate the whole heap once more per scan. *)
let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

lib/storage/storage.mli: Mpp_catalog Mpp_expr Seq Value

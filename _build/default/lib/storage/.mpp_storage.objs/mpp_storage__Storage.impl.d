lib/storage/storage.ml: Array Hashtbl List Mpp_catalog Mpp_expr Printf Seq Value Vec

lib/storage/vec.mli:

(** A minimal growable array (OCaml 5.1 predates [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list
(** Builds the list directly, without an intermediate array copy. *)

val of_list : 'a list -> 'a t

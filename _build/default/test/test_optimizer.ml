(** Optimizer-pipeline tests: the plans Orca produces are valid, prune the
    right partitions, compute the same answers as un-pruned execution, and
    react to statistics (including injected misestimates). *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Storage = Mpp_storage.Storage
module Plan = Mpp_plan.Plan
module Valid = Mpp_plan.Plan_valid
module Opt = Orca.Optimizer
module Logical = Orca.Logical
module Metrics = Mpp_exec.Metrics

let env () =
  let catalog, orders, date_dim = Support.star_schema () in
  let storage = Storage.create ~nsegments:4 in
  Support.load_orders storage orders 1000;
  Support.load_date_dim storage date_dim;
  let stats = Mpp_stats.Stats_source.create ~catalog ~storage in
  (catalog, storage, stats, orders, date_dim)

let optimize ?config ?stats catalog lg =
  Opt.optimize (Opt.create ?config ?stats ~catalog ()) lg

let run ~catalog ~storage ?selection_enabled plan =
  Mpp_exec.Exec.run ?selection_enabled ~catalog ~storage plan

let parts m (t : Mpp_catalog.Table.t) =
  Metrics.parts_scanned_of m ~root_oid:t.Mpp_catalog.Table.oid

let test_static_query () =
  let catalog, storage, stats, orders, _ = env () in
  let o_date = Mpp_catalog.Table.colref orders ~rel:0 "date" in
  let lg =
    Logical.select
      (Expr.between (Expr.col o_date) (Expr.date "2013-10-01")
         (Expr.date "2013-12-31"))
      (Logical.get ~rel:0 "orders")
  in
  let plan = optimize ~stats catalog lg in
  Alcotest.(check bool) "valid" true (Valid.is_valid plan);
  let rows, m = run ~catalog ~storage plan in
  Alcotest.(check int) "3 partitions" 3 (parts m orders);
  (* same rows as the un-pruned run *)
  let rows_all, m_all = run ~selection_enabled:false ~catalog ~storage plan in
  Alcotest.(check int) "reference scans all" 24 (parts m_all orders);
  Support.check_rows_equal "pruned = unpruned" rows rows_all

let dpe_logical orders date_dim =
  let o_date = Mpp_catalog.Table.colref orders ~rel:0 "date" in
  let d_date = Mpp_catalog.Table.colref date_dim ~rel:1 "d_date" in
  let d_year = Mpp_catalog.Table.colref date_dim ~rel:1 "d_year" in
  let d_month = Mpp_catalog.Table.colref date_dim ~rel:1 "d_month" in
  Logical.aggregate
    [ ("n", Plan.Count_star) ]
    (Logical.join
       (Expr.eq (Expr.col o_date) (Expr.col d_date))
       (Logical.get ~rel:0 "orders")
       (Logical.select
          (Expr.conj
             [ Expr.eq (Expr.col d_year) (Expr.int 2013);
               Expr.eq (Expr.col d_month) (Expr.int 11) ])
          (Logical.get ~rel:1 "date_dim")))

let test_dpe_query () =
  let catalog, storage, stats, orders, date_dim = env () in
  let plan = optimize ~stats catalog (dpe_logical orders date_dim) in
  Alcotest.(check bool) "valid" true (Valid.is_valid plan);
  (* a streaming selector with the join predicate must exist *)
  let streaming =
    Plan.fold
      (fun acc p ->
        match p with
        | Plan.Partition_selector { child = Some _; predicates; _ } ->
            acc || List.exists Option.is_some predicates
        | _ -> acc)
      false plan
  in
  Alcotest.(check bool) "join-driven selector placed" true streaming;
  let rows, m = run ~catalog ~storage plan in
  Alcotest.(check int) "November only" 1 (parts m orders);
  match rows with
  | [ r ] ->
      (* ~1000 rows over 24 months: November 2013 ≈ 41 rows; check against
         the unpruned run instead of a constant *)
      let rows_all, _ = run ~selection_enabled:false ~catalog ~storage plan in
      Support.check_rows_equal "counts agree" [ r ] rows_all
  | _ -> Alcotest.fail "one aggregate row"

let test_selection_disabled_config () =
  let catalog, storage, stats, orders, date_dim = env () in
  let config = { Opt.default_config with enable_partition_selection = false } in
  let plan = optimize ~config ~stats catalog (dpe_logical orders date_dim) in
  Alcotest.(check bool) "still valid" true (Valid.is_valid plan);
  let _, m = run ~catalog ~storage plan in
  Alcotest.(check int) "scans every partition" 24 (parts m orders)

let test_misestimate_flips_orientation () =
  let catalog, storage, stats, orders, date_dim = env () in
  let lg = dpe_logical orders date_dim in
  let with_scale factor =
    Mpp_stats.Stats_source.clear_row_scales stats;
    (match factor with
    | Some f ->
        Mpp_stats.Stats_source.set_row_scale stats
          ~table_oid:date_dim.Mpp_catalog.Table.oid ~factor:f;
        Mpp_stats.Stats_source.set_row_scale stats
          ~table_oid:orders.Mpp_catalog.Table.oid ~factor:0.001
    | None -> ());
    let plan = optimize ~stats catalog lg in
    Mpp_stats.Stats_source.clear_row_scales stats;
    let _, m = run ~catalog ~storage plan in
    parts m orders
  in
  Alcotest.(check int) "honest stats: DPE prunes" 1 (with_scale None);
  Alcotest.(check bool) "misestimates: DPE lost" true
    (with_scale (Some 1000.0) = 24)

let test_update_pipeline () =
  let catalog, storage, stats, orders, date_dim = env () in
  ignore date_dim;
  let o_date = Mpp_catalog.Table.colref orders ~rel:0 "date" in
  let lg =
    Logical.Update
      { rel = 0; table_name = "orders";
        set_cols = [ ("amount", Expr.Const (Value.Float 1.0)) ];
        child =
          Logical.select
            (Expr.ge (Expr.col o_date) (Expr.date "2013-12-01"))
            (Logical.get ~rel:0 "orders") }
  in
  let plan = optimize ~stats catalog lg in
  Alcotest.(check bool) "valid" true (Valid.is_valid plan);
  let before = Storage.count_table storage orders in
  let rows, m = run ~catalog ~storage plan in
  Alcotest.(check int) "only December touched" 1 (parts m orders);
  Alcotest.(check int) "rowcount stable" before (Storage.count_table storage orders);
  match rows with
  | [ r ] -> Alcotest.(check bool) "updated > 0" true (Value.to_int r.(0) > 0)
  | _ -> Alcotest.fail "one count row"

let test_project_and_limit () =
  let catalog, storage, stats, orders, _ = env () in
  let o_id = Mpp_catalog.Table.colref orders ~rel:0 "id" in
  let lg =
    Logical.Limit
      { rows = 7;
        child =
          Logical.Project
            { exprs = [ ("id", Expr.col o_id) ];
              child =
                Logical.Sort
                  { keys = [ Expr.col o_id ];
                    child = Logical.get ~rel:0 "orders" } } }
  in
  let plan = optimize ~stats catalog lg in
  let rows, _ = run ~catalog ~storage plan in
  Alcotest.(check (list int)) "first seven ids" [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.map (fun r -> Value.to_int r.(0)) rows)

let test_two_phase_aggregation () =
  let catalog, storage, stats, orders, _ = env () in
  let o_amount = Mpp_catalog.Table.colref orders ~rel:0 "amount" in
  let o_date = Mpp_catalog.Table.colref orders ~rel:0 "date" in
  let lg =
    Logical.aggregate
      ~group_by:[ Expr.Func ("year", [ Expr.col o_date ]) ]
      [ ("n", Plan.Count_star); ("s", Plan.Sum (Expr.col o_amount));
        ("a", Plan.Avg (Expr.col o_amount)) ]
      (Logical.get ~rel:0 "orders")
  in
  let two_phase = optimize ~stats catalog lg in
  (* shape: two Agg nodes with a Motion between them *)
  let aggs =
    Plan.fold
      (fun acc p -> match p with Plan.Agg _ -> acc + 1 | _ -> acc)
      0 two_phase
  in
  Alcotest.(check int) "partial + final aggregate" 2 aggs;
  let single_config =
    { Opt.default_config with enable_two_phase_agg = false }
  in
  let single = optimize ~config:single_config ~stats catalog lg in
  let r2, m2 = run ~catalog ~storage two_phase in
  let r1, m1 = run ~catalog ~storage single in
  Support.check_rows_equal "two-phase = single-phase" r1 r2;
  (* the partial aggregate compresses what crosses the wire *)
  Alcotest.(check bool) "two-phase moves fewer tuples" true
    (m2.Mpp_exec.Metrics.tuples_moved < m1.Mpp_exec.Metrics.tuples_moved);
  (* integer counts stay integers through the sum-of-counts recombination *)
  match r2 with
  | (row :: _) ->
      Alcotest.(check bool) "count is an integer" true
        (match row.(1) with Value.Int _ -> true | _ -> false)
  | [] -> Alcotest.fail "group rows expected"

let test_partition_wise_join () =
  let catalog = Cat.create () in
  let part name =
    Mpp_catalog.Partition.single_level
      ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
      ~key_index:1 ~key_name:"b" ~scheme:Mpp_catalog.Partition.Range
      ~table_name:name
      (Mpp_catalog.Partition.int_ranges ~start:0 ~width:10 ~count:8)
  in
  let r =
    Cat.add_table catalog ~name:"r"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
      ~distribution:(Mpp_catalog.Distribution.Hashed [ 1 ])
      ~partitioning:(part "r") ()
  in
  let s =
    Cat.add_table catalog ~name:"s"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
      ~distribution:(Mpp_catalog.Distribution.Hashed [ 1 ])
      ~partitioning:(part "s") ()
  in
  let storage = Storage.create ~nsegments:4 in
  for i = 0 to 199 do
    Storage.insert storage r [| Value.Int i; Value.Int (i mod 80) |];
    Storage.insert storage s [| Value.Int (i * 3); Value.Int (i mod 80) |]
  done;
  let r_b = Mpp_catalog.Table.colref r ~rel:0 "b" in
  let s_b = Mpp_catalog.Table.colref s ~rel:1 "b" in
  let lg =
    Logical.aggregate
      [ ("n", Plan.Count_star) ]
      (Logical.join
         (Expr.eq (Expr.col r_b) (Expr.col s_b))
         (Logical.get ~rel:0 "r") (Logical.get ~rel:1 "s"))
  in
  let pwj_config =
    { Opt.default_config with enable_partition_wise_join = true }
  in
  let pwj = optimize ~config:pwj_config catalog lg in
  let dyn = optimize catalog lg in
  (* the partition-wise plan is an Append of per-pair joins, no selectors *)
  let appends =
    Plan.fold
      (fun acc p -> match p with Plan.Append cs -> acc + List.length cs | _ -> acc)
      0 pwj
  in
  Alcotest.(check int) "8 per-pair joins" 8 appends;
  Alcotest.(check (list int)) "no DynamicScan left" []
    (Plan.dynamic_scan_ids pwj);
  let r1, _ = run ~catalog ~storage pwj in
  let r2, _ = run ~catalog ~storage dyn in
  Support.check_rows_equal "partition-wise = dynamic-scan" r1 r2;
  (* and the plan-size drawback the paper calls out *)
  Alcotest.(check bool) "partition-wise plan is bigger" true
    (Mpp_plan.Plan_size.bytes ~catalog pwj
    > 2 * Mpp_plan.Plan_size.bytes ~catalog dyn)

let test_every_plan_is_checked () =
  (* the optimizer raises rather than returning an invalid plan *)
  let catalog, _, _, orders, date_dim = env () in
  ignore orders;
  ignore date_dim;
  (* a plan for a nonexistent table must raise cleanly *)
  Alcotest.(check bool) "unknown table raises" true
    (try ignore (optimize catalog (Logical.get ~rel:0 "missing")); false
     with Invalid_argument _ -> true)

(* Whole-pipeline soundness: random predicates over the partitioning key
   never change query answers when selection prunes. *)
let prop_pruning_preserves_answers =
  let catalog, orders, date_dim = Support.star_schema () in
  ignore date_dim;
  let storage = Storage.create ~nsegments:4 in
  Support.load_orders storage orders 500;
  let o_date = Mpp_catalog.Table.colref orders ~rel:0 "date" in
  let date_of_day day = Value.Date (Date.add_days (Date.of_ymd 2012 1 1) day) in
  QCheck2.Test.make ~count:60
    ~name:"optimizer pruning never changes answers"
    QCheck2.Gen.(pair (int_range 0 730) (int_range 0 730))
    (fun (d1, d2) ->
      let lo = min d1 d2 and hi = max d1 d2 in
      let lg =
        Logical.select
          (Expr.between (Expr.col o_date)
             (Expr.Const (date_of_day lo)) (Expr.Const (date_of_day hi)))
          (Logical.get ~rel:0 "orders")
      in
      let plan = optimize catalog lg in
      let pruned, _ = run ~catalog ~storage plan in
      let full, _ = run ~selection_enabled:false ~catalog ~storage plan in
      Support.rows_equal pruned full)

let () =
  Alcotest.run "optimizer"
    [ ("pipeline",
       [ Alcotest.test_case "static elimination" `Quick test_static_query;
         Alcotest.test_case "dynamic elimination" `Quick test_dpe_query;
         Alcotest.test_case "selection disabled" `Quick
           test_selection_disabled_config;
         Alcotest.test_case "misestimates flip orientation" `Quick
           test_misestimate_flips_orientation;
         Alcotest.test_case "two-phase aggregation" `Quick
           test_two_phase_aggregation;
         Alcotest.test_case "partition-wise join ablation" `Quick
           test_partition_wise_join;
         Alcotest.test_case "update pipeline" `Quick test_update_pipeline;
         Alcotest.test_case "project/sort/limit" `Quick test_project_and_limit;
         Alcotest.test_case "errors surface" `Quick test_every_plan_is_checked ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_pruning_preserves_answers ]) ]

(** Memo tests — the property-enforcement framework of paper §3.1 on the
    R ⋈ S example of Figures 13/14. *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Part = Mpp_catalog.Partition
module Dist = Mpp_catalog.Distribution
module Table = Mpp_catalog.Table
module Plan = Mpp_plan.Plan
module Valid = Mpp_plan.Plan_valid
module Memo = Orca.Memo

(* R(pk, x) partitioned and hash-distributed on pk; S(a, b) hashed on a. *)
let figure13_env () =
  let catalog = Cat.create () in
  let partitioning =
    Part.single_level
      ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
      ~key_index:0 ~key_name:"pk" ~scheme:Part.Range ~table_name:"r"
      (Part.int_ranges ~start:0 ~width:10 ~count:10)
  in
  let r =
    Cat.add_table catalog ~name:"r"
      ~columns:[ ("pk", Value.Tint); ("x", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 0 ]) ~partitioning ()
  in
  let s =
    Cat.add_table catalog ~name:"s"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
      ~distribution:(Dist.Hashed [ 0 ]) ()
  in
  let lg =
    Orca.Logical.join
      (Expr.eq
         (Expr.col (Table.colref r ~rel:0 "pk"))
         (Expr.col (Table.colref s ~rel:1 "a")))
      (Orca.Logical.get ~rel:0 "r")
      (Orca.Logical.get ~rel:1 "s")
  in
  (catalog, lg)

let performs_selection plan =
  Plan.fold
    (fun acc p ->
      match p with
      | Plan.Partition_selector { child = Some _; predicates; _ } ->
          acc || List.exists Option.is_some predicates
      | _ -> acc)
    false plan

let test_best_plan_exists_and_valid () =
  let catalog, lg = figure13_env () in
  match Memo.best_plan ~catalog lg with
  | Some (plan, cost) ->
      Alcotest.(check bool) "valid" true (Valid.is_valid plan);
      Alcotest.(check bool) "positive cost" true (cost > 0.0);
      Alcotest.(check bool) "contains both relations" true
        (Plan.fold
           (fun acc p -> match p with Plan.Table_scan _ -> acc + 1 | _ -> acc)
           0 plan
         = 1
        && Plan.dynamic_scan_ids plan = [ 0 ])
  | None -> Alcotest.fail "the memo must find a plan"

let test_every_alternative_valid () =
  let catalog, lg = figure13_env () in
  let alts = Memo.plan_space ~catalog ~limit:24 lg in
  Alcotest.(check bool) "several alternatives" true (List.length alts >= 4);
  List.iteri
    (fun i plan ->
      Alcotest.(check bool)
        (Printf.sprintf "alternative %d valid" i)
        true (Valid.is_valid plan))
    alts

let test_plan4_is_enumerated () =
  (* the paper's Plan 4: the only shape performing partition selection *)
  let catalog, lg = figure13_env () in
  let alts = Memo.plan_space ~catalog ~limit:24 lg in
  let dpe_plans = List.filter performs_selection alts in
  Alcotest.(check bool) "a selecting plan exists" true (dpe_plans <> []);
  (* in every selecting plan, the selector sits on the build side and the
     DynamicScan on the probe side, never separated by a Motion *)
  List.iter
    (fun plan ->
      match plan with
      | Plan.Hash_join { left; right; _ } ->
          Alcotest.(check bool) "selector on the build side" true
            (Plan.selector_ids left = [ 0 ]);
          Alcotest.(check bool) "scan on the probe side" true
            (Plan.has_part_scan_id right 0)
      | _ -> Alcotest.fail "top of a selecting plan is the join")
    dpe_plans

let test_best_plan_cheaper_than_best_selecting_alternative () =
  (* with a partitioned R of 10 parts and default stats, the DPE plan should
     actually win the cost race *)
  let catalog, lg = figure13_env () in
  match Memo.best_plan ~catalog lg with
  | Some (plan, _) ->
      Alcotest.(check bool) "best plan performs selection" true
        (performs_selection plan)
  | None -> Alcotest.fail "plan expected"

let test_unsatisfiable_request () =
  (* a lone scan group cannot deliver a replicated requirement without a
     motion, and a motion is blocked when its scan is pinned — exercised
     indirectly: singleton over partitioned table is still satisfiable *)
  let catalog, lg = figure13_env () in
  ignore lg;
  let r_only = Orca.Logical.get ~rel:0 "r" in
  match Memo.best_plan ~catalog r_only with
  | Some (plan, _) ->
      Alcotest.(check bool) "bare partitioned get valid" true
        (Valid.is_valid plan)
  | None -> Alcotest.fail "bare get must plan"

let test_memo_plan_executes () =
  let catalog, lg = figure13_env () in
  let storage = Mpp_storage.Storage.create ~nsegments:4 in
  let r = Cat.find catalog "r" and s = Cat.find catalog "s" in
  for i = 0 to 99 do
    Mpp_storage.Storage.insert storage r [| Value.Int i; Value.Int (i * 2) |]
  done;
  for i = 0 to 19 do
    Mpp_storage.Storage.insert storage s [| Value.Int (i * 5); Value.Int i |]
  done;
  match Memo.best_plan ~catalog lg with
  | None -> Alcotest.fail "plan expected"
  | Some (plan, _) ->
      let rows, m =
        Mpp_exec.Exec.run ~catalog ~storage (Plan.motion Plan.Gather plan)
      in
      (* r.pk = s.a: s.a ∈ {0,5,…,95} all present in r *)
      Alcotest.(check int) "20 matches" 20 (List.length rows);
      Alcotest.(check bool) "selection pruned something" true
        (Mpp_exec.Metrics.parts_scanned_of m ~root_oid:r.Table.oid <= 10)

let test_three_way_join () =
  (* the memo's groups compose: (R ⋈ S) ⋈ U with R partitioned *)
  let catalog, _ = figure13_env () in
  let u =
    Cat.add_table catalog ~name:"u"
      ~columns:[ ("c", Value.Tint) ]
      ~distribution:Dist.Replicated ()
  in
  let r = Cat.find catalog "r" and s = Cat.find catalog "s" in
  let lg =
    Orca.Logical.join
      (Expr.eq
         (Expr.col (Table.colref s ~rel:1 "b"))
         (Expr.col (Table.colref u ~rel:2 "c")))
      (Orca.Logical.join
         (Expr.eq
            (Expr.col (Table.colref r ~rel:0 "pk"))
            (Expr.col (Table.colref s ~rel:1 "a")))
         (Orca.Logical.get ~rel:0 "r")
         (Orca.Logical.get ~rel:1 "s"))
      (Orca.Logical.get ~rel:2 "u")
  in
  (match Memo.best_plan ~catalog lg with
  | Some (plan, _) ->
      Alcotest.(check bool) "three-way best plan valid" true
        (Valid.is_valid plan);
      Alcotest.(check (list int)) "R's scan resolved" [ 0 ]
        (Plan.dynamic_scan_ids plan)
  | None -> Alcotest.fail "three-way join must plan");
  let alts = Memo.plan_space ~catalog ~limit:20 lg in
  List.iteri
    (fun i p ->
      Alcotest.(check bool)
        (Printf.sprintf "three-way alternative %d valid" i)
        true (Valid.is_valid p))
    alts

let test_rejects_unsupported_shapes () =
  let catalog, _ = figure13_env () in
  Alcotest.(check bool) "outer join unsupported in the memo" true
    (try
       ignore
         (Memo.best_plan ~catalog
            (Orca.Logical.join ~kind:Plan.Left_outer Expr.true_
               (Orca.Logical.get ~rel:0 "r")
               (Orca.Logical.get ~rel:1 "s")));
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "memo"
    [ ("figure 13/14",
       [ Alcotest.test_case "best plan valid" `Quick
           test_best_plan_exists_and_valid;
         Alcotest.test_case "all alternatives valid" `Quick
           test_every_alternative_valid;
         Alcotest.test_case "plan 4 enumerated" `Quick test_plan4_is_enumerated;
         Alcotest.test_case "best plan selects" `Quick
           test_best_plan_cheaper_than_best_selecting_alternative;
         Alcotest.test_case "bare partitioned get" `Quick
           test_unsatisfiable_request;
         Alcotest.test_case "memo plan executes" `Quick test_memo_plan_executes;
         Alcotest.test_case "three-way join" `Quick test_three_way_join;
         Alcotest.test_case "unsupported shapes rejected" `Quick
           test_rejects_unsupported_shapes ]) ]

(** Statistics tests: histogram construction and selectivity, ANALYZE over
    storage, and misestimate injection. *)

open Mpp_expr
module Histogram = Mpp_stats.Histogram
module Stats = Mpp_stats.Stats
module Stats_source = Mpp_stats.Stats_source
module Selectivity = Mpp_stats.Selectivity
module Storage = Mpp_storage.Storage

let ints l = List.map (fun i -> Value.Int i) l

let test_histogram_build () =
  let h = Histogram.build ~nbuckets:4 (ints (List.init 100 (fun i -> i))) in
  Alcotest.(check int) "total rows" 100 h.Histogram.total_rows;
  Alcotest.(check int) "no nulls" 0 h.Histogram.null_rows;
  Alcotest.(check (option (testable Value.pp Value.equal))) "min"
    (Some (Value.Int 0)) (Histogram.min_value h);
  Alcotest.(check (option (testable Value.pp Value.equal))) "max"
    (Some (Value.Int 99)) (Histogram.max_value h);
  Alcotest.(check int) "ndv counts distincts" 100 (Histogram.ndv h)

let test_histogram_nulls () =
  let h = Histogram.build (Value.Null :: ints [ 1; 2; 3 ]) in
  Alcotest.(check int) "null counted" 1 h.Histogram.null_rows;
  Alcotest.(check int) "total includes null" 4 h.Histogram.total_rows

let test_histogram_empty () =
  let h = Histogram.build [] in
  Alcotest.(check int) "empty" 0 h.Histogram.total_rows;
  Alcotest.(check (float 0.001)) "selectivity of anything is 0" 0.0
    (Histogram.selectivity h Interval.Set.full)

let test_histogram_selectivity () =
  let h = Histogram.build ~nbuckets:10 (ints (List.init 1000 (fun i -> i))) in
  let sel lo hi =
    Histogram.selectivity h
      (Interval.Set.of_interval_opt
         (Interval.closed_open (Value.Int lo) (Value.Int hi)))
  in
  Alcotest.(check bool) "half the domain ~ 0.5" true
    (Float.abs (sel 0 500 -. 0.5) < 0.1);
  Alcotest.(check bool) "tenth of the domain ~ 0.1" true
    (Float.abs (sel 100 200 -. 0.1) < 0.05);
  Alcotest.(check (float 0.001)) "full domain" 1.0
    (Histogram.selectivity h Interval.Set.full);
  Alcotest.(check bool) "out of range ~ 0" true (sel 5000 6000 < 0.01)

let analyzed_env () =
  let catalog, orders = Support.orders_schema () in
  let storage = Storage.create ~nsegments:4 in
  Support.load_orders storage orders 1000;
  let src = Stats_source.create ~catalog ~storage in
  (orders, src)

let test_analyze () =
  let orders, src = analyzed_env () in
  let st = Stats_source.table_stats src orders in
  Alcotest.(check int) "rowcount" 1000 st.Stats.rowcount;
  Alcotest.(check bool) "width positive" true (st.Stats.avg_width > 0);
  Alcotest.(check int) "per-column stats" 3 (Array.length st.Stats.columns);
  let amount = st.Stats.columns.(1) in
  Alcotest.(check bool) "amount ndv ~ 100" true
    (amount.Stats.ndv >= 90 && amount.Stats.ndv <= 110)

let test_analyze_replicated_counts_once () =
  let catalog = Mpp_catalog.Catalog.create () in
  let t =
    Mpp_catalog.Catalog.add_table catalog ~name:"dim"
      ~columns:[ ("k", Value.Tint) ]
      ~distribution:Mpp_catalog.Distribution.Replicated ()
  in
  let storage = Storage.create ~nsegments:4 in
  for i = 0 to 9 do
    Storage.insert storage t [| Value.Int i |]
  done;
  let src = Stats_source.create ~catalog ~storage in
  Alcotest.(check int) "replicated rows counted once" 10
    (Stats_source.table_stats src t).Stats.rowcount

let test_misestimate_injection () =
  let orders, src = analyzed_env () in
  Stats_source.set_row_scale src ~table_oid:orders.Mpp_catalog.Table.oid
    ~factor:10.0;
  Alcotest.(check int) "scaled rowcount" 10_000
    (Stats_source.table_stats src orders).Stats.rowcount;
  Stats_source.clear_row_scales src;
  Alcotest.(check int) "cleared" 1000
    (Stats_source.table_stats src orders).Stats.rowcount

let test_selectivity_estimates () =
  let orders, src = analyzed_env () in
  let st = Stats_source.table_stats src orders in
  let date = Mpp_catalog.Table.colref orders ~rel:0 "date" in
  let sel pred = Selectivity.estimate ~stats:st ~rel:0 pred in
  let quarter =
    Expr.between (Expr.col date)
      (Expr.date "2013-10-01") (Expr.date "2013-12-31")
  in
  Alcotest.(check bool) "one quarter of two years ~ 1/8" true
    (Float.abs (sel quarter -. 0.125) < 0.06);
  Alcotest.(check bool) "true is 1" true (sel Expr.true_ = 1.0);
  Alcotest.(check bool) "false is 0" true (sel Expr.false_ = 0.0);
  let amount = Mpp_catalog.Table.colref orders ~rel:0 "amount" in
  let eq_sel = sel (Expr.eq (Expr.col amount) (Expr.Const (Value.Float 5.0))) in
  Alcotest.(check bool) "equality ~ 1/ndv" true (eq_sel > 0.001 && eq_sel < 0.05)

let test_join_rows () =
  Alcotest.(check (float 0.01)) "containment formula" 1000.0
    (Selectivity.join_rows ~left_rows:1000.0 ~right_rows:100.0 ~left_ndv:100
       ~right_ndv:100);
  Alcotest.(check bool) "at least one row" true
    (Selectivity.join_rows ~left_rows:1.0 ~right_rows:1.0 ~left_ndv:1000
       ~right_ndv:1000
    >= 1.0)

let prop_histogram_selectivity_bounded =
  QCheck2.Test.make ~count:500 ~name:"selectivity stays within [0,1]"
    QCheck2.Gen.(pair (list_size (int_range 0 200) (int_range (-50) 50))
                   Support.interval_set_gen)
    (fun (values, set) ->
      let h = Histogram.build (ints values) in
      let s = Histogram.selectivity h set in
      s >= 0.0 && s <= 1.0)

let prop_point_selectivity_matches_frequency =
  QCheck2.Test.make ~count:300
    ~name:"selectivity of a point is roughly its frequency"
    QCheck2.Gen.(pair (list_size (int_range 50 200) (int_range 0 9))
                   (int_range 0 9))
    (fun (values, v) ->
      let h = Histogram.build ~nbuckets:10 (ints values) in
      let actual =
        float_of_int (List.length (List.filter (( = ) v) values))
        /. float_of_int (List.length values)
      in
      let est = Histogram.selectivity h (Interval.Set.point (Value.Int v)) in
      Float.abs (est -. actual) < 0.35)

let () =
  Alcotest.run "stats"
    [ ("histogram",
       [ Alcotest.test_case "build" `Quick test_histogram_build;
         Alcotest.test_case "nulls" `Quick test_histogram_nulls;
         Alcotest.test_case "empty" `Quick test_histogram_empty;
         Alcotest.test_case "selectivity" `Quick test_histogram_selectivity ]);
      ("analyze",
       [ Alcotest.test_case "full analyze" `Quick test_analyze;
         Alcotest.test_case "replicated counted once" `Quick
           test_analyze_replicated_counts_once;
         Alcotest.test_case "misestimate injection" `Quick
           test_misestimate_injection ]);
      ("selectivity",
       [ Alcotest.test_case "estimates" `Quick test_selectivity_estimates;
         Alcotest.test_case "join cardinality" `Quick test_join_rows ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_histogram_selectivity_bounded;
           prop_point_selectivity_matches_frequency ]) ]

(** PartitionSelector placement tests — the paper's Algorithms 1–4 and the
    worked examples of Figures 5 and 8. *)

open Mpp_expr
module Plan = Mpp_plan.Plan
module Placement = Orca.Placement
module Valid = Mpp_plan.Plan_valid

(* Collect the selectors of a placed plan as (id, is_streaming, predicates). *)
let selectors plan =
  Plan.fold
    (fun acc p ->
      match p with
      | Plan.Partition_selector { part_scan_id; child; predicates; _ } ->
          (part_scan_id, child <> None, predicates) :: acc
      | _ -> acc)
    [] plan
  |> List.rev

let find_selector plan id = List.find (fun (i, _, _) -> i = id) (selectors plan)

let orders_env () =
  let catalog, orders = Support.orders_schema () in
  let o_date = Mpp_catalog.Table.colref orders ~rel:0 "date" in
  (catalog, orders, o_date)

let scan ?filter (orders : Mpp_catalog.Table.t) =
  Plan.dynamic_scan ?filter ~rel:0 ~part_scan_id:1 orders.Mpp_catalog.Table.oid

let test_full_scan_gets_phi_selector () =
  (* Figure 5(a) *)
  let catalog, orders, _ = orders_env () in
  let placed = Placement.place ~catalog (scan orders) in
  (match placed with
  | Plan.Sequence [ Plan.Partition_selector { child = None; predicates; _ };
                    Plan.Dynamic_scan _ ] ->
      Alcotest.(check bool) "predicate is Φ" true
        (List.for_all Option.is_none predicates)
  | _ -> Alcotest.fail "expected Sequence [leaf selector; scan]");
  Alcotest.(check bool) "valid" true (Valid.is_valid placed)

let test_select_folds_predicate () =
  (* Figures 5(b)/5(c): the Filter's restriction reaches the selector *)
  let catalog, orders, o_date = orders_env () in
  let pred = Expr.ge (Expr.col o_date) (Expr.date "2013-10-01") in
  let placed = Placement.place ~catalog (Plan.filter pred (scan orders)) in
  let _, streaming, predicates = find_selector placed 1 in
  Alcotest.(check bool) "leaf selector" false streaming;
  (match predicates with
  | [ Some p ] ->
      Alcotest.(check bool) "selection predicate captured" true (Expr.equal p pred)
  | _ -> Alcotest.fail "expected one predicate");
  Alcotest.(check bool) "valid" true (Valid.is_valid placed)

let test_scan_inline_filter_harvested () =
  (* the same when the predicate was pushed into the scan's own qual *)
  let catalog, orders, o_date = orders_env () in
  let pred = Expr.lt (Expr.col o_date) (Expr.date "2012-03-01") in
  let placed = Placement.place ~catalog (scan ~filter:pred orders) in
  let _, _, predicates = find_selector placed 1 in
  match predicates with
  | [ Some p ] -> Alcotest.(check bool) "inline qual captured" true (Expr.equal p pred)
  | _ -> Alcotest.fail "expected predicate from the scan qual"

let test_join_pushes_to_opposite_side () =
  (* Figure 5(d): selector on the build side, streaming *)
  let catalog, orders, o_date = orders_env () in
  let dim =
    Mpp_catalog.Catalog.add_table catalog ~name:"dim"
      ~columns:[ ("k", Value.Tdate) ]
      ~distribution:Mpp_catalog.Distribution.Replicated ()
  in
  let dim_k = Mpp_catalog.Table.colref dim ~rel:1 "k" in
  let join_pred = Expr.eq (Expr.col o_date) (Expr.col dim_k) in
  let tree =
    Plan.hash_join ~kind:Plan.Inner ~pred:join_pred
      (Plan.table_scan ~rel:1 dim.Mpp_catalog.Table.oid)
      (scan orders)
  in
  let placed = Placement.place ~catalog tree in
  let _, streaming, predicates = find_selector placed 1 in
  Alcotest.(check bool) "streaming selector" true streaming;
  (match predicates with
  | [ Some p ] ->
      Alcotest.(check bool) "join predicate drives selection" true
        (Expr.equal p join_pred)
  | _ -> Alcotest.fail "expected join predicate");
  (* the selector must wrap the build (left) child *)
  (match placed with
  | Plan.Hash_join { left = Plan.Partition_selector { child = Some _; _ }; _ } ->
      ()
  | _ -> Alcotest.fail "selector expected on the build side");
  Alcotest.(check bool) "valid" true (Valid.is_valid placed)

let test_join_key_in_build_side_resolves_locally () =
  (* when the DynamicScan is on the build side, the spec stays there — the
     join predicate cannot prune it (values arrive too late) *)
  let catalog, orders, o_date = orders_env () in
  let dim =
    Mpp_catalog.Catalog.add_table catalog ~name:"dim"
      ~columns:[ ("k", Value.Tdate) ]
      ~distribution:Mpp_catalog.Distribution.Replicated ()
  in
  let dim_k = Mpp_catalog.Table.colref dim ~rel:1 "k" in
  let tree =
    Plan.hash_join ~kind:Plan.Inner
      ~pred:(Expr.eq (Expr.col o_date) (Expr.col dim_k))
      (scan orders)
      (Plan.table_scan ~rel:1 dim.Mpp_catalog.Table.oid)
  in
  let placed = Placement.place ~catalog tree in
  let _, streaming, predicates = find_selector placed 1 in
  Alcotest.(check bool) "leaf selector on its own side" false streaming;
  Alcotest.(check bool) "no predicate harvested" true
    (List.for_all Option.is_none predicates);
  Alcotest.(check bool) "valid" true (Valid.is_valid placed)

let test_figure8_two_selectors () =
  (* Figure 8: Select(date_dim) ⋈ sales_fact, then ⋈ customer.
     date_dim is itself partitioned (id 1); sales_fact is id 2. *)
  let catalog = Mpp_catalog.Catalog.create () in
  let alloc () = Mpp_catalog.Catalog.alloc_oid catalog in
  let mk_part key_index key_name name count =
    Mpp_catalog.Partition.single_level ~alloc_oid:alloc ~key_index ~key_name
      ~scheme:Mpp_catalog.Partition.Range ~table_name:name
      (Mpp_catalog.Partition.int_ranges ~start:0 ~width:10 ~count)
  in
  let date_dim =
    Mpp_catalog.Catalog.add_table catalog ~name:"date_dim"
      ~columns:[ ("id", Value.Tint); ("month", Value.Tint) ]
      ~distribution:Mpp_catalog.Distribution.Replicated
      ~partitioning:(mk_part 1 "month" "date_dim" 2) ()
  in
  let sales_fact =
    Mpp_catalog.Catalog.add_table catalog ~name:"sales_fact"
      ~columns:[ ("date_id", Value.Tint); ("cust_id", Value.Tint) ]
      ~distribution:(Mpp_catalog.Distribution.Hashed [ 0 ])
      ~partitioning:(mk_part 0 "date_id" "sales_fact" 5) ()
  in
  let customer =
    Mpp_catalog.Catalog.add_table catalog ~name:"customer_dim"
      ~columns:[ ("id", Value.Tint); ("state", Value.Tstring) ]
      ~distribution:Mpp_catalog.Distribution.Replicated ()
  in
  let dd_id = Mpp_catalog.Table.colref date_dim ~rel:0 "id" in
  let dd_month = Mpp_catalog.Table.colref date_dim ~rel:0 "month" in
  let sf_date = Mpp_catalog.Table.colref sales_fact ~rel:1 "date_id" in
  let sf_cust = Mpp_catalog.Table.colref sales_fact ~rel:1 "cust_id" in
  let c_id = Mpp_catalog.Table.colref customer ~rel:2 "id" in
  let month_pred = Expr.between (Expr.col dd_month) (Expr.int 10) (Expr.int 12) in
  let tree =
    Plan.hash_join ~kind:Plan.Inner
      ~pred:(Expr.eq (Expr.col c_id) (Expr.col sf_cust))
      (Plan.table_scan ~rel:2 customer.Mpp_catalog.Table.oid)
      (Plan.hash_join ~kind:Plan.Inner
         ~pred:(Expr.eq (Expr.col dd_id) (Expr.col sf_date))
         (Plan.filter month_pred
            (Plan.dynamic_scan ~rel:0 ~part_scan_id:1
               date_dim.Mpp_catalog.Table.oid))
         (Plan.dynamic_scan ~rel:1 ~part_scan_id:2
            sales_fact.Mpp_catalog.Table.oid))
  in
  let placed = Placement.place ~catalog tree in
  (* selector 1: leaf, carries the month predicate (Figure 8(b), lower) *)
  let _, s1_streaming, s1_preds = find_selector placed 1 in
  Alcotest.(check bool) "selector 1 is a leaf selector" false s1_streaming;
  (match s1_preds with
  | [ Some p ] -> Alcotest.(check bool) "month predicate folded" true
      (Expr.equal p month_pred)
  | _ -> Alcotest.fail "selector 1 predicate");
  (* selector 2: streaming, carries date_id = id (Figure 8(b), upper) *)
  let _, s2_streaming, s2_preds = find_selector placed 2 in
  Alcotest.(check bool) "selector 2 streams" true s2_streaming;
  (match s2_preds with
  | [ Some p ] ->
      Alcotest.(check bool) "join predicate on the key" true
        (Expr.equal p (Expr.eq (Expr.col dd_id) (Expr.col sf_date)))
  | _ -> Alcotest.fail "selector 2 predicate");
  Alcotest.(check bool) "placed plan valid" true (Valid.is_valid placed);
  (* both selectors live inside the inner join's build side *)
  match placed with
  | Plan.Hash_join
      { right = Plan.Hash_join { left = build; _ }; _ } ->
      Alcotest.(check (list int)) "both selectors on the build side" [ 1; 2 ]
        (List.sort Int.compare (Plan.selector_ids build))
  | _ -> Alcotest.fail "unexpected shape"

let test_multilevel_placement () =
  let catalog, orders = Support.multilevel_schema () in
  let o_date = Mpp_catalog.Table.colref orders ~rel:0 "date" in
  let o_region = Mpp_catalog.Table.colref orders ~rel:0 "region" in
  let pred =
    Expr.And
      [ Expr.ge (Expr.col o_date) (Expr.date "2012-06-01");
        Expr.eq (Expr.col o_region) (Expr.str "east") ]
  in
  let placed =
    Placement.place ~catalog
      (Plan.filter pred
         (Plan.dynamic_scan ~rel:0 ~part_scan_id:1 orders.Mpp_catalog.Table.oid))
  in
  let _, _, predicates = find_selector placed 1 in
  match predicates with
  | [ Some _; Some _ ] -> Alcotest.(check bool) "valid" true (Valid.is_valid placed)
  | _ -> Alcotest.fail "expected predicates on both levels"

let test_placement_through_agg () =
  (* Algorithm 2: a GroupBy forwards the spec to its defining child *)
  let catalog, orders, o_date = orders_env () in
  let pred = Expr.ge (Expr.col o_date) (Expr.date "2013-01-01") in
  let tree =
    Plan.agg ~group_by:[]
      ~aggs:[ ("n", Plan.Count_star) ]
      (Plan.filter pred (scan orders))
  in
  let placed = Placement.place ~catalog tree in
  let _, streaming, predicates = find_selector placed 1 in
  Alcotest.(check bool) "selector below the agg" false streaming;
  (match predicates with
  | [ Some _ ] -> ()
  | _ -> Alcotest.fail "predicate folded through agg");
  Alcotest.(check bool) "valid" true (Valid.is_valid placed)

let test_eliminate_false_places_phi () =
  let catalog, orders, o_date = orders_env () in
  let pred = Expr.ge (Expr.col o_date) (Expr.date "2013-01-01") in
  let placed =
    Placement.place ~eliminate:false ~catalog
      (Plan.filter pred (scan orders))
  in
  let _, streaming, predicates = find_selector placed 1 in
  Alcotest.(check bool) "still a leaf selector" false streaming;
  Alcotest.(check bool) "but with Φ predicates" true
    (List.for_all Option.is_none predicates)

let test_idempotent_on_placed_plans () =
  (* re-running placement must not duplicate selectors *)
  let catalog, orders, _ = orders_env () in
  let placed = Placement.place ~catalog (scan orders) in
  let placed2 = Placement.place ~catalog placed in
  Alcotest.(check int) "still one selector" 1
    (List.length (selectors placed2))

let () =
  Alcotest.run "placement"
    [ ("figure 5 shapes",
       [ Alcotest.test_case "full scan (5a)" `Quick
           test_full_scan_gets_phi_selector;
         Alcotest.test_case "select folds predicate (5b/5c)" `Quick
           test_select_folds_predicate;
         Alcotest.test_case "inline scan qual harvested" `Quick
           test_scan_inline_filter_harvested;
         Alcotest.test_case "join DPE (5d)" `Quick
           test_join_pushes_to_opposite_side;
         Alcotest.test_case "scan on build side" `Quick
           test_join_key_in_build_side_resolves_locally ]);
      ("figure 8",
       [ Alcotest.test_case "two selectors, star join" `Quick
           test_figure8_two_selectors ]);
      ("extensions",
       [ Alcotest.test_case "multi-level specs" `Quick test_multilevel_placement;
         Alcotest.test_case "through aggregates" `Quick
           test_placement_through_agg;
         Alcotest.test_case "eliminate:false places Φ" `Quick
           test_eliminate_false_places_phi;
         Alcotest.test_case "idempotent" `Quick test_idempotent_on_placed_plans ]) ]

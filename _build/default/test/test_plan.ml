(** Plan-algebra tests: traversal helpers, the Motion/selector validity
    rules of paper §3.1 (Figure 12), and the plan-size model of §4.4. *)

open Mpp_expr
module Plan = Mpp_plan.Plan
module Valid = Mpp_plan.Plan_valid
module Size = Mpp_plan.Plan_size

let key = Colref.make ~rel:0 ~index:0 ~name:"pk" ~dtype:Value.Tint

let selector ?child ?(pred = None) id =
  Plan.partition_selector ?child ~part_scan_id:id ~root_oid:999
    ~keys:[ key ] ~predicates:[ pred ] ()

let dynscan id = Plan.dynamic_scan ~rel:0 ~part_scan_id:id 999

let seq_pair id = Plan.Sequence [ selector id; dynscan id ]

let join l r =
  Plan.hash_join ~kind:Plan.Inner ~pred:(Expr.eq (Expr.col key) (Expr.col key))
    l r

let test_node_count () =
  Alcotest.(check int) "sequence pair" 3 (Plan.node_count (seq_pair 1));
  Alcotest.(check int) "join of pairs" 7
    (Plan.node_count (join (seq_pair 1) (seq_pair 2)))

let test_scan_ids () =
  let p = join (seq_pair 1) (seq_pair 2) in
  Alcotest.(check (list int)) "dynamic scan ids" [ 1; 2 ] (Plan.dynamic_scan_ids p);
  Alcotest.(check (list int)) "selector ids" [ 1; 2 ] (Plan.selector_ids p);
  Alcotest.(check bool) "has_part_scan_id" true (Plan.has_part_scan_id p 2);
  Alcotest.(check bool) "missing id" false (Plan.has_part_scan_id p 3)

let test_guarded_scan_is_consumer () =
  let p =
    join (selector ~child:(Plan.table_scan ~rel:1 5) 1)
      (Plan.Append [ Plan.table_scan ~guard:1 ~rel:0 100;
                     Plan.table_scan ~guard:1 ~rel:0 101 ])
  in
  Alcotest.(check (list int)) "guards count as consumers" [ 1 ]
    (Plan.dynamic_scan_ids p);
  Alcotest.(check (list string)) "valid with many consumers" []
    (List.map Valid.violation_to_string (Valid.check p))

let test_with_children () =
  let p = join (dynscan 1) (dynscan 2) in
  match Plan.with_children p [ dynscan 3; dynscan 4 ] with
  | Plan.Hash_join { left = Plan.Dynamic_scan { part_scan_id = 3; _ };
                     right = Plan.Dynamic_scan { part_scan_id = 4; _ }; _ } ->
      ()
  | _ -> Alcotest.fail "children replaced"

let test_output_rels () =
  let p =
    join
      (Plan.table_scan ~rel:3 7)
      (Plan.filter Expr.true_ (Plan.table_scan ~rel:5 8))
  in
  Alcotest.(check (list int)) "join exposes both rels" [ 3; 5 ]
    (Plan.output_rels p);
  let semi =
    Plan.hash_join ~kind:Plan.Semi ~pred:Expr.true_
      (Plan.table_scan ~rel:3 7) (Plan.table_scan ~rel:5 8)
  in
  Alcotest.(check (list int)) "semi join exposes probe side only" [ 5 ]
    (Plan.output_rels semi);
  Alcotest.(check (list int)) "agg hides rels" []
    (Plan.output_rels (Plan.agg ~group_by:[] ~aggs:[] p))

(* ---- validity: the Figure-12 rules ---- *)

let test_valid_pair () =
  Alcotest.(check bool) "sequence pair valid" true (Valid.is_valid (seq_pair 1));
  (* selector on the opposite side of a join *)
  let p = join (selector ~child:(Plan.table_scan ~rel:1 5) 1) (dynscan 1) in
  Alcotest.(check bool) "join DPE shape valid" true (Valid.is_valid p)

let test_motion_above_pair_valid () =
  let p = Plan.motion Plan.Gather (seq_pair 1) in
  Alcotest.(check bool) "motion above the pair is fine" true (Valid.is_valid p)

let test_motion_between_invalid () =
  (* Figure 12, right side: Motion between selector and scan *)
  let p =
    Plan.Sequence [ selector 1; Plan.motion Plan.Broadcast (dynscan 1) ]
  in
  Alcotest.(check bool) "motion between pair flagged" true
    (List.mem (Valid.Motion_between 1) (Valid.check p));
  let p2 =
    join
      (selector ~child:(Plan.table_scan ~rel:1 5) 1)
      (Plan.motion (Plan.Redistribute [ key ]) (dynscan 1))
  in
  Alcotest.(check bool) "motion under probe flagged" true
    (List.mem (Valid.Motion_between 1) (Valid.check p2))

let test_unmatched () =
  Alcotest.(check bool) "scan without selector" true
    (List.mem (Valid.Unmatched_scan 1) (Valid.check (dynscan 1)));
  Alcotest.(check bool) "selector without scan" true
    (List.mem (Valid.Unmatched_selector 1) (Valid.check (selector 1)))

let test_consumer_before_producer () =
  let p = Plan.Sequence [ dynscan 1; selector 1 ] in
  Alcotest.(check bool) "scan before its selector flagged" true
    (List.mem (Valid.Consumer_before_producer 1) (Valid.check p))

(* ---- plan size ---- *)

let catalog_with_parts nparts =
  let catalog = Mpp_catalog.Catalog.create () in
  let partitioning =
    Mpp_catalog.Partition.single_level
      ~alloc_oid:(fun () -> Mpp_catalog.Catalog.alloc_oid catalog)
      ~key_index:0 ~key_name:"pk" ~scheme:Mpp_catalog.Partition.Range
      ~table_name:"t"
      (Mpp_catalog.Partition.int_ranges ~start:0 ~width:10 ~count:nparts)
  in
  let t =
    Mpp_catalog.Catalog.add_table catalog ~name:"t"
      ~columns:[ ("pk", Value.Tint) ]
      ~distribution:(Mpp_catalog.Distribution.Hashed [ 0 ])
      ~partitioning ()
  in
  (catalog, t)

let test_size_append_linear () =
  let catalog, t = catalog_with_parts 4 in
  let append n =
    Plan.Append
      (List.init n (fun _ -> Plan.table_scan ~rel:0 t.Mpp_catalog.Table.oid))
  in
  let s10 = Size.bytes ~catalog (append 10)
  and s20 = Size.bytes ~catalog (append 20) in
  Alcotest.(check bool) "doubling members ~ doubles size" true
    (Float.abs ((float_of_int s20 /. float_of_int s10) -. 2.0) < 0.2)

let test_size_selector_carries_metadata () =
  let catalog_small, t_small = catalog_with_parts 4 in
  let catalog_big, t_big = catalog_with_parts 400 in
  let plan t =
    Plan.Sequence
      [ Plan.partition_selector ~part_scan_id:1 ~root_oid:t.Mpp_catalog.Table.oid
          ~keys:[ key ] ~predicates:[ None ] ();
        Plan.dynamic_scan ~rel:0 ~part_scan_id:1 t.Mpp_catalog.Table.oid ]
  in
  let small = Size.bytes ~catalog:catalog_small (plan t_small)
  and big = Size.bytes ~catalog:catalog_big (plan t_big) in
  Alcotest.(check bool) "per-partition metadata term grows" true (big > small);
  Alcotest.(check bool) "but far slower than an expansion would" true
    (big < small + (400 * 1024))

let test_size_dynamic_scan_constant_in_selection () =
  (* Orca plan size must not depend on how many partitions are *selected* *)
  let catalog, t = catalog_with_parts 100 in
  let plan pred =
    Plan.Sequence
      [ Plan.partition_selector ~part_scan_id:1 ~root_oid:t.Mpp_catalog.Table.oid
          ~keys:[ key ] ~predicates:[ pred ] ();
        Plan.dynamic_scan ~rel:0 ~part_scan_id:1 t.Mpp_catalog.Table.oid ]
  in
  let narrow = plan (Some (Expr.lt (Expr.col key) (Expr.int 10)))
  and wide = plan (Some (Expr.lt (Expr.col key) (Expr.int 990))) in
  Alcotest.(check int) "same size whatever the predicate selects"
    (Size.bytes ~catalog narrow) (Size.bytes ~catalog wide)

let () =
  Alcotest.run "plan"
    [ ("structure",
       [ Alcotest.test_case "node count" `Quick test_node_count;
         Alcotest.test_case "scan ids" `Quick test_scan_ids;
         Alcotest.test_case "guarded scans are consumers" `Quick
           test_guarded_scan_is_consumer;
         Alcotest.test_case "with_children" `Quick test_with_children;
         Alcotest.test_case "output rels" `Quick test_output_rels ]);
      ("validity (Figure 12)",
       [ Alcotest.test_case "valid pairs" `Quick test_valid_pair;
         Alcotest.test_case "motion above pair" `Quick
           test_motion_above_pair_valid;
         Alcotest.test_case "motion between pair" `Quick
           test_motion_between_invalid;
         Alcotest.test_case "unmatched endpoints" `Quick test_unmatched;
         Alcotest.test_case "consumer before producer" `Quick
           test_consumer_before_producer ]);
      ("size model",
       [ Alcotest.test_case "append grows linearly" `Quick
           test_size_append_linear;
         Alcotest.test_case "selector metadata term" `Quick
           test_size_selector_carries_metadata;
         Alcotest.test_case "independent of selection" `Quick
           test_size_dynamic_scan_constant_in_selection ]) ]

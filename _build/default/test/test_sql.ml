(** SQL front-end tests: lexing, parsing, binding, coercion, and the
    logical trees that come out. *)

open Mpp_expr
module Lexer = Mpp_sql.Lexer
module Parser = Mpp_sql.Parser
module Ast = Mpp_sql.Ast
module Sql = Mpp_sql.Sql
module Logical = Orca.Logical
module Plan = Mpp_plan.Plan

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT a, 'it''s' FROM t WHERE x >= 1.5 -- c" in
  Alcotest.(check bool) "keywords lower-cased" true
    (List.mem (Lexer.IDENT "select") toks);
  Alcotest.(check bool) "escaped quote" true
    (List.mem (Lexer.STRING "it's") toks);
  Alcotest.(check bool) "float token" true (List.mem (Lexer.FLOAT 1.5) toks);
  Alcotest.(check bool) "comparison" true (List.mem Lexer.GE toks);
  Alcotest.(check bool) "comment stripped, ends with eof" true
    (List.rev toks |> List.hd = Lexer.EOF)

let test_lexer_params_and_errors () =
  Alcotest.(check bool) "$2 is a param" true
    (List.mem (Lexer.PARAM 2) (Lexer.tokenize "x = $2"));
  Alcotest.(check bool) "unterminated string raises" true
    (try ignore (Lexer.tokenize "'oops"); false
     with Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "stray char raises" true
    (try ignore (Lexer.tokenize "a ! b"); false with Lexer.Lex_error _ -> true)

let test_parse_select_shape () =
  match Parser.parse
          "SELECT a, count(*) AS n FROM t, u JOIN v ON t.x = v.y WHERE a > 1 \
           GROUP BY a ORDER BY a LIMIT 10"
  with
  | Ast.Select s ->
      Alcotest.(check int) "two items" 2 (List.length s.Ast.items);
      Alcotest.(check int) "three from items" 3 (List.length s.Ast.from);
      Alcotest.(check int) "one join predicate" 1 (List.length s.Ast.join_on);
      Alcotest.(check bool) "where present" true (s.Ast.where <> None);
      Alcotest.(check int) "group by" 1 (List.length s.Ast.group_by);
      Alcotest.(check (option int)) "limit" (Some 10) s.Ast.limit
  | _ -> Alcotest.fail "expected select"

let test_parse_operators_precedence () =
  (* a OR b AND c parses as a OR (b AND c) *)
  match Parser.parse "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3" with
  | Ast.Select { where = Some (Ast.E_or (_, Ast.E_and (_, _))); _ } -> ()
  | _ -> Alcotest.fail "OR of AND expected"

let test_parse_between_in_isnull () =
  match Parser.parse
          "SELECT * FROM t WHERE a BETWEEN 1 AND 2 AND b IN (1, 2, 3) AND c \
           IS NOT NULL"
  with
  | Ast.Select { where = Some w; _ } ->
      let rec count_shapes e (btw, inl, isn) =
        match e with
        | Ast.E_between _ -> (btw + 1, inl, isn)
        | Ast.E_in_list _ -> (btw, inl + 1, isn)
        | Ast.E_not (Ast.E_is_null _) -> (btw, inl, isn + 1)
        | Ast.E_and (a, b) -> count_shapes b (count_shapes a (btw, inl, isn))
        | _ -> (btw, inl, isn)
      in
      Alcotest.(check (triple int int int)) "all three shapes" (1, 1, 1)
        (count_shapes w (0, 0, 0))
  | _ -> Alcotest.fail "expected select"

let test_parse_update_delete () =
  (match Parser.parse "UPDATE r SET b = s.b, a = 1 FROM s WHERE r.a = s.a" with
  | Ast.Update u ->
      Alcotest.(check int) "two sets" 2 (List.length u.Ast.u_set);
      Alcotest.(check int) "one from" 1 (List.length u.Ast.u_from)
  | _ -> Alcotest.fail "expected update");
  match Parser.parse "DELETE FROM t WHERE a < 0" with
  | Ast.Delete d_stmt ->
      Alcotest.(check bool) "where" true (d_stmt.Ast.d_where <> None)
  | _ -> Alcotest.fail "expected delete"

let test_parse_insert () =
  match Parser.parse
          "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), ($1, 'z')"
  with
  | Ast.Insert i ->
      Alcotest.(check (option (list string))) "column list" (Some [ "a"; "b" ])
        i.Ast.i_columns;
      Alcotest.(check int) "three rows" 3 (List.length i.Ast.i_rows)
  | _ -> Alcotest.fail "expected insert"

let test_parse_errors () =
  List.iter
    (fun sql ->
      Alcotest.(check bool) (sql ^ " rejected") true
        (try ignore (Parser.parse sql); false
         with Parser.Parse_error _ -> true))
    [ "SELECT"; "SELECT * FROM"; "SELECT * FROM t WHERE"; "FROB x";
      "SELECT * FROM t LIMIT x"; "SELECT * FROM t trailing garbage ," ]

(* ---------------- binder ---------------- *)

let catalog () =
  let catalog, _, _ = Support.star_schema () in
  catalog

let test_bind_simple_select () =
  let lg =
    Sql.to_logical (catalog ())
      "SELECT avg(amount) FROM orders WHERE date >= '2013-10-01'"
  in
  match lg with
  | Logical.Aggregate
      { aggs = [ ("avg", Plan.Avg _) ];
        child = Logical.Select { child = Logical.Get { table_name = "orders"; _ }; _ };
        _ } ->
      ()
  | _ -> Alcotest.fail "unexpected logical shape"

let test_bind_date_coercion () =
  let lg =
    Sql.to_logical (catalog ()) "SELECT * FROM orders WHERE date = '2013-10-01'"
  in
  match lg with
  | Logical.Select { pred = Expr.Cmp (Expr.Eq, _, Expr.Const (Value.Date _)); _ }
    ->
      ()
  | _ -> Alcotest.fail "string literal must coerce to a date"

let test_bind_qualified_and_ambiguous () =
  let cat = catalog () in
  (* ambiguous: both orders and date_dim could own a fabricated name — use
     an actually ambiguous case: none here, so check unknown column *)
  Alcotest.(check bool) "unknown column" true
    (try ignore (Sql.to_logical cat "SELECT nope FROM orders"); false
     with Sql.Error _ -> true);
  Alcotest.(check bool) "unknown table" true
    (try ignore (Sql.to_logical cat "SELECT 1 FROM nonexistent"); false
     with Sql.Error _ -> true);
  Alcotest.(check bool) "bad alias" true
    (try ignore (Sql.to_logical cat "SELECT z.id FROM orders o"); false
     with Sql.Error _ -> true)

let test_bind_join_tree () =
  let lg =
    Sql.to_logical (catalog ())
      "SELECT count(*) FROM orders o, date_dim d WHERE o.date = d.d_date AND \
       d.d_year = 2013"
  in
  match lg with
  | Logical.Aggregate
      { child =
          Logical.Join
            { pred = Expr.Cmp (Expr.Eq, _, _);
              left = Logical.Get { table_name = "orders"; _ };
              right =
                Logical.Select
                  { child = Logical.Get { table_name = "date_dim"; _ }; _ };
              _ };
        _ } ->
      ()
  | _ -> Alcotest.fail "join tree with pushed filters expected"

let test_bind_in_subquery_semi_join () =
  let lg =
    Sql.to_logical (catalog ())
      "SELECT count(*) FROM orders WHERE date IN (SELECT d_date FROM \
       date_dim WHERE d_year = 2013)"
  in
  match lg with
  | Logical.Aggregate
      { child = Logical.Join { kind = Plan.Semi; left = _; right = _; _ }; _ }
    ->
      ()
  | _ -> Alcotest.fail "IN subquery must become a semi join"

let test_bind_update () =
  let lg =
    Sql.to_logical (catalog ())
      "UPDATE orders SET amount = 0.0 WHERE date < '2012-02-01'"
  in
  match lg with
  | Logical.Update { rel = 0; table_name = "orders"; set_cols = [ ("amount", _) ];
                     _ } ->
      ()
  | _ -> Alcotest.fail "update shape"

let test_bind_params () =
  let lg =
    Sql.to_logical (catalog ()) "SELECT count(*) FROM orders WHERE date >= $1"
  in
  let has_param = ref false in
  let rec walk (l : Logical.t) =
    (match l with
    | Logical.Select { pred; _ } -> if Expr.has_param pred then has_param := true
    | _ -> ());
    List.iter walk (Logical.children l)
  in
  walk lg;
  Alcotest.(check bool) "param survives binding" true !has_param

let test_workload_queries_all_bind () =
  (* every workload query template parses, binds, optimizes and validates *)
  let env = Mpp_workload.Runner.setup_env ~scale:1 ~nsegments:2 () in
  List.iter
    (fun (qu : Mpp_workload.Queries.query) ->
      let lg = Sql.to_logical env.Mpp_workload.Runner.catalog qu.sql in
      let plan =
        Orca.Optimizer.optimize
          (Orca.Optimizer.create ~catalog:env.Mpp_workload.Runner.catalog ())
          lg
      in
      Alcotest.(check bool) (qu.name ^ " valid") true
        (Mpp_plan.Plan_valid.is_valid plan))
    Mpp_workload.Queries.all

let () =
  Alcotest.run "sql"
    [ ("lexer",
       [ Alcotest.test_case "basics" `Quick test_lexer_basics;
         Alcotest.test_case "params and errors" `Quick
           test_lexer_params_and_errors ]);
      ("parser",
       [ Alcotest.test_case "select shape" `Quick test_parse_select_shape;
         Alcotest.test_case "precedence" `Quick test_parse_operators_precedence;
         Alcotest.test_case "between/in/is-null" `Quick
           test_parse_between_in_isnull;
         Alcotest.test_case "update/delete" `Quick test_parse_update_delete;
         Alcotest.test_case "insert" `Quick test_parse_insert;
         Alcotest.test_case "errors" `Quick test_parse_errors ]);
      ("binder",
       [ Alcotest.test_case "simple select" `Quick test_bind_simple_select;
         Alcotest.test_case "date coercion" `Quick test_bind_date_coercion;
         Alcotest.test_case "name errors" `Quick test_bind_qualified_and_ambiguous;
         Alcotest.test_case "join tree" `Quick test_bind_join_tree;
         Alcotest.test_case "IN subquery" `Quick test_bind_in_subquery_semi_join;
         Alcotest.test_case "update" `Quick test_bind_update;
         Alcotest.test_case "parameters" `Quick test_bind_params;
         Alcotest.test_case "all workload queries bind" `Slow
           test_workload_queries_all_bind ]) ]

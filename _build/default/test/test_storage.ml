(** Storage-layer tests: distribution policies, partition routing on
    insert, heap scans and the growable vector. *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Dist = Mpp_catalog.Distribution
module Storage = Mpp_storage.Storage
module Vec = Mpp_storage.Vec

let test_vec () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check int) "to_list order" 0 (List.hd (Vec.to_list v));
  Alcotest.(check int) "to_array roundtrip" 99
    (Array.length (Vec.to_array v) - 1 + Vec.get v 0);
  Alcotest.(check int) "fold" 4950 (Vec.fold ( + ) 0 v);
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get")
    (fun () -> ignore (Vec.get v 100));
  Alcotest.(check (list int)) "of_list/to_list" [ 3; 1; 2 ]
    (Vec.to_list (Vec.of_list [ 3; 1; 2 ]))

let plain_table catalog name dist =
  Cat.add_table catalog ~name
    ~columns:[ ("a", Value.Tint); ("b", Value.Tstring) ]
    ~distribution:dist ()

let test_hashed_distribution () =
  let catalog = Cat.create () in
  let t = plain_table catalog "t" (Dist.Hashed [ 0 ]) in
  let storage = Storage.create ~nsegments:4 in
  for i = 0 to 99 do
    Storage.insert storage t [| Value.Int i; Value.String "x" |]
  done;
  Alcotest.(check int) "all rows stored once" 100 (Storage.count_table storage t);
  (* determinism: same key lands on the same segment *)
  let seg_of i =
    let found = ref (-1) in
    for seg = 0 to 3 do
      Array.iter
        (fun row -> if row.(0) = Value.Int i then found := seg)
        (Storage.scan storage ~segment:seg ~oid:t.Mpp_catalog.Table.oid)
    done;
    !found
  in
  let storage2 = Storage.create ~nsegments:4 in
  Storage.insert storage2 t [| Value.Int 17; Value.String "y" |];
  let seg2 = ref (-1) in
  for seg = 0 to 3 do
    if Storage.count_segment storage2 ~segment:seg ~oid:t.Mpp_catalog.Table.oid > 0
    then seg2 := seg
  done;
  Alcotest.(check int) "key 17 hashes to the same segment" (seg_of 17) !seg2

let test_replicated_distribution () =
  let catalog = Cat.create () in
  let t = plain_table catalog "r" Dist.Replicated in
  let storage = Storage.create ~nsegments:3 in
  Storage.insert storage t [| Value.Int 1; Value.String "x" |];
  for seg = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "segment %d holds a copy" seg)
      1
      (Storage.count_segment storage ~segment:seg ~oid:t.Mpp_catalog.Table.oid)
  done

let test_random_distribution_round_robin () =
  let catalog = Cat.create () in
  let t = plain_table catalog "rnd" Dist.Random in
  let storage = Storage.create ~nsegments:4 in
  for i = 0 to 7 do
    Storage.insert storage t [| Value.Int i; Value.String "x" |]
  done;
  for seg = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "segment %d got 2 rows" seg)
      2
      (Storage.count_segment storage ~segment:seg ~oid:t.Mpp_catalog.Table.oid)
  done

let test_partition_routing_on_insert () =
  let _, orders = Support.orders_schema () in
  let storage = Storage.create ~nsegments:2 in
  Storage.insert storage orders
    [| Value.Int 1; Value.Float 10.0; Value.date_of_string "2013-11-15" |];
  let p = Option.get orders.Mpp_catalog.Table.partitioning in
  (* November 2013 is the 23rd monthly partition *)
  let leaf23 = (Mpp_catalog.Partition.leaf_oids p |> Array.of_list).(22) in
  Alcotest.(check int) "row stored in the November leaf" 1
    (Storage.count storage ~oid:leaf23);
  Alcotest.(check int) "total" 1 (Storage.count_table storage orders)

let test_insert_rejects_unroutable () =
  let _, orders = Support.orders_schema () in
  let storage = Storage.create ~nsegments:2 in
  let bad = [| Value.Int 1; Value.Float 1.0; Value.date_of_string "2031-01-01" |] in
  Alcotest.(check bool) "out-of-range date raises" true
    (try
       Storage.insert storage orders bad;
       false
     with Storage.No_partition_for_tuple _ -> true)

let test_arity_check () =
  let _, orders = Support.orders_schema () in
  let storage = Storage.create ~nsegments:2 in
  Alcotest.check_raises "arity mismatch rejected"
    (Invalid_argument "Storage.insert: arity mismatch for orders") (fun () ->
      Storage.insert storage orders [| Value.Int 1 |])

let test_scan_list_matches_scan () =
  let catalog = Cat.create () in
  let t = plain_table catalog "t" (Dist.Hashed [ 0 ]) in
  let storage = Storage.create ~nsegments:2 in
  for i = 0 to 19 do
    Storage.insert storage t [| Value.Int i; Value.String "s" |]
  done;
  for seg = 0 to 1 do
    Alcotest.(check bool)
      (Printf.sprintf "segment %d scan/scan_list agree" seg)
      true
      (Array.to_list (Storage.scan storage ~segment:seg ~oid:t.Mpp_catalog.Table.oid)
      = Storage.scan_list storage ~segment:seg ~oid:t.Mpp_catalog.Table.oid)
  done

let test_replace_heap () =
  let catalog = Cat.create () in
  let t = plain_table catalog "t" (Dist.Hashed [ 0 ]) in
  let storage = Storage.create ~nsegments:1 in
  Storage.insert storage t [| Value.Int 1; Value.String "a" |];
  Storage.replace_heap storage ~segment:0 ~oid:t.Mpp_catalog.Table.oid
    [ [| Value.Int 9; Value.String "z" |] ];
  Alcotest.(check int) "replaced" 1 (Storage.count_table storage t);
  Alcotest.(check bool) "new content" true
    ((Storage.scan storage ~segment:0 ~oid:t.Mpp_catalog.Table.oid).(0).(0)
    = Value.Int 9)

let prop_load_preserves_rows =
  QCheck2.Test.make ~count:200 ~name:"every loaded row is scannable somewhere"
    QCheck2.Gen.(list_size (int_range 0 50) (int_range 0 729))
    (fun days ->
      let _, orders = Support.orders_schema () in
      let storage = Storage.create ~nsegments:3 in
      let start = Date.of_ymd 2012 1 1 in
      List.iteri
        (fun i day ->
          Storage.insert storage orders
            [| Value.Int i; Value.Float 0.0; Value.Date (Date.add_days start day) |])
        days;
      Storage.count_table storage orders = List.length days)

let () =
  Alcotest.run "storage"
    [ ("vec", [ Alcotest.test_case "growable vector" `Quick test_vec ]);
      ("distribution",
       [ Alcotest.test_case "hashed" `Quick test_hashed_distribution;
         Alcotest.test_case "replicated" `Quick test_replicated_distribution;
         Alcotest.test_case "random round-robin" `Quick
           test_random_distribution_round_robin ]);
      ("partitioned heaps",
       [ Alcotest.test_case "routing on insert" `Quick
           test_partition_routing_on_insert;
         Alcotest.test_case "unroutable tuple rejected" `Quick
           test_insert_rejects_unroutable;
         Alcotest.test_case "arity check" `Quick test_arity_check;
         Alcotest.test_case "scan_list = scan" `Quick test_scan_list_matches_scan;
         Alcotest.test_case "replace_heap" `Quick test_replace_heap ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_load_preserves_rows ]) ]

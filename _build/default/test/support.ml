(** Shared test support: QCheck generators for values, intervals and
    predicates, and catalog/storage builders for the recurring schemas. *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Part = Mpp_catalog.Partition
module Dist = Mpp_catalog.Distribution
module Storage = Mpp_storage.Storage

(* ------------------------------------------------------------------ *)
(* QCheck generators                                                   *)
(* ------------------------------------------------------------------ *)

let value_gen : Value.t QCheck2.Gen.t =
  QCheck2.Gen.(
    oneof
      [ return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) (int_range (-1000) 1000);
        map (fun f -> Value.Float (float_of_int f /. 4.0))
          (int_range (-4000) 4000);
        map (fun i -> Value.String (Printf.sprintf "s%03d" i)) (int_range 0 999);
        map (fun d -> Value.Date (Date.add_days (Date.of_ymd 2012 1 1) d))
          (int_range 0 730) ])

(* Values of one comparable type (ints), for interval properties. *)
let int_value_gen = QCheck2.Gen.(map (fun i -> Value.Int i) (int_range (-100) 100))

let bound_pair_gen : (Interval.bound * Interval.bound) QCheck2.Gen.t =
  QCheck2.Gen.(
    let bound =
      oneof
        [ return Interval.Neg_inf;
          return Interval.Pos_inf;
          map2 (fun v i -> Interval.B (v, i)) int_value_gen bool ]
    in
    pair bound bound)

let interval_gen : Interval.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map
      (fun (lo, hi) ->
        match Interval.make lo hi with
        | Some iv -> iv
        | None -> Interval.point (Value.Int 0))
      bound_pair_gen)

let interval_set_gen : Interval.Set.t QCheck2.Gen.t =
  QCheck2.Gen.(map Interval.Set.of_list (list_size (int_range 0 5) interval_gen))

(* A single-column predicate over the given colref, always analyzable or
   deliberately opaque; used for restriction-soundness properties. *)
let predicate_gen (key : Colref.t) : Expr.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let atom =
    oneof
      [ map2 (fun op v -> Expr.Cmp (op, Expr.Col key, Expr.Const v))
          (oneofl Expr.[ Eq; Neq; Lt; Le; Gt; Ge ])
          int_value_gen;
        map (fun vs -> Expr.In_list (Expr.Col key, vs))
          (list_size (int_range 1 4) int_value_gen);
        map2 (fun lo hi ->
            Expr.between (Expr.Col key) (Expr.Const lo) (Expr.Const hi))
          int_value_gen int_value_gen;
        (* opaque to the analyzer *)
        map (fun v ->
            Expr.Cmp (Expr.Ge, Expr.Func ("abs", [ Expr.Col key ]),
                      Expr.Const v))
          int_value_gen ]
  in
  let rec tree depth =
    if depth = 0 then atom
    else
      frequency
        [ (3, atom);
          (2, map (fun es -> Expr.And es)
               (list_size (int_range 2 3) (tree (depth - 1))));
          (2, map (fun es -> Expr.Or es)
               (list_size (int_range 2 3) (tree (depth - 1))));
          (1, map (fun e -> Expr.Not e) (tree (depth - 1))) ]
  in
  tree 2

(* ------------------------------------------------------------------ *)
(* Schema builders                                                     *)
(* ------------------------------------------------------------------ *)

(** [orders] partitioned monthly over 2012–2013 (24 parts), hashed on id. *)
let orders_schema () =
  let catalog = Cat.create () in
  let partitioning =
    Part.single_level
      ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
      ~key_index:2 ~key_name:"date" ~scheme:Part.Range ~table_name:"orders"
      (Part.monthly_ranges ~start_year:2012 ~start_month:1 ~months:24)
  in
  let orders =
    Cat.add_table catalog ~name:"orders"
      ~columns:
        [ ("id", Value.Tint); ("amount", Value.Tfloat); ("date", Value.Tdate) ]
      ~distribution:(Dist.Hashed [ 0 ]) ~partitioning ()
  in
  (catalog, orders)

(** Loads [n] orders spread over the two years; deterministic. *)
let load_orders storage orders n =
  let start = Date.of_ymd 2012 1 1 in
  for i = 0 to n - 1 do
    Storage.insert storage orders
      [| Value.Int i;
         Value.Float (float_of_int (i mod 100));
         Value.Date (Date.add_days start (i * 730 / n)) |]
  done

(** [orders] + replicated [date_dim] covering the same range. *)
let star_schema () =
  let catalog, orders = orders_schema () in
  let date_dim =
    Cat.add_table catalog ~name:"date_dim"
      ~columns:
        [ ("d_date", Value.Tdate); ("d_year", Value.Tint);
          ("d_month", Value.Tint); ("d_dow", Value.Tint) ]
      ~distribution:Dist.Replicated ()
  in
  (catalog, orders, date_dim)

let load_date_dim storage date_dim =
  let start = Date.of_ymd 2012 1 1 in
  for i = 0 to 729 do
    let d = Date.add_days start i in
    Storage.insert storage date_dim
      [| Value.Date d; Value.Int (Date.year d); Value.Int (Date.month d);
         Value.Int (Date.day_of_week d) |]
  done

(** Two-level orders: month × region. *)
let multilevel_schema () =
  let catalog = Cat.create () in
  let partitioning =
    Part.two_level
      ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
      ~table_name:"orders"
      ~level1:{ Part.key_index = 2; key_name = "date"; scheme = Part.Range }
      ~constrs1:(Part.monthly_ranges ~start_year:2012 ~start_month:1 ~months:12)
      ~level2:
        { Part.key_index = 3; key_name = "region"; scheme = Part.Categorical }
      ~constrs2:
        (Part.categorical
           [ [ Value.String "east" ]; [ Value.String "west" ] ])
  in
  let orders =
    Cat.add_table catalog ~name:"orders"
      ~columns:
        [ ("id", Value.Tint); ("amount", Value.Tfloat);
          ("date", Value.Tdate); ("region", Value.Tstring) ]
      ~distribution:(Dist.Hashed [ 0 ]) ~partitioning ()
  in
  (catalog, orders)

(* ------------------------------------------------------------------ *)
(* Result comparison                                                   *)
(* ------------------------------------------------------------------ *)

(** Compare two result row multisets independent of order.  Floats compare
    with a relative tolerance: different plans sum in different orders. *)
let value_close a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
      Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | _ -> Value.equal a b

let rows_equal (a : Value.t array list) (b : Value.t array list) =
  let norm rows =
    List.map (fun r -> Array.to_list r) rows
    |> List.sort (fun x y -> List.compare Value.compare x y)
  in
  let na = norm a and nb = norm b in
  List.length na = List.length nb
  && List.for_all2
       (fun x y ->
         List.length x = List.length y && List.for_all2 value_close x y)
       na nb

let check_rows_equal what a b =
  Alcotest.(check bool) (what ^ ": result sets equal") true (rows_equal a b)

(** Run a plan and return its sorted rows and metrics. *)
let run_plan ~catalog ~storage ?params ?selection_enabled plan =
  Mpp_exec.Exec.run ?params ?selection_enabled ~catalog ~storage plan

(** Legacy-Planner tests: inheritance expansion, constraint exclusion, the
    rudimentary dynamic elimination, DML expansion, and result parity with
    Orca. *)

open Mpp_expr
module Storage = Mpp_storage.Storage
module Plan = Mpp_plan.Plan
module Valid = Mpp_plan.Plan_valid
module Planner = Mpp_planner.Planner
module Logical = Orca.Logical
module Metrics = Mpp_exec.Metrics

let env () =
  let catalog, orders, date_dim = Support.star_schema () in
  let storage = Storage.create ~nsegments:4 in
  Support.load_orders storage orders 1000;
  Support.load_date_dim storage date_dim;
  (catalog, storage, orders, date_dim)

let plan_with ?config catalog lg =
  Planner.plan (Planner.create ?config ~catalog ()) lg

(* count the Table_scan leaves in a plan *)
let scan_count plan =
  Plan.fold
    (fun acc p -> match p with Plan.Table_scan _ -> acc + 1 | _ -> acc)
    0 plan

let test_expansion () =
  let catalog, _, _, _ = env () in
  let p = plan_with catalog (Logical.get ~rel:0 "orders") in
  Alcotest.(check int) "all 24 leaves listed" 24 (scan_count p);
  Alcotest.(check bool) "no selectors" true (Plan.selector_ids p = [])

let test_constraint_exclusion () =
  let catalog, storage, orders, _ = env () in
  let o_date = Mpp_catalog.Table.colref orders ~rel:0 "date" in
  let lg =
    Logical.select
      (Expr.between (Expr.col o_date) (Expr.date "2013-10-01")
         (Expr.date "2013-12-31"))
      (Logical.get ~rel:0 "orders")
  in
  let p = plan_with catalog lg in
  Alcotest.(check int) "only the 3 surviving leaves in the plan" 3
    (scan_count p);
  let rows, m = Mpp_exec.Exec.run ~catalog ~storage p in
  Alcotest.(check int) "3 partitions scanned" 3
    (Metrics.parts_scanned_of m ~root_oid:orders.Mpp_catalog.Table.oid);
  Alcotest.(check bool) "rows produced" true (List.length rows > 0)

let test_exclusion_disabled () =
  let catalog, _, orders, _ = env () in
  ignore orders;
  let o_date =
    Mpp_catalog.Table.colref (Mpp_catalog.Catalog.find catalog "orders")
      ~rel:0 "date"
  in
  let config = { Planner.default_config with enable_static_elimination = false } in
  let lg =
    Logical.select
      (Expr.lt (Expr.col o_date) (Expr.date "2012-02-01"))
      (Logical.get ~rel:0 "orders")
  in
  Alcotest.(check int) "all leaves kept when disabled" 24
    (scan_count (plan_with ~config catalog lg))

let dpe_logical catalog =
  let orders = Mpp_catalog.Catalog.find catalog "orders" in
  let date_dim = Mpp_catalog.Catalog.find catalog "date_dim" in
  let o_date = Mpp_catalog.Table.colref orders ~rel:1 "date" in
  let d_date = Mpp_catalog.Table.colref date_dim ~rel:0 "d_date" in
  let d_month = Mpp_catalog.Table.colref date_dim ~rel:0 "d_month" in
  let d_year = Mpp_catalog.Table.colref date_dim ~rel:0 "d_year" in
  (* FROM date_dim, orders — dimension first, the shape the legacy planner's
     as-written orientation needs *)
  Logical.join
    (Expr.eq (Expr.col d_date) (Expr.col o_date))
    (Logical.select
       (Expr.conj
          [ Expr.eq (Expr.col d_year) (Expr.int 2013);
            Expr.eq (Expr.col d_month) (Expr.int 7) ])
       (Logical.get ~rel:0 "date_dim"))
    (Logical.get ~rel:1 "orders")

let test_rudimentary_dpe () =
  let catalog, storage, orders, _ = env () in
  let p = plan_with catalog (dpe_logical catalog) in
  (* the plan still lists every partition *)
  Alcotest.(check bool) "plan lists all 24 leaves (+dim scan)" true
    (scan_count p >= 24);
  (* ... but the guard skips the rest at run time *)
  let _, m = Mpp_exec.Exec.run ~catalog ~storage p in
  Alcotest.(check int) "July 2013 only" 1
    (Metrics.parts_scanned_of m ~root_oid:orders.Mpp_catalog.Table.oid);
  Alcotest.(check bool) "valid" true (Valid.is_valid p)

let test_dpe_disabled () =
  let catalog, storage, orders, _ = env () in
  let config =
    { Planner.default_config with enable_dynamic_elimination = false }
  in
  let p = plan_with ~config catalog (dpe_logical catalog) in
  let _, m = Mpp_exec.Exec.run ~catalog ~storage p in
  Alcotest.(check int) "all partitions scanned" 24
    (Metrics.parts_scanned_of m ~root_oid:orders.Mpp_catalog.Table.oid)

let test_no_dpe_for_multilevel () =
  (* the legacy planner's DPE pattern is single-level only *)
  let catalog, orders = Support.multilevel_schema () in
  let storage = Storage.create ~nsegments:4 in
  let start = Date.of_ymd 2012 1 1 in
  for i = 0 to 199 do
    Storage.insert storage orders
      [| Value.Int i; Value.Float 1.0;
         Value.Date (Date.add_days start (i * 365 / 200));
         Value.String (if i mod 2 = 0 then "east" else "west") |]
  done;
  let date_dim =
    Mpp_catalog.Catalog.add_table catalog ~name:"dd"
      ~columns:[ ("d", Value.Tdate) ]
      ~distribution:Mpp_catalog.Distribution.Replicated ()
  in
  Storage.insert storage date_dim [| Value.Date (Date.of_ymd 2012 3 15) |];
  let o_date = Mpp_catalog.Table.colref orders ~rel:1 "date" in
  let dd_d = Mpp_catalog.Table.colref date_dim ~rel:0 "d" in
  let lg =
    Logical.join
      (Expr.eq (Expr.col dd_d) (Expr.col o_date))
      (Logical.get ~rel:0 "dd")
      (Logical.get ~rel:1 "orders")
  in
  let p = plan_with catalog lg in
  let _, m = Mpp_exec.Exec.run ~catalog ~storage p in
  Alcotest.(check int) "planner scans all multilevel leaves" 24
    (Metrics.parts_scanned_of m ~root_oid:orders.Mpp_catalog.Table.oid)

let test_dml_quadratic_expansion () =
  let catalog = Mpp_catalog.Catalog.create () in
  let mk name =
    let partitioning =
      Mpp_catalog.Partition.single_level
        ~alloc_oid:(fun () -> Mpp_catalog.Catalog.alloc_oid catalog)
        ~key_index:1 ~key_name:"b" ~scheme:Mpp_catalog.Partition.Range
        ~table_name:name
        (Mpp_catalog.Partition.int_ranges ~start:0 ~width:10 ~count:6)
    in
    Mpp_catalog.Catalog.add_table catalog ~name
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
      ~distribution:(Mpp_catalog.Distribution.Hashed [ 0 ])
      ~partitioning ()
  in
  let r = mk "r" and s = mk "s" in
  let r_a = Mpp_catalog.Table.colref r ~rel:0 "a" in
  let s_a = Mpp_catalog.Table.colref s ~rel:1 "a" in
  let s_b = Mpp_catalog.Table.colref s ~rel:1 "b" in
  let lg =
    Logical.Update
      { rel = 0; table_name = "r";
        set_cols = [ ("b", Expr.col s_b) ];
        child =
          Logical.join
            (Expr.eq (Expr.col r_a) (Expr.col s_a))
            (Logical.get ~rel:0 "r")
            (Logical.get ~rel:1 "s") }
  in
  let p = plan_with catalog lg in
  (* 6 target leaves × (1 target scan + 6 other-side leaves) = 42 scans *)
  Alcotest.(check int) "quadratic expansion" 42 (scan_count p)

let test_parity_with_orca () =
  let catalog, storage, _, _ = env () in
  let lg = dpe_logical catalog in
  let p_planner = plan_with catalog lg in
  let p_orca = Orca.Optimizer.optimize (Orca.Optimizer.create ~catalog ()) lg in
  let r1, _ = Mpp_exec.Exec.run ~catalog ~storage p_planner in
  let r2, _ = Mpp_exec.Exec.run ~catalog ~storage p_orca in
  Support.check_rows_equal "planner = orca" r1 r2

let test_plan_size_vs_orca () =
  let catalog, _, _, _ = env () in
  let o_date =
    Mpp_catalog.Table.colref (Mpp_catalog.Catalog.find catalog "orders")
      ~rel:0 "date"
  in
  let lg =
    Logical.select
      (Expr.ge (Expr.col o_date) (Expr.date "2012-01-01"))
      (Logical.get ~rel:0 "orders")
  in
  let planner_kb =
    Mpp_plan.Plan_size.kilobytes ~catalog (plan_with catalog lg)
  in
  let orca_kb =
    Mpp_plan.Plan_size.kilobytes ~catalog
      (Orca.Optimizer.optimize (Orca.Optimizer.create ~catalog ()) lg)
  in
  Alcotest.(check bool) "full-range planner plan much larger" true
    (planner_kb > 3.0 *. orca_kb)

(* Whole-baseline soundness: on random range queries the legacy planner and
   Orca agree, even though their plans differ radically. *)
let prop_planner_orca_agree =
  let catalog, orders, date_dim = Support.star_schema () in
  ignore date_dim;
  let storage = Storage.create ~nsegments:4 in
  Support.load_orders storage orders 600;
  let o_date = Mpp_catalog.Table.colref orders ~rel:0 "date" in
  let date_of_day day =
    Value.Date (Date.add_days (Date.of_ymd 2012 1 1) day)
  in
  QCheck2.Test.make ~count:40 ~name:"planner and orca agree on range queries"
    QCheck2.Gen.(pair (int_range 0 730) (int_range 0 730))
    (fun (d1, d2) ->
      let lo = min d1 d2 and hi = max d1 d2 in
      let lg =
        Logical.select
          (Expr.between (Expr.col o_date)
             (Expr.Const (date_of_day lo))
             (Expr.Const (date_of_day hi)))
          (Logical.get ~rel:0 "orders")
      in
      let p1, _ =
        Mpp_exec.Exec.run ~catalog ~storage
          (Planner.plan (Planner.create ~catalog ()) lg)
      in
      let p2, _ =
        Mpp_exec.Exec.run ~catalog ~storage
          (Orca.Optimizer.optimize (Orca.Optimizer.create ~catalog ()) lg)
      in
      Support.rows_equal p1 p2)

let () =
  Alcotest.run "planner"
    [ ("expansion",
       [ Alcotest.test_case "inheritance expansion" `Quick test_expansion;
         Alcotest.test_case "constraint exclusion" `Quick
           test_constraint_exclusion;
         Alcotest.test_case "exclusion disabled" `Quick test_exclusion_disabled ]);
      ("dynamic elimination",
       [ Alcotest.test_case "rudimentary DPE with guards" `Quick
           test_rudimentary_dpe;
         Alcotest.test_case "DPE disabled" `Quick test_dpe_disabled;
         Alcotest.test_case "multilevel unsupported" `Quick
           test_no_dpe_for_multilevel ]);
      ("dml",
       [ Alcotest.test_case "quadratic expansion" `Quick
           test_dml_quadratic_expansion ]);
      ("comparison",
       [ Alcotest.test_case "result parity with orca" `Quick
           test_parity_with_orca;
         Alcotest.test_case "plan size vs orca" `Quick test_plan_size_vs_orca ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_planner_orca_agree ]) ]

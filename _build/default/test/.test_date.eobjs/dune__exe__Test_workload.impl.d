test/test_workload.ml: Alcotest Lazy List Mpp_catalog Mpp_storage Mpp_workload Printf Support

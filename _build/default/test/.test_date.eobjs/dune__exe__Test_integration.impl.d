test/test_integration.ml: Alcotest Array Date List Mpp_catalog Mpp_exec Mpp_expr Mpp_plan Mpp_sql Mpp_storage Orca Support Value

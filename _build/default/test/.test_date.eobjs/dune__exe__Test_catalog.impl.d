test/test_catalog.ml: Alcotest Colref Date Interval List Mpp_catalog Mpp_expr Option Printf QCheck2 QCheck_alcotest Support Value

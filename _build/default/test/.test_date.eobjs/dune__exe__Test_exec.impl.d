test/test_exec.ml: Alcotest Array Colref Expr Int List Mpp_catalog Mpp_exec Mpp_expr Mpp_plan Mpp_storage Option Printf QCheck2 QCheck_alcotest Support Value

test/support.ml: Alcotest Array Colref Date Expr Float Interval List Mpp_catalog Mpp_exec Mpp_expr Mpp_storage Printf QCheck2 Value

test/test_memo.mli:

test/test_optimizer.ml: Alcotest Array Date Expr List Mpp_catalog Mpp_exec Mpp_expr Mpp_plan Mpp_stats Mpp_storage Option Orca QCheck2 QCheck_alcotest Support Value

test/test_date.ml: Alcotest Date List Mpp_expr Printf QCheck2 QCheck_alcotest

test/test_plan.ml: Alcotest Colref Expr Float List Mpp_catalog Mpp_expr Mpp_plan Value

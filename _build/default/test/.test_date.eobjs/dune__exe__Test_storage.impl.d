test/test_storage.ml: Alcotest Array Date List Mpp_catalog Mpp_expr Mpp_storage Option Printf QCheck2 QCheck_alcotest Support Value

test/test_value.ml: Alcotest List Mpp_expr QCheck2 QCheck_alcotest Support Value

test/test_placement.ml: Alcotest Expr Int List Mpp_catalog Mpp_expr Mpp_plan Option Orca Support Value

test/test_date.mli:

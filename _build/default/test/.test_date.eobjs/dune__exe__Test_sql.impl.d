test/test_sql.ml: Alcotest Expr List Mpp_expr Mpp_plan Mpp_sql Mpp_workload Orca Support Value

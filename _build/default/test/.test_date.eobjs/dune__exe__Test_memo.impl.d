test/test_memo.ml: Alcotest Expr List Mpp_catalog Mpp_exec Mpp_expr Mpp_plan Mpp_storage Option Orca Printf Value

test/test_expr.ml: Alcotest Colref Expr Interval List Mpp_expr QCheck2 QCheck_alcotest Support Value

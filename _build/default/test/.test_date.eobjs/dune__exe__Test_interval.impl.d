test/test_interval.ml: Alcotest Interval List Mpp_expr Option QCheck2 QCheck_alcotest Support Value

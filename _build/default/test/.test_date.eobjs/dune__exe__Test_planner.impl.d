test/test_planner.ml: Alcotest Date Expr List Mpp_catalog Mpp_exec Mpp_expr Mpp_plan Mpp_planner Mpp_storage Orca QCheck2 QCheck_alcotest Support Value

test/test_stats.ml: Alcotest Array Expr Float Interval List Mpp_catalog Mpp_expr Mpp_stats Mpp_storage QCheck2 QCheck_alcotest Support Value

(** Tests for {!Mpp_expr.Value}: ordering, SQL comparison semantics,
    hashing and sizing. *)

open Mpp_expr

let v_int i = Value.Int i

let test_compare_same_type () =
  Alcotest.(check bool) "int order" true (Value.compare (v_int 1) (v_int 2) < 0);
  Alcotest.(check bool) "string order" true
    (Value.compare (Value.String "a") (Value.String "b") < 0);
  Alcotest.(check bool) "date order" true
    (Value.compare
       (Value.date_of_string "2012-01-01")
       (Value.date_of_string "2013-01-01")
    < 0);
  Alcotest.(check int) "equal floats" 0
    (Value.compare (Value.Float 1.5) (Value.Float 1.5))

let test_numeric_cross_type () =
  Alcotest.(check int) "int = float when equal" 0
    (Value.compare (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool) "int < float" true
    (Value.compare (Value.Int 2) (Value.Float 2.5) < 0)

let test_null_ordering () =
  Alcotest.(check bool) "null sorts first" true
    (Value.compare Value.Null (v_int (-1000)) < 0);
  Alcotest.(check int) "null equals null structurally" 0
    (Value.compare Value.Null Value.Null)

let test_sql_compare () =
  Alcotest.(check (option int)) "null vs int is unknown" None
    (Value.sql_compare Value.Null (v_int 1));
  Alcotest.(check (option int)) "int vs null is unknown" None
    (Value.sql_compare (v_int 1) Value.Null);
  Alcotest.(check (option int)) "1 vs 1" (Some 0)
    (Value.sql_compare (v_int 1) (v_int 1))

let test_to_string () =
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "string quoted" "'x'" (Value.to_string (Value.String "x"));
  Alcotest.(check string) "date quoted" "'2013-10-01'"
    (Value.to_string (Value.date_of_string "2013-10-01"))

let test_serialized_size () =
  Alcotest.(check int) "int is 8 bytes" 8 (Value.serialized_size (v_int 7));
  Alcotest.(check int) "string is 4+len" 9
    (Value.serialized_size (Value.String "hello"))

let prop_compare_antisym =
  QCheck2.Test.make ~count:1000 ~name:"compare is antisymmetric"
    QCheck2.Gen.(pair Support.value_gen Support.value_gen)
    (fun (a, b) -> compare (Value.compare a b) 0 = compare 0 (Value.compare b a))

let prop_compare_transitive =
  QCheck2.Test.make ~count:1000 ~name:"compare is transitive"
    QCheck2.Gen.(triple Support.value_gen Support.value_gen Support.value_gen)
    (fun (a, b, c) ->
      let sorted = List.sort Value.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> Value.compare x y <= 0 && Value.compare y z <= 0
      | _ -> false)

let prop_equal_consistent_hash =
  QCheck2.Test.make ~count:1000 ~name:"equal values hash equally"
    QCheck2.Gen.(pair Support.value_gen Support.value_gen)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_size_positive =
  QCheck2.Test.make ~count:500 ~name:"serialized size is positive"
    Support.value_gen
    (fun v -> Value.serialized_size v > 0)

let () =
  Alcotest.run "value"
    [ ("unit",
       [ Alcotest.test_case "same-type compare" `Quick test_compare_same_type;
         Alcotest.test_case "numeric cross-type" `Quick test_numeric_cross_type;
         Alcotest.test_case "null ordering" `Quick test_null_ordering;
         Alcotest.test_case "sql_compare" `Quick test_sql_compare;
         Alcotest.test_case "to_string" `Quick test_to_string;
         Alcotest.test_case "serialized size" `Quick test_serialized_size ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_compare_antisym; prop_compare_transitive;
           prop_equal_consistent_hash; prop_size_positive ]) ]

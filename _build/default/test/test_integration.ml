(** End-to-end integration tests retracing the paper's narrative:
    - the Figure-2 (static) and Figure-4 (dynamic, IN-subquery) forms of the
      last-quarter query compute the same answer and prune the same
      partitions;
    - prepared statements select partitions at execution time (§1);
    - multi-level queries match a brute-force reference;
    - SQL → optimize → execute pipelines survive edge cases (empty results,
      out-of-range predicates, NULL handling). *)

open Mpp_expr
module Storage = Mpp_storage.Storage
module Plan = Mpp_plan.Plan
module Metrics = Mpp_exec.Metrics

let env () =
  let catalog, orders, date_dim = Support.star_schema () in
  let storage = Storage.create ~nsegments:4 in
  Support.load_orders storage orders 2000;
  Support.load_date_dim storage date_dim;
  (catalog, storage, orders)

let sql_run ~catalog ~storage ?params sql =
  let plan =
    Orca.Optimizer.optimize (Orca.Optimizer.create ~catalog ())
      (Mpp_sql.Sql.to_logical catalog sql)
  in
  Mpp_exec.Exec.run ?params ~catalog ~storage plan

let test_figure2_vs_figure4 () =
  let catalog, storage, orders = env () in
  (* Figure 2: static range predicate *)
  let static_rows, static_m =
    sql_run ~catalog ~storage
      "SELECT avg(amount) FROM orders WHERE date BETWEEN '2013-10-01' AND \
       '2013-12-31'"
  in
  (* Figure 4: the same months selected through the dimension table *)
  let dynamic_rows, dynamic_m =
    sql_run ~catalog ~storage
      "SELECT avg(amount) FROM orders WHERE date IN (SELECT d_date FROM \
       date_dim WHERE d_year = 2013 AND d_month BETWEEN 10 AND 12)"
  in
  Support.check_rows_equal "figure 2 = figure 4" static_rows dynamic_rows;
  let parts m = Metrics.parts_scanned_of m ~root_oid:orders.Mpp_catalog.Table.oid in
  Alcotest.(check int) "static scans 3" 3 (parts static_m);
  Alcotest.(check int) "dynamic scans 3 too" 3 (parts dynamic_m)

let test_prepared_statement_rebinding () =
  let catalog, storage, orders = env () in
  let plan =
    Orca.Optimizer.optimize (Orca.Optimizer.create ~catalog ())
      (Mpp_sql.Sql.to_logical catalog
         "SELECT count(*) FROM orders WHERE date >= $1 AND date < $2")
  in
  let exec lo hi =
    let params =
      [| Value.Null; Value.date_of_string lo; Value.date_of_string hi |]
    in
    let rows, m = Mpp_exec.Exec.run ~params ~catalog ~storage plan in
    ( (match rows with [ r ] -> Value.to_int r.(0) | _ -> -1),
      Metrics.parts_scanned_of m ~root_oid:orders.Mpp_catalog.Table.oid )
  in
  let c1, p1 = exec "2012-01-01" "2012-02-01" in
  let c2, p2 = exec "2013-01-01" "2014-01-01" in
  Alcotest.(check int) "one month = one partition" 1 p1;
  Alcotest.(check int) "one year = twelve partitions" 12 p2;
  Alcotest.(check bool) "counts differ accordingly" true (c2 > c1 && c1 > 0);
  let c_all, _ = exec "2012-01-01" "2014-01-01" in
  Alcotest.(check int) "both executions partition the data" c_all (c1 + c2 + (c_all - c1 - c2))

let test_multilevel_vs_bruteforce () =
  let catalog, orders = Support.multilevel_schema () in
  let storage = Storage.create ~nsegments:4 in
  let start = Date.of_ymd 2012 1 1 in
  let data =
    List.init 500 (fun i ->
        [| Value.Int i;
           Value.Float (float_of_int (i mod 37));
           Value.Date (Date.add_days start (i * 365 / 500));
           Value.String (if i mod 3 = 0 then "east" else "west") |])
  in
  List.iter (Storage.insert storage orders) data;
  let cases =
    [ "SELECT count(*) FROM orders WHERE date >= '2012-06-01' AND region = \
       'east'";
      "SELECT count(*) FROM orders WHERE region = 'west'";
      "SELECT count(*) FROM orders WHERE date < '2012-02-01'" ]
  in
  let brute pred =
    List.length (List.filter pred data)
  in
  let expected =
    [ brute (fun t ->
          Value.compare t.(2) (Value.date_of_string "2012-06-01") >= 0
          && t.(3) = Value.String "east");
      brute (fun t -> t.(3) = Value.String "west");
      brute (fun t ->
          Value.compare t.(2) (Value.date_of_string "2012-02-01") < 0) ]
  in
  List.iter2
    (fun sql want ->
      let rows, _ = sql_run ~catalog ~storage sql in
      match rows with
      | [ r ] -> Alcotest.(check int) sql want (Value.to_int r.(0))
      | _ -> Alcotest.fail "one row expected")
    cases expected

let test_empty_results () =
  let catalog, storage, orders = env () in
  let rows, m =
    sql_run ~catalog ~storage
      "SELECT id, amount FROM orders WHERE date > '2020-01-01'"
  in
  Alcotest.(check int) "no rows" 0 (List.length rows);
  Alcotest.(check int) "no partitions scanned at all" 0
    (Metrics.parts_scanned_of m ~root_oid:orders.Mpp_catalog.Table.oid);
  let agg_rows, _ =
    sql_run ~catalog ~storage
      "SELECT count(*), avg(amount) FROM orders WHERE date > '2020-01-01'"
  in
  match agg_rows with
  | [ r ] ->
      Alcotest.(check bool) "count 0, avg null" true
        (r.(0) = Value.Int 0 && Value.is_null r.(1))
  | _ -> Alcotest.fail "scalar agg row expected"

let test_group_by_partition_key_function () =
  let catalog, storage, _ = env () in
  let rows, _ =
    sql_run ~catalog ~storage
      "SELECT year(date), count(*) FROM orders GROUP BY year(date)"
  in
  Alcotest.(check int) "two years" 2 (List.length rows);
  let total =
    List.fold_left (fun acc r -> acc + Value.to_int r.(1)) 0 rows
  in
  Alcotest.(check int) "all rows grouped" 2000 total

let test_update_via_sql_moves_rows () =
  let catalog, storage, _orders = env () in
  let updated_rows, _ =
    sql_run ~catalog ~storage
      "UPDATE orders SET date = '2013-06-15' WHERE date < '2012-02-01'"
  in
  let updated =
    match updated_rows with [ r ] -> Value.to_int r.(0) | _ -> -1
  in
  Alcotest.(check bool) "updated something" true (updated > 0);
  let leftover, _ =
    sql_run ~catalog ~storage
      "SELECT count(*) FROM orders WHERE date < '2012-02-01'"
  in
  (match leftover with
  | [ r ] -> Alcotest.(check bool) "January emptied" true (r.(0) = Value.Int 0)
  | _ -> Alcotest.fail "count row");
  let june, _ =
    sql_run ~catalog ~storage
      "SELECT count(*) FROM orders WHERE date = '2013-06-15'"
  in
  match june with
  | [ r ] ->
      Alcotest.(check bool) "rows landed in June partition" true
        (Value.to_int r.(0) >= updated)
  | _ -> Alcotest.fail "count row"

let test_insert_via_sql () =
  let catalog, storage, orders = env () in
  let before, _ = sql_run ~catalog ~storage "SELECT count(*) FROM orders" in
  let inserted, _ =
    sql_run ~catalog ~storage
      "INSERT INTO orders (id, amount, date) VALUES (90001, 5.5, \
       '2013-08-15'), (90002, 6.5, '2012-01-02')"
  in
  (match inserted with
  | [ r ] -> Alcotest.(check bool) "2 inserted" true (r.(0) = Value.Int 2)
  | _ -> Alcotest.fail "count row");
  let after, _ = sql_run ~catalog ~storage "SELECT count(*) FROM orders" in
  (match (before, after) with
  | [ b ], [ a ] ->
      Alcotest.(check int) "count grew by 2" (Value.to_int b.(0) + 2)
        (Value.to_int a.(0))
  | _ -> Alcotest.fail "count rows");
  (* the new rows were routed to the right partitions *)
  let aug, m =
    sql_run ~catalog ~storage
      "SELECT count(*) FROM orders WHERE id = 90001 AND date = '2013-08-15'"
  in
  (match aug with
  | [ r ] -> Alcotest.(check bool) "row findable" true (r.(0) = Value.Int 1)
  | _ -> Alcotest.fail "count row");
  Alcotest.(check int) "looked in exactly one partition" 1
    (Metrics.parts_scanned_of m ~root_oid:orders.Mpp_catalog.Table.oid);
  (* inserting outside every partition's range is a constraint violation *)
  Alcotest.(check bool) "out-of-range insert rejected" true
    (try
       ignore
         (sql_run ~catalog ~storage
            "INSERT INTO orders VALUES (1, 1.0, '2031-01-01')");
       false
     with Mpp_storage.Storage.No_partition_for_tuple _ -> true);
  (* parameterized insert *)
  let plan =
    Orca.Optimizer.optimize (Orca.Optimizer.create ~catalog ())
      (Mpp_sql.Sql.to_logical catalog
         "INSERT INTO orders VALUES ($1, 2.0, '2012-06-06')")
  in
  let params = [| Value.Null; Value.Int 90003 |] in
  let rows, _ = Mpp_exec.Exec.run ~params ~catalog ~storage plan in
  match rows with
  | [ r ] -> Alcotest.(check bool) "param insert" true (r.(0) = Value.Int 1)
  | _ -> Alcotest.fail "count row"

let test_delete_via_sql () =
  let catalog, storage, orders = env () in
  ignore orders;
  let before, _ = sql_run ~catalog ~storage "SELECT count(*) FROM orders" in
  let deleted_rows, _ =
    sql_run ~catalog ~storage "DELETE FROM orders WHERE date >= '2013-07-01'"
  in
  let after, _ = sql_run ~catalog ~storage "SELECT count(*) FROM orders" in
  match (before, deleted_rows, after) with
  | [ b ], [ d ], [ a ] ->
      Alcotest.(check int) "before = after + deleted"
        (Value.to_int b.(0))
        (Value.to_int a.(0) + Value.to_int d.(0))
  | _ -> Alcotest.fail "count rows"

let test_three_segment_cluster () =
  (* the same pipeline on a differently sized cluster *)
  let catalog, orders, date_dim = Support.star_schema () in
  let storage = Storage.create ~nsegments:7 in
  Support.load_orders storage orders 999;
  Support.load_date_dim storage date_dim;
  let rows, m =
    sql_run ~catalog ~storage
      "SELECT count(*) FROM orders o, date_dim d WHERE o.date = d.d_date AND \
       d.d_year = 2012 AND d.d_month = 6"
  in
  (match rows with
  | [ r ] -> Alcotest.(check bool) "plausible count" true (Value.to_int r.(0) > 0)
  | _ -> Alcotest.fail "one row");
  Alcotest.(check int) "one partition on 7 segments" 1
    (Metrics.parts_scanned_of m ~root_oid:orders.Mpp_catalog.Table.oid)

let () =
  Alcotest.run "integration"
    [ ("paper narrative",
       [ Alcotest.test_case "figure 2 vs figure 4" `Quick test_figure2_vs_figure4;
         Alcotest.test_case "prepared statements" `Quick
           test_prepared_statement_rebinding;
         Alcotest.test_case "multi-level vs brute force" `Quick
           test_multilevel_vs_bruteforce ]);
      ("edge cases",
       [ Alcotest.test_case "empty results" `Quick test_empty_results;
         Alcotest.test_case "group by key function" `Quick
           test_group_by_partition_key_function;
         Alcotest.test_case "update moves across partitions" `Quick
           test_update_via_sql_moves_rows;
         Alcotest.test_case "insert" `Quick test_insert_via_sql;
         Alcotest.test_case "delete" `Quick test_delete_via_sql;
         Alcotest.test_case "seven segments" `Quick test_three_segment_cluster ]) ]

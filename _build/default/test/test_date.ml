(** Calendar arithmetic tests ({!Mpp_expr.Date}). *)

open Mpp_expr

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_epoch () =
  check_int "1970-01-01 is day 0" 0 (Date.of_ymd 1970 1 1);
  check_int "1970-01-02 is day 1" 1 (Date.of_ymd 1970 1 2);
  check_int "1969-12-31 is day -1" (-1) (Date.of_ymd 1969 12 31)

let test_roundtrip_known () =
  List.iter
    (fun (y, m, d) ->
      let t = Date.of_ymd y m d in
      Alcotest.(check (triple int int int))
        (Printf.sprintf "%04d-%02d-%02d roundtrips" y m d)
        (y, m, d) (Date.to_ymd t))
    [ (1970, 1, 1); (2000, 2, 29); (1900, 3, 1); (2012, 12, 31);
      (2013, 10, 1); (1992, 1, 1); (2400, 2, 29); (1, 1, 1) ]

let test_leap_years () =
  Alcotest.(check bool) "2000 is leap" true (Date.is_leap_year 2000);
  Alcotest.(check bool) "1900 is not leap" false (Date.is_leap_year 1900);
  Alcotest.(check bool) "2012 is leap" true (Date.is_leap_year 2012);
  Alcotest.(check bool) "2013 is not leap" false (Date.is_leap_year 2013);
  check_int "Feb 2012 has 29 days" 29 (Date.days_in_month 2012 2);
  check_int "Feb 2013 has 28 days" 28 (Date.days_in_month 2013 2);
  check_int "2012 has 366 days" 366 (Date.days_in_year 2012)

let test_day_of_week () =
  (* 1970-01-01 was a Thursday = 4 in ISO numbering *)
  check_int "epoch is Thursday" 4 (Date.day_of_week (Date.of_ymd 1970 1 1));
  check_int "2013-10-01 is Tuesday" 2 (Date.day_of_week (Date.of_ymd 2013 10 1));
  check_int "2012-01-01 is Sunday" 7 (Date.day_of_week (Date.of_ymd 2012 1 1))

let test_add_months () =
  check_str "add 1 month" "2012-02-01"
    (Date.to_string (Date.add_months (Date.of_ymd 2012 1 15) 1));
  check_str "add 12 months" "2013-01-01"
    (Date.to_string (Date.add_months (Date.of_ymd 2012 1 1) 12));
  check_str "add crosses year" "2013-02-01"
    (Date.to_string (Date.add_months (Date.of_ymd 2012 11 30) 3));
  check_str "negative months" "2011-11-01"
    (Date.to_string (Date.add_months (Date.of_ymd 2012 1 10) (-2)))

let test_quarter () =
  check_int "January is Q1" 1 (Date.quarter (Date.of_ymd 2013 1 15));
  check_int "June is Q2" 2 (Date.quarter (Date.of_ymd 2013 6 30));
  check_int "October is Q4" 4 (Date.quarter (Date.of_ymd 2013 10 1))

let test_strings () =
  check_str "to_string pads" "2013-01-05"
    (Date.to_string (Date.of_ymd 2013 1 5));
  check_int "of_string inverse" (Date.of_ymd 2013 10 1)
    (Date.of_string "2013-10-01");
  Alcotest.check_raises "of_string rejects garbage"
    (Invalid_argument "Date.of_string: oops") (fun () ->
      ignore (Date.of_string "oops"))

let test_invalid () =
  Alcotest.check_raises "month 13 rejected"
    (Invalid_argument "Date.of_ymd: month out of range") (fun () ->
      ignore (Date.of_ymd 2013 13 1));
  Alcotest.check_raises "Feb 30 rejected"
    (Invalid_argument "Date.of_ymd: day out of range") (fun () ->
      ignore (Date.of_ymd 2013 2 30))

let prop_roundtrip =
  QCheck2.Test.make ~count:1000 ~name:"to_ymd(of_ymd) roundtrips"
    QCheck2.Gen.(int_range (-100_000) 100_000)
    (fun t ->
      let y, m, d = Date.to_ymd t in
      Date.of_ymd y m d = t)

let prop_add_days_ordered =
  QCheck2.Test.make ~count:500 ~name:"add_days respects order"
    QCheck2.Gen.(pair (int_range (-10_000) 10_000) (int_range 1 5_000))
    (fun (t, n) -> Date.compare (Date.add_days t n) t > 0)

let prop_month_boundaries =
  QCheck2.Test.make ~count:500 ~name:"add_months yields first-of-month"
    QCheck2.Gen.(pair (int_range 0 20_000) (int_range (-30) 30))
    (fun (t, n) -> Date.day (Date.add_months t n) = 1)

let () =
  Alcotest.run "date"
    [ ("unit",
       [ Alcotest.test_case "epoch" `Quick test_epoch;
         Alcotest.test_case "roundtrip known dates" `Quick test_roundtrip_known;
         Alcotest.test_case "leap years" `Quick test_leap_years;
         Alcotest.test_case "day of week" `Quick test_day_of_week;
         Alcotest.test_case "add months" `Quick test_add_months;
         Alcotest.test_case "quarter" `Quick test_quarter;
         Alcotest.test_case "string conversions" `Quick test_strings;
         Alcotest.test_case "invalid dates" `Quick test_invalid ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_roundtrip; prop_add_days_ordered; prop_month_boundaries ]) ]

(** Expression tests: three-valued evaluation, structural helpers, and —
    crucially — the soundness of {!Mpp_expr.Expr.restriction}, the analysis
    behind partition selection. *)

open Mpp_expr

let key = Colref.make ~rel:0 ~index:0 ~name:"k" ~dtype:Value.Tint
let other = Colref.make ~rel:0 ~index:1 ~name:"x" ~dtype:Value.Tint
let remote = Colref.make ~rel:1 ~index:0 ~name:"a" ~dtype:Value.Tint

let env_with kv xv =
  {
    Expr.col =
      (fun c ->
        if Colref.equal c key then kv
        else if Colref.equal c other then xv
        else invalid_arg "unbound");
    Expr.param = (fun _ -> invalid_arg "no params");
  }

let eval_b e kv = Expr.eval (env_with kv Value.Null) e

let test_eval_three_valued () =
  let p = Expr.lt (Expr.col key) (Expr.int 5) in
  Alcotest.(check bool) "3 < 5" true (eval_b p (Value.Int 3) = Value.Bool true);
  Alcotest.(check bool) "7 < 5" true (eval_b p (Value.Int 7) = Value.Bool false);
  Alcotest.(check bool) "null < 5 unknown" true
    (eval_b p Value.Null = Value.Null);
  (* short-circuit laws *)
  Alcotest.(check bool) "false AND unknown = false" true
    (eval_b (Expr.And [ Expr.false_; p ]) Value.Null = Value.Bool false);
  Alcotest.(check bool) "true OR unknown = true" true
    (eval_b (Expr.Or [ Expr.true_; p ]) Value.Null = Value.Bool true);
  Alcotest.(check bool) "true AND unknown = unknown" true
    (eval_b (Expr.And [ Expr.true_; p ]) Value.Null = Value.Null);
  Alcotest.(check bool) "NOT unknown = unknown" true
    (eval_b (Expr.Not p) Value.Null = Value.Null)

let test_eval_pred_filters_null () =
  let p = Expr.eq (Expr.col key) (Expr.int 1) in
  Alcotest.(check bool) "unknown rejects the row" false
    (Expr.eval_pred (env_with Value.Null Value.Null) p)

let test_in_list_null () =
  let p = Expr.In_list (Expr.col key, [ Value.Int 1; Value.Null ]) in
  Alcotest.(check bool) "1 IN (1, null)" true
    (eval_b p (Value.Int 1) = Value.Bool true);
  Alcotest.(check bool) "2 IN (1, null) is unknown" true
    (eval_b p (Value.Int 2) = Value.Null)

let test_arith () =
  let env = env_with (Value.Int 7) (Value.Int 2) in
  Alcotest.(check bool) "7 % 2 = 1" true
    (Expr.eval env (Expr.Arith (Expr.Mod, Expr.col key, Expr.col other))
     = Value.Int 1);
  Alcotest.(check bool) "div by zero is null" true
    (Expr.eval env (Expr.Arith (Expr.Div, Expr.col key, Expr.int 0))
     = Value.Null)

let test_date_functions () =
  let env = env_with (Value.date_of_string "2013-10-01") Value.Null in
  Alcotest.(check bool) "year()" true
    (Expr.eval env (Expr.Func ("year", [ Expr.col key ])) = Value.Int 2013);
  Alcotest.(check bool) "quarter()" true
    (Expr.eval env (Expr.Func ("quarter", [ Expr.col key ])) = Value.Int 4)

let test_conjuncts () =
  let a = Expr.eq (Expr.col key) (Expr.int 1)
  and b = Expr.lt (Expr.col other) (Expr.int 2) in
  Alcotest.(check int) "nested conjunction flattens" 3
    (List.length (Expr.conjuncts (Expr.And [ a; Expr.And [ b; a ] ])));
  Alcotest.(check bool) "conj of none is true" true
    (Expr.equal (Expr.conj []) Expr.true_);
  Alcotest.(check bool) "conj of one is itself" true
    (Expr.equal (Expr.conj [ a ]) a)

let test_find_pred_on_key () =
  let on_key = Expr.ge (Expr.col key) (Expr.int 10)
  and off_key = Expr.lt (Expr.col other) (Expr.int 5)
  and join_pred = Expr.eq (Expr.col key) (Expr.col remote) in
  (match Expr.find_pred_on_key key (Expr.And [ on_key; off_key ]) with
  | Some e -> Alcotest.(check bool) "extracts key conjunct" true (Expr.equal e on_key)
  | None -> Alcotest.fail "expected a predicate");
  Alcotest.(check bool) "none when key absent" true
    (Expr.find_pred_on_key key off_key = None);
  (match Expr.find_pred_on_key key join_pred with
  | Some e ->
      Alcotest.(check bool) "join predicates count (DPE)" true
        (Expr.equal e join_pred)
  | None -> Alcotest.fail "expected the join predicate")

let test_find_preds_on_keys_multilevel () =
  let k2 = Colref.make ~rel:0 ~index:2 ~name:"k2" ~dtype:Value.Tstring in
  let p =
    Expr.And
      [ Expr.ge (Expr.col key) (Expr.int 1);
        Expr.eq (Expr.col k2) (Expr.str "east") ]
  in
  match Expr.find_preds_on_keys [ key; k2 ] p with
  | Some [ Some _; Some _ ] -> ()
  | _ -> Alcotest.fail "expected predicates on both levels"

let test_subst_and_params () =
  let p = Expr.eq (Expr.col key) (Expr.col remote) in
  let p' =
    Expr.subst_cols
      (fun c -> if Colref.equal c remote then Some (Value.Int 9) else None)
      p
  in
  Alcotest.(check bool) "remote col replaced" true
    (Expr.equal p' (Expr.eq (Expr.col key) (Expr.int 9)));
  let q = Expr.lt (Expr.col key) (Expr.Param 1) in
  let q' = Expr.bind_params (fun i -> if i = 1 then Some (Value.Int 4) else None) q in
  Alcotest.(check bool) "param bound" true
    (Expr.equal q' (Expr.lt (Expr.col key) (Expr.int 4)))

let test_restriction_shapes () =
  let restr p = Expr.restriction key p in
  (match restr (Expr.eq (Expr.col key) (Expr.int 5)) with
  | Some s ->
      Alcotest.(check bool) "eq yields point" true
        (Interval.Set.contains s (Value.Int 5)
        && not (Interval.Set.contains s (Value.Int 6)))
  | None -> Alcotest.fail "eq analyzable");
  (match restr (Expr.between (Expr.col key) (Expr.int 1) (Expr.int 3)) with
  | Some s ->
      Alcotest.(check bool) "between bounds" true
        (Interval.Set.contains s (Value.Int 1)
        && Interval.Set.contains s (Value.Int 3)
        && not (Interval.Set.contains s (Value.Int 4)))
  | None -> Alcotest.fail "between analyzable");
  (match restr (Expr.Not (Expr.eq (Expr.col key) (Expr.int 5))) with
  | Some s ->
      Alcotest.(check bool) "not-eq excludes the point" true
        (not (Interval.Set.contains s (Value.Int 5))
        && Interval.Set.contains s (Value.Int 4))
  | None -> Alcotest.fail "negated eq analyzable");
  Alcotest.(check bool) "opaque predicate is unanalyzable" true
    (restr (Expr.ge (Expr.Func ("abs", [ Expr.col key ])) (Expr.int 1)) = None);
  (* AND may skip opaque conjuncts (sound over-approximation) *)
  (match
     restr
       (Expr.And
          [ Expr.ge (Expr.Func ("abs", [ Expr.col key ])) (Expr.int 1);
            Expr.le (Expr.col key) (Expr.int 10) ])
   with
  | Some s ->
      Alcotest.(check bool) "AND keeps the analyzable half" true
        (Interval.Set.contains s (Value.Int 10)
        && not (Interval.Set.contains s (Value.Int 11)))
  | None -> Alcotest.fail "partially analyzable AND");
  (* OR with an opaque branch must give up *)
  Alcotest.(check bool) "OR with opaque branch gives up" true
    (restr
       (Expr.Or
          [ Expr.eq (Expr.col key) (Expr.int 1);
            Expr.ge (Expr.Func ("abs", [ Expr.col key ])) (Expr.int 5) ])
    = None)

(* The load-bearing property: restriction never excludes a key value for
   which the predicate can be true. *)
let prop_restriction_sound =
  QCheck2.Test.make ~count:3000
    ~name:"restriction soundness: eval true => key in restriction"
    QCheck2.Gen.(pair (Support.predicate_gen key) Support.int_value_gen)
    (fun (pred, v) ->
      match Expr.restriction key pred with
      | None -> true
      | Some set ->
          let env = env_with v Value.Null in
          (not (Expr.eval_pred env pred)) || Interval.Set.contains set v)

let prop_conj_equiv =
  QCheck2.Test.make ~count:1000 ~name:"conj [a;b] evaluates like And [a;b]"
    QCheck2.Gen.(triple (Support.predicate_gen key) (Support.predicate_gen key)
                   Support.int_value_gen)
    (fun (a, b, v) ->
      let env = env_with v Value.Null in
      Expr.eval_pred env (Expr.conj [ a; b ])
      = Expr.eval_pred env (Expr.And [ a; b ]))

let prop_push_not_preserves =
  QCheck2.Test.make ~count:1500 ~name:"restriction of NOT p is sound too"
    QCheck2.Gen.(pair (Support.predicate_gen key) Support.int_value_gen)
    (fun (pred, v) ->
      let notp = Expr.Not pred in
      match Expr.restriction key notp with
      | None -> true
      | Some set ->
          let env = env_with v Value.Null in
          (not (Expr.eval_pred env notp)) || Interval.Set.contains set v)

let () =
  Alcotest.run "expr"
    [ ("evaluation",
       [ Alcotest.test_case "three-valued logic" `Quick test_eval_three_valued;
         Alcotest.test_case "filters reject unknown" `Quick
           test_eval_pred_filters_null;
         Alcotest.test_case "IN with null" `Quick test_in_list_null;
         Alcotest.test_case "arithmetic" `Quick test_arith;
         Alcotest.test_case "date functions" `Quick test_date_functions ]);
      ("structure",
       [ Alcotest.test_case "conjuncts/conj" `Quick test_conjuncts;
         Alcotest.test_case "FindPredOnKey" `Quick test_find_pred_on_key;
         Alcotest.test_case "multi-level FindPredOnKey" `Quick
           test_find_preds_on_keys_multilevel;
         Alcotest.test_case "subst and params" `Quick test_subst_and_params ]);
      ("restriction",
       [ Alcotest.test_case "shapes" `Quick test_restriction_shapes ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_restriction_sound; prop_conj_equiv; prop_push_not_preserves ]) ]

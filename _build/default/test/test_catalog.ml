(** Catalog and partition-metadata tests: the partitioning function f_T
    ({!Mpp_catalog.Partition.route}), the selection function f*_T
    ({!Mpp_catalog.Partition.select}), multi-level layouts, default
    partitions and the Table-1 builtins. *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Part = Mpp_catalog.Partition
module Dist = Mpp_catalog.Distribution
module Table = Mpp_catalog.Table
module Builtins = Mpp_catalog.Builtins

let d = Value.date_of_string

let test_monthly_ranges () =
  let cs = Part.monthly_ranges ~start_year:2012 ~start_month:1 ~months:24 in
  Alcotest.(check int) "24 constraints" 24 (List.length cs);
  (* contiguity: every day of the two years is covered exactly once *)
  let start = Date.of_ymd 2012 1 1 in
  for day = 0 to 730 do
    let v = Value.Date (Date.add_days start day) in
    let hits =
      List.length
        (List.filter
           (function
             | Part.Cset s -> Interval.Set.contains s v
             | Part.Default -> false)
           cs)
    in
    if Date.add_days start day < Date.of_ymd 2014 1 1 then
      Alcotest.(check int) (Printf.sprintf "day %d covered once" day) 1 hits
  done

let test_route_single_level () =
  let catalog, orders = Support.orders_schema () in
  ignore catalog;
  let p = Option.get orders.Table.partitioning in
  (match Part.route p [| d "2012-01-15" |] with
  | Some lf ->
      Alcotest.(check string) "first month" "orders_1_prt_1" lf.Part.leaf_name
  | None -> Alcotest.fail "in-range date must route");
  (match Part.route p [| d "2013-12-31" |] with
  | Some lf ->
      Alcotest.(check string) "last month" "orders_1_prt_24" lf.Part.leaf_name
  | None -> Alcotest.fail "in-range date must route");
  Alcotest.(check bool) "out of range routes to ⊥" true
    (Part.route p [| d "2014-06-01" |] = None);
  Alcotest.(check bool) "null routes to ⊥ (no default)" true
    (Part.route p [| Value.Null |] = None)

let test_default_partition () =
  let catalog = Cat.create () in
  let constrs =
    Part.int_ranges ~start:0 ~width:10 ~count:3 @ [ Part.Default ]
  in
  let p =
    Part.single_level
      ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
      ~key_index:0 ~key_name:"k" ~scheme:Part.Range ~table_name:"t" constrs
  in
  let leaf_of v =
    match Part.route p [| v |] with
    | Some lf -> lf.Part.leaf_name
    | None -> "⊥"
  in
  Alcotest.(check string) "covered value in range part" "t_1_prt_1"
    (leaf_of (Value.Int 5));
  Alcotest.(check string) "uncovered value in default" "t_1_prt_4"
    (leaf_of (Value.Int 999));
  Alcotest.(check string) "null lands in default" "t_1_prt_4"
    (leaf_of Value.Null);
  (* selection: a restriction outside the ranges keeps only the default *)
  let sel r = Part.select_oids p [| Some r |] in
  Alcotest.(check int) "out-of-range restriction selects default only" 1
    (List.length (sel (Interval.Set.point (Value.Int 500))));
  Alcotest.(check int) "in-range point selects its part only" 1
    (List.length (sel (Interval.Set.point (Value.Int 5))));
  Alcotest.(check int)
    "restriction across covered+uncovered selects part and default" 2
    (List.length
       (sel
          (Interval.Set.of_list
             [ Interval.point (Value.Int 5); Interval.point (Value.Int 500) ])))

let test_select_single_level () =
  let _, orders = Support.orders_schema () in
  let p = Option.get orders.Table.partitioning in
  let q4_2013 =
    Interval.Set.of_interval_opt
      (Interval.closed_open (d "2013-10-01") (d "2014-01-01"))
  in
  Alcotest.(check int) "Q4 selects 3 parts" 3
    (List.length (Part.select_oids p [| Some q4_2013 |]));
  Alcotest.(check int) "no restriction selects all" 24
    (List.length (Part.select_oids p [| None |]));
  Alcotest.(check int) "empty restriction selects none" 0
    (List.length (Part.select_oids p [| Some Interval.Set.empty |]))

let test_multilevel_figure10 () =
  (* the paper's Figure 10: month × region selection *)
  let _, orders = Support.multilevel_schema () in
  let p = Option.get orders.Table.partitioning in
  Alcotest.(check int) "12 months x 2 regions" 24 (Part.nparts p);
  let jan =
    Interval.Set.of_interval_opt
      (Interval.closed_open (d "2012-01-01") (d "2012-02-01"))
  in
  let east = Interval.Set.point (Value.String "east") in
  Alcotest.(check int) "date only: one month, all regions" 2
    (List.length (Part.select_oids p [| Some jan; None |]));
  Alcotest.(check int) "region only: all months, one region" 12
    (List.length (Part.select_oids p [| None; Some east |]));
  Alcotest.(check int) "both: exactly one leaf" 1
    (List.length (Part.select_oids p [| Some jan; Some east |]));
  Alcotest.(check int) "Φ: all leaves" 24
    (List.length (Part.select_oids p [| None; None |]))

let test_multilevel_route () =
  let _, orders = Support.multilevel_schema () in
  let p = Option.get orders.Table.partitioning in
  match Part.route p [| d "2012-03-10"; Value.String "west" |] with
  | Some lf ->
      (* level-1 part 3 (March), level-2 part 2 (west) *)
      Alcotest.(check string) "routes by both levels" "orders_1_prt_3_2_prt_2"
        lf.Part.leaf_name
  | None -> Alcotest.fail "must route"

let test_three_level_partitioning () =
  (* month × region × channel: the §2.4 machinery at depth 3 *)
  let catalog = Cat.create () in
  let p =
    Part.multi_level
      ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
      ~table_name:"t"
      [ ({ Part.key_index = 0; key_name = "date"; scheme = Part.Range },
         Part.monthly_ranges ~start_year:2012 ~start_month:1 ~months:6);
        ({ Part.key_index = 1; key_name = "region"; scheme = Part.Categorical },
         Part.categorical [ [ Value.String "east" ]; [ Value.String "west" ] ]);
        ({ Part.key_index = 2; key_name = "channel"; scheme = Part.Categorical },
         Part.categorical
           [ [ Value.String "web" ]; [ Value.String "store" ];
             [ Value.String "phone" ] ]) ]
  in
  Alcotest.(check int) "6 x 2 x 3 leaves" 36 (Part.nparts p);
  Alcotest.(check int) "3 levels" 3 (Part.nlevels p);
  (* route hits exactly one leaf and selection composes across levels *)
  (match Part.route p [| d "2012-03-10"; Value.String "west"; Value.String "phone" |]
   with
  | Some lf ->
      Alcotest.(check string) "deep leaf name" "t_1_prt_3_2_prt_2_3_prt_3"
        lf.Part.leaf_name
  | None -> Alcotest.fail "must route");
  let mar =
    Interval.Set.of_interval_opt
      (Interval.closed_open (d "2012-03-01") (d "2012-04-01"))
  in
  Alcotest.(check int) "one month, all below" 6
    (List.length (Part.select_oids p [| Some mar; None; None |]));
  Alcotest.(check int) "month+region" 3
    (List.length
       (Part.select_oids p
          [| Some mar; Some (Interval.Set.point (Value.String "east")); None |]));
  Alcotest.(check int) "fully pinned" 1
    (List.length
       (Part.select_oids p
          [| Some mar;
             Some (Interval.Set.point (Value.String "east"));
             Some (Interval.Set.point (Value.String "web")) |]))

let test_catalog_registry () =
  let catalog, orders = Support.orders_schema () in
  Alcotest.(check bool) "find by name" true (Cat.find catalog "orders" == orders);
  Alcotest.(check bool) "find by oid" true
    (Cat.find_oid catalog orders.Table.oid == orders);
  Alcotest.(check bool) "find_opt misses" true (Cat.find_opt catalog "nope" = None);
  (* leaf → root mapping *)
  let p = Option.get orders.Table.partitioning in
  let leaf = Part.leaf_oids p |> List.hd in
  Alcotest.(check (option int)) "leaf resolves to root"
    (Some orders.Table.oid)
    (Cat.root_of_leaf catalog leaf);
  Alcotest.check_raises "duplicate table rejected"
    (Invalid_argument "Catalog.add_table: duplicate table orders") (fun () ->
      ignore
        (Cat.add_table catalog ~name:"orders" ~columns:[ ("x", Value.Tint) ]
           ~distribution:Dist.Random ()))

let test_table_helpers () =
  let _, orders = Support.orders_schema () in
  Alcotest.(check int) "col_index" 2 (Table.col_index orders "date");
  Alcotest.(check bool) "col_type" true (Table.col_type orders "date" = Value.Tdate);
  let keys = Table.part_key_colrefs orders ~rel:7 in
  (match keys with
  | [ k ] ->
      Alcotest.(check int) "key rel" 7 k.Colref.rel;
      Alcotest.(check string) "key name" "date" k.Colref.name
  | _ -> Alcotest.fail "one partitioning key");
  Alcotest.(check int) "nparts" 24 (Table.nparts orders)

let test_builtins () =
  let catalog, orders = Support.orders_schema () in
  let oid = orders.Table.oid in
  Alcotest.(check int) "partition_expansion yields all leaves" 24
    (List.length (Builtins.partition_expansion catalog oid));
  (match Builtins.partition_selection catalog oid [| d "2013-10-15" |] with
  | Some leaf ->
      Alcotest.(check bool) "selection returns a leaf of the root" true
        (List.mem leaf (Builtins.partition_expansion catalog oid))
  | None -> Alcotest.fail "in-range value selects a partition");
  Alcotest.(check bool) "out-of-range selection is ⊥" true
    (Builtins.partition_selection catalog oid [| d "2030-01-01" |] = None);
  let constraints = Builtins.partition_constraints catalog oid in
  Alcotest.(check int) "one constraint row per leaf" 24
    (List.length constraints);
  let first = List.hd constraints in
  Alcotest.(check bool) "first partition starts at 2012-01-01 inclusive" true
    (first.Builtins.min = Some (d "2012-01-01") && first.Builtins.min_incl);
  Alcotest.(check bool) "first partition ends before 2012-02-01" true
    (first.Builtins.max = Some (d "2012-02-01") && not first.Builtins.max_incl)

(* f*_T soundness: whatever leaf f_T routes a value to is among the leaves
   f*_T selects for any restriction containing that value. *)
let prop_select_covers_route =
  let catalog = Cat.create () in
  let constrs = Part.int_ranges ~start:0 ~width:7 ~count:10 @ [ Part.Default ] in
  let p =
    Part.single_level
      ~alloc_oid:(fun () -> Cat.alloc_oid catalog)
      ~key_index:0 ~key_name:"k" ~scheme:Part.Range ~table_name:"t" constrs
  in
  QCheck2.Test.make ~count:2000
    ~name:"f*_T never drops the leaf f_T routes to"
    QCheck2.Gen.(pair Support.int_value_gen Support.interval_set_gen)
    (fun (v, restriction) ->
      if not (Interval.Set.contains restriction v) then true
      else
        match Part.route p [| v |] with
        | None -> true
        | Some lf ->
            List.mem lf.Part.leaf_oid
              (Part.select_oids p [| Some restriction |]))

let prop_route_deterministic =
  let _, orders = Support.orders_schema () in
  let p = Option.get orders.Mpp_catalog.Table.partitioning in
  QCheck2.Test.make ~count:1000 ~name:"f_T routes each date to exactly one leaf"
    QCheck2.Gen.(int_range 0 730)
    (fun day ->
      let v = Value.Date (Date.add_days (Date.of_ymd 2012 1 1) day) in
      match Part.route p [| v |] with
      | None -> false
      | Some lf -> (
          match Part.find_leaf p lf.Part.leaf_oid with
          | Some lf' -> lf == lf'
          | None -> false))

let () =
  Alcotest.run "catalog"
    [ ("partitioning",
       [ Alcotest.test_case "monthly ranges contiguous" `Quick
           test_monthly_ranges;
         Alcotest.test_case "route (f_T)" `Quick test_route_single_level;
         Alcotest.test_case "default partition" `Quick test_default_partition;
         Alcotest.test_case "select (f*_T)" `Quick test_select_single_level;
         Alcotest.test_case "multi-level Figure 10" `Quick
           test_multilevel_figure10;
         Alcotest.test_case "multi-level route" `Quick test_multilevel_route;
         Alcotest.test_case "three-level hierarchy" `Quick
           test_three_level_partitioning ]);
      ("catalog",
       [ Alcotest.test_case "registry" `Quick test_catalog_registry;
         Alcotest.test_case "table helpers" `Quick test_table_helpers;
         Alcotest.test_case "Table-1 builtins" `Quick test_builtins ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_select_covers_route; prop_route_deterministic ]) ]

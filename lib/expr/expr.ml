(** Scalar expressions: abstract syntax, evaluation, and the predicate
    analysis the partition-selection machinery is built on.

    The two entry points the optimizer cares about are:
    - {!find_pred_on_key} — the paper's [FindPredOnKey] helper (Algorithms 3
      and 4): extract from a predicate the conjuncts that constrain a given
      column;
    - {!restriction} — reduce a predicate on the partitioning key to an
      {!Interval.Set.t}; this realizes the partition-selection function
      [f*_T] of paper §2.1 once intersected with partition constraints.

    [restriction] is deliberately conservative: whenever a (sub)predicate
    cannot be analyzed it contributes "no restriction", so partition
    selection may over-approximate but never drops a qualifying partition. *)

type cmp_op = Eq | Neq | Lt | Le | Gt | Ge
type arith_op = Add | Sub | Mul | Div | Mod

type t =
  | Const of Value.t
  | Col of Colref.t
  | Param of int  (** prepared-statement parameter, bound at run time *)
  | Cmp of cmp_op * t * t
  | And of t list
  | Or of t list
  | Not of t
  | Arith of arith_op * t * t
  | In_list of t * Value.t list
  | Is_null of t
  | Func of string * t list
      (** uninterpreted function; opaque to partition analysis *)

let true_ = Const (Value.Bool true)
let false_ = Const (Value.Bool false)
let col c = Col c
let int i = Const (Value.Int i)
let str s = Const (Value.String s)
let date s = Const (Value.date_of_string s)
let eq a b = Cmp (Eq, a, b)
let lt a b = Cmp (Lt, a, b)
let le a b = Cmp (Le, a, b)
let gt a b = Cmp (Gt, a, b)
let ge a b = Cmp (Ge, a, b)

(** [BETWEEN lo AND hi], desugared to a conjunction as SQL defines it. *)
let between e lo hi = And [ Cmp (Ge, e, lo); Cmp (Le, e, hi) ]

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Value.equal x y
  | Col x, Col y -> Colref.equal x y
  | Param x, Param y -> x = y
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | And xs, And ys | Or xs, Or ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Not x, Not y -> equal x y
  | Arith (o1, a1, b1), Arith (o2, a2, b2) ->
      o1 = o2 && equal a1 a2 && equal b1 b2
  | In_list (e1, v1), In_list (e2, v2) ->
      equal e1 e2
      && List.length v1 = List.length v2
      && List.for_all2 Value.equal v1 v2
  | Is_null x, Is_null y -> equal x y
  | Func (f1, a1), Func (f2, a2) ->
      String.equal f1 f2
      && List.length a1 = List.length a2
      && List.for_all2 equal a1 a2
  | ( ( Const _ | Col _ | Param _ | Cmp _ | And _ | Or _ | Not _ | Arith _
      | In_list _ | Is_null _ | Func _ ),
      _ ) ->
      false

(* ------------------------------------------------------------------ *)
(* Structure helpers                                                   *)
(* ------------------------------------------------------------------ *)

(** Flatten nested conjunctions into a list of conjuncts. *)
let rec conjuncts = function
  | And es -> List.concat_map conjuncts es
  | Const (Value.Bool true) -> []
  | e -> [ e ]

(** The paper's [Conj]: conjunction of predicates, with [true] as unit. *)
let conj es =
  match List.concat_map conjuncts es with
  | [] -> true_
  | [ e ] -> e
  | es -> And es

let rec fold_cols f acc = function
  | Col c -> f acc c
  | Const _ | Param _ -> acc
  | Cmp (_, a, b) | Arith (_, a, b) -> fold_cols f (fold_cols f acc a) b
  | And es | Or es | Func (_, es) -> List.fold_left (fold_cols f) acc es
  | Not e | Is_null e | In_list (e, _) -> fold_cols f acc e

let free_cols e = List.rev (fold_cols (fun acc c -> c :: acc) [] e)

(** Relation instances referenced by [e]. *)
let rels e =
  fold_cols (fun acc (c : Colref.t) ->
      if List.mem c.rel acc then acc else c.rel :: acc)
    [] e

let refers_to_rel rel e = List.mem rel (rels e)

let rec has_param = function
  | Param _ -> true
  | Const _ | Col _ -> false
  | Cmp (_, a, b) | Arith (_, a, b) -> has_param a || has_param b
  | And es | Or es | Func (_, es) -> List.exists has_param es
  | Not e | Is_null e | In_list (e, _) -> has_param e

(** Replace column references for which [lookup] yields a value with
    constants.  Used at run time to specialize a join predicate with the
    values of the current outer tuple before partition selection. *)
let rec subst_cols lookup = function
  | Col c as e -> ( match lookup c with Some v -> Const v | None -> e)
  | (Const _ | Param _) as e -> e
  | Cmp (o, a, b) -> Cmp (o, subst_cols lookup a, subst_cols lookup b)
  | Arith (o, a, b) -> Arith (o, subst_cols lookup a, subst_cols lookup b)
  | And es -> And (List.map (subst_cols lookup) es)
  | Or es -> Or (List.map (subst_cols lookup) es)
  | Not e -> Not (subst_cols lookup e)
  | Is_null e -> Is_null (subst_cols lookup e)
  | In_list (e, vs) -> In_list (subst_cols lookup e, vs)
  | Func (f, es) -> Func (f, List.map (subst_cols lookup) es)

(** Replace bound parameters with constants (prepared-statement execution). *)
let rec bind_params lookup = function
  | Param i as e -> ( match lookup i with Some v -> Const v | None -> e)
  | (Const _ | Col _) as e -> e
  | Cmp (o, a, b) -> Cmp (o, bind_params lookup a, bind_params lookup b)
  | Arith (o, a, b) -> Arith (o, bind_params lookup a, bind_params lookup b)
  | And es -> And (List.map (bind_params lookup) es)
  | Or es -> Or (List.map (bind_params lookup) es)
  | Not e -> Not (bind_params lookup e)
  | Is_null e -> Is_null (bind_params lookup e)
  | In_list (e, vs) -> In_list (bind_params lookup e, vs)
  | Func (f, es) -> Func (f, List.map (bind_params lookup) es)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type env = { col : Colref.t -> Value.t; param : int -> Value.t }

let env_empty =
  {
    col = (fun c -> invalid_arg ("Expr.eval: unbound column " ^ Colref.to_string c));
    param = (fun i -> invalid_arg ("Expr.eval: unbound param $" ^ string_of_int i));
  }

let eval_cmp op (c : int) =
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

(** Evaluate under SQL three-valued logic; boolean results may be
    [Value.Null] (unknown). *)
let rec eval env e : Value.t =
  match e with
  | Const v -> v
  | Col c -> env.col c
  | Param i -> env.param i
  | Cmp (op, a, b) -> (
      match Value.sql_compare (eval env a) (eval env b) with
      | None -> Value.Null
      | Some c -> Value.Bool (eval_cmp op c))
  | And es ->
      let rec go unknown = function
        | [] -> if unknown then Value.Null else Value.Bool true
        | e :: rest -> (
            match eval env e with
            | Value.Bool false -> Value.Bool false
            | Value.Bool true -> go unknown rest
            | Value.Null -> go true rest
            | v -> invalid_arg ("Expr.eval: AND over " ^ Value.to_string v))
      in
      go false es
  | Or es ->
      let rec go unknown = function
        | [] -> if unknown then Value.Null else Value.Bool false
        | e :: rest -> (
            match eval env e with
            | Value.Bool true -> Value.Bool true
            | Value.Bool false -> go unknown rest
            | Value.Null -> go true rest
            | v -> invalid_arg ("Expr.eval: OR over " ^ Value.to_string v))
      in
      go false es
  | Not e -> (
      match eval env e with
      | Value.Bool b -> Value.Bool (not b)
      | Value.Null -> Value.Null
      | v -> invalid_arg ("Expr.eval: NOT over " ^ Value.to_string v))
  | Arith (op, a, b) -> eval_arith op (eval env a) (eval env b)
  | In_list (e, vs) -> (
      match eval env e with
      | Value.Null -> Value.Null
      | v ->
          if List.exists (Value.equal v) vs then Value.Bool true
          else if List.exists Value.is_null vs then Value.Null
          else Value.Bool false)
  | Is_null e -> Value.Bool (Value.is_null (eval env e))
  | Func (name, args) -> eval_func name (List.map (eval env) args)

and eval_arith op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> (
      match op with
      | Add -> Value.Int (x + y)
      | Sub -> Value.Int (x - y)
      | Mul -> Value.Int (x * y)
      | Div -> if y = 0 then Value.Null else Value.Int (x / y)
      | Mod -> if y = 0 then Value.Null else Value.Int (x mod y))
  | _ ->
      let x = Value.to_float a and y = Value.to_float b in
      (match op with
      | Add -> Value.Float (x +. y)
      | Sub -> Value.Float (x -. y)
      | Mul -> Value.Float (x *. y)
      | Div -> if y = 0. then Value.Null else Value.Float (x /. y)
      | Mod -> if y = 0. then Value.Null else Value.Float (Float.rem x y))

and eval_func name args =
  match (name, args) with
  | _, l when List.exists Value.is_null l -> Value.Null
  | "year", [ Value.Date d ] -> Value.Int (Date.year d)
  | "month", [ Value.Date d ] -> Value.Int (Date.month d)
  | "day", [ Value.Date d ] -> Value.Int (Date.day d)
  | "day_of_week", [ Value.Date d ] -> Value.Int (Date.day_of_week d)
  | "quarter", [ Value.Date d ] -> Value.Int (Date.quarter d)
  | "to_float", [ v ] -> Value.Float (Value.to_float v)
  | "abs", [ Value.Int i ] -> Value.Int (abs i)
  | "abs", [ Value.Float f ] -> Value.Float (Float.abs f)
  | "lower", [ Value.String s ] -> Value.String (String.lowercase_ascii s)
  | "upper", [ Value.String s ] -> Value.String (String.uppercase_ascii s)
  | _ -> invalid_arg ("Expr.eval: unknown function " ^ name)

(** Evaluate as a filter: SQL keeps a row only when the predicate is [true];
    both [false] and unknown reject it. *)
let eval_pred env e =
  match eval env e with Value.Bool b -> b | Value.Null -> false | _ -> false

(* ------------------------------------------------------------------ *)
(* Compilation to flat-row closures                                    *)
(* ------------------------------------------------------------------ *)

(* The executor's hot path: instead of re-walking the AST per row through an
   {!env} record (allocated per row, with a linear layout search per column
   lookup), [compile] resolves every column reference to a fixed tuple
   offset ONCE and returns a closure over flat rows.  This is the
   interpreted analogue of the code-generated selection functions of the
   paper's §3.2 / Figure 15: all plan-time decisions (offsets, parameter
   values, operator dispatch) are taken at compile time; the per-row residue
   is array loads and value comparisons. *)

let compile ~(resolve : Colref.t -> int) ~(params : Value.t array) e :
    Value.t array -> Value.t =
  let rec go e : Value.t array -> Value.t =
    match e with
    | Const v -> fun _ -> v
    | Col c ->
        let off = resolve c in
        fun tup -> Array.unsafe_get tup off
    | Param i ->
        if i < Array.length params then
          let v = params.(i) in
          fun _ -> v
        else
          fun _ ->
            invalid_arg (Printf.sprintf "Expr.compile: unbound parameter $%d" i)
    | Cmp (op, a, b) ->
        let fa = go a and fb = go b in
        fun tup -> (
          match Value.sql_compare (fa tup) (fb tup) with
          | None -> Value.Null
          | Some c -> Value.Bool (eval_cmp op c))
    | And es ->
        let fs = Array.of_list (List.map go es) in
        let n = Array.length fs in
        fun tup ->
          let rec loop i unknown =
            if i = n then if unknown then Value.Null else Value.Bool true
            else
              match fs.(i) tup with
              | Value.Bool false -> Value.Bool false
              | Value.Bool true -> loop (i + 1) unknown
              | Value.Null -> loop (i + 1) true
              | v -> invalid_arg ("Expr.eval: AND over " ^ Value.to_string v)
          in
          loop 0 false
    | Or es ->
        let fs = Array.of_list (List.map go es) in
        let n = Array.length fs in
        fun tup ->
          let rec loop i unknown =
            if i = n then if unknown then Value.Null else Value.Bool false
            else
              match fs.(i) tup with
              | Value.Bool true -> Value.Bool true
              | Value.Bool false -> loop (i + 1) unknown
              | Value.Null -> loop (i + 1) true
              | v -> invalid_arg ("Expr.eval: OR over " ^ Value.to_string v)
          in
          loop 0 false
    | Not e ->
        let f = go e in
        fun tup -> (
          match f tup with
          | Value.Bool b -> Value.Bool (not b)
          | Value.Null -> Value.Null
          | v -> invalid_arg ("Expr.eval: NOT over " ^ Value.to_string v))
    | Arith (op, a, b) ->
        let fa = go a and fb = go b in
        fun tup -> eval_arith op (fa tup) (fb tup)
    | In_list (e, vs) ->
        let f = go e in
        let has_null = List.exists Value.is_null vs in
        fun tup -> (
          match f tup with
          | Value.Null -> Value.Null
          | v ->
              if List.exists (Value.equal v) vs then Value.Bool true
              else if has_null then Value.Null
              else Value.Bool false)
    | Is_null e ->
        let f = go e in
        fun tup -> Value.Bool (Value.is_null (f tup))
    | Func (name, args) ->
        let fs = List.map go args in
        fun tup -> eval_func name (List.map (fun f -> f tup) fs)
  in
  go e

(* Filter semantics (only [true] keeps the row; [false] and unknown reject)
   distribute over AND and OR, so predicates compile straight to boolean
   short-circuits with no three-valued intermediates on the common shapes. *)
let compile_pred ~resolve ~params e : Value.t array -> bool =
  let rec pred e : Value.t array -> bool =
    match e with
    | Const (Value.Bool b) -> fun _ -> b
    | Const Value.Null -> fun _ -> false
    | And es ->
        let fs = Array.of_list (List.map pred es) in
        let n = Array.length fs in
        fun tup ->
          let rec loop i = i = n || (fs.(i) tup && loop (i + 1)) in
          loop 0
    | Or es ->
        let fs = Array.of_list (List.map pred es) in
        let n = Array.length fs in
        fun tup ->
          let rec loop i = i < n && (fs.(i) tup || loop (i + 1)) in
          loop 0
    | Cmp (op, a, b) ->
        let fa = compile ~resolve ~params a
        and fb = compile ~resolve ~params b in
        fun tup -> (
          match Value.sql_compare (fa tup) (fb tup) with
          | Some c -> eval_cmp op c
          | None -> false)
    | In_list (e, vs) ->
        let f = compile ~resolve ~params e in
        fun tup -> (
          match f tup with
          | Value.Null -> false
          | v -> List.exists (Value.equal v) vs)
    | Is_null e ->
        let f = compile ~resolve ~params e in
        fun tup -> Value.is_null (f tup)
    | e ->
        let f = compile ~resolve ~params e in
        fun tup -> ( match f tup with Value.Bool b -> b | _ -> false)
  in
  pred e

(* ------------------------------------------------------------------ *)
(* Predicate analysis for partition selection                          *)
(* ------------------------------------------------------------------ *)

(** [find_pred_on_key key pred] is the paper's [FindPredOnKey]: the
    conjunction of all conjuncts of [pred] that reference [key], or [None]
    if there are none.  The extracted conjuncts may also reference other
    relations (e.g. the join predicate [R.A = T.pk]) — that is exactly what
    enables dynamic partition elimination. *)
let find_pred_on_key (key : Colref.t) pred =
  match List.filter (fun c -> List.exists (Colref.equal key) (free_cols c))
          (conjuncts pred)
  with
  | [] -> None
  | cs -> Some (conj cs)

(** Multi-level variant (paper §2.4): one optional predicate per key. *)
let find_preds_on_keys (keys : Colref.t list) pred =
  let found = List.map (fun k -> find_pred_on_key k pred) keys in
  if List.for_all Option.is_none found then None else Some found

let interval_of_cmp op v =
  match op with
  | Eq -> Some (Interval.Set.point v)
  | Lt -> Some (Interval.Set.singleton (Interval.less_than v))
  | Le -> Some (Interval.Set.singleton (Interval.at_most v))
  | Gt -> Some (Interval.Set.singleton (Interval.greater_than v))
  | Ge -> Some (Interval.Set.singleton (Interval.at_least v))
  | Neq ->
      Some
        (Interval.Set.of_list
           [ Interval.less_than v; Interval.greater_than v ])

let flip_cmp = function
  | Eq -> Eq
  | Neq -> Neq
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

(* Push negations down to atoms so that [restriction] only analyzes positive
   atoms; atoms that still carry a Not after this are treated as opaque. *)
let rec push_not = function
  | Not (Not e) -> push_not e
  | Not (And es) -> Or (List.map (fun e -> push_not (Not e)) es)
  | Not (Or es) -> And (List.map (fun e -> push_not (Not e)) es)
  | Not (Cmp (op, a, b)) ->
      let inv = function
        | Eq -> Neq | Neq -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt
      in
      Cmp (inv op, push_not a, push_not b)
  | And es -> And (List.map push_not es)
  | Or es -> Or (List.map push_not es)
  | e -> e

(** [restriction key pred] maps [pred] to the set of values of [key] for
    which [pred] can possibly hold, as an interval set.  [None] means "no
    information" (equivalent to the full set, but distinguished so callers
    can tell a genuinely derived full set from an unanalyzable predicate).

    Soundness contract: if a tuple [t] satisfies [pred] then
    [t.key ∈ restriction key pred] (when [Some]).  Conjuncts that cannot be
    analyzed are skipped, which only widens the result. *)
let restriction (key : Colref.t) pred : Interval.Set.t option =
  let rec atom = function
    | Cmp (op, Col c, Const v) when Colref.equal c key -> interval_of_cmp op v
    | Cmp (op, Const v, Col c) when Colref.equal c key ->
        interval_of_cmp (flip_cmp op) v
    | In_list (Col c, vs) when Colref.equal c key ->
        let non_null = List.filter (fun v -> not (Value.is_null v)) vs in
        Some (Interval.Set.of_list (List.map Interval.point non_null))
    | And es ->
        let analyzed = List.filter_map atom es in
        if analyzed = [] then None
        else Some (List.fold_left Interval.Set.inter Interval.Set.full analyzed)
    | Or es ->
        (* Sound only if every branch is analyzable. *)
        let analyzed = List.map atom es in
        if List.for_all Option.is_some analyzed then
          Some
            (List.fold_left
               (fun acc o -> Interval.Set.union acc (Option.get o))
               Interval.Set.empty analyzed)
        else None
    | Const (Value.Bool false) -> Some Interval.Set.empty
    | _ -> None
  in
  atom (push_not pred)

(* ------------------------------------------------------------------ *)
(* Printing and sizing                                                 *)
(* ------------------------------------------------------------------ *)

let cmp_to_string = function
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let arith_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"

let rec pp fmt = function
  | Const v -> Value.pp fmt v
  | Col c -> Colref.pp fmt c
  | Param i -> Format.fprintf fmt "$%d" i
  | Cmp (op, a, b) -> Format.fprintf fmt "%a %s %a" pp a (cmp_to_string op) pp b
  | And es -> pp_nary fmt "AND" es
  | Or es -> pp_nary fmt "OR" es
  | Not e -> Format.fprintf fmt "NOT (%a)" pp e
  | Arith (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp a (arith_to_string op) pp b
  | In_list (e, vs) ->
      Format.fprintf fmt "%a IN (%s)" pp e
        (String.concat ", " (List.map Value.to_string vs))
  | Is_null e -> Format.fprintf fmt "%a IS NULL" pp e
  | Func (f, args) ->
      Format.fprintf fmt "%s(%s)" f
        (String.concat ", " (List.map to_string args))

and pp_nary fmt op es =
  Format.pp_print_string fmt "(";
  List.iteri
    (fun i e ->
      if i > 0 then Format.fprintf fmt " %s " op;
      pp fmt e)
    es;
  Format.pp_print_string fmt ")"

and to_string e = Format.asprintf "%a" pp e

(** Bytes this expression contributes when serialized into a plan that is
    shipped to segments; drives the plan-size experiments (paper §4.4). *)
let rec serialized_size = function
  | Const v -> 1 + Value.serialized_size v
  | Col _ -> 9
  | Param _ -> 5
  | Cmp (_, a, b) | Arith (_, a, b) ->
      2 + serialized_size a + serialized_size b
  | And es | Or es ->
      List.fold_left (fun acc e -> acc + serialized_size e) 2 es
  | Not e | Is_null e -> 2 + serialized_size e
  | In_list (e, vs) ->
      List.fold_left
        (fun acc v -> acc + Value.serialized_size v)
        (2 + serialized_size e)
        vs
  | Func (f, es) ->
      List.fold_left
        (fun acc e -> acc + serialized_size e)
        (2 + String.length f)
        es

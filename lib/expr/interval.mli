(** Interval algebra over {!Value.t}.

    Partition constraints live in the paper's §3.2 normal form
    [pk ∈ ∪ᵢ (aᵢ₁, aᵢₖ)]: a set of typed intervals with open/closed/unbounded
    bounds.  Predicate analysis reduces predicates on the partitioning key to
    the same form, and partition selection ([f*_T]) is interval-set
    intersection.

    An {!t} is never empty (constructors return [option]); a {!Set.t} is a
    sorted list of disjoint, non-adjacent intervals. *)

type bound =
  | Neg_inf
  | Pos_inf
  | B of Value.t * bool  (** value and whether the bound is inclusive *)

type t = private { lo : bound; hi : bound }

val pp : Format.formatter -> t -> unit

val compare_lo : bound -> bound -> int
(** Order of lower bounds by where the interval starts (inclusive starts
    earlier than exclusive at the same value). *)

val compare_hi : bound -> bound -> int
(** Order of upper bounds by where the interval ends. *)

val make : bound -> bound -> t option
(** [None] when the range is empty. *)

val full : t
val point : Value.t -> t

val closed_open : Value.t -> Value.t -> t option
(** [\[lo, hi)] — the shape of a typical range partition. *)

val at_least : Value.t -> t
val greater_than : Value.t -> t
val at_most : Value.t -> t
val less_than : Value.t -> t

val is_point : t -> Value.t option
val contains : t -> Value.t -> bool
val intersect : t -> t -> t option
val overlaps : t -> t -> bool

val touches : t -> t -> bool
(** Overlapping or adjacent: their union is a single interval. *)

val equal : t -> t -> bool

val serialized_size : t -> int
(** Bytes of the bounds when shipped inside a plan. *)

(** Sets of disjoint intervals, the unit of partition constraints and of
    predicate-derived restrictions. *)
module Set : sig
  type interval = t

  type t
  (** Sorted by lower bound; pairwise disjoint and non-adjacent. *)

  val empty : t
  val full : t
  val is_empty : t -> bool
  val is_full : t -> bool
  val singleton : interval -> t
  val of_interval_opt : interval option -> t
  val point : Value.t -> t
  val contains : t -> Value.t -> bool

  val of_list : interval list -> t
  (** Normalizes: sorts and merges overlapping/adjacent intervals. *)

  val union : t -> t -> t
  val inter : t -> t -> t
  val complement : t -> t
  val diff : t -> t -> t

  val is_subset : t -> t -> bool
  (** [is_subset a b]: every value of [a] is in [b]. *)

  val overlaps_set : t -> t -> bool
  (** Non-empty intersection — the heart of [f*_T]. *)

  val equal : t -> t -> bool
  val to_list : t -> interval list
  val serialized_size : t -> int
  val pp : Format.formatter -> t -> unit
end

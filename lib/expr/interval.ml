(** Interval algebra over {!Value.t}.

    Partition constraints in the catalog are stored in the normal form the
    paper gives in §3.2: [pk ∈ ∪ᵢ (aᵢ₁, aᵢₖ)] where each interval may be open,
    closed or half-open, possibly unbounded.  Predicate analysis reduces a
    predicate on the partitioning key to the same normal form, and partition
    selection ([f*_T]) is then interval-set intersection.

    An {!Interval.t} is never empty; constructors return [option] and
    normalize away empty ranges.  An {!Interval.Set.t} is a sorted list of
    disjoint, non-adjacent intervals. *)

type bound =
  | Neg_inf
  | Pos_inf
  | B of Value.t * bool  (** value and whether the bound is inclusive *)

type t = { lo : bound; hi : bound }

let pp_bound_lo fmt = function
  | Neg_inf -> Format.pp_print_string fmt "(-inf"
  | Pos_inf -> Format.pp_print_string fmt "(+inf"
  | B (v, true) -> Format.fprintf fmt "[%a" Value.pp v
  | B (v, false) -> Format.fprintf fmt "(%a" Value.pp v

let pp_bound_hi fmt = function
  | Neg_inf -> Format.pp_print_string fmt "-inf)"
  | Pos_inf -> Format.pp_print_string fmt "+inf)"
  | B (v, true) -> Format.fprintf fmt "%a]" Value.pp v
  | B (v, false) -> Format.fprintf fmt "%a)" Value.pp v

let pp fmt { lo; hi } =
  Format.fprintf fmt "%a, %a" pp_bound_lo lo pp_bound_hi hi

(* Lower bounds ordered by where the interval starts: an inclusive bound at v
   starts earlier than an exclusive bound at v. *)
let compare_lo a b =
  match (a, b) with
  | Neg_inf, Neg_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | Pos_inf, Pos_inf -> 0
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | B (v, vi), B (w, wi) ->
      let c = Value.compare v w in
      if c <> 0 then c
      else Bool.compare wi vi (* inclusive starts earlier *)

(* Upper bounds ordered by where the interval ends: an exclusive bound at v
   ends earlier than an inclusive bound at v. *)
let compare_hi a b =
  match (a, b) with
  | Neg_inf, Neg_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | Pos_inf, Pos_inf -> 0
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | B (v, vi), B (w, wi) ->
      let c = Value.compare v w in
      if c <> 0 then c else Bool.compare vi wi

(* Is the range (lo, hi) non-empty? *)
let nonempty lo hi =
  match (lo, hi) with
  | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> false
  | Pos_inf, _ | _, Neg_inf -> false
  | Neg_inf, _ | _, Pos_inf -> true
  | B (v, vi), B (w, wi) ->
      let c = Value.compare v w in
      c < 0 || (c = 0 && vi && wi)

let make lo hi = if nonempty lo hi then Some { lo; hi } else None

let full = { lo = Neg_inf; hi = Pos_inf }
let point v = { lo = B (v, true); hi = B (v, true) }

(** Closed-open range [\[lo, hi)], the shape of a typical range partition. *)
let closed_open lo hi = make (B (lo, true)) (B (hi, false))

let at_least v = { lo = B (v, true); hi = Pos_inf }
let greater_than v = { lo = B (v, false); hi = Pos_inf }
let at_most v = { lo = Neg_inf; hi = B (v, true) }
let less_than v = { lo = Neg_inf; hi = B (v, false) }

let is_point { lo; hi } =
  match (lo, hi) with
  | B (v, true), B (w, true) when Value.equal v w -> Some v
  | _ -> None

let contains { lo; hi } v =
  (match lo with
  | Neg_inf -> true
  | Pos_inf -> false
  | B (w, incl) ->
      let c = Value.compare v w in
      c > 0 || (c = 0 && incl))
  &&
  match hi with
  | Pos_inf -> true
  | Neg_inf -> false
  | B (w, incl) ->
      let c = Value.compare v w in
      c < 0 || (c = 0 && incl)

let max_lo a b = if compare_lo a b >= 0 then a else b
let min_lo a b = if compare_lo a b <= 0 then a else b
let max_hi a b = if compare_hi a b >= 0 then a else b
let min_hi a b = if compare_hi a b <= 0 then a else b

let intersect a b = make (max_lo a.lo b.lo) (min_hi a.hi b.hi)
let overlaps a b = intersect a b <> None

(* Do [a] and [b] overlap or touch, i.e. is their union a single interval? *)
let touches a b =
  overlaps a b
  ||
  let touch hi lo =
    match (hi, lo) with
    | B (v, vi), B (w, wi) -> Value.equal v w && (vi || wi)
    | _ -> false
  in
  touch a.hi b.lo || touch b.hi a.lo

let equal a b = compare_lo a.lo b.lo = 0 && compare_hi a.hi b.hi = 0

(** Total size in bytes of the bounds when serialized into a plan. *)
let serialized_size { lo; hi } =
  let bsize = function
    | Neg_inf | Pos_inf -> 1
    | B (v, _) -> 1 + Value.serialized_size v
  in
  bsize lo + bsize hi

module Set = struct
  type interval = t

  type t = interval list
  (** Sorted by lower bound; pairwise disjoint and non-adjacent. *)

  let empty : t = []
  let full : t = [ full ]
  let is_empty (s : t) = s = []
  let is_full (s : t) =
    match s with [ i ] -> i.lo = Neg_inf && i.hi = Pos_inf | _ -> false
  let singleton (i : interval) : t = [ i ]
  let of_interval_opt = function None -> [] | Some i -> [ i ]
  let point v : t = [ point v ]

  let contains (s : t) v = List.exists (fun i -> contains i v) s

  (* Normalize an arbitrary interval list: sort and merge. *)
  let normalize (l : interval list) : t =
    let sorted = List.sort (fun a b -> compare_lo a.lo b.lo) l in
    let rec merge = function
      | [] -> []
      | [ x ] -> [ x ]
      | x :: y :: rest ->
          if touches x y then
            merge ({ lo = min_lo x.lo y.lo; hi = max_hi x.hi y.hi } :: rest)
          else x :: merge (y :: rest)
    in
    merge sorted

  let of_list = normalize
  let union (a : t) (b : t) : t = normalize (a @ b)

  let inter (a : t) (b : t) : t =
    (* Both lists are small in practice (partition constraints have a handful
       of arms), so the quadratic product is fine and simple. *)
    List.concat_map
      (fun ia -> List.filter_map (fun ib -> intersect ia ib) b)
      a
    |> normalize

  (* Complement relies on the invariant that [s] is sorted and disjoint. *)
  let complement (s : t) : t =
    let flip_lo = function
      | Neg_inf -> None (* nothing before -inf *)
      | Pos_inf -> Some Pos_inf
      | B (v, incl) -> Some (B (v, not incl))
    and flip_hi = function
      | Pos_inf -> None
      | Neg_inf -> Some Neg_inf
      | B (v, incl) -> Some (B (v, not incl))
    in
    match s with
    | [] -> full
    | first :: _ ->
        let leading =
          match flip_lo first.lo with
          | None -> []
          | Some hi -> of_interval_opt (make Neg_inf hi)
        in
        (* gaps between intervals and the trailing piece *)
        let rec tail = function
          | [] -> []
          | [ last ] -> (
              match flip_hi last.hi with
              | None -> []
              | Some lo -> of_interval_opt (make lo Pos_inf))
          | a :: (b :: _ as rest) ->
              let g =
                match (flip_hi a.hi, flip_lo b.lo) with
                | Some lo, Some hi -> of_interval_opt (make lo hi)
                | _ -> []
              in
              g @ tail rest
        in
        normalize (leading @ tail s)

  let diff a b = inter a (complement b)
  let is_subset a b = is_empty (diff a b)
  let overlaps_set (a : t) (b : t) = not (is_empty (inter a b))

  let equal (a : t) (b : t) =
    List.length a = List.length b && List.for_all2 equal a b

  let to_list (s : t) : interval list = s

  let serialized_size (s : t) =
    List.fold_left (fun acc i -> acc + serialized_size i) 2 s

  let pp fmt (s : t) =
    match s with
    | [] -> Format.pp_print_string fmt "{}"
    | _ ->
        Format.pp_print_string fmt "{";
        List.iteri
          (fun k i ->
            if k > 0 then Format.pp_print_string fmt " ∪ ";
            pp fmt i)
          s;
        Format.pp_print_string fmt "}"
end

(** Scalar expressions: abstract syntax, three-valued evaluation, and the
    predicate analysis partition selection is built on.

    The optimizer's two entry points:
    - {!find_pred_on_key} — the paper's [FindPredOnKey] (Algorithms 3/4);
    - {!restriction} — reduce a predicate on the partitioning key to an
      {!Interval.Set.t}, realizing [f*_T] (paper §2.1) once intersected with
      the partition constraints.  Deliberately conservative: what cannot be
      analyzed contributes "no restriction", so selection over-approximates
      and never drops a qualifying partition. *)

type cmp_op = Eq | Neq | Lt | Le | Gt | Ge
type arith_op = Add | Sub | Mul | Div | Mod

type t =
  | Const of Value.t
  | Col of Colref.t
  | Param of int  (** prepared-statement parameter, bound at run time *)
  | Cmp of cmp_op * t * t
  | And of t list
  | Or of t list
  | Not of t
  | Arith of arith_op * t * t
  | In_list of t * Value.t list
  | Is_null of t
  | Func of string * t list
      (** uninterpreted function; opaque to partition analysis *)

(** {2 Constructors} *)

val true_ : t
val false_ : t
val col : Colref.t -> t
val int : int -> t
val str : string -> t

val date : string -> t
(** Date constant from ["YYYY-MM-DD"]. *)

val eq : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t

val between : t -> t -> t -> t
(** [BETWEEN lo AND hi], desugared to a conjunction as SQL defines it. *)

val equal : t -> t -> bool

(** {2 Structure} *)

val conjuncts : t -> t list
(** Flatten nested conjunctions; [true] vanishes. *)

val conj : t list -> t
(** The paper's [Conj]: conjunction with [true] as unit. *)

val fold_cols : ('a -> Colref.t -> 'a) -> 'a -> t -> 'a
val free_cols : t -> Colref.t list

val rels : t -> int list
(** Relation instances referenced. *)

val refers_to_rel : int -> t -> bool
val has_param : t -> bool

val subst_cols : (Colref.t -> Value.t option) -> t -> t
(** Replace known columns with constants — the run-time specialization of a
    join predicate with the current outer tuple before selection. *)

val bind_params : (int -> Value.t option) -> t -> t

(** {2 Evaluation} *)

type env = { col : Colref.t -> Value.t; param : int -> Value.t }

val env_empty : env
(** Raises on any lookup. *)

val eval : env -> t -> Value.t
(** SQL three-valued logic: boolean results may be [Value.Null]. *)

val eval_pred : env -> t -> bool
(** As a filter: only [true] keeps the row; [false] and unknown reject. *)

(** {2 Compilation}

    The executor's hot path: resolve every column reference to a fixed tuple
    offset once (via [resolve], typically built from an operator's output
    layout) and bind parameters at compile time, returning a closure over
    flat rows.  The interpreted analogue of the paper's code-generated
    selection functions (§3.2, Figure 15): no per-row environment
    allocation, no per-row layout search, no per-row operator dispatch. *)

val compile :
  resolve:(Colref.t -> int) ->
  params:Value.t array ->
  t ->
  Value.t array ->
  Value.t
(** [resolve] may raise for out-of-scope columns — raised at compile time,
    not per row.  Unbound parameters raise on first evaluation. *)

val compile_pred :
  resolve:(Colref.t -> int) ->
  params:Value.t array ->
  t ->
  Value.t array ->
  bool
(** Like {!compile} but with filter semantics (only [true] keeps the row);
    AND/OR compile to boolean short-circuits. *)

(** {2 Partition-selection analysis} *)

val find_pred_on_key : Colref.t -> t -> t option
(** The paper's [FindPredOnKey]: the conjunction of all conjuncts referencing
    the key — which may also reference other relations (e.g. the join
    predicate [R.A = T.pk]); that is what enables dynamic elimination. *)

val find_preds_on_keys : Colref.t list -> t -> t option list option
(** Multi-level variant (paper §2.4): one optional predicate per key; [None]
    when no level has one. *)

val restriction : Colref.t -> t -> Interval.Set.t option
(** Values of the key for which the predicate can possibly hold; [None] =
    no information.  Soundness contract: any tuple satisfying the predicate
    has its key inside the returned set. *)

(** {2 Printing and sizing} *)

val cmp_to_string : cmp_op -> string
val arith_to_string : arith_op -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val serialized_size : t -> int
(** Bytes contributed to a serialized plan (paper §4.4). *)

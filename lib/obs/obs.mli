(** Structured telemetry: spans, counters and a process-wide trace sink with
    JSON export.

    Recording sites throughout the optimizer and executor write into a
    {!t} sink; front ends create one with {!create}, {!install} it as the
    process-wide sink, and export the accumulated trace with {!to_json} /
    {!write_file}.  The default sink is {!null}, which is {e disabled}:
    every entry point tests one flag and returns, so instrumentation is
    effectively free when tracing is off. *)

type t

type span = {
  span_name : string;
  span_start : float;  (** seconds since the epoch *)
  mutable span_elapsed : float;  (** seconds; NaN while the span is open *)
  mutable span_attrs : (string * Json.t) list;
  mutable span_children : span list;
}

val null : t
(** The shared disabled sink: all operations are no-ops. *)

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh enabled sink.  [clock] defaults to [Unix.gettimeofday] and is
    injectable for deterministic tests. *)

val enabled : t -> bool

(** {1 The process-wide sink} *)

val install : t -> unit
val current : unit -> t
val uninstall : unit -> unit
(** Reset the process-wide sink to {!null}. *)

val reset : t -> unit
(** Drop all counters and spans (the sink stays enabled). *)

(** {1 Counters}

    Counter addition {e saturates} at [max_int] / [min_int] rather than
    wrapping.  Recording is {e domain-safe}: writes are sharded by the
    calling domain (per-shard mutexes) and reads merge the shards, so
    increments issued from inside a parallel section are never lost.
    Spans are a coordinating-domain facility and are not locked. *)

val add : t -> string -> int -> unit
val incr : t -> string -> unit
val counter : t -> string -> int
(** Current value, 0 when never recorded. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Spans} *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] times [f] in a span nested under the innermost open
    span; exceptions propagate and still close the span. *)

val span_open : t -> string -> unit
val span_close : t -> unit
(** Imperative variants for call sites that cannot wrap a closure. *)

val annotate : t -> string -> Json.t -> unit
(** Attach an attribute to the innermost open span (no-op outside one). *)

val root_spans : t -> span list
(** Completed top-level spans, oldest first. *)

val find_span : t -> string -> span option
(** First completed span with this name, searching depth-first. *)

(** {1 Export} *)

val to_json : t -> Json.t
(** [{"counters": {...}, "spans": [...]}]; span times in milliseconds. *)

val write_file : t -> string -> unit

val span_to_json : span -> Json.t
val counters_to_json : t -> Json.t

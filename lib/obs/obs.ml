(** Structured telemetry: spans, counters and a process-wide trace sink.

    This is the observability substrate behind [EXPLAIN ANALYZE], the
    optimizer trace ([mppsim --trace out.json]) and the benchmark artifacts:
    the optimizer layers record {e counters} (memo groups created, rules
    fired, plans costed, selector placements) and {e spans} (timed, nested
    phases such as "optimize" → "placement"), and front ends export the
    accumulated trace as JSON.

    The layer is zero-cost when disabled: {!null} is a shared disabled sink,
    every recording entry point tests a single [enabled] flag first, and the
    hot paths (executor inner loops, Table-2 micro-benchmarks) pay one load
    and one conditional branch per event when tracing is off.

    Counter arithmetic saturates at [max_int] instead of wrapping, so a
    long-running process can never report a negative tuple count.

    Counters are {e domain-safe}: recording is sharded by the calling
    domain's id (each shard guarded by its own mutex, so two domains
    almost never contend) and reads merge the shards.  Increments issued
    from inside a {!Mpp_exec.Dpool} parallel section can therefore never
    be lost.  Spans remain a coordinating-domain facility — the open-span
    stack is not shared — which matches how the optimizer and the
    executor's plan walk use them. *)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type span = {
  span_name : string;
  span_start : float;  (** seconds since the epoch *)
  mutable span_elapsed : float;  (** seconds; set when the span closes *)
  mutable span_attrs : (string * Json.t) list;
  mutable span_children : span list;  (** reverse order while open *)
}

(* One counter shard: a domain hashes to a shard by id, so concurrent
   recorders from different domains take different locks.  The mutex is
   uncontended in the serial case — lock/unlock of an uncontended OCaml
   mutex is a few nanoseconds, invisible next to the hash probe. *)
type counter_shard = {
  cs_lock : Mutex.t;
  cs_tbl : (string, int ref) Hashtbl.t;
}

let n_shards = 16  (* power of two: shard = domain id land (n_shards - 1) *)

type t = {
  enabled : bool;
  clock : unit -> float;
  shards : counter_shard array;
  mutable roots : span list;  (** completed top-level spans, reverse order *)
  mutable stack : span list;  (** open spans, innermost first *)
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make_shards () =
  Array.init n_shards (fun _ ->
      { cs_lock = Mutex.create (); cs_tbl = Hashtbl.create 8 })

let null =
  {
    enabled = false;
    clock = (fun () -> 0.0);
    shards = make_shards ();
    roots = [];
    stack = [];
  }

let create ?(clock = Unix.gettimeofday) () =
  { enabled = true; clock; shards = make_shards (); roots = []; stack = [] }

let enabled t = t.enabled

(* The process-wide sink: [null] until a front end installs a real one. *)
let current_sink = ref null

let install t = current_sink := t
let current () = !current_sink
let uninstall () = current_sink := null

let reset t =
  Array.iter
    (fun s ->
      Mutex.lock s.cs_lock;
      Hashtbl.reset s.cs_tbl;
      Mutex.unlock s.cs_lock)
    t.shards;
  t.roots <- [];
  t.stack <- []

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

(* Saturating addition: counters never wrap to negative. *)
let sat_add a b =
  let s = a + b in
  if a > 0 && b > 0 && s < 0 then max_int
  else if a < 0 && b < 0 && s >= 0 then min_int
  else s

let my_shard t = t.shards.((Domain.self () :> int) land (n_shards - 1))

let add t name n =
  if t.enabled then begin
    let s = my_shard t in
    Mutex.lock s.cs_lock;
    (match Hashtbl.find_opt s.cs_tbl name with
    | Some r -> r := sat_add !r n
    | None -> Hashtbl.replace s.cs_tbl name (ref n));
    Mutex.unlock s.cs_lock
  end

let incr t name = add t name 1

(* Merge every shard's view of every counter.  Reads take the shard locks
   one at a time, so a concurrent recorder is never blocked for long; the
   result is exact once all recording domains have quiesced (the only time
   the executor and front ends read). *)
let fold_counters t f acc =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.cs_lock;
      let acc =
        Hashtbl.fold (fun name r acc -> f acc name !r) s.cs_tbl acc
      in
      Mutex.unlock s.cs_lock;
      acc)
    acc t.shards

let counter t name =
  fold_counters t
    (fun acc n v -> if n = name then sat_add acc v else acc)
    0

let counters t =
  let merged = Hashtbl.create 32 in
  fold_counters t
    (fun () name v ->
      match Hashtbl.find_opt merged name with
      | Some r -> r := sat_add !r v
      | None -> Hashtbl.replace merged name (ref v))
    ();
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let span_open t name =
  if not t.enabled then ()
  else begin
    let s =
      {
        span_name = name;
        span_start = t.clock ();
        span_elapsed = Float.nan;
        span_attrs = [];
        span_children = [];
      }
    in
    t.stack <- s :: t.stack
  end

let span_close t =
  if not t.enabled then ()
  else
    match t.stack with
    | [] -> ()
    | s :: rest ->
        s.span_elapsed <- t.clock () -. s.span_start;
        s.span_children <- List.rev s.span_children;
        t.stack <- rest;
        (match rest with
        | parent :: _ -> parent.span_children <- s :: parent.span_children
        | [] -> t.roots <- s :: t.roots)

let annotate t key value =
  if t.enabled then
    match t.stack with
    | s :: _ -> s.span_attrs <- s.span_attrs @ [ (key, value) ]
    | [] -> ()

let span t name f =
  if not t.enabled then f ()
  else begin
    span_open t name;
    Fun.protect ~finally:(fun () -> span_close t) f
  end

(* Completed top-level spans, oldest first. *)
let root_spans t = List.rev t.roots

let rec find_span_in spans name =
  List.find_map
    (fun s ->
      if s.span_name = name then Some s
      else find_span_in s.span_children name)
    spans

let find_span t name = find_span_in (root_spans t) name

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let rec span_to_json s =
  Json.Obj
    ([
       ("name", Json.String s.span_name);
       ( "elapsed_ms",
         Json.Float
           (if Float.is_nan s.span_elapsed then -1.0
            else s.span_elapsed *. 1000.0) );
     ]
    @ (match s.span_attrs with
      | [] -> []
      | attrs -> [ ("attrs", Json.Obj attrs) ])
    @
    match s.span_children with
    | [] -> []
    | children -> [ ("spans", Json.List (List.map span_to_json children)) ])

let counters_to_json t =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) (counters t))

let to_json t =
  Json.Obj
    [
      ("counters", counters_to_json t);
      ("spans", Json.List (List.map span_to_json (root_spans t)));
    ]

let write_file t path = Json.to_file path (to_json t)

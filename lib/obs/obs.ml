(** Structured telemetry: spans, counters and a process-wide trace sink.

    This is the observability substrate behind [EXPLAIN ANALYZE], the
    optimizer trace ([mppsim --trace out.json]) and the benchmark artifacts:
    the optimizer layers record {e counters} (memo groups created, rules
    fired, plans costed, selector placements) and {e spans} (timed, nested
    phases such as "optimize" → "placement"), and front ends export the
    accumulated trace as JSON.

    The layer is zero-cost when disabled: {!null} is a shared disabled sink,
    every recording entry point tests a single [enabled] flag first, and the
    hot paths (executor inner loops, Table-2 micro-benchmarks) pay one load
    and one conditional branch per event when tracing is off.

    Counter arithmetic saturates at [max_int] instead of wrapping, so a
    long-running process can never report a negative tuple count. *)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type span = {
  span_name : string;
  span_start : float;  (** seconds since the epoch *)
  mutable span_elapsed : float;  (** seconds; set when the span closes *)
  mutable span_attrs : (string * Json.t) list;
  mutable span_children : span list;  (** reverse order while open *)
}

type t = {
  enabled : bool;
  clock : unit -> float;
  counters : (string, int ref) Hashtbl.t;
  mutable roots : span list;  (** completed top-level spans, reverse order *)
  mutable stack : span list;  (** open spans, innermost first *)
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let null =
  {
    enabled = false;
    clock = (fun () -> 0.0);
    counters = Hashtbl.create 1;
    roots = [];
    stack = [];
  }

let create ?(clock = Unix.gettimeofday) () =
  { enabled = true; clock; counters = Hashtbl.create 32; roots = []; stack = [] }

let enabled t = t.enabled

(* The process-wide sink: [null] until a front end installs a real one. *)
let current_sink = ref null

let install t = current_sink := t
let current () = !current_sink
let uninstall () = current_sink := null

let reset t =
  Hashtbl.reset t.counters;
  t.roots <- [];
  t.stack <- []

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

(* Saturating addition: counters never wrap to negative. *)
let sat_add a b =
  let s = a + b in
  if a > 0 && b > 0 && s < 0 then max_int
  else if a < 0 && b < 0 && s >= 0 then min_int
  else s

let add t name n =
  if t.enabled then
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := sat_add !r n
    | None -> Hashtbl.replace t.counters name (ref n)

let incr t name = add t name 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let span_open t name =
  if not t.enabled then ()
  else begin
    let s =
      {
        span_name = name;
        span_start = t.clock ();
        span_elapsed = Float.nan;
        span_attrs = [];
        span_children = [];
      }
    in
    t.stack <- s :: t.stack
  end

let span_close t =
  if not t.enabled then ()
  else
    match t.stack with
    | [] -> ()
    | s :: rest ->
        s.span_elapsed <- t.clock () -. s.span_start;
        s.span_children <- List.rev s.span_children;
        t.stack <- rest;
        (match rest with
        | parent :: _ -> parent.span_children <- s :: parent.span_children
        | [] -> t.roots <- s :: t.roots)

let annotate t key value =
  if t.enabled then
    match t.stack with
    | s :: _ -> s.span_attrs <- s.span_attrs @ [ (key, value) ]
    | [] -> ()

let span t name f =
  if not t.enabled then f ()
  else begin
    span_open t name;
    Fun.protect ~finally:(fun () -> span_close t) f
  end

(* Completed top-level spans, oldest first. *)
let root_spans t = List.rev t.roots

let rec find_span_in spans name =
  List.find_map
    (fun s ->
      if s.span_name = name then Some s
      else find_span_in s.span_children name)
    spans

let find_span t name = find_span_in (root_spans t) name

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let rec span_to_json s =
  Json.Obj
    ([
       ("name", Json.String s.span_name);
       ( "elapsed_ms",
         Json.Float
           (if Float.is_nan s.span_elapsed then -1.0
            else s.span_elapsed *. 1000.0) );
     ]
    @ (match s.span_attrs with
      | [] -> []
      | attrs -> [ ("attrs", Json.Obj attrs) ])
    @
    match s.span_children with
    | [] -> []
    | children -> [ ("spans", Json.List (List.map span_to_json children)) ])

let counters_to_json t =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) (counters t))

let to_json t =
  Json.Obj
    [
      ("counters", counters_to_json t);
      ("spans", Json.List (List.map span_to_json (root_spans t)));
    ]

let write_file t path = Json.to_file path (to_json t)

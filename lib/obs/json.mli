(** Minimal dependency-free JSON: values, printing, strict parsing.

    Used by the observability layer ({!Obs}) for trace export, by [mppsim
    --trace] and by the benchmark harness's [BENCH_RESULTS.json] artifact.
    Printing and parsing round-trip: [parse (to_string v) = v]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** 2-space-indented rendering with a trailing newline. *)

val to_file : string -> t -> unit
(** Write the pretty rendering to [path] (truncating). *)

exception Parse_error of string

val parse : string -> t
(** Strict parse of a complete JSON document; raises {!Parse_error}. *)

val parse_opt : string -> t option

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to [k], if any. *)

val to_int_opt : t -> int option
val equal : t -> t -> bool

(** Chrome/Perfetto trace-event collector: timed events on named tracks,
    exported as trace-event JSON loadable in [ui.perfetto.dev].

    Tracks map to Perfetto threads (one per executor domain plus
    coordinator / optimizer tracks); each is named with a ["thread_name"]
    metadata event.  The collector is zero-cost when disabled ({!null})
    and domain-safe when enabled (the event buffer is mutex-guarded; one
    lock acquisition per emitted event).  Exported timestamps are
    microseconds relative to the collector's creation instant, so they
    are non-negative and the event list is sorted (monotone ["ts"]). *)

type t

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start : float;  (** absolute clock seconds *)
  ev_dur : float;  (** seconds *)
  ev_tid : int;  (** track id *)
  ev_args : (string * Json.t) list;
}

val null : t
(** The shared disabled collector: all operations are no-ops. *)

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh enabled collector; [clock] defaults to [Unix.gettimeofday] and
    is injectable for deterministic tests.  The creation instant becomes
    the trace epoch (exported ts 0). *)

val enabled : t -> bool

val now : t -> float
(** Read the collector's clock (absolute seconds). *)

val reset : t -> unit
(** Drop all events and track registrations. *)

(** {1 Tracks} *)

val declare_track : t -> tid:int -> string -> unit
(** Name track [tid] (idempotent).  Declare every executor-domain track up
    front so idle domains still appear in the exported trace. *)

val track_ids : t -> int list
(** All declared track ids, sorted. *)

(** {1 Recording} *)

val emit :
  t ->
  tid:int ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  name:string ->
  start:float ->
  stop:float ->
  unit ->
  unit
(** Append one complete ("X") event covering [start, stop] (absolute clock
    seconds) on track [tid].  [cat] defaults to ["exec"]. *)

val with_span :
  t ->
  tid:int ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  name:string ->
  (unit -> 'a) ->
  'a
(** Time [f] and emit the covering event; exceptions propagate and still
    emit. *)

val add_obs_spans : t -> tid:int -> ?cat:string -> Obs.span list -> unit
(** Render a completed {!Obs} span tree (e.g. the optimizer's phase spans)
    as events on one track; nesting becomes containment on the timeline.
    [cat] defaults to ["span"]. *)

val event_count : t -> int

(** {1 Export} *)

val to_json : t -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] — metadata
    (process/thread names) first, then X events sorted by start time, ts
    and dur in microseconds. *)

val write_file : t -> string -> unit

(** A minimal, dependency-free JSON representation with a printer and a
    strict recursive-descent parser.

    The observability layer ({!Obs}) exports traces, node statistics and
    benchmark artifacts as machine-readable JSON; nothing in the toolchain
    ships a JSON library, so this module provides exactly the subset the
    repo needs: the seven JSON value forms, UTF-8-transparent string
    escaping, and a round-trip guarantee ([parse (to_string v) = v]) that
    {!val:parse} is tested against. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* A float rendering that survives a round trip and never collides with the
   integer syntax (so [Float 3.0] parses back as a float, not an int). *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then
        (* NaN / infinity have no JSON syntax; emit null like most encoders *)
        Buffer.add_string b "null"
      else Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          emit b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

(* Pretty printer: 2-space indentation, stable key order. *)
let rec emit_pretty b indent = function
  | List ([] : t list) -> Buffer.add_string b "[]"
  | Obj [] -> Buffer.add_string b "{}"
  | List l ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string b "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad;
          emit_pretty b (indent + 2) v)
        l;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ');
      Buffer.add_char b ']'
  | Obj kvs ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad;
          escape_string b k;
          Buffer.add_string b ": ";
          emit_pretty b (indent + 2) v)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ');
      Buffer.add_char b '}'
  | v -> emit b v

let to_string_pretty v =
  let b = Buffer.create 1024 in
  emit_pretty b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_pretty v))

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let parse_literal c lit value =
  if
    c.pos + String.length lit <= String.length c.s
    && String.sub c.s c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    value
  end
  else fail c (Printf.sprintf "expected '%s'" lit)

let parse_string_body c =
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' ->
            Buffer.add_char b '\n';
            advance c;
            go ()
        | Some 't' ->
            Buffer.add_char b '\t';
            advance c;
            go ()
        | Some 'r' ->
            Buffer.add_char b '\r';
            advance c;
            go ()
        | Some 'b' ->
            Buffer.add_char b '\b';
            advance c;
            go ()
        | Some 'f' ->
            Buffer.add_char b '\012';
            advance c;
            go ()
        | Some '/' ->
            Buffer.add_char b '/';
            advance c;
            go ()
        | Some '"' ->
            Buffer.add_char b '"';
            advance c;
            go ()
        | Some '\\' ->
            Buffer.add_char b '\\';
            advance c;
            go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then fail c "truncated \\u escape";
            let hex = String.sub c.s c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c "bad \\u escape"
            in
            (* encode the code point as UTF-8 (BMP only — enough for the
               escapes this module itself produces) *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        Buffer.add_char b ch;
        advance c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
        advance c;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "bad float literal"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail c "bad number literal")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> parse_literal c "null" Null
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some '"' ->
      advance c;
      String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List (List.rev (v :: acc))
          | _ -> fail c "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else
        let member () =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members (kv :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev (kv :: acc))
          | _ -> fail c "expected ',' or '}'"
        in
        members []
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character '%c'" ch)

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Accessors (for tests and tooling)                                   *)
(* ------------------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let equal (a : t) (b : t) = a = b

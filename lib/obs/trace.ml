(** Chrome/Perfetto trace-event collector: the timeline half of the query
    profiler.

    Recording sites emit {e complete} ("ph":"X") events — a name, a
    category, a wall-clock interval and a {e track} id — and {!to_json}
    renders the whole buffer in the Chrome trace-event JSON format, which
    [ui.perfetto.dev] (and [chrome://tracing]) load directly.  Tracks map
    to Perfetto threads: one per executor domain, plus the coordinator and
    optimizer tracks, each named through a ["thread_name"] metadata event.

    Like {!Obs}, the collector is zero-cost when disabled ({!null} plus a
    single flag test per emit) and domain-safe when enabled: the event
    buffer is guarded by one mutex, taken only on emit — per-segment
    operator tasks emit one event each, so contention is negligible next
    to the work being timed.

    Timestamps are stored as raw clock readings (seconds) and exported in
    microseconds relative to the collector's creation instant, so traces
    start at ts 0 and every exported ts is non-negative. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start : float;  (** absolute clock seconds *)
  ev_dur : float;  (** seconds *)
  ev_tid : int;  (** track id *)
  ev_args : (string * Json.t) list;
}

type t = {
  enabled : bool;
  clock : unit -> float;
  epoch : float;  (** clock at creation; exported ts are relative to it *)
  lock : Mutex.t;  (** guards [events] and [tracks] *)
  mutable events : event list;  (** reverse emission order *)
  tracks : (int, string) Hashtbl.t;  (** tid -> thread_name *)
}

(* ---- construction ---- *)

let null =
  {
    enabled = false;
    clock = (fun () -> 0.0);
    epoch = 0.0;
    lock = Mutex.create ();
    events = [];
    tracks = Hashtbl.create 1;
  }

let create ?(clock = Unix.gettimeofday) () =
  {
    enabled = true;
    clock;
    epoch = clock ();
    lock = Mutex.create ();
    events = [];
    tracks = Hashtbl.create 8;
  }

let enabled t = t.enabled

let now t = t.clock ()

let reset t =
  Mutex.lock t.lock;
  t.events <- [];
  Hashtbl.reset t.tracks;
  Mutex.unlock t.lock

(* ---- tracks ---- *)

(** Name track [tid]; idempotent (last registration wins).  Registering
    every executor-domain track up front — before any event lands on it —
    guarantees the exported trace shows one named track per domain even
    for domains the scheduler left idle. *)
let declare_track t ~tid name =
  if t.enabled then begin
    Mutex.lock t.lock;
    Hashtbl.replace t.tracks tid name;
    Mutex.unlock t.lock
  end

let track_ids t =
  Mutex.lock t.lock;
  let ids = Hashtbl.fold (fun tid _ acc -> tid :: acc) t.tracks [] in
  Mutex.unlock t.lock;
  List.sort Int.compare ids

(* ---- recording ---- *)

let emit t ~tid ?(cat = "exec") ?(args = []) ~name ~start ~stop () =
  if t.enabled then begin
    let ev =
      {
        ev_name = name;
        ev_cat = cat;
        ev_start = start;
        ev_dur = Float.max 0.0 (stop -. start);
        ev_tid = tid;
        ev_args = args;
      }
    in
    Mutex.lock t.lock;
    t.events <- ev :: t.events;
    Mutex.unlock t.lock
  end

let with_span t ~tid ?cat ?args ~name f =
  if not t.enabled then f ()
  else begin
    let start = t.clock () in
    Fun.protect
      ~finally:(fun () -> emit t ~tid ?cat ?args ~name ~start ~stop:(t.clock ()) ())
      f
  end

let event_count t =
  Mutex.lock t.lock;
  let n = List.length t.events in
  Mutex.unlock t.lock;
  n

(* Convert a completed {!Obs} span tree onto one track: each span becomes
   an X event at its recorded absolute start/elapsed, so nesting shows up
   as containment on the timeline — how the optimizer's phase spans land
   on the "optimizer" track. *)
let add_obs_spans t ~tid ?(cat = "span") (spans : Obs.span list) =
  if t.enabled then
    let rec go (s : Obs.span) =
      let dur = if Float.is_nan s.Obs.span_elapsed then 0.0 else s.Obs.span_elapsed in
      emit t ~tid ~cat ~name:s.Obs.span_name ~start:s.Obs.span_start
        ~stop:(s.Obs.span_start +. dur) ();
      List.iter go s.Obs.span_children
    in
    List.iter go spans

(* ---- export ---- *)

let us t abs = Float.max 0.0 ((abs -. t.epoch) *. 1e6)

let event_to_json t ev =
  Json.Obj
    ([
       ("name", Json.String ev.ev_name);
       ("cat", Json.String ev.ev_cat);
       ("ph", Json.String "X");
       ("ts", Json.Float (us t ev.ev_start));
       ("dur", Json.Float (ev.ev_dur *. 1e6));
       ("pid", Json.Int 1);
       ("tid", Json.Int ev.ev_tid);
     ]
    @ match ev.ev_args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let metadata_json t =
  let tracks =
    Mutex.lock t.lock;
    let l = Hashtbl.fold (fun tid name acc -> (tid, name) :: acc) t.tracks [] in
    Mutex.unlock t.lock;
    List.sort (fun (a, _) (b, _) -> Int.compare a b) l
  in
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.String "mppsim") ]);
    ]
  :: List.map
       (fun (tid, name) ->
         Json.Obj
           [
             ("name", Json.String "thread_name");
             ("ph", Json.String "M");
             ("pid", Json.Int 1);
             ("tid", Json.Int tid);
             ("args", Json.Obj [ ("name", Json.String name) ]);
           ])
       tracks

(** The whole buffer in Chrome trace-event JSON:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}].  Metadata
    (process/thread names) first, then the X events sorted by start time —
    so the ["ts"] sequence is monotonically non-decreasing, which the
    export-shape tests pin down. *)
let to_json t =
  let events =
    Mutex.lock t.lock;
    let l = t.events in
    Mutex.unlock t.lock;
    List.stable_sort
      (fun a b ->
        let c = Float.compare a.ev_start b.ev_start in
        if c <> 0 then c else Int.compare a.ev_tid b.ev_tid)
      (List.rev l)
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (metadata_json t @ List.map (event_to_json t) events) );
      ("displayTimeUnit", Json.String "ms");
    ]

let write_file t path = Json.to_file path (to_json t)

(** The storage layer of the simulated MPP cluster.

    Tuples live in per-(segment, physical-table) heaps.  For a partitioned
    table the physical tables are its leaf partitions — separate tables with
    their own OIDs, as in the paper's runtime (§3.2) — so "scanning partition
    [p] on segment [s]" is a single heap lookup.  The distribution policy
    decides which segment a tuple lands on; the partitioning function [f_T]
    decides which leaf.

    Tuples that [f_T] maps to the invalid partition ⊥ are rejected at load
    time, mirroring a constraint violation in a real system. *)

open Mpp_expr

type tuple = Value.t array

exception No_partition_for_tuple of { table : string; tuple : tuple }

type heap = tuple Vec.t

type t = {
  nsegments : int;
  heaps : (int * int, heap) Hashtbl.t;  (** (segment, physical oid) → rows *)
  mutable row_counter : int;  (** drives round-robin for Random policy *)
}

let create ~nsegments =
  if nsegments <= 0 then invalid_arg "Storage.create: nsegments must be > 0";
  { nsegments; heaps = Hashtbl.create 1024; row_counter = 0 }

let nsegments t = t.nsegments

let heap t ~segment ~oid =
  match Hashtbl.find_opt t.heaps (segment, oid) with
  | Some h -> h
  | None ->
      let h = Vec.create () in
      Hashtbl.replace t.heaps (segment, oid) h;
      h

(** Physical OID the tuple belongs to: a leaf partition for a partitioned
    table, the table itself otherwise. *)
let physical_oid (table : Mpp_catalog.Table.t) (tuple : tuple) =
  match table.partitioning with
  | None -> table.oid
  | Some p ->
      (* Bulk-load routing goes through the selection index: one O(log P)
         binary search (or O(1) hash probe) per level instead of the legacy
         scan of every leaf.  [of_partitioning] builds the index on the first
         tuple and reuses the cached copy for the rest of the load. *)
      let idx = Mpp_catalog.Partition.Index.of_partitioning p in
      let keys =
        Array.map
          (fun (lv : Mpp_catalog.Partition.level) -> tuple.(lv.key_index))
          p.levels
      in
      (match Mpp_catalog.Partition.Index.route idx keys with
      | Some lf -> lf.leaf_oid
      | None -> raise (No_partition_for_tuple { table = table.name; tuple }))

(** Insert one tuple, honouring both the distribution policy and the
    partitioning function. *)
let insert t (table : Mpp_catalog.Table.t) (tuple : tuple) =
  if Array.length tuple <> Mpp_catalog.Table.ncols table then
    invalid_arg
      (Printf.sprintf "Storage.insert: arity mismatch for %s" table.name);
  let oid = physical_oid table tuple in
  let rowno = t.row_counter in
  t.row_counter <- rowno + 1;
  match
    Mpp_catalog.Distribution.segment_of ~nsegments:t.nsegments
      table.distribution tuple ~rowno
  with
  | Some seg -> Vec.push (heap t ~segment:seg ~oid) tuple
  | None ->
      for seg = 0 to t.nsegments - 1 do
        Vec.push (heap t ~segment:seg ~oid) tuple
      done

let load t table tuples = List.iter (insert t table) tuples
let load_seq t table tuples = Seq.iter (insert t table) tuples

(** Rows of physical table [oid] on [segment] (empty if none). *)
let scan t ~segment ~oid : tuple array =
  match Hashtbl.find_opt t.heaps (segment, oid) with
  | Some h -> Vec.to_array h
  | None -> [||]

(** Same as {!scan} but as a list, without copying the heap into an
    intermediate array. *)
let scan_list t ~segment ~oid : tuple list =
  match Hashtbl.find_opt t.heaps (segment, oid) with
  | Some h -> Vec.to_list h
  | None -> []

(** The live heap vector itself, zero-copy — the executor's hot path.  The
    caller must treat it as read-only: executor operators never mutate input
    batches, and DML swaps whole heaps via {!replace_heap} rather than
    editing them in place, so an aliased scan result stays valid. *)
let scan_vec t ~segment ~oid : tuple Vec.t =
  match Hashtbl.find_opt t.heaps (segment, oid) with
  | Some h -> h
  | None -> Vec.create ()

let count_segment t ~segment ~oid =
  match Hashtbl.find_opt t.heaps (segment, oid) with
  | Some h -> Vec.length h
  | None -> 0

(** Total rows of physical table [oid] across all segments.  For replicated
    tables this counts each copy. *)
let count t ~oid =
  let c = ref 0 in
  for seg = 0 to t.nsegments - 1 do
    c := !c + count_segment t ~segment:seg ~oid
  done;
  !c

(** Total rows of [table] across segments and (for partitioned tables) all
    leaf partitions. *)
let count_table t (table : Mpp_catalog.Table.t) =
  match table.partitioning with
  | None -> count t ~oid:table.oid
  | Some p ->
      List.fold_left
        (fun acc oid -> acc + count t ~oid)
        0
        (Mpp_catalog.Partition.leaf_oids p)

(** Destructively replace the rows of [oid] on [segment] — used by the DML
    executor. *)
let replace_heap t ~segment ~oid tuples =
  Hashtbl.replace t.heaps (segment, oid) (Vec.of_list tuples)

let clear t = Hashtbl.reset t.heaps

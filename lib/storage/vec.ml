(** A minimal growable array (OCaml 5.1 predates [Dynarray]).

    [Vec.t] is also the executor's batch representation: operators carry one
    row vector per segment instead of a cons cell per row, so appends are
    amortized O(1) array stores and iteration is a tight [for] loop over a
    flat array.  The executor treats input vectors as immutable — operators
    build fresh vectors ([map] / [filter] / [append]) rather than mutating
    what a child (or a live storage heap) handed them. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len
let is_empty v = v.len = 0

let push v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    let ncap = if cap = 0 then 8 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit v.data 0 ndata 0 v.len;
    v.data <- ndata
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

(* No bounds check: for callers that iterate [0 .. length - 1]. *)
let unsafe_get v i = Array.unsafe_get v.data i

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec go i = i < v.len && (p (Array.unsafe_get v.data i) || go (i + 1)) in
  go 0

let map f v =
  let out = create () in
  for i = 0 to v.len - 1 do
    push out (f (Array.unsafe_get v.data i))
  done;
  out

(** Append every element of [src] satisfying [p] to [dst] — the filter-into
    primitive scans and Filter nodes are built on. *)
let filter_into ~dst p src =
  for i = 0 to src.len - 1 do
    let x = Array.unsafe_get src.data i in
    if p x then push dst x
  done

let filter p v =
  let out = create () in
  filter_into ~dst:out p v;
  out

(* Ensure capacity for [extra] more elements; [seed] initializes any fresh
   slots (never observed — [len] never exceeds the blitted range). *)
let ensure v extra seed =
  let need = v.len + extra in
  let cap = Array.length v.data in
  if need > cap then begin
    let ncap = max need (max 8 (cap * 2)) in
    let ndata = Array.make ncap seed in
    Array.blit v.data 0 ndata 0 v.len;
    v.data <- ndata
  end

(** Append the contents of [src] to [dst] ([src] unchanged): one capacity
    check and one blit, not an element-wise push loop. *)
let append ~dst src =
  if src.len > 0 then begin
    ensure dst src.len (Array.unsafe_get src.data 0);
    Array.blit src.data 0 dst.data dst.len src.len;
    dst.len <- dst.len + src.len
  end

(** Concatenate into a single exactly-sized fresh vector — no doubling
    growth, one allocation.  The DynamicScan's unfiltered multi-partition
    path and Motion gathers are built on this. *)
let concat vs =
  let total = List.fold_left (fun acc v -> acc + v.len) 0 vs in
  if total = 0 then create ()
  else begin
    let seed =
      let v = List.find (fun v -> v.len > 0) vs in
      Array.unsafe_get v.data 0
    in
    let data = Array.make total seed in
    let off = ref 0 in
    List.iter
      (fun v ->
        Array.blit v.data 0 data !off v.len;
        off := !off + v.len)
      vs;
    { data; len = total }
  end

(** Fresh vector with the same contents. *)
let copy v = { data = Array.sub v.data 0 v.len; len = v.len }

(** First [n] elements (all of them if [n >= length]), as a fresh vector. *)
let take n v =
  let n = min (max n 0) v.len in
  { data = Array.sub v.data 0 n; len = n }

(** Stable-sort into a fresh vector; the input is not touched (it may alias
    a live storage heap).  Stability matters: Sort nodes must preserve the
    upstream order of equal-key rows, as the list-based executor did. *)
let sorted cmp v =
  let arr = Array.sub v.data 0 v.len in
  Array.stable_sort cmp arr;
  { data = arr; len = Array.length arr }

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

(* Build the list directly (no intermediate array copy): scans of large
   heaps would otherwise allocate the whole heap once more per scan. *)
let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

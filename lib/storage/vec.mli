(** A minimal growable array (OCaml 5.1 predates [Dynarray]) — also the
    executor's per-segment row-batch representation.  Operators treat input
    vectors as immutable and build fresh ones. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val unsafe_get : 'a t -> int -> 'a
(** No bounds check; for tight loops over [0 .. length - 1]. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val map : ('a -> 'b) -> 'a t -> 'b t

val filter_into : dst:'a t -> ('a -> bool) -> 'a t -> unit
(** Append every element of the source satisfying the predicate to [dst]. *)

val filter : ('a -> bool) -> 'a t -> 'a t

val append : dst:'a t -> 'a t -> unit
(** Append the source's contents to [dst] (one capacity check + blit); the
    source is unchanged. *)

val concat : 'a t list -> 'a t
(** Concatenate into a single exactly-sized fresh vector: one allocation,
    no doubling growth. *)

val copy : 'a t -> 'a t

val take : int -> 'a t -> 'a t
(** First [n] elements (all if fewer), as a fresh vector. *)

val sorted : ('a -> 'a -> int) -> 'a t -> 'a t
(** Sort into a fresh vector; the input is untouched. *)

val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t

val to_list : 'a t -> 'a list
(** Builds the list directly, without an intermediate array copy. *)

val of_list : 'a list -> 'a t

(** The storage layer of the simulated MPP cluster.

    Tuples live in per-(segment, physical-table) heaps.  For a partitioned
    table the physical tables are its leaf partitions — separate tables with
    their own OIDs (paper §3.2) — so "scan partition [p] on segment [s]" is
    one heap lookup.  The distribution policy picks the segment; [f_T] picks
    the leaf.  Tuples mapped to the invalid partition ⊥ are rejected. *)

open Mpp_expr

type tuple = Value.t array

exception No_partition_for_tuple of { table : string; tuple : tuple }

type t

val create : nsegments:int -> t
val nsegments : t -> int

val physical_oid : Mpp_catalog.Table.t -> tuple -> int
(** Leaf partition (via [f_T]) for partitioned tables, the table itself
    otherwise.  Raises {!No_partition_for_tuple} on ⊥. *)

val insert : t -> Mpp_catalog.Table.t -> tuple -> unit
(** Routes by distribution policy and partitioning function; checks arity. *)

val load : t -> Mpp_catalog.Table.t -> tuple list -> unit
val load_seq : t -> Mpp_catalog.Table.t -> tuple Seq.t -> unit

val scan : t -> segment:int -> oid:int -> tuple array
(** Rows of physical table [oid] on [segment] (empty if none). *)

val scan_list : t -> segment:int -> oid:int -> tuple list
(** Like {!scan} but without the intermediate array copy. *)

val scan_vec : t -> segment:int -> oid:int -> tuple Vec.t
(** The live heap vector, zero-copy — the executor's hot path.  Must be
    treated as read-only by the caller; DML replaces whole heaps rather than
    mutating them, so aliased scan results stay valid. *)

val count_segment : t -> segment:int -> oid:int -> int

val count : t -> oid:int -> int
(** Across all segments; counts each copy of replicated tables. *)

val count_table : t -> Mpp_catalog.Table.t -> int
(** Across segments and (for partitioned tables) all leaves. *)

val replace_heap : t -> segment:int -> oid:int -> tuple list -> unit
(** Destructive heap replacement — the DML executor's primitive. *)

val clear : t -> unit

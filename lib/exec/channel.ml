(** The shared-memory channel between a PartitionSelector (producer) and its
    DynamicScan (consumer) — paper §2.2.

    Channels are keyed by [(segment, part_scan_id)]: selector and scan run in
    the same process on each segment (the optimizer guarantees no Motion
    separates them), so each segment has a private channel per scan id.
    {!propagate} is the runtime realization of the [partition_propagation]
    builtin of paper Table 1.

    Domain safety by sharding, not locking: the per-segment state lives in a
    per-segment array slot, and during segment-parallel execution segment
    [s]'s work runs on exactly one domain, which is the only toucher of
    shard [s].  Cross-segment reads (EXPLAIN ANALYZE's distinct-OID counts)
    happen on the coordinating domain between operators, never concurrently
    with a parallel section. *)

(* Per-segment occupancy counters (profiler accounting): plain integer
   fields under the same sharding discipline as the OID slots — segment
   [s]'s domain is the only writer of [counters.(s)], so no locks.
   "Offered" counts every OID a selector pushed (including duplicates);
   "admitted" counts the ones actually inserted, so [offered - admitted]
   is the dedup hit count — how much repeated selector work the channel
   absorbed. *)
type seg_counters = {
  mutable oids_offered : int;
  mutable oids_admitted : int;
  mutable filters_published : int;
}

type t = {
  shards : (int, (int, unit) Hashtbl.t) Hashtbl.t array;
  filters : (int, Bloom.t) Hashtbl.t array;
      (** [filters.(segment)] maps rf_id → the runtime join filter that
          segment built; same sharding discipline as [shards] *)
  merged : (int, Bloom.t option) Hashtbl.t;
      (** coordinator-side memo of cross-segment merges, keyed by rf_id;
          touched only on the coordinating domain, between parallel
          sections *)
  counters : seg_counters array;  (** occupancy accounting per segment *)
}
(** [shards.(segment)] maps part_scan_id → set of pushed OIDs. *)

let create ~nsegments =
  if nsegments <= 0 then invalid_arg "Channel.create: nsegments must be > 0";
  {
    shards = Array.init nsegments (fun _ -> Hashtbl.create 8);
    filters = Array.init nsegments (fun _ -> Hashtbl.create 4);
    merged = Hashtbl.create 4;
    counters =
      Array.init nsegments (fun _ ->
          { oids_offered = 0; oids_admitted = 0; filters_published = 0 });
  }

let nsegments t = Array.length t.shards

let slot t ~segment ~part_scan_id =
  let shard = t.shards.(segment) in
  match Hashtbl.find_opt shard part_scan_id with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 16 in
      Hashtbl.replace shard part_scan_id s;
      s

(** Push a selected partition OID to the DynamicScan with the given id on
    the given segment (idempotent). *)
let propagate t ~segment ~part_scan_id oid =
  let s = slot t ~segment ~part_scan_id in
  let c = t.counters.(segment) in
  c.oids_offered <- c.oids_offered + 1;
  if not (Hashtbl.mem s oid) then begin
    c.oids_admitted <- c.oids_admitted + 1;
    Hashtbl.replace s oid ()
  end

(** Batched push: one slot lookup for the whole OID set.  Dedup happens
    here at the channel — OIDs already present are left untouched, so a
    selector pushing the same OID twice (two input rows routing to one
    leaf, two memo keys resolving to overlapping leaf sets) neither grows
    the slot nor double-counts downstream work: {!consume} and {!mem} see
    each OID exactly once. *)
let propagate_set t ~segment ~part_scan_id oids =
  let s = slot t ~segment ~part_scan_id in
  let c = t.counters.(segment) in
  List.iter
    (fun oid ->
      c.oids_offered <- c.oids_offered + 1;
      if not (Hashtbl.mem s oid) then begin
        c.oids_admitted <- c.oids_admitted + 1;
        Hashtbl.replace s oid ()
      end)
    oids

(** All OIDs pushed so far for this (segment, scan id), sorted. *)
let consume t ~segment ~part_scan_id =
  Hashtbl.fold (fun oid () acc -> oid :: acc) (slot t ~segment ~part_scan_id) []
  |> List.sort Int.compare

(** Membership test without materializing the sorted list — the guarded
    Table_scan's per-segment check. *)
let mem t ~segment ~part_scan_id oid =
  Hashtbl.mem (slot t ~segment ~part_scan_id) oid

(** Publish a segment's runtime join filter on channel [rf_id] — the
    filter sibling of {!propagate_set}, with the same dedup contract:
    publishing the {e same} filter again is a no-op, and a genuinely new
    contribution (another operator instance on this segment) is unioned
    in, so repeated pushes can neither double-count entries nor lose
    bits. *)
let publish_filter t ~segment ~rf_id bloom =
  let shard = t.filters.(segment) in
  let c = t.counters.(segment) in
  c.filters_published <- c.filters_published + 1;
  match Hashtbl.find_opt shard rf_id with
  | None -> Hashtbl.replace shard rf_id bloom
  | Some existing when existing == bloom -> ()
  | Some existing -> Bloom.union_into ~into:existing bloom

(** The cross-segment merge of every filter published on [rf_id]; [None]
    until at least one segment has published.  Memoized per rf_id — must
    be called on the coordinating domain after the builders' parallel
    section has completed (the executor resolves it between operators,
    mirroring how EXPLAIN ANALYZE reads the OID shards). *)
let merged_filter t ~rf_id =
  match Hashtbl.find_opt t.merged rf_id with
  | Some m -> m
  | None ->
      let parts =
        Array.fold_left
          (fun acc shard ->
            match Hashtbl.find_opt shard rf_id with
            | Some b -> b :: acc
            | None -> acc)
          [] t.filters
      in
      let m = Bloom.merge parts in
      Hashtbl.replace t.merged rf_id m;
      m

let reset t =
  Array.iter Hashtbl.reset t.shards;
  Array.iter Hashtbl.reset t.filters;
  Hashtbl.reset t.merged;
  Array.iter
    (fun c ->
      c.oids_offered <- 0;
      c.oids_admitted <- 0;
      c.filters_published <- 0)
    t.counters

(* ------------------------------------------------------------------ *)
(* Occupancy accounting                                                *)
(* ------------------------------------------------------------------ *)

type seg_stats = {
  offered : int;  (** OIDs pushed, duplicates included *)
  admitted : int;  (** OIDs actually inserted (post-dedup) *)
  filters_published : int;  (** runtime-filter publications *)
  occupancy : int;  (** distinct OIDs currently held, over all slots *)
}

(** This segment's occupancy counters.  Reads happen on the coordinating
    domain between parallel sections (the same discipline as
    {!merged_filter}), so the per-segment fields are quiescent. *)
let seg_stats t ~segment =
  let c = t.counters.(segment) in
  let occupancy =
    Hashtbl.fold (fun _ s acc -> acc + Hashtbl.length s) t.shards.(segment) 0
  in
  {
    offered = c.oids_offered;
    admitted = c.oids_admitted;
    filters_published = c.filters_published;
    occupancy;
  }

let stats_to_json t =
  let open Mpp_obs.Json in
  List
    (List.init (nsegments t) (fun segment ->
         let s = seg_stats t ~segment in
         Obj
           [
             ("segment", Int segment);
             ("oids_offered", Int s.offered);
             ("oids_admitted", Int s.admitted);
             ("dedup_hits", Int (s.offered - s.admitted));
             ("filters_published", Int s.filters_published);
             ("occupancy", Int s.occupancy);
           ]))

(** The shared-memory channel between a PartitionSelector (producer) and its
    DynamicScan (consumer) — paper §2.2.

    Channels are keyed by [(segment, part_scan_id)]: selector and scan run in
    the same process on each segment (the optimizer guarantees no Motion
    separates them), so each segment has a private channel per scan id.
    {!propagate} is the runtime realization of the [partition_propagation]
    builtin of paper Table 1.

    Domain safety by sharding, not locking: the per-segment state lives in a
    per-segment array slot, and during segment-parallel execution segment
    [s]'s work runs on exactly one domain, which is the only toucher of
    shard [s].  Cross-segment reads (EXPLAIN ANALYZE's distinct-OID counts)
    happen on the coordinating domain between operators, never concurrently
    with a parallel section. *)

type t = {
  shards : (int, (int, unit) Hashtbl.t) Hashtbl.t array;
  filters : (int, Bloom.t) Hashtbl.t array;
      (** [filters.(segment)] maps rf_id → the runtime join filter that
          segment built; same sharding discipline as [shards] *)
  merged : (int, Bloom.t option) Hashtbl.t;
      (** coordinator-side memo of cross-segment merges, keyed by rf_id;
          touched only on the coordinating domain, between parallel
          sections *)
}
(** [shards.(segment)] maps part_scan_id → set of pushed OIDs. *)

let create ~nsegments =
  if nsegments <= 0 then invalid_arg "Channel.create: nsegments must be > 0";
  {
    shards = Array.init nsegments (fun _ -> Hashtbl.create 8);
    filters = Array.init nsegments (fun _ -> Hashtbl.create 4);
    merged = Hashtbl.create 4;
  }

let nsegments t = Array.length t.shards

let slot t ~segment ~part_scan_id =
  let shard = t.shards.(segment) in
  match Hashtbl.find_opt shard part_scan_id with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 16 in
      Hashtbl.replace shard part_scan_id s;
      s

(** Push a selected partition OID to the DynamicScan with the given id on
    the given segment (idempotent). *)
let propagate t ~segment ~part_scan_id oid =
  Hashtbl.replace (slot t ~segment ~part_scan_id) oid ()

(** Batched push: one slot lookup for the whole OID set.  Dedup happens
    here at the channel — OIDs already present are left untouched, so a
    selector pushing the same OID twice (two input rows routing to one
    leaf, two memo keys resolving to overlapping leaf sets) neither grows
    the slot nor double-counts downstream work: {!consume} and {!mem} see
    each OID exactly once. *)
let propagate_set t ~segment ~part_scan_id oids =
  let s = slot t ~segment ~part_scan_id in
  List.iter
    (fun oid -> if not (Hashtbl.mem s oid) then Hashtbl.replace s oid ())
    oids

(** All OIDs pushed so far for this (segment, scan id), sorted. *)
let consume t ~segment ~part_scan_id =
  Hashtbl.fold (fun oid () acc -> oid :: acc) (slot t ~segment ~part_scan_id) []
  |> List.sort Int.compare

(** Membership test without materializing the sorted list — the guarded
    Table_scan's per-segment check. *)
let mem t ~segment ~part_scan_id oid =
  Hashtbl.mem (slot t ~segment ~part_scan_id) oid

(** Publish a segment's runtime join filter on channel [rf_id] — the
    filter sibling of {!propagate_set}, with the same dedup contract:
    publishing the {e same} filter again is a no-op, and a genuinely new
    contribution (another operator instance on this segment) is unioned
    in, so repeated pushes can neither double-count entries nor lose
    bits. *)
let publish_filter t ~segment ~rf_id bloom =
  let shard = t.filters.(segment) in
  match Hashtbl.find_opt shard rf_id with
  | None -> Hashtbl.replace shard rf_id bloom
  | Some existing when existing == bloom -> ()
  | Some existing -> Bloom.union_into ~into:existing bloom

(** The cross-segment merge of every filter published on [rf_id]; [None]
    until at least one segment has published.  Memoized per rf_id — must
    be called on the coordinating domain after the builders' parallel
    section has completed (the executor resolves it between operators,
    mirroring how EXPLAIN ANALYZE reads the OID shards). *)
let merged_filter t ~rf_id =
  match Hashtbl.find_opt t.merged rf_id with
  | Some m -> m
  | None ->
      let parts =
        Array.fold_left
          (fun acc shard ->
            match Hashtbl.find_opt shard rf_id with
            | Some b -> b :: acc
            | None -> acc)
          [] t.filters
      in
      let m = Bloom.merge parts in
      Hashtbl.replace t.merged rf_id m;
      m

let reset t =
  Array.iter Hashtbl.reset t.shards;
  Array.iter Hashtbl.reset t.filters;
  Hashtbl.reset t.merged

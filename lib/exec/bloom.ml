(** Runtime join filters: a Bloom filter over join-key tuples plus a
    per-key min-max summary — see bloom.mli.

    Built on the build side of a hash join (one filter per segment, over
    exactly the rows that segment inserted into its hash table), merged by
    the coordinator into a single filter, and applied on the probe side:
    the Bloom bits drop rows before the per-row hash-table probe, and the
    min-max summary intersects with partition-index restrictions to drop
    whole partitions.

    Representation follows {!Mpp_catalog.Bitset}: an [int array] of
    [Sys.int_size]-bit words, sized to a power of two so probe positions
    are a mask instead of a modulo.  Sizing is {e deterministic} in the
    planner's cardinality estimate (never in the observed row count), so
    every segment builds an identically-shaped filter and the coordinator
    can merge them word-by-word.

    NULL semantics: a key tuple containing NULL is never inserted and
    never passes {!mem} — a NULL join key cannot equal anything, so probe
    rows carrying one are unmatchable under Inner, Semi and build-side
    outer joins alike. *)

open Mpp_expr

(* Bits are addressed in 32-bit sub-words (each array element uses its low
   32 bits only): word index and bit position become a shift and a mask
   instead of division/modulo by the 63-bit native word size.  The probe
   loop runs once per probe-side row, so the addressing arithmetic is the
   hot path. *)
let bits_per_word = 32

(* Sizing policy (the "deterministic with a hard cap" contract):
   ~12 bits per expected key, rounded up to a power of two, clamped to
   [min_bits, max_bits].  With k = 4 probes and m/n = 12 the false-positive
   rate is about (1 - e^{-4/12})^4 ~ 0.7%. *)
let bits_per_key = 12
let min_bits = 256
let max_bits = 1 lsl 20
let nprobes = 4

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let bits_for ~expected =
  let wanted = max 1 expected * bits_per_key in
  min max_bits (max min_bits (next_pow2 wanted))

type t = {
  nkeys : int;
  nbits : int;  (** power of two *)
  mask : int;
  words : int array;
  mutable count : int;  (** key tuples inserted (non-NULL) *)
  mins : Value.t option array;  (** per key position; [None] = empty *)
  maxs : Value.t option array;
}

let create ~nkeys ~expected =
  if nkeys <= 0 then invalid_arg "Bloom.create: nkeys must be positive";
  let nbits = bits_for ~expected in
  {
    nkeys;
    nbits;
    mask = nbits - 1;
    words = Array.make ((nbits + bits_per_word - 1) / bits_per_word) 0;
    count = 0;
    mins = Array.make nkeys None;
    maxs = Array.make nkeys None;
  }

let nkeys t = t.nkeys
let nbits t = t.nbits
let count t = t.count

(* 64-bit finalizer (splitmix64 style); the multiplier constants are the
   splitmix64 ones wrapped into OCaml's 63-bit native int (written as
   Int64 literals — the plain hex form would not parse). *)
let mix_c1 = Int64.to_int 0xbf58476d1ce4e5b9L
let mix_c2 = Int64.to_int 0x94d049bb133111ebL

let mix h =
  let h = (h lxor (h lsr 30)) * mix_c1 in
  let h = (h lxor (h lsr 27)) * mix_c2 in
  (h lxor (h lsr 31)) land max_int

(* One well-mixed hash of the key tuple, then double hashing for the k
   probe positions: position_i = h1 + i * h2 (mod nbits), h2 odd so the
   probe sequence walks the whole (power-of-two-sized) table. *)
let hash_seed = Int64.to_int 0x9e3779b97f4a7c15L

(* Per-component hash.  Scalar constructors are mixed directly — the
   generic [Value.hash] bottoms out in the polymorphic runtime hash, an
   out-of-line C call that dominates the probe cost for the typical
   single-int join key.  Strings (and anything else) still take the
   generic path. *)
let value_hash (v : Value.t) =
  match v with
  | Value.Int i -> mix i
  | Value.Date d -> mix (d : Date.t :> int)
  | Value.Bool b -> mix (if b then 1 else 2)
  | Value.Float f -> mix (Int64.to_int (Int64.bits_of_float f))
  | Value.Null | Value.String _ -> Value.hash v

let hash_tuple keys =
  let n = Array.length keys in
  let h = ref hash_seed in
  for i = 0 to n - 1 do
    h := mix ((!h * 31) + value_hash (Array.unsafe_get keys i))
  done;
  !h

let set_bit words i =
  let w = i lsr 5 in
  words.(w) <- words.(w) lor (1 lsl (i land 31))

let get_bit words i = words.(i lsr 5) land (1 lsl (i land 31)) <> 0

let has_null keys =
  let n = Array.length keys in
  let rec go i = i < n && (Value.is_null keys.(i) || go (i + 1)) in
  go 0

let add t keys =
  if Array.length keys <> t.nkeys then invalid_arg "Bloom.add: key arity";
  if not (has_null keys) then begin
    let h1 = hash_tuple keys in
    let h2 = mix h1 lor 1 in
    for i = 0 to nprobes - 1 do
      set_bit t.words ((h1 + (i * h2)) land t.mask)
    done;
    t.count <- t.count + 1;
    for k = 0 to t.nkeys - 1 do
      let v = keys.(k) in
      (match t.mins.(k) with
      | None -> t.mins.(k) <- Some v
      | Some lo -> if Value.compare v lo < 0 then t.mins.(k) <- Some v);
      match t.maxs.(k) with
      | None -> t.maxs.(k) <- Some v
      | Some hi -> if Value.compare v hi > 0 then t.maxs.(k) <- Some v
    done
  end

let mem1 t v =
  if t.nkeys <> 1 then invalid_arg "Bloom.mem1: key arity";
  (not (Value.is_null v))
  &&
  (* identical probe positions to {!mem} on [\[| v |\]]: same seed, same
     per-component fold, same double hashing *)
  let h1 = mix ((hash_seed * 31) + value_hash v) in
  let h2 = mix h1 lor 1 in
  let rec probe i =
    i >= nprobes
    || (get_bit t.words ((h1 + (i * h2)) land t.mask) && probe (i + 1))
  in
  probe 0

let mem t keys =
  if Array.length keys <> t.nkeys then invalid_arg "Bloom.mem: key arity";
  (not (has_null keys))
  &&
  let h1 = hash_tuple keys in
  let h2 = mix h1 lor 1 in
  let rec probe i =
    i >= nprobes
    || (get_bit t.words ((h1 + (i * h2)) land t.mask) && probe (i + 1))
  in
  probe 0

let minmax t ~key =
  if key < 0 || key >= t.nkeys then invalid_arg "Bloom.minmax: key";
  match (t.mins.(key), t.maxs.(key)) with
  | Some lo, Some hi -> Some (lo, hi)
  | _ -> None

let union_into ~into src =
  if into.nkeys <> src.nkeys || into.nbits <> src.nbits then
    invalid_arg "Bloom.union_into: shape mismatch";
  for w = 0 to Array.length into.words - 1 do
    into.words.(w) <- into.words.(w) lor src.words.(w)
  done;
  into.count <- into.count + src.count;
  for k = 0 to into.nkeys - 1 do
    (match (into.mins.(k), src.mins.(k)) with
    | None, m -> into.mins.(k) <- m
    | Some _, None -> ()
    | Some a, Some b -> if Value.compare b a < 0 then into.mins.(k) <- Some b);
    match (into.maxs.(k), src.maxs.(k)) with
    | None, m -> into.maxs.(k) <- m
    | Some _, None -> ()
    | Some a, Some b -> if Value.compare b a > 0 then into.maxs.(k) <- Some b
  done

let merge = function
  | [] -> None
  | first :: rest ->
      let acc =
        {
          first with
          words = Array.copy first.words;
          mins = Array.copy first.mins;
          maxs = Array.copy first.maxs;
        }
      in
      List.iter (fun src -> union_into ~into:acc src) rest;
      Some acc

(* SWAR popcount, as in Bitset. *)
let popcount x =
  let x = x - ((x lsr 1) land 0x5555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

let fill t =
  let set = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words in
  float_of_int set /. float_of_int t.nbits

let pp fmt t =
  Format.fprintf fmt "bloom(%d keys, %d bits, %d entries, %.1f%% full)"
    t.nkeys t.nbits t.count (100.0 *. fill t)

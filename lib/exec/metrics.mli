(** Execution metrics: the deterministic work counters behind the paper's
    evaluation (partitions scanned per table for Figure 16; tuple and Motion
    volumes backing Figure 17 and Table 2). *)

type t = {
  mutable tuples_scanned : int;
      (** rows read from heaps, summed over segments *)
  mutable tuples_moved : int;  (** rows crossing a Motion *)
  mutable partition_opens : int;  (** heap opens, summed over segments *)
  parts_scanned : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (** root table OID → set of distinct partition OIDs scanned *)
  mutable rows_updated : int;
  mutable rows_deleted : int;
  mutable filter_built : int;
      (** runtime join filters built (one per builder per segment with a
          non-empty build side) *)
  mutable rows_filtered_scan : int;
      (** probe rows dropped by a runtime filter fused into a scan *)
  mutable rows_filtered_motion : int;
      (** probe rows dropped by a runtime filter below a Motion send *)
  mutable motion_rows_saved : int;
      (** Motion sends avoided by pre-Motion filtering (a Broadcast row
          counts [nsegments] sends) *)
}

val create : unit -> t
val record_scan : t -> root_oid:int -> part_oid:int -> rows:int -> unit
val record_motion : t -> rows:int -> unit

val parts_scanned_of : t -> root_oid:int -> int
(** Distinct partitions of this table actually scanned. *)

val total_parts_scanned : t -> int

val merge : t -> t -> t
(** Fresh record combining two runs: scalar counters sum; the per-root
    distinct-partition sets union. *)

val merge_all : t array -> t
(** Merge per-segment shards into one fresh record — how the executor folds
    its sharded hot-path counters into the per-query total. *)

val scanned_oids : t -> root_oid:int -> int list
(** Distinct partition OIDs of this table actually scanned, ascending. *)

val roots_scanned : t -> int list
(** Root OIDs with at least one partition scanned, ascending. *)

val to_json : t -> Mpp_obs.Json.t

val pp : Format.formatter -> t -> unit
(** All counters, including [rows_updated] / [rows_deleted]. *)

(** The PostgreSQL-style [EXPLAIN ANALYZE] renderer: {!Mpp_plan.Plan.pp}'s
    tree shape, annotated with the per-node runtime statistics collected by
    {!Exec} into a {!Node_stats.t}.

    Each line reads

    {v
    -> DynamicScan(1, rel=0, root=7) (actual rows=812 parts=3/24 time=0.41ms)
    v}

    where [rows] is the node's emitted rows summed over segments, [parts]
    is partitions actually scanned vs. the table's total leaves (scans and
    selectors only), [moved] is tuples crossing a Motion, and [time] is
    inclusive wall time.

    With a plan-time estimate array ([?est], see {!Mpp_plan.Est}) each
    node additionally reads [est=N act=M (xK off)] — the optimizer's
    cardinality estimate against the actual row count with the symmetric
    q-error factor.  Nodes whose per-segment row distribution is skewed
    beyond 2x (max over mean) are flagged with [[skew K.Kx]] — except
    nodes that are {e structurally} singleton (at or above a Gather),
    whose rows legitimately sit on one segment.  The same data exports as
    JSON for [mppsim --trace], [--stats-json] and the benchmark
    artifacts. *)

module Plan = Mpp_plan.Plan
module Est = Mpp_plan.Est

(* Per-segment skew beyond this ratio gets flagged. *)
let skew_flag_threshold = 2.0

(* A node whose output rows are structurally concentrated on the master
   segment: at or above a Gather (or a DML result row).  Reporting skew
   for these would flag every final aggregate; the interesting skew is in
   the distributed part of the plan.  Joins: a hash join's per-segment
   output is the per-segment product, so one singleton side concentrates
   the output. *)
let rec singleton (p : Plan.t) =
  match p with
  | Plan.Motion { kind = Plan.Gather | Plan.Gather_one; _ } -> true
  | Plan.Motion { kind = Plan.Broadcast | Plan.Redistribute _; _ } -> false
  | Plan.Table_scan _ | Plan.Dynamic_scan _ | Plan.Insert _ -> false
  | Plan.Update _ | Plan.Delete _ -> true
  | Plan.Partition_selector { child = None; _ } -> false
  | Plan.Partition_selector { child = Some c; _ } -> singleton c
  | Plan.Sequence cs -> (
      match List.rev cs with last :: _ -> singleton last | [] -> false)
  | Plan.Filter { child; _ }
  | Plan.Project { child; _ }
  | Plan.Agg { child; _ }
  | Plan.Sort { child; _ }
  | Plan.Limit { child; _ }
  | Plan.Runtime_filter_build { child; _ }
  | Plan.Runtime_filter { child; _ } ->
      singleton child
  | Plan.Hash_join { left; right; _ } | Plan.Nl_join { left; right; _ } ->
      singleton left || singleton right
  | Plan.Append cs -> cs <> [] && List.for_all singleton cs

(* Pre-order numbering, matching Exec's: root 0, first child id+1, siblings
   after the whole preceding subtree. *)
let annotation ?(est = Est.none) (stats : Node_stats.t) id (plan : Plan.t) =
  match Node_stats.find stats id with
  | None -> " (never executed)"
  | Some n ->
      let b = Buffer.create 48 in
      Buffer.add_string b
        (Printf.sprintf " (actual rows=%d" n.Node_stats.rows);
      (match Est.find est id with
      | Some e ->
          Buffer.add_string b
            (Printf.sprintf " est=%.0f act=%d (x%.1f off)" e n.Node_stats.rows
               (Est.error_factor ~est:e ~actual:n.Node_stats.rows))
      | None -> ());
      (match plan with
      | Plan.Dynamic_scan _ | Plan.Table_scan _ ->
          if n.Node_stats.parts_total > 0 then
            Buffer.add_string b
              (Printf.sprintf " parts=%d/%d" n.Node_stats.parts_scanned
                 n.Node_stats.parts_total)
      | Plan.Partition_selector _ ->
          Buffer.add_string b
            (Printf.sprintf " selected=%d/%d" n.Node_stats.parts_selected
               n.Node_stats.parts_total)
      | Plan.Motion _ ->
          Buffer.add_string b
            (Printf.sprintf " moved=%d" n.Node_stats.tuples_moved)
      | _ -> ());
      Buffer.add_string b
        (Printf.sprintf " time=%.2fms)" (n.Node_stats.time_s *. 1000.0));
      (* segment-skew flag: only for multi-segment runs and only on nodes
         whose rows are supposed to be spread out *)
      let skew = Node_stats.skew n in
      if
        Array.length n.Node_stats.seg_rows > 1
        && skew > skew_flag_threshold
        && not (singleton plan)
      then Buffer.add_string b (Printf.sprintf " [skew %.1fx]" skew);
      Buffer.contents b

(** Render the plan tree with per-node actual statistics appended; [?est]
    adds plan-time estimates and error factors. *)
let analyze ?est (plan : Plan.t) (stats : Node_stats.t) : string =
  let b = Buffer.create 512 in
  let rec go indent id p =
    Buffer.add_string b
      (Printf.sprintf "%s-> %s%s\n" (String.make indent ' ') (Plan.describe p)
         (annotation ?est stats id p));
    let next = ref (id + 1) in
    List.iter
      (fun c ->
        let cid = !next in
        next := cid + Plan.node_count c;
        go (indent + 2) cid c)
      (Plan.children p)
  in
  go 0 0 plan;
  Buffer.contents b

(** The same tree as a flat JSON node list (pre-order), for [--trace],
    [--stats-json] and bench artifacts. *)
let to_json ?(est = Est.none) (plan : Plan.t) (stats : Node_stats.t) :
    Mpp_obs.Json.t =
  let open Mpp_obs.Json in
  let nodes = ref [] in
  let rec go depth id p =
    let base =
      [ ("id", Int id); ("depth", Int depth); ("op", String (Plan.describe p)) ]
    in
    let actuals =
      match Node_stats.find stats id with
      | None -> [ ("executed", Bool false) ]
      | Some n ->
          [ ("rows", Int n.Node_stats.rows);
            ("time_ms", Float (n.Node_stats.time_s *. 1000.0)) ]
          @ (match Est.find est id with
            | Some e ->
                [ ("est_rows", Float e);
                  ( "est_error_factor",
                    Float (Est.error_factor ~est:e ~actual:n.Node_stats.rows)
                  ) ]
            | None -> [])
          @ (let s = Node_stats.rows_summary n in
             [ ("seg_rows_min", Int s.Node_stats.seg_min);
               ("seg_rows_max", Int s.Node_stats.seg_max);
               ("seg_rows_mean", Float s.Node_stats.seg_mean);
               ("skew", Float (Node_stats.skew n));
               ( "seg_rows",
                 List
                   (Array.to_list
                      (Array.map (fun v -> Int v) n.Node_stats.seg_rows)) );
               ( "seg_time_ms",
                 List
                   (Array.to_list
                      (Array.map
                         (fun v -> Float (v *. 1000.0))
                         n.Node_stats.seg_time_s)) ) ])
          @ (if n.Node_stats.parts_total > 0 then
               [ ("parts_scanned", Int n.Node_stats.parts_scanned);
                 ("parts_selected", Int n.Node_stats.parts_selected);
                 ("parts_total", Int n.Node_stats.parts_total) ]
             else [])
          @
          match p with
          | Plan.Motion _ -> [ ("tuples_moved", Int n.Node_stats.tuples_moved) ]
          | _ -> []
    in
    nodes := Obj (base @ actuals) :: !nodes;
    let next = ref (id + 1) in
    List.iter
      (fun c ->
        let cid = !next in
        next := cid + Plan.node_count c;
        go (depth + 1) cid c)
      (Plan.children p)
  in
  go 0 0 plan;
  List (List.rev !nodes)

(** The PostgreSQL-style [EXPLAIN ANALYZE] renderer: {!Mpp_plan.Plan.pp}'s
    tree shape, annotated with the per-node runtime statistics collected by
    {!Exec} into a {!Node_stats.t}.

    Each line reads

    {v
    -> DynamicScan(1, rel=0, root=7) (actual rows=812 parts=3/24 time=0.41ms)
    v}

    where [rows] is the node's emitted rows summed over segments, [parts]
    is partitions actually scanned vs. the table's total leaves (scans and
    selectors only), [moved] is tuples crossing a Motion, and [time] is
    inclusive wall time.  The same data exports as JSON for [mppsim --trace]
    and the benchmark artifacts. *)

module Plan = Mpp_plan.Plan

(* Pre-order numbering, matching Exec's: root 0, first child id+1, siblings
   after the whole preceding subtree. *)
let annotation (stats : Node_stats.t) id (plan : Plan.t) =
  match Node_stats.find stats id with
  | None -> " (never executed)"
  | Some n ->
      let b = Buffer.create 48 in
      Buffer.add_string b
        (Printf.sprintf " (actual rows=%d" n.Node_stats.rows);
      (match plan with
      | Plan.Dynamic_scan _ | Plan.Table_scan _ ->
          if n.Node_stats.parts_total > 0 then
            Buffer.add_string b
              (Printf.sprintf " parts=%d/%d" n.Node_stats.parts_scanned
                 n.Node_stats.parts_total)
      | Plan.Partition_selector _ ->
          Buffer.add_string b
            (Printf.sprintf " selected=%d/%d" n.Node_stats.parts_selected
               n.Node_stats.parts_total)
      | Plan.Motion _ ->
          Buffer.add_string b
            (Printf.sprintf " moved=%d" n.Node_stats.tuples_moved)
      | _ -> ());
      Buffer.add_string b
        (Printf.sprintf " time=%.2fms)" (n.Node_stats.time_s *. 1000.0));
      Buffer.contents b

(** Render the plan tree with per-node actual statistics appended. *)
let analyze (plan : Plan.t) (stats : Node_stats.t) : string =
  let b = Buffer.create 512 in
  let rec go indent id p =
    Buffer.add_string b
      (Printf.sprintf "%s-> %s%s\n" (String.make indent ' ') (Plan.describe p)
         (annotation stats id p));
    let next = ref (id + 1) in
    List.iter
      (fun c ->
        let cid = !next in
        next := cid + Plan.node_count c;
        go (indent + 2) cid c)
      (Plan.children p)
  in
  go 0 0 plan;
  Buffer.contents b

(** The same tree as a flat JSON node list (pre-order), for [--trace] and
    bench artifacts. *)
let to_json (plan : Plan.t) (stats : Node_stats.t) : Mpp_obs.Json.t =
  let open Mpp_obs.Json in
  let nodes = ref [] in
  let rec go depth id p =
    let base =
      [ ("id", Int id); ("depth", Int depth); ("op", String (Plan.describe p)) ]
    in
    let actuals =
      match Node_stats.find stats id with
      | None -> [ ("executed", Bool false) ]
      | Some n ->
          [ ("rows", Int n.Node_stats.rows);
            ("time_ms", Float (n.Node_stats.time_s *. 1000.0)) ]
          @ (if n.Node_stats.parts_total > 0 then
               [ ("parts_scanned", Int n.Node_stats.parts_scanned);
                 ("parts_selected", Int n.Node_stats.parts_selected);
                 ("parts_total", Int n.Node_stats.parts_total) ]
             else [])
          @
          match p with
          | Plan.Motion _ -> [ ("tuples_moved", Int n.Node_stats.tuples_moved) ]
          | _ -> []
    in
    nodes := Obj (base @ actuals) :: !nodes;
    let next = ref (id + 1) in
    List.iter
      (fun c ->
        let cid = !next in
        next := cid + Plan.node_count c;
        go (depth + 1) cid c)
      (Plan.children p)
  in
  go 0 0 plan;
  List (List.rev !nodes)

(** Per-plan-node runtime statistics — the executor side of
    [EXPLAIN ANALYZE].

    Plan nodes are identified by their {e pre-order index} in the plan tree
    (the root is 0, a node's first child is its index + 1, the next sibling
    follows the whole subtree).  {!Mpp_exec.Exec} fills one {!node} record
    per index when a stats collector is attached to the execution context;
    {!Explain} re-walks the plan with the same numbering to render the
    annotations.  When no collector is attached the executor skips all
    bookkeeping, so the disabled path costs nothing per row. *)

type node = {
  mutable invocations : int;  (** times the node produced its result *)
  mutable rows : int;  (** rows emitted, summed over segments *)
  mutable time_s : float;  (** inclusive wall time, seconds *)
  mutable parts_scanned : int;
      (** DynamicScan: distinct leaf partitions actually read *)
  mutable parts_total : int;  (** leaves of the scanned root table *)
  mutable parts_selected : int;
      (** PartitionSelector: distinct OIDs pushed to its channel *)
  mutable tuples_moved : int;  (** Motion: rows crossing the interconnect *)
}

type t = { nodes : (int, node) Hashtbl.t; clock : unit -> float }

let create ?(clock = Unix.gettimeofday) () =
  { nodes = Hashtbl.create 32; clock }

let time t = t.clock ()

let fresh_node () =
  {
    invocations = 0;
    rows = 0;
    time_s = 0.0;
    parts_scanned = 0;
    parts_total = 0;
    parts_selected = 0;
    tuples_moved = 0;
  }

(** The record for pre-order index [id], created on first touch. *)
let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None ->
      let n = fresh_node () in
      Hashtbl.replace t.nodes id n;
      n

let find t id = Hashtbl.find_opt t.nodes id

(** Sum of [rows] over the nodes selected by [pred] (defaults to all). *)
let total_rows ?(pred = fun _ _ -> true) t =
  Hashtbl.fold
    (fun id n acc -> if pred id n then acc + n.rows else acc)
    t.nodes 0

let clear t = Hashtbl.reset t.nodes

(** Per-plan-node runtime statistics — the executor side of
    [EXPLAIN ANALYZE] and the raw signal of the query profiler.

    Plan nodes are identified by their {e pre-order index} in the plan tree
    (the root is 0, a node's first child is its index + 1, the next sibling
    follows the whole subtree).  {!Mpp_exec.Exec} fills one {!node} record
    per index when a stats collector is attached to the execution context;
    {!Explain} re-walks the plan with the same numbering to render the
    annotations.  When no collector is attached the executor skips all
    bookkeeping, so the disabled path costs nothing per row.

    Each record additionally shards its rows and time {e per segment}:
    [seg_rows.(s)] is filled deterministically on the coordinating domain
    (from the per-segment output batches, so serial and parallel runs
    agree bit for bit), while [seg_time_s.(s)] is accumulated inside the
    per-segment tasks themselves — distinct array slots per segment, so
    the parallel sections write without synchronization.  The per-segment
    rows feed the {!skew} ratio surfaced in [EXPLAIN ANALYZE]: a perfectly
    skewed join and a balanced one no longer look identical. *)

type node = {
  mutable invocations : int;  (** times the node produced its result *)
  mutable rows : int;  (** rows emitted, summed over segments *)
  mutable time_s : float;  (** inclusive wall time, seconds *)
  mutable parts_scanned : int;
      (** DynamicScan: distinct leaf partitions actually read *)
  mutable parts_total : int;  (** leaves of the scanned root table *)
  mutable parts_selected : int;
      (** PartitionSelector: distinct OIDs pushed to its channel *)
  mutable tuples_moved : int;  (** Motion: rows crossing the interconnect *)
  seg_rows : int array;
      (** rows emitted per segment; recorded on the coordinating domain *)
  seg_time_s : float array;
      (** per-segment task wall time; written inside the parallel section
          (segment [s]'s task is the only toucher of slot [s]) *)
}

type t = {
  nodes : (int, node) Hashtbl.t;
  clock : unit -> float;
  mutable nsegments : int;
      (** sizes the per-segment arrays of records created from now on; set
          by the executor before any node is touched *)
}

let create ?(clock = Unix.gettimeofday) ?(nsegments = 1) () =
  { nodes = Hashtbl.create 32; clock; nsegments = max 1 nsegments }

(** Set the segment count for subsequently created records.  {!Exec} calls
    this from [create_ctx], before any node is touched, so every record in
    a run has arrays of the cluster's width. *)
let set_nsegments t n = t.nsegments <- max 1 n

let nsegments t = t.nsegments

let time t = t.clock ()

let fresh_node ~nsegments =
  {
    invocations = 0;
    rows = 0;
    time_s = 0.0;
    parts_scanned = 0;
    parts_total = 0;
    parts_selected = 0;
    tuples_moved = 0;
    seg_rows = Array.make nsegments 0;
    seg_time_s = Array.make nsegments 0.0;
  }

(** The record for pre-order index [id], created on first touch. *)
let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None ->
      let n = fresh_node ~nsegments:t.nsegments in
      Hashtbl.replace t.nodes id n;
      n

let find t id = Hashtbl.find_opt t.nodes id

(** Sum of [rows] over the nodes selected by [pred] (defaults to all). *)
let total_rows ?(pred = fun _ _ -> true) t =
  Hashtbl.fold
    (fun id n acc -> if pred id n then acc + n.rows else acc)
    t.nodes 0

let clear t = Hashtbl.reset t.nodes

(* ------------------------------------------------------------------ *)
(* Per-segment summaries                                               *)
(* ------------------------------------------------------------------ *)

type seg_summary = { seg_min : int; seg_max : int; seg_mean : float }

let summarize (a : int array) =
  if Array.length a = 0 then { seg_min = 0; seg_max = 0; seg_mean = 0.0 }
  else begin
    let mn = ref a.(0) and mx = ref a.(0) and total = ref 0 in
    Array.iter
      (fun v ->
        if v < !mn then mn := v;
        if v > !mx then mx := v;
        total := !total + v)
      a;
    {
      seg_min = !mn;
      seg_max = !mx;
      seg_mean = float_of_int !total /. float_of_int (Array.length a);
    }
  end

let rows_summary n = summarize n.seg_rows

(** Segment skew ratio over emitted rows: max over segments divided by the
    cross-segment mean.  1.0 for a perfectly balanced node, [nsegments]
    for all rows on one segment; defined as 1.0 when the node emitted
    nothing (no rows, no skew).  Computed from [seg_rows], which is filled
    deterministically, so serial and parallel runs report the same
    ratio. *)
let skew n =
  let s = rows_summary n in
  if s.seg_mean <= 0.0 then 1.0 else float_of_int s.seg_max /. s.seg_mean

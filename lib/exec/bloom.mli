(** Runtime join filters: a Bloom filter over join-key tuples plus a
    per-key min-max summary.

    During a hash-join build each segment feeds its build rows' key tuples
    into one of these; the coordinator merges the per-segment filters
    (word-wise OR of the Bloom bits, min/max of the summaries) and the
    probe side applies the result — the Bloom bits as a row-level
    pre-predicate ahead of scans and Motion sends, the min-max summary as
    an interval restriction against the partition index.

    Sizing is deterministic in the {e planner's} cardinality estimate
    (~12 bits per expected key, power-of-two, clamped to
    [\[256, 2{^20}\]] bits) so that filters built independently on every
    segment have identical shape and merge word-by-word.  Key tuples
    containing NULL are neither inserted nor accepted by {!mem}: a NULL
    join key matches nothing, so rows carrying one are unmatchable. *)

open Mpp_expr

type t

val create : nkeys:int -> expected:int -> t
(** [create ~nkeys ~expected] sizes the filter for [expected] build-side
    key tuples of arity [nkeys].  Sizing depends only on the arguments. *)

val add : t -> Value.t array -> unit
(** Insert one key tuple (no-op when any component is NULL).  Raises
    [Invalid_argument] on arity mismatch. *)

val mem : t -> Value.t array -> bool
(** May return a false positive; never a false negative for inserted
    tuples.  Always [false] when any component is NULL. *)

val mem1 : t -> Value.t -> bool
(** [mem1 t v] = [mem t [| v |]] without the per-row array traffic — the
    single-key specialization the executor fuses into scan row loops.
    Raises [Invalid_argument] unless the filter has exactly one key. *)

val minmax : t -> key:int -> (Value.t * Value.t) option
(** Closed bounds [\[lo, hi\]] of the values seen at key position [key];
    [None] while no tuple has been inserted. *)

val union_into : into:t -> t -> unit
(** Merge [src] into [into]; both must have identical shape (same [nkeys]
    and same bit count — guaranteed when built from the same estimate). *)

val merge : t list -> t option
(** Fresh merged filter; [None] on the empty list.  Inputs are unchanged. *)

val nkeys : t -> int
val nbits : t -> int

val count : t -> int
(** Key tuples inserted (summed across merges). *)

val fill : t -> float
(** Fraction of bits set, in [\[0, 1\]] — the observable proxy for the
    false-positive rate. *)

val pp : Format.formatter -> t -> unit

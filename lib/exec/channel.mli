(** The shared-memory channel between a PartitionSelector (producer) and its
    DynamicScan (consumer) — paper §2.2.  Keyed by
    [(segment, part_scan_id)]: the optimizer guarantees both ends share a
    process on each segment.  {!propagate} is the runtime realization of the
    [partition_propagation] builtin of paper Table 1.

    Domain-safe by per-segment sharding: during segment-parallel execution
    exactly one domain works on segment [s], and it is the only toucher of
    shard [s] — no locks on the hot path. *)

type t

val create : nsegments:int -> t
val nsegments : t -> int

val propagate : t -> segment:int -> part_scan_id:int -> int -> unit
(** Push a selected partition OID (idempotent). *)

val propagate_set : t -> segment:int -> part_scan_id:int -> int list -> unit
(** Batched {!propagate}: push a whole OID set with one slot lookup,
    deduplicating at the channel — repeated OIDs (within the list or
    across calls) are recorded once and never double-count downstream
    work or metrics. *)

val consume : t -> segment:int -> part_scan_id:int -> int list
(** All OIDs pushed so far for this (segment, scan id), sorted. *)

val mem : t -> segment:int -> part_scan_id:int -> int -> bool
(** Membership test without materializing the sorted list. *)

val publish_filter : t -> segment:int -> rf_id:int -> Bloom.t -> unit
(** Publish a segment's runtime join filter — the filter sibling of
    {!propagate_set}, with the same dedup contract: re-publishing the same
    filter is a no-op; a distinct contribution is unioned in. *)

val merged_filter : t -> rf_id:int -> Bloom.t option
(** Cross-segment merge of every filter published on [rf_id]; [None] until
    one exists.  Memoized; call on the coordinating domain only, after the
    builders' parallel section completed. *)

val reset : t -> unit

(** {1 Occupancy accounting}

    Per-segment counters under the same sharding discipline as the OID
    slots (segment [s]'s domain is the only writer of its counters; reads
    happen on the coordinating domain between parallel sections).
    [offered - admitted] is the dedup hit count — repeated selector
    pushes the channel absorbed. *)

type seg_stats = {
  offered : int;  (** OIDs pushed, duplicates included *)
  admitted : int;  (** OIDs actually inserted (post-dedup) *)
  filters_published : int;  (** runtime-filter publications *)
  occupancy : int;  (** distinct OIDs currently held, over all slots *)
}

val seg_stats : t -> segment:int -> seg_stats

val stats_to_json : t -> Mpp_obs.Json.t
(** One object per segment: [{"segment", "oids_offered", "oids_admitted",
    "dedup_hits", "filters_published", "occupancy"}]. *)

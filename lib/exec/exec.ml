(** The query executor: interprets a physical {!Mpp_plan.Plan.t} on the
    simulated MPP cluster.

    Execution is segment-synchronous: every operator produces, for each
    segment, the batch of rows that operator would emit on that segment;
    [Motion] nodes re-shuffle the per-segment batches.  Side-effect ordering
    follows the paper's conventions — [Sequence] children run left to right
    and a join's left child runs before its right child — so a
    PartitionSelector always executes (and pushes its OIDs into the
    per-segment {!Channel}) before the DynamicScan that consumes them.

    Three hot-path design decisions (the Figure 15 argument, applied to the
    whole executor, plus the paper's MPP premise):

    - {b Compiled expressions.}  Every operator compiles its expressions
      once via {!Expr.compile} / {!Expr.compile_pred}: column references
      resolve to fixed tuple offsets at compile time, parameters are bound,
      and evaluation is a closure over the flat row — no per-row environment
      records, no per-row layout search.
    - {b Batch rows.}  Per-segment row sets are {!Mpp_storage.Vec.t}
      batches, not lists: appends are amortized array stores, sizes are O(1)
      (hash-join builds size their tables exactly), and unfiltered scans
      alias the live storage heap zero-copy.  Operators treat input batches
      as immutable.
    - {b Segment parallelism.}  Each operator's per-segment work fans out
      across a {!Dpool} domain pool (knob: [MPP_DOMAINS] / [?domains]).  The
      plan walk itself stays on the coordinating domain; {!Channel} and
      {!Metrics} are sharded per segment so the parallel sections share no
      mutable state — segment [s]'s domain is the only toucher of shard
      [s]. *)

open Mpp_expr
module Plan = Mpp_plan.Plan
module Vec = Mpp_storage.Vec
module Trace = Mpp_obs.Trace

type row = Value.t array

(* Profiler track-id convention (Perfetto threads): 0 = the coordinator
   (per-node spans from the plan walk), 1 = the optimizer (spans added by
   front ends), 2 + i = executor domain i (per-segment task events). *)
let coordinator_tid = 0
let optimizer_tid = 1
let domain_tid i = 2 + i

(* A runtime join filter handed from a [Runtime_filter] node to the scan
   directly beneath it, so the Bloom test runs inside the scan's row loop
   (a compiled pre-predicate) instead of over a materialized batch:
   - [rf_make segment] is called once per segment inside the scan's
     parallel section; the returned closure owns per-segment scratch and
     counts dropped rows into that segment's metrics shard;
   - [rf_allowed] is the min-max summary intersected with the partition
     index: the leaf OIDs that can possibly hold matching join keys.
     A DynamicScan drops channel OIDs outside it without opening them. *)
type fused_rf = {
  rf_make : int -> row -> bool;
  rf_allowed : (int, unit) Hashtbl.t option;
}

type ctx = {
  catalog : Mpp_catalog.Catalog.t;
  storage : Mpp_storage.Storage.t;
  channel : Channel.t;  (** sharded per segment *)
  metrics : Metrics.t array;
      (** one shard per segment; shard 0 additionally takes the
          coordinator-side counters (Motion volumes, DML row counts).
          {!metrics} merges them into the per-query total. *)
  params : Value.t array;
  selection_enabled : bool;
      (** when [false], PartitionSelectors ignore their predicates and push
          every leaf OID — the "partition selection disabled" configuration
          of the paper's Figure 17 *)
  stats : Node_stats.t option;
      (** when set, the interpreter records per-plan-node actual rows,
          partitions scanned and wall time (the EXPLAIN ANALYZE data);
          [None] skips all per-node bookkeeping *)
  pool : Dpool.t;  (** executes the per-segment loops *)
  pindex : (int, Mpp_catalog.Partition.index) Hashtbl.t;
      (** root OID → partition-selection index, resolved once per table on
          the coordinating domain in {!create_ctx} (before any Dpool
          fan-out, so the build-once cache is never raced) and consulted by
          every PartitionSelector execution *)
  verify : bool;
      (** when set, {!exec} runs {!Mpp_verify.Verify.assert_valid} over the
          root plan before interpreting it, rejecting structurally,
          schema-, distribution- or accounting-invalid plans up front
          instead of failing (or mis-executing) mid-flight; additionally,
          every built runtime join filter's min-max summary is
          cross-checked against the static bounds of its build subtree
          ({!Mpp_analysis.Analysis.minmax_violations}) *)
  runtime_filters : bool;
      (** when [false], [Runtime_filter_build] / [Runtime_filter] nodes are
          pure pass-throughs — the "runtime filters off" half of the
          on/off comparison; plans are identical either way, only the
          executor behaviour changes *)
  mutable fused_rf : fused_rf option;
      (** one-shot handoff slot between a [Runtime_filter] node and the
          scan directly beneath it; set and consumed on the coordinating
          domain within a single parent→child call, never across a
          parallel section *)
  mutable rf_motion_claimed : int;
      (** pre-Motion drops already credited to [motion_rows_saved] by some
          Motion: each Motion claims only the drops below it that no inner
          Motion claimed first, so a drop is credited exactly once — at its
          nearest enclosing Motion, the send it actually skipped.  Only
          touched on the coordinating domain (Motions execute there). *)
  trace : Trace.t;
      (** profiler timeline: per-node events on the coordinator track,
          per-segment task events on the executing domain's track;
          {!Trace.null} (one flag test per node) when not profiling *)
  mutable cur_node : int;
      (** pre-order index of the node currently interpreted, so the
          per-segment fan-out can attribute task time to it; -1 outside
          {!exec_at}.  Coordinating domain only (saved/restored around
          child execution). *)
  mutable cur_label : string;
      (** the current node's one-line operator description, for trace
          events; maintained only while the trace is enabled *)
}

let create_ctx ?(params = [||]) ?(selection_enabled = true) ?(verify = false)
    ?(runtime_filters = true) ?stats ?(trace = Trace.null) ?domains ?pool
    ~catalog ~storage () =
  let nsegs = Mpp_storage.Storage.nsegments storage in
  let domains =
    match domains with Some d -> d | None -> Dpool.default_domains ()
  in
  (* Resolve every partitioned table's selection index here, on the
     coordinating domain: [of_partitioning] populates the build-once cache
     single-threaded, so the parallel sections below only ever read it. *)
  let pindex = Hashtbl.create 16 in
  List.iter
    (fun (tbl : Mpp_catalog.Table.t) ->
      match tbl.partitioning with
      | Some p ->
          Hashtbl.replace pindex tbl.oid
            (Mpp_catalog.Partition.Index.of_partitioning p)
      | None -> ())
    (Mpp_catalog.Catalog.tables catalog);
  (* A caller-supplied pool wins over the shared per-size pools: the
     serving layer gives each worker domain a private pool, because a
     [Dpool] has a single job slot and must never take submissions from
     two domains at once. *)
  let pool =
    match pool with Some p -> p | None -> Dpool.get ~domains
  in
  (* Size the per-segment stat arrays before any node record exists. *)
  (match stats with
  | Some st -> Node_stats.set_nsegments st nsegs
  | None -> ());
  (* Name every executor track up front so idle domains still show in the
     exported timeline — the "one track per domain" contract. *)
  if Trace.enabled trace then begin
    Trace.declare_track trace ~tid:coordinator_tid "coordinator";
    for i = 0 to Dpool.size pool - 1 do
      Trace.declare_track trace ~tid:(domain_tid i)
        (Printf.sprintf "domain-%d" i)
    done
  end;
  {
    catalog;
    storage;
    channel = Channel.create ~nsegments:nsegs;
    metrics = Array.init nsegs (fun _ -> Metrics.create ());
    params;
    selection_enabled;
    stats;
    pool;
    pindex;
    verify;
    runtime_filters;
    fused_rf = None;
    rf_motion_claimed = 0;
    trace;
    cur_node = -1;
    cur_label = "";
  }

type result = {
  layout : (int * int) list;  (** (range-table index, width) left to right *)
  rows : row Vec.t array;  (** one row batch per segment *)
}

let nsegments ctx = Mpp_storage.Storage.nsegments ctx.storage

let empty_rows ctx = Array.init (nsegments ctx) (fun _ -> Vec.create ())

(** The per-query metrics total: all per-segment shards merged. *)
let metrics ctx = Metrics.merge_all ctx.metrics

(* Per-segment fan-out: one task per segment across the domain pool.  The
   closure for segment [s] may only touch per-segment state (its own output
   batch, channel shard [s], metrics shard [s]).

   When profiling, each task is additionally timed: its wall time lands in
   the current node's [seg_time_s.(s)] slot (segment [s]'s task is the
   only writer of slot [s], so the parallel section needs no locks) and,
   when the trace is enabled, an event on the {e executing domain's}
   track — which is how the Perfetto timeline shows which domain ran
   which segment of which operator. *)
let par_init ctx (f : int -> 'a) : 'a array =
  let n = nsegments ctx in
  let node =
    match ctx.stats with
    | Some st when ctx.cur_node >= 0 -> Node_stats.find st ctx.cur_node
    | _ -> None
  in
  let traced = Trace.enabled ctx.trace in
  match (node, traced) with
  | None, false -> Dpool.map_init ctx.pool n f
  | _ ->
      let id = ctx.cur_node and label = ctx.cur_label in
      let clock =
        if traced then fun () -> Trace.now ctx.trace
        else
          match ctx.stats with
          | Some st -> fun () -> Node_stats.time st
          | None -> Unix.gettimeofday
      in
      Dpool.map_init ctx.pool n (fun seg ->
          let t0 = clock () in
          let r = f seg in
          let t1 = clock () in
          (match node with
          | Some nd when seg < Array.length nd.Node_stats.seg_time_s ->
              nd.Node_stats.seg_time_s.(seg) <-
                nd.Node_stats.seg_time_s.(seg) +. (t1 -. t0)
          | _ -> ());
          if traced then
            Trace.emit ctx.trace
              ~tid:(domain_tid (Dpool.worker_index ()))
              ~cat:"segment" ~name:label
              ~args:
                [
                  ("node", Mpp_obs.Json.Int id);
                  ("segment", Mpp_obs.Json.Int seg);
                ]
              ~start:t0 ~stop:t1 ();
          r)

(* ------------------------------------------------------------------ *)
(* Layout plumbing and expression compilation                          *)
(* ------------------------------------------------------------------ *)

let offset_of layout rel =
  let rec go off = function
    | [] -> None
    | (r, w) :: rest -> if r = rel then Some off else go (off + w) rest
  in
  go 0 layout

let layout_width layout = List.fold_left (fun acc (_, w) -> acc + w) 0 layout

(* The compile-time column resolver for an operator's input layout: the
   linear search happens once per compiled column reference, never per
   row. *)
let resolver layout : Colref.t -> int =
 fun c ->
  match offset_of layout c.Colref.rel with
  | Some off -> off + c.Colref.index
  | None ->
      invalid_arg
        (Printf.sprintf "Exec: column %s not in scope" (Colref.to_string c))

let compile_expr ctx layout e =
  Expr.compile ~resolve:(resolver layout) ~params:ctx.params e

let compile_filter ctx layout e =
  Expr.compile_pred ~resolve:(resolver layout) ~params:ctx.params e

(* Column lookup that yields [None] for out-of-scope relations; used to
   specialize selector predicates with the columns that are in scope. *)
let partial_lookup layout (tuple : row) (c : Colref.t) =
  match offset_of layout c.Colref.rel with
  | Some off -> Some tuple.(off + c.Colref.index)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Scans                                                               *)
(* ------------------------------------------------------------------ *)

let root_oid_of ctx oid =
  match Mpp_catalog.Catalog.root_of_leaf ctx.catalog oid with
  | Some root -> root
  | None -> oid

(* Zero-copy: the live heap batch.  Callers must not mutate it. *)
let scan_physical ctx ~segment ~oid =
  let rows = Mpp_storage.Storage.scan_vec ctx.storage ~segment ~oid in
  Metrics.record_scan ctx.metrics.(segment) ~root_oid:(root_oid_of ctx oid)
    ~part_oid:oid ~rows:(Vec.length rows);
  rows

let table_width ctx oid =
  Mpp_catalog.Table.ncols (Mpp_catalog.Catalog.find_oid ctx.catalog oid)

(* Take (and clear) the runtime-filter handoff slot; called at scan entry
   on the coordinating domain, before any fan-out. *)
let take_fused_rf ctx =
  let rf = ctx.fused_rf in
  ctx.fused_rf <- None;
  rf

(* The scan-side composition of its own compiled filter with a fused
   runtime-filter test: the Bloom test is the pre-predicate (it runs
   first — a hash and a handful of bit probes, cheaper than most compiled
   predicates and selective by construction). *)
let compose_pred ~rf_test ~pred =
  match (rf_test, pred) with
  | None, p -> p
  | Some t, None -> Some t
  | Some t, Some p -> Some (fun row -> t row && p row)

let exec_table_scan ctx ~rel ~table_oid ~filter ~guard =
  let rf = take_fused_rf ctx in
  let root = root_oid_of ctx table_oid in
  let width = table_width ctx root in
  let layout = [ (rel, width) ] in
  let pred = Option.map (compile_filter ctx layout) filter in
  let rows =
    par_init ctx (fun segment ->
        let skipped =
          match guard with
          | None -> false
          | Some part_scan_id ->
              not (Channel.mem ctx.channel ~segment ~part_scan_id table_oid)
        in
        if skipped then Vec.create ()
        else
          let rf_test =
            match rf with None -> None | Some f -> Some (f.rf_make segment)
          in
          let heap = scan_physical ctx ~segment ~oid:table_oid in
          match compose_pred ~rf_test ~pred with
          | None -> heap
          | Some p -> Vec.filter p heap)
  in
  { layout; rows }

let exec_dynamic_scan ctx ~rel ~part_scan_id ~root_oid ~filter =
  let rf = take_fused_rf ctx in
  let width = table_width ctx root_oid in
  let layout = [ (rel, width) ] in
  let pred = Option.map (compile_filter ctx layout) filter in
  (* the min-max ∩ partition-index elimination: channel OIDs outside the
     filter's possible key range are dropped without opening their heap —
     pruning beyond what the (static or streaming) selector already did *)
  let restrict oids =
    match rf with
    | Some { rf_allowed = Some allowed; _ } ->
        List.filter (Hashtbl.mem allowed) oids
    | _ -> oids
  in
  let rows =
    par_init ctx (fun segment ->
        let oids =
          restrict (Channel.consume ctx.channel ~segment ~part_scan_id)
        in
        let rf_test =
          match rf with None -> None | Some f -> Some (f.rf_make segment)
        in
        match (oids, compose_pred ~rf_test ~pred) with
        | [ oid ], None ->
            (* single selected partition, no filter: alias its heap *)
            scan_physical ctx ~segment ~oid
        | oids, None ->
            (* no filter: exactly-sized concatenation of the partition
               heaps, one allocation *)
            Vec.concat
              (List.map (fun oid -> scan_physical ctx ~segment ~oid) oids)
        | oids, Some p ->
            let out = Vec.create () in
            List.iter
              (fun oid ->
                Vec.filter_into ~dst:out p (scan_physical ctx ~segment ~oid))
              oids;
            out)
  in
  { layout; rows }

(* ------------------------------------------------------------------ *)
(* Partition selection                                                 *)
(* ------------------------------------------------------------------ *)

(* Compiled per-level selection behaviour.  Real systems generate a
   specialized partition-selection function per selector (paper §3.2,
   Figure 15); interpreting the predicate per input row would make the
   selector cost visible at run time, so we compile each level once:
   - [Sel_none]: no predicate (or selection disabled) — no restriction;
   - [Sel_static]: the restriction is row-independent (static elimination
     and prepared-statement parameters);
   - [Sel_point]: the predicate is [key = e] with [e] over the input row —
     the equality fast path of Figure 15(a);
   - [Sel_dynamic]: general fallback — substitute the row and re-analyze. *)
type level_selector =
  | Sel_none
  | Sel_static of Interval.Set.t
  | Sel_point of Expr.t
  | Sel_dynamic of Expr.t

let partitioning_of ctx root_oid =
  match
    (Mpp_catalog.Catalog.find_oid ctx.catalog root_oid).Mpp_catalog.Table
      .partitioning
  with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Exec: PartitionSelector on non-partitioned oid %d"
           root_oid)

(* The table's selection index, from the per-context cache built in
   [create_ctx]; tables registered after context creation fall back to an
   on-demand build (still on the coordinating domain — selectors resolve
   their index before fanning out). *)
let index_of ctx root_oid =
  match Hashtbl.find_opt ctx.pindex root_oid with
  | Some ix -> ix
  | None ->
      let ix =
        Mpp_catalog.Partition.Index.of_partitioning
          (partitioning_of ctx root_oid)
      in
      Hashtbl.replace ctx.pindex root_oid ix;
      ix

(* [key = e] where e does not mention the key itself. *)
let point_equality (key : Colref.t) p =
  match Expr.conjuncts p with
  | [ Expr.Cmp (Expr.Eq, Expr.Col k, e) ] when Colref.equal k key
    && not (List.exists (Colref.equal key) (Expr.free_cols e)) ->
      Some e
  | [ Expr.Cmp (Expr.Eq, e, Expr.Col k) ] when Colref.equal k key
    && not (List.exists (Colref.equal key) (Expr.free_cols e)) ->
      Some e
  | _ -> None

let compile_selector ctx ~keys ~predicates : level_selector array =
  List.map2
    (fun key pred ->
      if not ctx.selection_enabled then Sel_none
      else
        match pred with
        | None -> Sel_none
        | Some p -> (
            let p =
              Expr.bind_params
                (fun i ->
                  if i < Array.length ctx.params then Some ctx.params.(i)
                  else None)
                p
            in
            match Expr.restriction key p with
            | Some set -> Sel_static set
            | None -> (
                match point_equality key p with
                | Some e -> Sel_point e
                | None -> Sel_dynamic p)))
    keys predicates
  |> Array.of_list

(* Row-independent selection (leaf selectors, Figure 5(a–c)): compute the
   OID set once and push it on every segment. *)
let run_static_selection ctx ~part_scan_id ~root_oid
    (selectors : level_selector array) =
  let index = index_of ctx root_oid in
  let restrictions =
    Array.map
      (function
        | Sel_none -> None
        | Sel_static set -> Some set
        | Sel_point _ | Sel_dynamic _ ->
            (* no input rows to specialize with: fail open *)
            None)
      selectors
  in
  let oids = Mpp_catalog.Partition.Index.select_oids index restrictions in
  for segment = 0 to nsegments ctx - 1 do
    Channel.propagate_set ctx.channel ~segment ~part_scan_id oids
  done

(* Row-driven selection (the DPE case, Figure 5(d)): evaluate the compiled
   selectors against each row, memoizing per distinct key-value tuple.  The
   memo only helps when no level needs the general per-row re-analysis, so
   that check is hoisted out of the row loop — with a dynamic level present
   the fast-key tuples are never even built.

   Selection itself goes through the table's index (resolved here on the
   coordinating domain, then read-only inside the parallel section): each
   memo key costs one O(log P) bitset intersection instead of a scan of
   every leaf, the resolved OID set is cached on the memo entry, and the
   whole set is handed to the channel in one batched [propagate_set] — the
   channel dedups, so overlapping per-row leaf sets never repeat work. *)
let run_streaming_selection ctx ~part_scan_id ~root_oid ~keys
    (selectors : level_selector array) (child : result) =
  let index = index_of ctx root_oid in
  let keys = Array.of_list keys in
  let general =
    Array.exists (function Sel_dynamic _ -> true | _ -> false) selectors
  in
  let resolve = resolver child.layout in
  (* compile the per-level point expressions once, not per row *)
  let points =
    Array.map
      (function
        | Sel_point e -> Some (Expr.compile ~resolve ~params:ctx.params e)
        | Sel_none | Sel_static _ | Sel_dynamic _ -> None)
      selectors
  in
  ignore
    (par_init ctx (fun segment ->
         let oids_for row =
           let restrictions =
             Array.mapi
               (fun i sel ->
                 match sel with
                 | Sel_none -> None
                 | Sel_static set -> Some set
                 | Sel_point _ -> (
                     match (Option.get points.(i)) row with
                     | Value.Null -> Some Interval.Set.empty
                     | v -> Some (Interval.Set.point v))
                 | Sel_dynamic p ->
                     Expr.restriction keys.(i)
                       (Expr.subst_cols (partial_lookup child.layout row) p))
               selectors
           in
           Mpp_catalog.Partition.Index.select_oids index restrictions
         in
         let push oids =
           Channel.propagate_set ctx.channel ~segment ~part_scan_id oids
         in
         let rows = child.rows.(segment) in
         if general then Vec.iter (fun row -> push (oids_for row)) rows
         else begin
           (* cheap memo key: the per-level point values (None for static /
              unrestricted levels, which contribute nothing row-specific);
              each entry caches the resolved OID set so a repeated key
              costs one hash probe, not a re-selection *)
           let memo : (Value.t option list, int list) Hashtbl.t =
             Hashtbl.create 64
           in
           Vec.iter
             (fun row ->
               let fast_key =
                 Array.to_list
                   (Array.map
                      (function Some f -> Some (f row) | None -> None)
                      points)
               in
               match Hashtbl.find_opt memo fast_key with
               | Some _ -> ()  (* already resolved and pushed *)
               | None ->
                   let oids = oids_for row in
                   Hashtbl.replace memo fast_key oids;
                   push oids)
             rows
         end))

(* ------------------------------------------------------------------ *)
(* Runtime join filters                                                *)
(* ------------------------------------------------------------------ *)

(* Build side: feed every build row's key tuple into a per-segment Bloom +
   min-max filter and publish it on the channel.  Sizing uses only the
   plan's [rows_est], so every segment's filter has the same shape and the
   coordinator's merge is a word-wise union.  Pass-through for rows.

   [check_against] (the build subtree's plan, passed under [ctx.verify])
   cross-checks the built min-max summaries against the statically derived
   bounds of that subtree ({!Mpp_analysis.Analysis.minmax_violations}): an
   observed key outside the static range means the filter was built over
   the wrong rows or columns, which would silently drop probe-side rows. *)
let exec_rf_build ctx ~rf_id ~keys ~rows_est ?check_against (child : result) =
  let offs = Array.of_list (List.map (resolver child.layout) keys) in
  let nkeys = Array.length offs in
  let blooms = Array.make (Array.length child.rows) None in
  ignore
    (par_init ctx (fun segment ->
         let bloom = Bloom.create ~nkeys ~expected:rows_est in
         let scratch = Array.make nkeys Value.Null in
         Vec.iter
           (fun row ->
             for i = 0 to nkeys - 1 do
               scratch.(i) <- row.(offs.(i))
             done;
             Bloom.add bloom scratch)
           child.rows.(segment);
         blooms.(segment) <- Some bloom;
         Channel.publish_filter ctx.channel ~segment ~rf_id bloom;
         let m = ctx.metrics.(segment) in
         m.Metrics.filter_built <- m.Metrics.filter_built + 1));
  (match check_against with
  | None -> ()
  | Some build_plan -> (
      (* combined per-key summary across the segment filters *)
      let minmax key =
        Array.fold_left
          (fun acc b ->
            match b with
            | None -> acc
            | Some b -> (
                match (Bloom.minmax b ~key, acc) with
                | None, acc -> acc
                | (Some _ as r), None -> r
                | Some (lo, hi), Some (lo0, hi0) ->
                    Some
                      ( (if Value.compare lo lo0 < 0 then lo else lo0),
                        if Value.compare hi hi0 > 0 then hi else hi0 )))
          None blooms
      in
      match
        Mpp_analysis.Analysis.minmax_violations ~catalog:ctx.catalog
          ~child:build_plan ~keys ~minmax
      with
      | [] -> ()
      | vs ->
          failwith
            (Printf.sprintf
               "runtime filter %d: built summary outside static bounds: %s"
               rf_id
               (String.concat "; " vs))));
  child

(* Probe side: the per-segment row test over the merged filter.  The
   factory is invoked once per segment inside a parallel section; the
   closure owns that segment's scratch tuple and counts every dropped row
   into that segment's metrics shard ([rows_filtered_motion] when the
   filter sits under a Motion send, [rows_filtered_scan] otherwise). *)
let rf_make_test ctx ~at_motion mf layout keys =
  let offs = Array.of_list (List.map (resolver layout) keys) in
  let nkeys = Array.length offs in
  let count (m : Metrics.t) =
    if at_motion then
      m.Metrics.rows_filtered_motion <- m.Metrics.rows_filtered_motion + 1
    else m.Metrics.rows_filtered_scan <- m.Metrics.rows_filtered_scan + 1
  in
  if nkeys = 1 then (
    (* single join key — the overwhelmingly common case: test the column
       value directly, no scratch-tuple traffic per row *)
    let off = offs.(0) in
    fun segment ->
      let m = ctx.metrics.(segment) in
      fun (row : row) ->
        let keep = Bloom.mem1 mf row.(off) in
        if not keep then count m;
        keep)
  else
    fun segment ->
    let scratch = Array.make nkeys Value.Null in
    let m = ctx.metrics.(segment) in
    fun (row : row) ->
      for i = 0 to nkeys - 1 do
        scratch.(i) <- row.(offs.(i))
      done;
      let keep = Bloom.mem mf scratch in
      if not keep then count m;
      keep

(* The min-max ∩ partition-index intersection: for each partitioning level
   of [root_oid] whose key column is one of the filter's probe-side key
   columns, the merged filter's [lo, hi] summary becomes a closed-interval
   restriction; the selection index turns the restriction array into the
   set of leaves that can possibly hold matching keys.  An empty build
   side restricts every matched level to the empty set.  [None] when no
   level is covered (no pruning possible). *)
let rf_allowed_oids ctx ~root_oid ~rel keys mf =
  let part = partitioning_of ctx root_oid in
  let index = index_of ctx root_oid in
  let covered = ref false in
  let restrictions =
    Array.map
      (fun (lv : Mpp_catalog.Partition.level) ->
        let rec find i = function
          | [] -> None
          | (k : Colref.t) :: rest ->
              if k.Colref.rel = rel && k.Colref.index = lv.key_index then
                Some i
              else find (i + 1) rest
        in
        match find 0 keys with
        | None -> None
        | Some kpos ->
            covered := true;
            if Bloom.count mf = 0 then Some Interval.Set.empty
            else (
              match Bloom.minmax mf ~key:kpos with
              | None -> None
              | Some (lo, hi) ->
                  Some
                    (Interval.Set.of_interval_opt
                       (Interval.make (Interval.B (lo, true))
                          (Interval.B (hi, true))))))
      part.Mpp_catalog.Partition.levels
  in
  if not !covered then None
  else begin
    let allowed = Hashtbl.create 32 in
    List.iter
      (fun oid -> Hashtbl.replace allowed oid ())
      (Mpp_catalog.Partition.Index.select_oids index restrictions);
    Some allowed
  end

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)
(* ------------------------------------------------------------------ *)

(* Split an equi-join predicate into hashable key pairs (left expr, right
   expr) plus a residual predicate. *)
let equi_keys ~left_rels ~right_rels pred =
  let refs_only rels e =
    List.for_all (fun r -> List.mem r rels) (Expr.rels e)
  in
  let keys, residual =
    List.fold_left
      (fun (keys, residual) c ->
        match c with
        | Expr.Cmp (Expr.Eq, a, b)
          when refs_only left_rels a && refs_only right_rels b ->
            ((a, b) :: keys, residual)
        | Expr.Cmp (Expr.Eq, a, b)
          when refs_only right_rels a && refs_only left_rels b ->
            ((b, a) :: keys, residual)
        | c -> (keys, c :: residual))
      ([], []) (Expr.conjuncts pred)
  in
  (List.rev keys, List.rev residual)

let null_row width = Array.make width Value.Null

let exec_join ctx ~kind ~pred ~(left : result) ~(right : result) ~hash =
  let layout =
    match kind with
    | Plan.Semi -> right.layout
    | Plan.Inner | Plan.Left_outer -> left.layout @ right.layout
  in
  let joined_layout = left.layout @ right.layout in
  let left_rels = List.map fst left.layout
  and right_rels = List.map fst right.layout in
  let keys, residual =
    if hash then equi_keys ~left_rels ~right_rels pred else ([], [ pred ])
  in
  let residual_pred = Expr.conj residual in
  (* compiled once per join: key extractors over each side's layout, the
     residual over the concatenated layout *)
  let lkey_fns =
    Array.of_list (List.map (fun (a, _) -> compile_expr ctx left.layout a) keys)
  and rkey_fns =
    Array.of_list
      (List.map (fun (_, b) -> compile_expr ctx right.layout b) keys)
  in
  let nkeys = Array.length lkey_fns in
  let residual_fn =
    if Expr.equal residual_pred Expr.true_ then None
    else Some (compile_filter ctx joined_layout residual_pred)
  in
  (* [Some key-values], or [None] if any key is NULL (never matches) *)
  let eval_keys (fns : (row -> Value.t) array) r =
    let rec go i acc =
      if i < 0 then Some acc
      else
        let v = fns.(i) r in
        if Value.is_null v then None else go (i - 1) (v :: acc)
    in
    go (nkeys - 1) []
  in
  let rwidth = layout_width right.layout in
  let rows =
    par_init ctx (fun seg ->
        let build = left.rows.(seg) and probe = right.rows.(seg) in
        let nbuild = Vec.length build in
        let table : (Value.t list, int) Hashtbl.t =
          Hashtbl.create (max 16 nbuild)
        in
        if nkeys > 0 then
          (* insert back to front so [find_all] yields ascending build
             order — deterministic output without per-probe reversals *)
          for bi = nbuild - 1 downto 0 do
            match eval_keys lkey_fns (Vec.unsafe_get build bi) with
            | Some k -> Hashtbl.add table k bi
            | None -> ()
          done;
        let out = Vec.create () in
        let semi_fast = kind = Plan.Semi && residual_fn = None in
        if semi_fast then
          (* Semi with trivial residual: probe-row emission only needs a
             match witness — no concatenated row is ever materialized *)
          Vec.iter
            (fun prow ->
              let witness =
                if nkeys = 0 then nbuild > 0
                else
                  match eval_keys rkey_fns prow with
                  | None -> false
                  | Some k -> Hashtbl.mem table k
              in
              if witness then Vec.push out prow)
            probe
        else begin
          (* matched-build tracking by INDEX, not by row value: duplicate
             identical build rows each keep their own outer-join status *)
          let matched =
            if kind = Plan.Left_outer then Bytes.make nbuild '\000'
            else Bytes.empty
          in
          let all_build = lazy (List.init nbuild (fun i -> i)) in
          Vec.iter
            (fun prow ->
              let cands =
                if nkeys = 0 then Lazy.force all_build
                else
                  match eval_keys rkey_fns prow with
                  | None -> []
                  | Some k -> Hashtbl.find_all table k
              in
              let emitted = ref false in
              List.iter
                (fun bi ->
                  let brow = Vec.unsafe_get build bi in
                  let jrow = Array.append brow prow in
                  let ok =
                    match residual_fn with None -> true | Some f -> f jrow
                  in
                  if ok then begin
                    (match kind with
                    | Plan.Semi -> if not !emitted then Vec.push out prow
                    | Plan.Inner | Plan.Left_outer -> Vec.push out jrow);
                    emitted := true;
                    if kind = Plan.Left_outer then Bytes.set matched bi '\001'
                  end)
                cands)
            probe;
          (* Left_outer with left = preserved side: emit unmatched build
             rows padded with NULLs. *)
          if kind = Plan.Left_outer then
            for bi = 0 to nbuild - 1 do
              if Bytes.get matched bi = '\000' then
                Vec.push out
                  (Array.append (Vec.unsafe_get build bi) (null_row rwidth))
            done
        end;
        out)
  in
  { layout; rows }

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

type agg_state = {
  mutable count : int;
  mutable sum : float;
  mutable sum_int : int;
  mutable ints_only : bool;
      (* SQL returns an integer sum/count for integer inputs; track whether
         any non-integer contributed *)
  mutable saw_value : bool;
  mutable min : Value.t option;
  mutable max : Value.t option;
}

let new_agg_state () =
  { count = 0; sum = 0.0; sum_int = 0; ints_only = true; saw_value = false;
    min = None; max = None }

let agg_feed st (v : Value.t) =
  if not (Value.is_null v) then begin
    st.count <- st.count + 1;
    st.saw_value <- true;
    (match v with
    | Value.Int i ->
        st.sum <- st.sum +. float_of_int i;
        st.sum_int <- st.sum_int + i
    | Value.Float f ->
        st.sum <- st.sum +. f;
        st.ints_only <- false
    | _ -> ());
    (match st.min with
    | None -> st.min <- Some v
    | Some m -> if Value.compare v m < 0 then st.min <- Some v);
    match st.max with
    | None -> st.max <- Some v
    | Some m -> if Value.compare v m > 0 then st.max <- Some v
  end

let agg_result (f : Plan.agg_fun) ~nrows (st : agg_state) : Value.t =
  match f with
  | Plan.Count_star -> Value.Int nrows
  | Plan.Count _ -> Value.Int st.count
  | Plan.Sum _ ->
      if not st.saw_value then Value.Null
      else if st.ints_only then Value.Int st.sum_int
      else Value.Float st.sum
  | Plan.Avg _ ->
      if st.count = 0 then Value.Null
      else Value.Float (st.sum /. float_of_int st.count)
  | Plan.Min _ -> ( match st.min with Some v -> v | None -> Value.Null)
  | Plan.Max _ -> ( match st.max with Some v -> v | None -> Value.Null)

let agg_arg = function
  | Plan.Count_star -> None
  | Plan.Count e | Plan.Sum e | Plan.Avg e | Plan.Min e | Plan.Max e -> Some e

let exec_agg ctx ~group_by ~aggs ~output_rel ~(child : result) =
  let ngroup = List.length group_by in
  let out_width = ngroup + List.length aggs in
  let layout = [ (output_rel, out_width) ] in
  (* compiled once: group-key extractors and aggregate arguments *)
  let key_fns =
    Array.of_list (List.map (compile_expr ctx child.layout) group_by)
  in
  let agg_fns =
    Array.of_list
      (List.map
         (fun (_, f) -> (f, Option.map (compile_expr ctx child.layout) (agg_arg f)))
         aggs)
  in
  let naggs = Array.length agg_fns in
  let rows =
    par_init ctx (fun segment ->
        let seg_rows = child.rows.(segment) in
        let groups : (Value.t list, int ref * agg_state array) Hashtbl.t =
          Hashtbl.create 64
        in
        (* group output in deterministic first-seen order *)
        let order : Value.t list Vec.t = Vec.create () in
        Vec.iter
          (fun r ->
            let key =
              Array.fold_right (fun f acc -> f r :: acc) key_fns []
            in
            let nrows, states =
              match Hashtbl.find_opt groups key with
              | Some s -> s
              | None ->
                  let s =
                    (ref 0, Array.init naggs (fun _ -> new_agg_state ()))
                  in
                  Hashtbl.replace groups key s;
                  Vec.push order key;
                  s
            in
            incr nrows;
            for i = 0 to naggs - 1 do
              match snd agg_fns.(i) with
              | None -> ()
              | Some f -> agg_feed states.(i) (f r)
            done)
          seg_rows;
        if Hashtbl.length groups = 0 && ngroup = 0 then begin
          (* A scalar aggregate over empty input still yields one row; emit
             it on the first segment only — the final aggregate runs above a
             Gather, so this is the master's row. *)
          let out = Vec.create () in
          if segment = 0 then
            Vec.push out
              (Array.of_list
                 (List.map
                    (fun (_, f) -> agg_result f ~nrows:0 (new_agg_state ()))
                    aggs));
          out
        end
        else begin
          let out = Vec.create () in
          Vec.iter
            (fun key ->
              let nrows, states = Hashtbl.find groups key in
              let r = Array.make out_width Value.Null in
              List.iteri (fun i v -> r.(i) <- v) key;
              for i = 0 to naggs - 1 do
                r.(ngroup + i) <-
                  agg_result (fst agg_fns.(i)) ~nrows:!nrows states.(i)
              done;
              Vec.push out r)
            order;
          out
        end)
  in
  { layout; rows }

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)
(* ------------------------------------------------------------------ *)

(* DML mutates shared storage, so it runs on the coordinating domain; its
   counters go to metrics shard 0. *)

let exec_update ctx ~rel ~table_oid ~set_exprs ~(child : result) =
  let table = Mpp_catalog.Catalog.find_oid ctx.catalog table_oid in
  let width = Mpp_catalog.Table.ncols table in
  let off =
    match offset_of child.layout rel with
    | Some o -> o
    | None -> invalid_arg "Exec: Update target not in child output"
  in
  let set_fns =
    List.map (fun (col, e) -> (col, compile_expr ctx child.layout e)) set_exprs
  in
  let updated = ref 0 in
  (* Collect (segment, physical oid, old tuple, new tuple) actions first so
     the scan underneath is not disturbed mid-flight. *)
  let actions = ref [] in
  Array.iteri
    (fun seg rows ->
      Vec.iter
        (fun r ->
          let old_tuple = Array.sub r off width in
          let new_tuple = Array.copy old_tuple in
          List.iter (fun (col, f) -> new_tuple.(col) <- f r) set_fns;
          let old_oid = Mpp_storage.Storage.physical_oid table old_tuple in
          actions := (seg, old_oid, old_tuple, new_tuple) :: !actions)
        rows)
    child.rows;
  (* Delete the old images: rebuild each touched heap without one occurrence
     per deleted tuple. *)
  let touched = Hashtbl.create 16 in
  List.iter
    (fun (seg, oid, old_tuple, _) ->
      let key = (seg, oid) in
      let dels =
        match Hashtbl.find_opt touched key with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace touched key l;
            l
      in
      dels := old_tuple :: !dels)
    !actions;
  Hashtbl.iter
    (fun (seg, oid) dels ->
      let remaining = ref [] in
      let pending = ref !dels in
      Array.iter
        (fun t ->
          let rec remove acc = function
            | [] -> None
            | d :: rest ->
                if d == t || d = t then Some (List.rev_append acc rest)
                else remove (d :: acc) rest
          in
          match remove [] !pending with
          | Some rest -> pending := rest
          | None -> remaining := t :: !remaining)
        (Mpp_storage.Storage.scan ctx.storage ~segment:seg ~oid);
      Mpp_storage.Storage.replace_heap ctx.storage ~segment:seg ~oid
        (List.rev !remaining))
    touched;
  (* Re-insert the new images through the normal path so they land on the
     right segment and partition. *)
  List.iter
    (fun (_, _, _, new_tuple) ->
      Mpp_storage.Storage.insert ctx.storage table new_tuple;
      incr updated)
    !actions;
  ctx.metrics.(0).Metrics.rows_updated <-
    ctx.metrics.(0).Metrics.rows_updated + !updated;
  let rows = empty_rows ctx in
  Vec.push rows.(0) [| Value.Int !updated |];
  { layout = [ (-1, 1) ]; rows }

let exec_delete ctx ~rel ~table_oid ~(child : result) =
  let table = Mpp_catalog.Catalog.find_oid ctx.catalog table_oid in
  let width = Mpp_catalog.Table.ncols table in
  let off =
    match offset_of child.layout rel with
    | Some o -> o
    | None -> invalid_arg "Exec: Delete target not in child output"
  in
  let deleted = ref 0 in
  let touched = Hashtbl.create 16 in
  Array.iteri
    (fun seg rows ->
      Vec.iter
        (fun r ->
          let old_tuple = Array.sub r off width in
          let oid = Mpp_storage.Storage.physical_oid table old_tuple in
          let key = (seg, oid) in
          let dels =
            match Hashtbl.find_opt touched key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace touched key l;
                l
          in
          dels := old_tuple :: !dels)
        rows)
    child.rows;
  Hashtbl.iter
    (fun (seg, oid) dels ->
      let remaining = ref [] in
      let pending = ref !dels in
      Array.iter
        (fun t ->
          let rec remove acc = function
            | [] -> None
            | d :: rest ->
                if d = t then Some (List.rev_append acc rest)
                else remove (d :: acc) rest
          in
          match remove [] !pending with
          | Some rest ->
              pending := rest;
              incr deleted
          | None -> remaining := t :: !remaining)
        (Mpp_storage.Storage.scan ctx.storage ~segment:seg ~oid);
      Mpp_storage.Storage.replace_heap ctx.storage ~segment:seg ~oid
        (List.rev !remaining))
    touched;
  ctx.metrics.(0).Metrics.rows_deleted <-
    ctx.metrics.(0).Metrics.rows_deleted + !deleted;
  let rows = empty_rows ctx in
  Vec.push rows.(0) [| Value.Int !deleted |];
  { layout = [ (-1, 1) ]; rows }

(* ------------------------------------------------------------------ *)
(* Motion                                                              *)
(* ------------------------------------------------------------------ *)

(* Motions cross segment boundaries — the one operator family whose work is
   inherently not per-segment — so they run on the coordinating domain and
   record into metrics shard 0. *)
let exec_motion ctx ~kind ~(child : result) =
  let n = nsegments ctx in
  let total = Array.fold_left (fun acc v -> acc + Vec.length v) 0 child.rows in
  let concat_all () = Vec.concat (Array.to_list child.rows) in
  let rows =
    match kind with
    | Plan.Gather ->
        Metrics.record_motion ctx.metrics.(0) ~rows:total;
        let all = concat_all () in
        Array.init n (fun i -> if i = 0 then all else Vec.create ())
    | Plan.Gather_one ->
        (* the child is replicated: any single copy is the full result *)
        let one = child.rows.(0) in
        Metrics.record_motion ctx.metrics.(0) ~rows:(Vec.length one);
        Array.init n (fun i -> if i = 0 then one else Vec.create ())
    | Plan.Broadcast ->
        Metrics.record_motion ctx.metrics.(0) ~rows:(total * n);
        let all = concat_all () in
        (* every segment shares the same (immutable-by-convention) batch *)
        Array.make n all
    | Plan.Redistribute cols ->
        Metrics.record_motion ctx.metrics.(0) ~rows:total;
        (* hash-key offsets resolved once *)
        let offs = List.map (resolver child.layout) cols in
        let buckets = Array.init n (fun _ -> Vec.create ()) in
        Array.iter
          (Vec.iter (fun r ->
               let vs = List.map (fun off -> r.(off)) offs in
               let seg =
                 Mpp_catalog.Distribution.segment_for_values ~nsegments:n vs
               in
               Vec.push buckets.(seg) r))
          child.rows;
        buckets
  in
  { child with rows }

(* ------------------------------------------------------------------ *)
(* Top-level interpreter                                               *)
(* ------------------------------------------------------------------ *)

(* Plan nodes are identified by pre-order index (root = 0; a node's first
   child is its own index + 1; siblings follow the whole subtree).  The
   numbering is recomputed by {!Explain} to attach the stats back to the
   rendered tree. *)
let child_ids id plan =
  let next = ref (id + 1) in
  List.map
    (fun c ->
      let cid = !next in
      next := cid + Plan.node_count c;
      cid)
    (Plan.children plan)

(* Distinct OIDs pushed to [part_scan_id]'s channel, over all segments. *)
let channel_oid_count ctx ~part_scan_id =
  let seen = Hashtbl.create 16 in
  for segment = 0 to nsegments ctx - 1 do
    List.iter
      (fun oid -> Hashtbl.replace seen oid ())
      (Channel.consume ctx.channel ~segment ~part_scan_id)
  done;
  Hashtbl.length seen

let nparts_of_root ctx root_oid =
  Mpp_catalog.Table.nparts (Mpp_catalog.Catalog.find_oid ctx.catalog root_oid)

let rec exec_at ctx id (plan : Plan.t) : result =
  match ctx.stats with
  | None ->
      if not (Trace.enabled ctx.trace) then exec_node ctx id plan
      else begin
        (* trace without stats: per-node and per-segment events only *)
        let prev_node = ctx.cur_node and prev_label = ctx.cur_label in
        ctx.cur_node <- id;
        ctx.cur_label <- Plan.describe plan;
        let t0 = Trace.now ctx.trace in
        let finally () =
          ctx.cur_node <- prev_node;
          ctx.cur_label <- prev_label
        in
        let r = Fun.protect ~finally (fun () -> exec_node ctx id plan) in
        Trace.emit ctx.trace ~tid:coordinator_tid ~cat:"node"
          ~name:(Plan.describe plan)
          ~args:[ ("node", Mpp_obs.Json.Int id) ]
          ~start:t0 ~stop:(Trace.now ctx.trace) ();
        r
      end
  | Some st ->
      let n = Node_stats.node st id in
      let prev_node = ctx.cur_node and prev_label = ctx.cur_label in
      let traced = Trace.enabled ctx.trace in
      ctx.cur_node <- id;
      if traced then ctx.cur_label <- Plan.describe plan;
      let tr0 = if traced then Trace.now ctx.trace else 0.0 in
      let t0 = Node_stats.time st in
      let r =
        Fun.protect
          ~finally:(fun () ->
            ctx.cur_node <- prev_node;
            ctx.cur_label <- prev_label)
          (fun () -> exec_node ctx id plan)
      in
      n.Node_stats.time_s <-
        n.Node_stats.time_s +. (Node_stats.time st -. t0);
      n.Node_stats.invocations <- n.Node_stats.invocations + 1;
      let emitted =
        Array.fold_left (fun acc v -> acc + Vec.length v) 0 r.rows
      in
      n.Node_stats.rows <- n.Node_stats.rows + emitted;
      (* per-segment rows, recorded here on the coordinating domain from
         the per-segment output batches: deterministic, so serial and
         parallel runs agree — the skew ratio's raw signal *)
      let nseg_arr = Array.length n.Node_stats.seg_rows in
      Array.iteri
        (fun s v ->
          if s < nseg_arr then
            n.Node_stats.seg_rows.(s) <-
              n.Node_stats.seg_rows.(s) + Vec.length v)
        r.rows;
      if traced then
        Trace.emit ctx.trace ~tid:coordinator_tid ~cat:"node"
          ~name:(Plan.describe plan)
          ~args:
            [
              ("node", Mpp_obs.Json.Int id);
              ("rows", Mpp_obs.Json.Int emitted);
            ]
          ~start:tr0 ~stop:(Trace.now ctx.trace) ();
      (match plan with
      | Plan.Dynamic_scan { part_scan_id; root_oid; _ } ->
          n.Node_stats.parts_scanned <- channel_oid_count ctx ~part_scan_id;
          n.Node_stats.parts_total <- nparts_of_root ctx root_oid
      | Plan.Partition_selector { part_scan_id; root_oid; _ } ->
          n.Node_stats.parts_selected <- channel_oid_count ctx ~part_scan_id;
          n.Node_stats.parts_total <- nparts_of_root ctx root_oid
      | Plan.Table_scan { table_oid; guard; _ } ->
          (* a per-leaf scan (Planner expansion) reads its one partition; a
             guarded one only when its OID was pushed on some segment *)
          let root = root_oid_of ctx table_oid in
          if guard <> None || root <> table_oid then begin
            let scanned =
              match guard with
              | None -> true
              | Some gid ->
                  let hit = ref false in
                  for segment = 0 to nsegments ctx - 1 do
                    if
                      Channel.mem ctx.channel ~segment ~part_scan_id:gid
                        table_oid
                    then hit := true
                  done;
                  !hit
            in
            n.Node_stats.parts_scanned <- (if scanned then 1 else 0);
            n.Node_stats.parts_total <- nparts_of_root ctx root
          end
      | Plan.Motion _ ->
          (* every motion kind emits exactly the rows it moved: Gather and
             Redistribute forward each row once, Broadcast emits one copy
             per segment, Gather_one reads a single replica *)
          n.Node_stats.tuples_moved <- n.Node_stats.tuples_moved + emitted
      | _ -> ());
      r

and exec_node ctx id (plan : Plan.t) : result =
  let kid =
    let ids = child_ids id plan in
    fun i c -> exec_at ctx (List.nth ids i) c
  in
  match plan with
  | Plan.Table_scan { rel; table_oid; filter; guard } ->
      exec_table_scan ctx ~rel ~table_oid ~filter ~guard
  | Plan.Dynamic_scan { rel; part_scan_id; root_oid; filter; _ } ->
      exec_dynamic_scan ctx ~rel ~part_scan_id ~root_oid ~filter
  | Plan.Partition_selector
      { part_scan_id; root_oid; keys; predicates; child = None } ->
      let selectors = compile_selector ctx ~keys ~predicates in
      run_static_selection ctx ~part_scan_id ~root_oid selectors;
      { layout = []; rows = empty_rows ctx }
  | Plan.Partition_selector
      { part_scan_id; root_oid; keys; predicates; child = Some c } ->
      let child = kid 0 c in
      let selectors = compile_selector ctx ~keys ~predicates in
      run_streaming_selection ctx ~part_scan_id ~root_oid ~keys selectors child;
      child
  | Plan.Sequence children ->
      let rec go i last = function
        | [] -> (
            match last with
            | Some r -> r
            | None -> { layout = []; rows = empty_rows ctx })
        | c :: rest -> go (i + 1) (Some (kid i c)) rest
      in
      go 0 None children
  | Plan.Filter { pred; child } ->
      let r = kid 0 child in
      let p = compile_filter ctx r.layout pred in
      { r with rows = par_init ctx (fun seg -> Vec.filter p r.rows.(seg)) }
  | Plan.Project { exprs; child } ->
      let r = kid 0 child in
      let layout = [ (-1, List.length exprs) ] in
      let fns =
        Array.of_list
          (List.map (fun (_, e) -> compile_expr ctx r.layout e) exprs)
      in
      {
        layout;
        rows =
          par_init ctx (fun seg ->
              Vec.map (fun row -> Array.map (fun f -> f row) fns) r.rows.(seg));
      }
  | Plan.Hash_join { kind; pred; left; right } ->
      let l = kid 0 left in
      let r = kid 1 right in
      exec_join ctx ~kind ~pred ~left:l ~right:r ~hash:true
  | Plan.Nl_join { kind; pred; left; right } ->
      let l = kid 0 left in
      let r = kid 1 right in
      exec_join ctx ~kind ~pred ~left:l ~right:r ~hash:false
  | Plan.Agg { group_by; aggs; child; output_rel } ->
      let r = kid 0 child in
      exec_agg ctx ~group_by ~aggs ~output_rel ~child:r
  | Plan.Sort { keys; child } ->
      let r = kid 0 child in
      let fns = List.map (compile_expr ctx r.layout) keys in
      let cmp a b =
        let rec go = function
          | [] -> 0
          | f :: rest ->
              let c = Value.compare (f a) (f b) in
              if c <> 0 then c else go rest
        in
        go fns
      in
      { r with rows = par_init ctx (fun seg -> Vec.sorted cmp r.rows.(seg)) }
  | Plan.Limit { rows = n; child } ->
      let r = kid 0 child in
      { r with rows = Array.map (Vec.take n) r.rows }
  | Plan.Motion { kind; child } ->
      (* credit Motion sends avoided by pre-Motion runtime filtering: rows a
         [Runtime_filter ~at_motion:true] below this Motion dropped while
         the subtree executed would each have cost one send here (or
         [nsegments] sends for a Broadcast).  Each drop is claimed by its
         nearest enclosing Motion — inner Motions finish (and claim) before
         this one, so whatever is still unclaimed was dropped directly
         below this send and is credited exactly once. *)
      let filtered_below () =
        Array.fold_left
          (fun acc m -> acc + m.Metrics.rows_filtered_motion)
          0 ctx.metrics
      in
      let r = kid 0 child in
      let delta = filtered_below () - ctx.rf_motion_claimed in
      ctx.rf_motion_claimed <- ctx.rf_motion_claimed + delta;
      let factor =
        match kind with
        | Plan.Broadcast -> nsegments ctx
        | Plan.Redistribute _ | Plan.Gather -> 1
        | Plan.Gather_one -> 0
      in
      if delta > 0 && factor > 0 then begin
        let m = ctx.metrics.(0) in
        m.Metrics.motion_rows_saved <-
          m.Metrics.motion_rows_saved + (delta * factor)
      end;
      exec_motion ctx ~kind ~child:r
  | Plan.Runtime_filter_build { rf_id; keys; rows_est; child } ->
      let r = kid 0 child in
      if ctx.runtime_filters then
        let check_against = if ctx.verify then Some child else None in
        exec_rf_build ctx ~rf_id ~keys ~rows_est ?check_against r
      else r
  | Plan.Runtime_filter { rf_id; keys; at_motion; child } -> (
      if not ctx.runtime_filters then kid 0 child
      else
        (* resolved on the coordinating domain, after the build subtree's
           parallel sections completed (the consumer sits on the probe
           side, which executes strictly after the build side) *)
        match Channel.merged_filter ctx.channel ~rf_id with
        | None -> kid 0 child
        | Some mf -> (
            match child with
            | Plan.Table_scan { rel; table_oid; _ } ->
                (* fuse into the scan's row loop as a pre-predicate *)
                let width = table_width ctx (root_oid_of ctx table_oid) in
                ctx.fused_rf <-
                  Some
                    {
                      rf_make =
                        rf_make_test ctx ~at_motion mf [ (rel, width) ] keys;
                      rf_allowed = None;
                    };
                kid 0 child
            | Plan.Dynamic_scan { rel; root_oid; _ } ->
                (* fuse the row test, and intersect the filter's min-max
                   summary with the partition index to drop whole leaves —
                   partition-level elimination, so it honors the
                   selection-disabled ablation like the selectors do *)
                let width = table_width ctx root_oid in
                ctx.fused_rf <-
                  Some
                    {
                      rf_make =
                        rf_make_test ctx ~at_motion mf [ (rel, width) ] keys;
                      rf_allowed =
                        (if ctx.selection_enabled then
                           rf_allowed_oids ctx ~root_oid ~rel keys mf
                         else None);
                    };
                kid 0 child
            | _ ->
                (* standalone: filter the child's batches in place *)
                let r = kid 0 child in
                let test = rf_make_test ctx ~at_motion mf r.layout keys in
                {
                  r with
                  rows =
                    par_init ctx (fun seg ->
                        Vec.filter (test seg) r.rows.(seg));
                }))
  | Plan.Append children ->
      let results = List.mapi kid children in
      (match results with
      | [] -> { layout = []; rows = empty_rows ctx }
      | first :: _ ->
          {
            layout = first.layout;
            rows =
              par_init ctx (fun seg ->
                  Vec.concat (List.map (fun r -> r.rows.(seg)) results));
          })
  | Plan.Update { rel; table_oid; set_exprs; child } ->
      let r = kid 0 child in
      exec_update ctx ~rel ~table_oid ~set_exprs ~child:r
  | Plan.Delete { rel; table_oid; child } ->
      let r = kid 0 child in
      exec_delete ctx ~rel ~table_oid ~child:r
  | Plan.Insert { table_oid; rows } ->
      let table = Mpp_catalog.Catalog.find_oid ctx.catalog table_oid in
      (* VALUES rows reference no columns; compile against the empty layout
         (parameters are bound, stray columns raise as before) *)
      List.iter
        (fun r ->
          let tuple =
            Array.of_list (List.map (fun e -> compile_expr ctx [] e [||]) r)
          in
          Mpp_storage.Storage.insert ctx.storage table tuple)
        rows;
      let out = empty_rows ctx in
      Vec.push out.(0) [| Value.Int (List.length rows) |];
      { layout = [ (-1, 1) ]; rows = out }

(** Evaluate a plan with this context; the root gets pre-order index 0. *)
let exec ctx (plan : Plan.t) : result =
  if ctx.verify then
    Mpp_verify.Verify.assert_valid ~catalog:ctx.catalog ~what:"executor input"
      plan;
  exec_at ctx 0 plan

(** Execute [plan] and gather all segments' output rows on the master. *)
let run ?(params = [||]) ?(selection_enabled = true) ?(verify = false)
    ?(runtime_filters = true) ?stats ?trace ?domains ?pool ~catalog ~storage
    plan =
  let ctx =
    create_ctx ~params ~selection_enabled ~verify ~runtime_filters ?stats
      ?trace ?domains ?pool ~catalog ~storage ()
  in
  let r = exec ctx plan in
  let rows =
    List.concat (Array.to_list (Array.map Vec.to_list r.rows))
  in
  (rows, metrics ctx)

(** Execute [plan] collecting per-node EXPLAIN ANALYZE statistics. *)
let run_analyze ?(params = [||]) ?(selection_enabled = true) ?(verify = false)
    ?(runtime_filters = true) ?trace ?domains ~catalog ~storage plan =
  let stats = Node_stats.create () in
  let rows, metrics =
    run ~params ~selection_enabled ~verify ~runtime_filters ~stats ?trace
      ?domains ~catalog ~storage plan
  in
  (rows, metrics, stats)

(** The query executor: interprets a physical {!Mpp_plan.Plan.t} on the
    simulated MPP cluster.

    Execution is segment-synchronous: every operator produces, for each
    segment, the rows that operator would emit on that segment; [Motion]
    nodes re-shuffle the per-segment row sets.  Side-effect ordering follows
    the paper's conventions — [Sequence] children run left to right and a
    join's left child runs before its right child — so a PartitionSelector
    always executes (and pushes its OIDs into the per-segment {!Channel})
    before the DynamicScan that consumes them.

    Rows are flat [Value.t array]s; each operator's output carries a layout
    mapping range-table indices to offsets so column references evaluate
    positionally. *)

open Mpp_expr
module Plan = Mpp_plan.Plan

type ctx = {
  catalog : Mpp_catalog.Catalog.t;
  storage : Mpp_storage.Storage.t;
  channel : Channel.t;
  metrics : Metrics.t;
  params : Value.t array;
  selection_enabled : bool;
      (** when [false], PartitionSelectors ignore their predicates and push
          every leaf OID — the "partition selection disabled" configuration
          of the paper's Figure 17 *)
  stats : Node_stats.t option;
      (** when set, the interpreter records per-plan-node actual rows,
          partitions scanned and wall time (the EXPLAIN ANALYZE data);
          [None] skips all per-node bookkeeping *)
}

let create_ctx ?(params = [||]) ?(selection_enabled = true) ?stats ~catalog
    ~storage () =
  {
    catalog;
    storage;
    channel = Channel.create ();
    metrics = Metrics.create ();
    params;
    selection_enabled;
    stats;
  }

type result = {
  layout : (int * int) list;  (** (range-table index, width) left to right *)
  rows : Value.t array list array;  (** one row list per segment *)
}

let nsegments ctx = Mpp_storage.Storage.nsegments ctx.storage

let empty_rows ctx = Array.make (nsegments ctx) []

(* ------------------------------------------------------------------ *)
(* Layout and environment plumbing                                     *)
(* ------------------------------------------------------------------ *)

let offset_of layout rel =
  let rec go off = function
    | [] -> None
    | (r, w) :: rest -> if r = rel then Some off else go (off + w) rest
  in
  go 0 layout

let layout_width layout = List.fold_left (fun acc (_, w) -> acc + w) 0 layout

let env_of ctx layout (tuple : Value.t array) : Expr.env =
  {
    Expr.col =
      (fun c ->
        match offset_of layout c.Colref.rel with
        | Some off -> tuple.(off + c.Colref.index)
        | None ->
            invalid_arg
              (Printf.sprintf "Exec: column %s not in scope"
                 (Colref.to_string c)));
    Expr.param =
      (fun i ->
        if i < Array.length ctx.params then ctx.params.(i)
        else invalid_arg (Printf.sprintf "Exec: unbound parameter $%d" i));
  }

(* Column lookup that yields [None] for out-of-scope relations; used to
   specialize selector predicates with the columns that are in scope. *)
let partial_lookup layout (tuple : Value.t array) (c : Colref.t) =
  match offset_of layout c.Colref.rel with
  | Some off -> Some tuple.(off + c.Colref.index)
  | None -> None

let eval_filter ctx layout pred row = Expr.eval_pred (env_of ctx layout row) pred

let apply_opt_filter ctx layout filter rows =
  match filter with
  | None -> rows
  | Some pred -> List.filter (eval_filter ctx layout pred) rows

(* ------------------------------------------------------------------ *)
(* Scans                                                               *)
(* ------------------------------------------------------------------ *)

let root_oid_of ctx oid =
  match Mpp_catalog.Catalog.root_of_leaf ctx.catalog oid with
  | Some root -> root
  | None -> oid

let scan_physical ctx ~segment ~oid =
  let rows = Mpp_storage.Storage.scan_list ctx.storage ~segment ~oid in
  Metrics.record_scan ctx.metrics ~root_oid:(root_oid_of ctx oid) ~part_oid:oid
    ~rows:(Mpp_storage.Storage.count_segment ctx.storage ~segment ~oid);
  rows

let table_width ctx oid =
  Mpp_catalog.Table.ncols (Mpp_catalog.Catalog.find_oid ctx.catalog oid)

let exec_table_scan ctx ~rel ~table_oid ~filter ~guard =
  let root = root_oid_of ctx table_oid in
  let width = table_width ctx root in
  let layout = [ (rel, width) ] in
  let rows =
    Array.init (nsegments ctx) (fun segment ->
        let skipped =
          match guard with
          | None -> false
          | Some part_scan_id ->
              not
                (List.mem table_oid
                   (Channel.consume ctx.channel ~segment ~part_scan_id))
        in
        if skipped then []
        else
          scan_physical ctx ~segment ~oid:table_oid
          |> apply_opt_filter ctx layout filter)
  in
  { layout; rows }

let exec_dynamic_scan ctx ~rel ~part_scan_id ~root_oid ~filter =
  let width = table_width ctx root_oid in
  let layout = [ (rel, width) ] in
  let rows =
    Array.init (nsegments ctx) (fun segment ->
        Channel.consume ctx.channel ~segment ~part_scan_id
        |> List.concat_map (fun oid -> scan_physical ctx ~segment ~oid)
        |> apply_opt_filter ctx layout filter)
  in
  { layout; rows }

(* ------------------------------------------------------------------ *)
(* Partition selection                                                 *)
(* ------------------------------------------------------------------ *)

(* Compiled per-level selection behaviour.  Real systems generate a
   specialized partition-selection function per selector (paper §3.2,
   Figure 15); interpreting the predicate per input row would make the
   selector cost visible at run time, so we compile each level once:
   - [Sel_none]: no predicate (or selection disabled) — no restriction;
   - [Sel_static]: the restriction is row-independent (static elimination
     and prepared-statement parameters);
   - [Sel_point]: the predicate is [key = e] with [e] over the input row —
     the equality fast path of Figure 15(a);
   - [Sel_dynamic]: general fallback — substitute the row and re-analyze. *)
type level_selector =
  | Sel_none
  | Sel_static of Interval.Set.t
  | Sel_point of Expr.t
  | Sel_dynamic of Expr.t

let partitioning_of ctx root_oid =
  match
    (Mpp_catalog.Catalog.find_oid ctx.catalog root_oid).Mpp_catalog.Table
      .partitioning
  with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Exec: PartitionSelector on non-partitioned oid %d"
           root_oid)

(* [key = e] where e does not mention the key itself. *)
let point_equality (key : Colref.t) p =
  match Expr.conjuncts p with
  | [ Expr.Cmp (Expr.Eq, Expr.Col k, e) ] when Colref.equal k key
    && not (List.exists (Colref.equal key) (Expr.free_cols e)) ->
      Some e
  | [ Expr.Cmp (Expr.Eq, e, Expr.Col k) ] when Colref.equal k key
    && not (List.exists (Colref.equal key) (Expr.free_cols e)) ->
      Some e
  | _ -> None

let compile_selector ctx ~keys ~predicates : level_selector array =
  List.map2
    (fun key pred ->
      if not ctx.selection_enabled then Sel_none
      else
        match pred with
        | None -> Sel_none
        | Some p -> (
            let p =
              Expr.bind_params
                (fun i ->
                  if i < Array.length ctx.params then Some ctx.params.(i)
                  else None)
                p
            in
            match Expr.restriction key p with
            | Some set -> Sel_static set
            | None -> (
                match point_equality key p with
                | Some e -> Sel_point e
                | None -> Sel_dynamic p)))
    keys predicates
  |> Array.of_list

(* Row-independent selection (leaf selectors, Figure 5(a–c)): compute the
   OID set once and push it on the given segment. *)
let run_static_selection ctx ~segment ~part_scan_id ~root_oid
    (selectors : level_selector array) =
  let partitioning = partitioning_of ctx root_oid in
  let restrictions =
    Array.map
      (function
        | Sel_none -> None
        | Sel_static set -> Some set
        | Sel_point _ | Sel_dynamic _ ->
            (* no input rows to specialize with: fail open *)
            None)
      selectors
  in
  Mpp_catalog.Partition.select_oids partitioning restrictions
  |> List.iter (fun oid ->
         Channel.propagate ctx.channel ~segment ~part_scan_id oid)

(* Row-driven selection (the DPE case, Figure 5(d)): evaluate the compiled
   selectors against each row, memoizing per distinct key-value tuple. *)
let run_streaming_selection ctx ~part_scan_id ~root_oid ~keys
    (selectors : level_selector array) (child : result) =
  let partitioning = partitioning_of ctx root_oid in
  Array.iteri
    (fun segment rows ->
      let seen : (Value.t option list, unit) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun row ->
          let env = env_of ctx child.layout row in
          (* cheap memo key: the per-level point values (None for static /
             unrestricted levels, which contribute nothing row-specific) *)
          let fast_key =
            Array.to_list
              (Array.map
                 (function
                   | Sel_point e -> Some (Expr.eval env e)
                   | Sel_none | Sel_static _ | Sel_dynamic _ -> None)
                 selectors)
          in
          let general = Array.exists (function Sel_dynamic _ -> true | _ -> false)
              selectors in
          if general || not (Hashtbl.mem seen fast_key) then begin
            if not general then Hashtbl.replace seen fast_key ();
            let restrictions =
              Array.map2
                (fun sel key ->
                  match sel with
                  | Sel_none -> None
                  | Sel_static set -> Some set
                  | Sel_point e -> (
                      match Expr.eval env e with
                      | Value.Null -> Some Interval.Set.empty
                      | v -> Some (Interval.Set.point v))
                  | Sel_dynamic p ->
                      Expr.restriction key
                        (Expr.subst_cols (partial_lookup child.layout row) p))
                selectors
                (Array.of_list keys)
            in
            Mpp_catalog.Partition.select_oids partitioning restrictions
            |> List.iter (fun oid ->
                   Channel.propagate ctx.channel ~segment ~part_scan_id oid)
          end)
        rows)
    child.rows

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)
(* ------------------------------------------------------------------ *)

(* Split an equi-join predicate into hashable key pairs (left expr, right
   expr) plus a residual predicate. *)
let equi_keys ~left_rels ~right_rels pred =
  let refs_only rels e =
    List.for_all (fun r -> List.mem r rels) (Expr.rels e)
  in
  let keys, residual =
    List.fold_left
      (fun (keys, residual) c ->
        match c with
        | Expr.Cmp (Expr.Eq, a, b)
          when refs_only left_rels a && refs_only right_rels b ->
            ((a, b) :: keys, residual)
        | Expr.Cmp (Expr.Eq, a, b)
          when refs_only right_rels a && refs_only left_rels b ->
            ((b, a) :: keys, residual)
        | c -> (keys, c :: residual))
      ([], []) (Expr.conjuncts pred)
  in
  (List.rev keys, List.rev residual)

let null_row width = Array.make width Value.Null

let exec_join ctx ~kind ~pred ~(left : result) ~(right : result) ~hash =
  let layout =
    match kind with
    | Plan.Semi -> right.layout
    | Plan.Inner | Plan.Left_outer -> left.layout @ right.layout
  in
  let joined_layout = left.layout @ right.layout in
  let left_rels = List.map fst left.layout
  and right_rels = List.map fst right.layout in
  let keys, residual =
    if hash then equi_keys ~left_rels ~right_rels pred else ([], [ pred ])
  in
  let residual_pred = Expr.conj residual in
  let eval_keys layout row exprs =
    List.map (fun e -> Expr.eval (env_of ctx layout row) e) exprs
  in
  let rows =
    Array.init (nsegments ctx) (fun seg ->
        let build = left.rows.(seg) and probe = right.rows.(seg) in
        let table = Hashtbl.create (List.length build) in
        let lkeys = List.map fst keys and rkeys = List.map snd keys in
        if keys <> [] then
          List.iter
            (fun brow ->
              let k = eval_keys left.layout brow lkeys in
              if not (List.exists Value.is_null k) then
                Hashtbl.add table k brow)
            build;
        let candidates probe_row =
          if keys = [] then build
          else
            let k = eval_keys right.layout probe_row rkeys in
            if List.exists Value.is_null k then []
            else Hashtbl.find_all table k
        in
        let matched_left = Hashtbl.create 16 in
        let out = ref [] in
        List.iter
          (fun prow ->
            let cands = candidates prow in
            let emitted = ref false in
            List.iter
              (fun brow ->
                let row = Array.append brow prow in
                if
                  Expr.equal residual_pred Expr.true_
                  || eval_filter ctx joined_layout residual_pred row
                then begin
                  (match kind with
                  | Plan.Semi ->
                      if not !emitted then out := prow :: !out
                  | Plan.Inner | Plan.Left_outer -> out := row :: !out);
                  emitted := true;
                  Hashtbl.replace matched_left brow ()
                end)
              cands)
          probe;
        (* Left_outer with left = preserved side: emit unmatched build rows
           padded with NULLs. *)
        (match kind with
        | Plan.Left_outer ->
            let rwidth = layout_width right.layout in
            List.iter
              (fun brow ->
                if not (Hashtbl.mem matched_left brow) then
                  out := Array.append brow (null_row rwidth) :: !out)
              build
        | Plan.Inner | Plan.Semi -> ());
        List.rev !out)
  in
  { layout; rows }

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

type agg_state = {
  mutable count : int;
  mutable sum : float;
  mutable sum_int : int;
  mutable ints_only : bool;
      (* SQL returns an integer sum/count for integer inputs; track whether
         any non-integer contributed *)
  mutable saw_value : bool;
  mutable min : Value.t option;
  mutable max : Value.t option;
}

let new_agg_state () =
  { count = 0; sum = 0.0; sum_int = 0; ints_only = true; saw_value = false;
    min = None; max = None }

let agg_feed st (v : Value.t) =
  if not (Value.is_null v) then begin
    st.count <- st.count + 1;
    st.saw_value <- true;
    (match v with
    | Value.Int i ->
        st.sum <- st.sum +. float_of_int i;
        st.sum_int <- st.sum_int + i
    | Value.Float f ->
        st.sum <- st.sum +. f;
        st.ints_only <- false
    | _ -> ());
    (match st.min with
    | None -> st.min <- Some v
    | Some m -> if Value.compare v m < 0 then st.min <- Some v);
    match st.max with
    | None -> st.max <- Some v
    | Some m -> if Value.compare v m > 0 then st.max <- Some v
  end

let agg_result (f : Plan.agg_fun) ~nrows (st : agg_state) : Value.t =
  match f with
  | Plan.Count_star -> Value.Int nrows
  | Plan.Count _ -> Value.Int st.count
  | Plan.Sum _ ->
      if not st.saw_value then Value.Null
      else if st.ints_only then Value.Int st.sum_int
      else Value.Float st.sum
  | Plan.Avg _ ->
      if st.count = 0 then Value.Null
      else Value.Float (st.sum /. float_of_int st.count)
  | Plan.Min _ -> ( match st.min with Some v -> v | None -> Value.Null)
  | Plan.Max _ -> ( match st.max with Some v -> v | None -> Value.Null)

let agg_arg = function
  | Plan.Count_star -> None
  | Plan.Count e | Plan.Sum e | Plan.Avg e | Plan.Min e | Plan.Max e -> Some e

let exec_agg ctx ~group_by ~aggs ~output_rel ~(child : result) =
  let out_width = List.length group_by + List.length aggs in
  let layout = [ (output_rel, out_width) ] in
  let rows =
    Array.mapi
      (fun segment seg_rows ->
        let groups : (Value.t list, int ref * agg_state list) Hashtbl.t =
          Hashtbl.create 64
        in
        List.iter
          (fun row ->
            let env = env_of ctx child.layout row in
            let key = List.map (Expr.eval env) group_by in
            let nrows, states =
              match Hashtbl.find_opt groups key with
              | Some s -> s
              | None ->
                  let s =
                    (ref 0, List.map (fun _ -> new_agg_state ()) aggs)
                  in
                  Hashtbl.replace groups key s;
                  s
            in
            incr nrows;
            List.iter2
              (fun (_, f) st ->
                match agg_arg f with
                | None -> ()
                | Some e -> agg_feed st (Expr.eval env e))
              aggs states)
          seg_rows;
        if Hashtbl.length groups = 0 && group_by = [] then
          (* A scalar aggregate over empty input still yields one row; emit
             it on the first segment only — the final aggregate runs above a
             Gather, so this is the master's row. *)
          if segment = 0 then
            [ Array.of_list
                (List.map
                   (fun (_, f) -> agg_result f ~nrows:0 (new_agg_state ()))
                   aggs) ]
          else []
        else
          Hashtbl.fold
            (fun key (nrows, states) acc ->
              let values =
                key
                @ List.map2
                    (fun (_, f) st -> agg_result f ~nrows:!nrows st)
                    aggs states
              in
              Array.of_list values :: acc)
            groups [])
      child.rows
  in
  { layout; rows }

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)
(* ------------------------------------------------------------------ *)

let exec_update ctx ~rel ~table_oid ~set_exprs ~(child : result) =
  let table = Mpp_catalog.Catalog.find_oid ctx.catalog table_oid in
  let width = Mpp_catalog.Table.ncols table in
  let off =
    match offset_of child.layout rel with
    | Some o -> o
    | None -> invalid_arg "Exec: Update target not in child output"
  in
  let updated = ref 0 in
  (* Collect (segment, physical oid, old tuple, new tuple) actions first so
     the scan underneath is not disturbed mid-flight. *)
  let actions = ref [] in
  Array.iteri
    (fun seg rows ->
      List.iter
        (fun row ->
          let old_tuple = Array.sub row off width in
          let new_tuple = Array.copy old_tuple in
          let env = env_of ctx child.layout row in
          List.iter
            (fun (col, e) -> new_tuple.(col) <- Expr.eval env e)
            set_exprs;
          let old_oid = Mpp_storage.Storage.physical_oid table old_tuple in
          actions := (seg, old_oid, old_tuple, new_tuple) :: !actions)
        rows)
    child.rows;
  (* Delete the old images: rebuild each touched heap without one occurrence
     per deleted tuple. *)
  let touched = Hashtbl.create 16 in
  List.iter
    (fun (seg, oid, old_tuple, _) ->
      let key = (seg, oid) in
      let dels =
        match Hashtbl.find_opt touched key with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace touched key l;
            l
      in
      dels := old_tuple :: !dels)
    !actions;
  Hashtbl.iter
    (fun (seg, oid) dels ->
      let remaining = ref [] in
      let pending = ref !dels in
      Array.iter
        (fun t ->
          let rec remove acc = function
            | [] -> None
            | d :: rest ->
                if d == t || d = t then Some (List.rev_append acc rest)
                else remove (d :: acc) rest
          in
          match remove [] !pending with
          | Some rest -> pending := rest
          | None -> remaining := t :: !remaining)
        (Mpp_storage.Storage.scan ctx.storage ~segment:seg ~oid);
      Mpp_storage.Storage.replace_heap ctx.storage ~segment:seg ~oid
        (List.rev !remaining))
    touched;
  (* Re-insert the new images through the normal path so they land on the
     right segment and partition. *)
  List.iter
    (fun (_, _, _, new_tuple) ->
      Mpp_storage.Storage.insert ctx.storage table new_tuple;
      incr updated)
    !actions;
  ctx.metrics.Metrics.rows_updated <-
    ctx.metrics.Metrics.rows_updated + !updated;
  let rows = empty_rows ctx in
  rows.(0) <- [ [| Value.Int !updated |] ];
  { layout = [ (-1, 1) ]; rows }

let exec_delete ctx ~rel ~table_oid ~(child : result) =
  let table = Mpp_catalog.Catalog.find_oid ctx.catalog table_oid in
  let width = Mpp_catalog.Table.ncols table in
  let off =
    match offset_of child.layout rel with
    | Some o -> o
    | None -> invalid_arg "Exec: Delete target not in child output"
  in
  let deleted = ref 0 in
  let touched = Hashtbl.create 16 in
  Array.iteri
    (fun seg rows ->
      List.iter
        (fun row ->
          let old_tuple = Array.sub row off width in
          let oid = Mpp_storage.Storage.physical_oid table old_tuple in
          let key = (seg, oid) in
          let dels =
            match Hashtbl.find_opt touched key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace touched key l;
                l
          in
          dels := old_tuple :: !dels)
        rows)
    child.rows;
  Hashtbl.iter
    (fun (seg, oid) dels ->
      let remaining = ref [] in
      let pending = ref !dels in
      Array.iter
        (fun t ->
          let rec remove acc = function
            | [] -> None
            | d :: rest ->
                if d = t then Some (List.rev_append acc rest)
                else remove (d :: acc) rest
          in
          match remove [] !pending with
          | Some rest ->
              pending := rest;
              incr deleted
          | None -> remaining := t :: !remaining)
        (Mpp_storage.Storage.scan ctx.storage ~segment:seg ~oid);
      Mpp_storage.Storage.replace_heap ctx.storage ~segment:seg ~oid
        (List.rev !remaining))
    touched;
  ctx.metrics.Metrics.rows_deleted <-
    ctx.metrics.Metrics.rows_deleted + !deleted;
  let rows = empty_rows ctx in
  rows.(0) <- [ [| Value.Int !deleted |] ];
  { layout = [ (-1, 1) ]; rows }

(* ------------------------------------------------------------------ *)
(* Motion                                                              *)
(* ------------------------------------------------------------------ *)

let exec_motion ctx ~kind ~(child : result) =
  let n = nsegments ctx in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 child.rows in
  let rows =
    match kind with
    | Plan.Gather ->
        Metrics.record_motion ctx.metrics ~rows:total;
        let all = List.concat (Array.to_list child.rows) in
        Array.init n (fun i -> if i = 0 then all else [])
    | Plan.Gather_one ->
        (* the child is replicated: any single copy is the full result *)
        let one = child.rows.(0) in
        Metrics.record_motion ctx.metrics ~rows:(List.length one);
        Array.init n (fun i -> if i = 0 then one else [])
    | Plan.Broadcast ->
        Metrics.record_motion ctx.metrics ~rows:(total * n);
        let all = List.concat (Array.to_list child.rows) in
        Array.make n all
    | Plan.Redistribute cols ->
        Metrics.record_motion ctx.metrics ~rows:total;
        let buckets = Array.make n [] in
        Array.iter
          (List.iter (fun row ->
               let vs =
                 List.map
                   (fun c ->
                     match partial_lookup child.layout row c with
                     | Some v -> v
                     | None ->
                         invalid_arg "Exec: redistribute key out of scope")
                   cols
               in
               let seg =
                 Mpp_catalog.Distribution.segment_for_values ~nsegments:n vs
               in
               buckets.(seg) <- row :: buckets.(seg)))
          child.rows;
        Array.map List.rev buckets
  in
  { child with rows }

(* ------------------------------------------------------------------ *)
(* Top-level interpreter                                               *)
(* ------------------------------------------------------------------ *)

(* Plan nodes are identified by pre-order index (root = 0; a node's first
   child is its own index + 1; siblings follow the whole subtree).  The
   numbering is recomputed by {!Explain} to attach the stats back to the
   rendered tree. *)
let child_ids id plan =
  let next = ref (id + 1) in
  List.map
    (fun c ->
      let cid = !next in
      next := cid + Plan.node_count c;
      cid)
    (Plan.children plan)

(* Distinct OIDs pushed to [part_scan_id]'s channel, over all segments. *)
let channel_oid_count ctx ~part_scan_id =
  let seen = Hashtbl.create 16 in
  for segment = 0 to nsegments ctx - 1 do
    List.iter
      (fun oid -> Hashtbl.replace seen oid ())
      (Channel.consume ctx.channel ~segment ~part_scan_id)
  done;
  Hashtbl.length seen

let nparts_of_root ctx root_oid =
  Mpp_catalog.Table.nparts (Mpp_catalog.Catalog.find_oid ctx.catalog root_oid)

let rec exec_at ctx id (plan : Plan.t) : result =
  match ctx.stats with
  | None -> exec_node ctx id plan
  | Some st ->
      let n = Node_stats.node st id in
      let t0 = Node_stats.time st in
      let r = exec_node ctx id plan in
      n.Node_stats.time_s <-
        n.Node_stats.time_s +. (Node_stats.time st -. t0);
      n.Node_stats.invocations <- n.Node_stats.invocations + 1;
      let emitted =
        Array.fold_left (fun acc l -> acc + List.length l) 0 r.rows
      in
      n.Node_stats.rows <- n.Node_stats.rows + emitted;
      (match plan with
      | Plan.Dynamic_scan { part_scan_id; root_oid; _ } ->
          n.Node_stats.parts_scanned <- channel_oid_count ctx ~part_scan_id;
          n.Node_stats.parts_total <- nparts_of_root ctx root_oid
      | Plan.Partition_selector { part_scan_id; root_oid; _ } ->
          n.Node_stats.parts_selected <- channel_oid_count ctx ~part_scan_id;
          n.Node_stats.parts_total <- nparts_of_root ctx root_oid
      | Plan.Table_scan { table_oid; guard; _ } ->
          (* a per-leaf scan (Planner expansion) reads its one partition; a
             guarded one only when its OID was pushed on some segment *)
          let root = root_oid_of ctx table_oid in
          if guard <> None || root <> table_oid then begin
            let scanned =
              match guard with
              | None -> true
              | Some gid ->
                  let hit = ref false in
                  for segment = 0 to nsegments ctx - 1 do
                    if
                      List.mem table_oid
                        (Channel.consume ctx.channel ~segment
                           ~part_scan_id:gid)
                    then hit := true
                  done;
                  !hit
            in
            n.Node_stats.parts_scanned <- (if scanned then 1 else 0);
            n.Node_stats.parts_total <- nparts_of_root ctx root
          end
      | Plan.Motion _ ->
          (* every motion kind emits exactly the rows it moved: Gather and
             Redistribute forward each row once, Broadcast emits one copy
             per segment, Gather_one reads a single replica *)
          n.Node_stats.tuples_moved <- n.Node_stats.tuples_moved + emitted
      | _ -> ());
      r

and exec_node ctx id (plan : Plan.t) : result =
  let kid =
    let ids = child_ids id plan in
    fun i c -> exec_at ctx (List.nth ids i) c
  in
  match plan with
  | Plan.Table_scan { rel; table_oid; filter; guard } ->
      exec_table_scan ctx ~rel ~table_oid ~filter ~guard
  | Plan.Dynamic_scan { rel; part_scan_id; root_oid; filter } ->
      exec_dynamic_scan ctx ~rel ~part_scan_id ~root_oid ~filter
  | Plan.Partition_selector
      { part_scan_id; root_oid; keys; predicates; child = None } ->
      let selectors = compile_selector ctx ~keys ~predicates in
      for segment = 0 to nsegments ctx - 1 do
        run_static_selection ctx ~segment ~part_scan_id ~root_oid selectors
      done;
      { layout = []; rows = empty_rows ctx }
  | Plan.Partition_selector
      { part_scan_id; root_oid; keys; predicates; child = Some c } ->
      let child = kid 0 c in
      let selectors = compile_selector ctx ~keys ~predicates in
      run_streaming_selection ctx ~part_scan_id ~root_oid ~keys selectors child;
      child
  | Plan.Sequence children ->
      let rec go i last = function
        | [] -> (
            match last with
            | Some r -> r
            | None -> { layout = []; rows = empty_rows ctx })
        | c :: rest -> go (i + 1) (Some (kid i c)) rest
      in
      go 0 None children
  | Plan.Filter { pred; child } ->
      let r = kid 0 child in
      {
        r with
        rows = Array.map (List.filter (eval_filter ctx r.layout pred)) r.rows;
      }
  | Plan.Project { exprs; child } ->
      let r = kid 0 child in
      let layout = [ (-1, List.length exprs) ] in
      {
        layout;
        rows =
          Array.map
            (List.map (fun row ->
                 let env = env_of ctx r.layout row in
                 Array.of_list (List.map (fun (_, e) -> Expr.eval env e) exprs)))
            r.rows;
      }
  | Plan.Hash_join { kind; pred; left; right } ->
      let l = kid 0 left in
      let r = kid 1 right in
      exec_join ctx ~kind ~pred ~left:l ~right:r ~hash:true
  | Plan.Nl_join { kind; pred; left; right } ->
      let l = kid 0 left in
      let r = kid 1 right in
      exec_join ctx ~kind ~pred ~left:l ~right:r ~hash:false
  | Plan.Agg { group_by; aggs; child; output_rel } ->
      let r = kid 0 child in
      exec_agg ctx ~group_by ~aggs ~output_rel ~child:r
  | Plan.Sort { keys; child } ->
      let r = kid 0 child in
      let cmp a b =
        let env_a = env_of ctx r.layout a and env_b = env_of ctx r.layout b in
        let rec go = function
          | [] -> 0
          | k :: rest ->
              let c = Value.compare (Expr.eval env_a k) (Expr.eval env_b k) in
              if c <> 0 then c else go rest
        in
        go keys
      in
      { r with rows = Array.map (List.sort cmp) r.rows }
  | Plan.Limit { rows = n; child } ->
      let r = kid 0 child in
      { r with rows = Array.map (fun l -> List.filteri (fun i _ -> i < n) l) r.rows }
  | Plan.Motion { kind; child } ->
      let r = kid 0 child in
      exec_motion ctx ~kind ~child:r
  | Plan.Append children ->
      let results = List.mapi kid children in
      (match results with
      | [] -> { layout = []; rows = empty_rows ctx }
      | first :: _ ->
          {
            layout = first.layout;
            rows =
              Array.init (nsegments ctx) (fun seg ->
                  List.concat_map (fun r -> r.rows.(seg)) results);
          })
  | Plan.Update { rel; table_oid; set_exprs; child } ->
      let r = kid 0 child in
      exec_update ctx ~rel ~table_oid ~set_exprs ~child:r
  | Plan.Delete { rel; table_oid; child } ->
      let r = kid 0 child in
      exec_delete ctx ~rel ~table_oid ~child:r
  | Plan.Insert { table_oid; rows } ->
      let table = Mpp_catalog.Catalog.find_oid ctx.catalog table_oid in
      let env = { (env_of ctx [] [||]) with Expr.param =
          (fun i ->
            if i < Array.length ctx.params then ctx.params.(i)
            else invalid_arg (Printf.sprintf "Exec: unbound parameter $%d" i)) }
      in
      List.iter
        (fun row ->
          Mpp_storage.Storage.insert ctx.storage table
            (Array.of_list (List.map (Expr.eval env) row)))
        rows;
      let out = empty_rows ctx in
      out.(0) <- [ [| Value.Int (List.length rows) |] ];
      { layout = [ (-1, 1) ]; rows = out }

(** Evaluate a plan with this context; the root gets pre-order index 0. *)
let exec ctx (plan : Plan.t) : result = exec_at ctx 0 plan

(** Execute [plan] and gather all segments' output rows on the master. *)
let run ?(params = [||]) ?(selection_enabled = true) ?stats ~catalog ~storage
    plan =
  let ctx = create_ctx ~params ~selection_enabled ?stats ~catalog ~storage () in
  let r = exec ctx plan in
  let rows = List.concat (Array.to_list r.rows) in
  (rows, ctx.metrics)

(** Execute [plan] collecting per-node EXPLAIN ANALYZE statistics. *)
let run_analyze ?(params = [||]) ?(selection_enabled = true) ~catalog ~storage
    plan =
  let stats = Node_stats.create () in
  let rows, metrics =
    run ~params ~selection_enabled ~stats ~catalog ~storage plan
  in
  (rows, metrics, stats)

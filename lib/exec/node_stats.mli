(** Per-plan-node runtime statistics backing [EXPLAIN ANALYZE].

    Nodes are keyed by pre-order index in the plan tree (root = 0; a node's
    first child is its index + 1).  {!Mpp_exec.Exec} fills the records when
    a collector is attached to the execution context; {!Explain} renders
    them. *)

type node = {
  mutable invocations : int;
  mutable rows : int;  (** rows emitted, summed over segments *)
  mutable time_s : float;  (** inclusive wall time, seconds *)
  mutable parts_scanned : int;
      (** DynamicScan: distinct leaf partitions actually read *)
  mutable parts_total : int;
  mutable parts_selected : int;
      (** PartitionSelector: distinct OIDs pushed to its channel *)
  mutable tuples_moved : int;  (** Motion: rows crossing the interconnect *)
}

type t

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] defaults to [Unix.gettimeofday]; injectable for tests. *)

val time : t -> float
(** Read the collector's clock. *)

val node : t -> int -> node
(** Record for pre-order index [id], created on first touch. *)

val find : t -> int -> node option

val total_rows : ?pred:(int -> node -> bool) -> t -> int
(** Sum of emitted rows over the selected nodes (default: all). *)

val clear : t -> unit

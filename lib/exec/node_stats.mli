(** Per-plan-node runtime statistics backing [EXPLAIN ANALYZE] and the
    query profiler.

    Nodes are keyed by pre-order index in the plan tree (root = 0; a node's
    first child is its index + 1).  {!Mpp_exec.Exec} fills the records when
    a collector is attached to the execution context; {!Explain} renders
    them.  Rows and time are additionally sharded per segment:
    [seg_rows] is recorded deterministically on the coordinating domain
    (identical serial vs parallel), [seg_time_s] inside each segment's
    task (distinct slots, no synchronization). *)

type node = {
  mutable invocations : int;
  mutable rows : int;  (** rows emitted, summed over segments *)
  mutable time_s : float;  (** inclusive wall time, seconds *)
  mutable parts_scanned : int;
      (** DynamicScan: distinct leaf partitions actually read *)
  mutable parts_total : int;
  mutable parts_selected : int;
      (** PartitionSelector: distinct OIDs pushed to its channel *)
  mutable tuples_moved : int;  (** Motion: rows crossing the interconnect *)
  seg_rows : int array;  (** rows emitted per segment *)
  seg_time_s : float array;  (** per-segment task wall time, seconds *)
}

type t

val create : ?clock:(unit -> float) -> ?nsegments:int -> unit -> t
(** [clock] defaults to [Unix.gettimeofday]; injectable for tests.
    [nsegments] (default 1) sizes the per-segment arrays of new records;
    the executor overrides it via {!set_nsegments} before recording. *)

val set_nsegments : t -> int -> unit
(** Segment count for subsequently created records (min 1). *)

val nsegments : t -> int

val time : t -> float
(** Read the collector's clock. *)

val node : t -> int -> node
(** Record for pre-order index [id], created on first touch. *)

val find : t -> int -> node option

val total_rows : ?pred:(int -> node -> bool) -> t -> int
(** Sum of emitted rows over the selected nodes (default: all). *)

val clear : t -> unit

(** {1 Per-segment summaries} *)

type seg_summary = { seg_min : int; seg_max : int; seg_mean : float }

val rows_summary : node -> seg_summary
(** Min / max / mean of [seg_rows] across segments. *)

val skew : node -> float
(** Max-over-mean ratio of per-segment rows: 1.0 when balanced (or when
    the node emitted nothing), [nsegments] when all rows land on one
    segment.  Deterministic — computed from [seg_rows]. *)

(** A small reusable OCaml 5 domain pool for segment-parallel execution.

    [create n] spawns [n - 1] worker domains; the submitting domain
    participates in every job, so a pool of size [n] runs tasks on exactly
    [n] domains.  Jobs are submitted one at a time ({!parallel_for} blocks
    until the job drains), which matches the executor's serial plan walk
    with parallel per-segment loops.  Size-1 pools run serially with no
    synchronization. *)

type t

val create : int -> t
(** [create n] — a pool of [n] total domains (clamped to at least 1). *)

val size : t -> int
(** Total domains participating, caller included. *)

val worker_index : unit -> int
(** The calling domain's index within its pool: 0 for the submitting
    domain (and outside any pool), 1..size-1 for spawned workers.
    Domain-local — profiling code inside a task uses it to attribute work
    to the executing domain. *)

val parallel_for : t -> int -> (int -> unit) -> unit
(** [parallel_for t n f] runs [f 0 .. f (n - 1)] across the pool and waits
    for completion.  An exception raised by any task is re-raised in the
    caller after the job drains. *)

val parallel_chunks : t -> n:int -> (int -> int -> int -> unit) -> unit
(** [parallel_chunks t ~n f] splits [0, n) into [min (size t) n] contiguous
    chunks and runs [f chunk lo hi] (half-open) across the pool.  The
    chunking is deterministic for a given [n] and pool size — callers fan
    out fine-grained work (memo candidates, join-order subsets) with one
    private accumulator per chunk and merge at the barrier. *)

val map_init : t -> int -> (int -> 'a) -> 'a array
(** [Array.init] with the elements computed across the pool. *)

val shutdown : t -> unit
(** Join the worker domains; the pool must not be used afterwards. *)

val default_domains : unit -> int
(** The [MPP_DOMAINS] environment variable; 1 (serial) when unset/invalid. *)

val get : domains:int -> t
(** A process-wide pool of [domains] total domains, created on first use and
    cached for the process lifetime. *)

(** {1 Profiler accounting}

    Per-domain counters (tasks run, busy seconds, wait seconds) plus
    job-level counters.  Integer counters are always on; task-body timing
    (two clock reads per task) is gated behind {!set_accounting}, off by
    default, so the disabled profiler costs one branch per task.  Each
    worker is the only writer of its own slot — reads are exact between
    jobs. *)

val set_accounting : t -> bool -> unit
(** Enable / disable busy-time measurement of task bodies. *)

val accounting : t -> bool

type domain_stats = {
  tasks : int;  (** tasks this domain ran *)
  busy_s : float;  (** seconds inside task bodies (0 unless accounting) *)
  wait_s : float;  (** seconds parked waiting for work *)
}

val stats : t -> domain_stats array
(** One entry per worker index (0 = submitter). *)

val jobs_submitted : t -> int
(** Jobs ({!parallel_for} calls with [n > 0]) since the last reset. *)

val max_tasks : t -> int
(** Largest single-job fan-out (queue depth at submission) seen. *)

val reset_stats : t -> unit
(** Zero all accounting counters (call between profiled runs — pools are
    process-wide and cached). *)

val stats_to_json : t -> Mpp_obs.Json.t
(** [{"size", "jobs_submitted", "max_tasks", "domains": [{"index",
    "tasks", "busy_ms", "wait_ms"}]}]. *)

(** A small reusable OCaml 5 domain pool for segment-parallel execution.

    [create n] spawns [n - 1] worker domains; the submitting domain
    participates in every job, so a pool of size [n] runs tasks on exactly
    [n] domains.  Jobs are submitted one at a time ({!parallel_for} blocks
    until the job drains), which matches the executor's serial plan walk
    with parallel per-segment loops.  Size-1 pools run serially with no
    synchronization. *)

type t

val create : int -> t
(** [create n] — a pool of [n] total domains (clamped to at least 1). *)

val size : t -> int
(** Total domains participating, caller included. *)

val parallel_for : t -> int -> (int -> unit) -> unit
(** [parallel_for t n f] runs [f 0 .. f (n - 1)] across the pool and waits
    for completion.  An exception raised by any task is re-raised in the
    caller after the job drains. *)

val map_init : t -> int -> (int -> 'a) -> 'a array
(** [Array.init] with the elements computed across the pool. *)

val shutdown : t -> unit
(** Join the worker domains; the pool must not be used afterwards. *)

val default_domains : unit -> int
(** The [MPP_DOMAINS] environment variable; 1 (serial) when unset/invalid. *)

val get : domains:int -> t
(** A process-wide pool of [domains] total domains, created on first use and
    cached for the process lifetime. *)

(** A small reusable OCaml 5 domain pool for segment-parallel execution.

    The executor's per-operator work is "for each segment, compute that
    segment's output" — an embarrassingly parallel loop over a handful of
    independent tasks (the MPP shared-nothing argument: segments share no
    mutable state once {!Channel} and {!Metrics} are sharded per segment).
    A pool of [size - 1] worker domains picks tasks off an atomic counter;
    the submitting domain participates too, so [create 4] uses exactly four
    domains including the caller.

    Jobs are submitted one at a time (the executor's plan walk is serial;
    only the per-segment loops fan out), so the pool needs no task queue —
    just a current-job slot guarded by a mutex, a generation counter so
    workers never re-run an exhausted job, and a completion count the
    submitter waits on.  Exceptions raised by tasks are captured and
    re-raised in the submitting domain after the job drains.

    Profiler accounting: every pool carries per-domain counters — tasks
    run, busy seconds inside task bodies, wait (idle) seconds parked on
    the work condition — plus job-level counters (jobs submitted, largest
    task fan-out).  Task-body timing costs two clock reads per task and is
    gated behind {!set_accounting} (off by default) so the disabled
    profiler adds only a branch; the cheap integer counters are always
    on.  Each worker knows its {e index} (submitter = 0, spawned workers
    1..size-1), exposed through {!worker_index} so profiling code running
    inside a task can attribute work to the executing domain. *)

type job = {
  f : int -> unit;
  n : int;  (** tasks are [f 0 .. f (n - 1)] *)
  next : int Atomic.t;  (** next task index to claim *)
  completed : int Atomic.t;
  mutable error : (exn * Printexc.raw_backtrace) option;
}

(* Per-domain accounting slots: worker [i] is the only writer of slot [i]
   (the shard-per-toucher discipline used everywhere else), so the slots
   need no locks.  Reads happen between jobs. *)
type domain_counters = {
  mutable d_tasks : int;  (** tasks this domain ran *)
  mutable d_busy_s : float;  (** seconds inside task bodies (gated) *)
  mutable d_wait_s : float;  (** seconds parked waiting for work *)
}

type t = {
  size : int;  (** total domains participating, caller included *)
  mutex : Mutex.t;
  work_cv : Condition.t;  (** workers wait here for a new generation *)
  done_cv : Condition.t;  (** the submitter waits here for completion *)
  mutable generation : int;
  mutable job : job option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  mutable accounting : bool;  (** time task bodies into [counters] *)
  counters : domain_counters array;  (** slot per worker index *)
  mutable jobs_submitted : int;
  mutable max_tasks : int;  (** largest single-job fan-out seen *)
}

let size t = t.size

(* The executing worker's index within its pool: 0 for the submitting
   domain (and for any domain that never joined a pool), 1..size-1 for
   spawned workers.  Domain-local so closures running inside a task can
   ask "which domain am I on?" — the profiler's track id. *)
let ix_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let worker_index () = Domain.DLS.get ix_key

let set_accounting t on = t.accounting <- on
let accounting t = t.accounting

type domain_stats = { tasks : int; busy_s : float; wait_s : float }

let stats t =
  Array.map
    (fun c -> { tasks = c.d_tasks; busy_s = c.d_busy_s; wait_s = c.d_wait_s })
    t.counters

let jobs_submitted t = t.jobs_submitted
let max_tasks t = t.max_tasks

let reset_stats t =
  Array.iter
    (fun c ->
      c.d_tasks <- 0;
      c.d_busy_s <- 0.0;
      c.d_wait_s <- 0.0)
    t.counters;
  t.jobs_submitted <- 0;
  t.max_tasks <- 0

(* Claim and run tasks until the job is exhausted; returns having
   contributed [completed] increments for every task it ran.  [ix] is the
   calling worker's index — its accounting slot. *)
let drain t ~ix (job : job) =
  let c = t.counters.(ix) in
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      let t0 = if t.accounting then Unix.gettimeofday () else 0.0 in
      (try job.f i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mutex;
         if job.error = None then job.error <- Some (e, bt);
         Mutex.unlock t.mutex);
      if t.accounting then
        c.d_busy_s <- c.d_busy_s +. (Unix.gettimeofday () -. t0);
      c.d_tasks <- c.d_tasks + 1;
      let done_ = 1 + Atomic.fetch_and_add job.completed 1 in
      if done_ = job.n then begin
        (* last task finished (maybe on a worker): wake the submitter *)
        Mutex.lock t.mutex;
        Condition.broadcast t.done_cv;
        Mutex.unlock t.mutex
      end;
      loop ()
    end
  in
  loop ()

let worker t ix () =
  Domain.DLS.set ix_key ix;
  let c = t.counters.(ix) in
  let last_gen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    let w0 = Unix.gettimeofday () in
    while (not t.stop) && t.generation = !last_gen do
      Condition.wait t.work_cv t.mutex
    done;
    c.d_wait_s <- c.d_wait_s +. (Unix.gettimeofday () -. w0);
    if t.stop then Mutex.unlock t.mutex
    else begin
      last_gen := t.generation;
      let job = t.job in
      Mutex.unlock t.mutex;
      (match job with Some j -> drain t ~ix j | None -> ());
      loop ()
    end
  in
  loop ()

let create size =
  let size = max 1 size in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      generation = 0;
      job = None;
      stop = false;
      domains = [];
      accounting = false;
      counters =
        Array.init size (fun _ ->
            { d_tasks = 0; d_busy_s = 0.0; d_wait_s = 0.0 });
      jobs_submitted = 0;
      max_tasks = 0;
    }
  in
  t.domains <- List.init (size - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

(** Run [f 0 .. f (n - 1)] across the pool's domains; returns when all have
    finished.  With a pool of size 1 (or a single task) this is a plain
    serial loop — no synchronization on the serial path. *)
let parallel_for t n f =
  if n <= 0 then ()
  else begin
    t.jobs_submitted <- t.jobs_submitted + 1;
    if n > t.max_tasks then t.max_tasks <- n;
    if t.size = 1 || n = 1 then begin
      let c = t.counters.(0) in
      if t.accounting then begin
        let t0 = Unix.gettimeofday () in
        for i = 0 to n - 1 do
          f i
        done;
        c.d_busy_s <- c.d_busy_s +. (Unix.gettimeofday () -. t0)
      end
      else
        for i = 0 to n - 1 do
          f i
        done;
      c.d_tasks <- c.d_tasks + n
    end
    else begin
      let job =
        { f; n; next = Atomic.make 0; completed = Atomic.make 0; error = None }
      in
      Mutex.lock t.mutex;
      t.job <- Some job;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work_cv;
      Mutex.unlock t.mutex;
      (* the submitter pulls tasks like any worker *)
      drain t ~ix:0 job;
      Mutex.lock t.mutex;
      let w0 = Unix.gettimeofday () in
      while Atomic.get job.completed < n do
        Condition.wait t.done_cv t.mutex
      done;
      t.counters.(0).d_wait_s <-
        t.counters.(0).d_wait_s +. (Unix.gettimeofday () -. w0);
      t.job <- None;
      Mutex.unlock t.mutex;
      match job.error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(** [parallel_chunks t ~n f] splits the index range [0, n) into one
    contiguous chunk per participating domain and runs [f chunk lo hi]
    (half-open [lo, hi)) across the pool.  Where {!parallel_for} hands out
    indices one at a time — right for coarse per-segment tasks — this is the
    shape for fine-grained work (memo candidates, join-order subsets per
    Trummer & Koch's allocation scheme): each domain claims a whole slice
    and can keep per-chunk state without any sharing.  Chunk count is
    [min (size t) n]; chunk boundaries depend only on [n] and the pool
    size, so the partition is deterministic for a given pool. *)
let parallel_chunks t ~n f =
  if n > 0 then begin
    let k = min t.size n in
    parallel_for t k (fun ci -> f ci (ci * n / k) ((ci + 1) * n / k))
  end

(** [map_init t n f] is [Array.init n f] with the [f i] computed across the
    pool.  [f] must be pure per index (indices are computed exactly once). *)
let map_init t n f =
  if n <= 0 then [||]
  else begin
    let results = Array.make n None in
    parallel_for t n (fun i -> results.(i) <- Some (f i));
    Array.map (function Some x -> x | None -> assert false) results
  end

(** Stop the worker domains and join them.  The pool must not be used
    afterwards. *)
let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(* ------------------------------------------------------------------ *)
(* Process-wide pools                                                  *)
(* ------------------------------------------------------------------ *)

(** Default parallelism: the [MPP_DOMAINS] environment variable; 1 (serial)
    when unset or invalid.  Deliberately not clamped to the core count —
    oversubscribing is how the determinism suite exercises the parallel
    paths on small machines. *)
let default_domains () =
  match Sys.getenv_opt "MPP_DOMAINS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)

(* One cached pool per requested size, created on first use and kept for the
   process lifetime — executors come and go per query; domains should not. *)
let pools : (int, t) Hashtbl.t = Hashtbl.create 4
let pools_mutex = Mutex.create ()

let serial = create 1

(** A process-wide pool of [domains] total domains, created on first use and
    cached (so per-query executors never pay domain spawns). *)
let get ~domains =
  let domains = max 1 domains in
  if domains = 1 then serial
  else begin
    Mutex.lock pools_mutex;
    let pool =
      match Hashtbl.find_opt pools domains with
      | Some p -> p
      | None ->
          let p = create domains in
          Hashtbl.replace pools domains p;
          p
    in
    Mutex.unlock pools_mutex;
    pool
  end

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let stats_to_json t =
  let open Mpp_obs.Json in
  Obj
    [
      ("size", Int t.size);
      ("jobs_submitted", Int t.jobs_submitted);
      ("max_tasks", Int t.max_tasks);
      ( "domains",
        List
          (Array.to_list
             (Array.mapi
                (fun i c ->
                  Obj
                    [
                      ("index", Int i);
                      ("tasks", Int c.d_tasks);
                      ("busy_ms", Float (c.d_busy_s *. 1000.0));
                      ("wait_ms", Float (c.d_wait_s *. 1000.0));
                    ])
                t.counters)) );
    ]

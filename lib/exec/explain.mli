(** PostgreSQL-style [EXPLAIN ANALYZE] rendering of a plan tree annotated
    with the per-node runtime statistics collected by {!Exec}. *)

module Plan = Mpp_plan.Plan

val analyze : Plan.t -> Node_stats.t -> string
(** Plan tree with [(actual rows=… parts=…/… time=…ms)] annotations; one
    line per node, 2-space indentation, trailing newline. *)

val to_json : Plan.t -> Node_stats.t -> Mpp_obs.Json.t
(** Flat pre-order node list: [{"id", "depth", "op", "rows", "time_ms",
    "parts_scanned", "parts_selected", "parts_total", "tuples_moved"}]. *)

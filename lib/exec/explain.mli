(** PostgreSQL-style [EXPLAIN ANALYZE] rendering of a plan tree annotated
    with the per-node runtime statistics collected by {!Exec}. *)

module Plan = Mpp_plan.Plan

val analyze : ?est:Mpp_plan.Est.t -> Plan.t -> Node_stats.t -> string
(** Plan tree with [(actual rows=… parts=…/… time=…ms)] annotations; one
    line per node, 2-space indentation, trailing newline.  With [?est]
    each executed node that has a plan-time estimate additionally shows
    [est=N act=M (xK off)] (symmetric q-error factor), and nodes whose
    per-segment row distribution exceeds 2x skew (max over mean) are
    flagged [[skew K.Kx]] — except structurally-singleton nodes (at or
    above a Gather), whose single-segment concentration is by design. *)

val to_json : ?est:Mpp_plan.Est.t -> Plan.t -> Node_stats.t -> Mpp_obs.Json.t
(** Flat pre-order node list: [{"id", "depth", "op", "rows", "time_ms",
    "seg_rows_min/max/mean", "skew", "seg_rows", "seg_time_ms",
    "parts_scanned", "parts_selected", "parts_total", "tuples_moved"}],
    plus ["est_rows"] / ["est_error_factor"] when [?est] covers the
    node. *)

(** Execution metrics: the deterministic work counters behind the paper's
    evaluation figures (partitions scanned per table for Figure 16; tuple
    and Motion volumes backing the runtimes of Figure 17 and Table 2). *)

type t = {
  mutable tuples_scanned : int;  (** rows read from heaps, summed over segments *)
  mutable tuples_moved : int;  (** rows crossing a Motion *)
  mutable partition_opens : int;  (** heap opens, summed over segments *)
  parts_scanned : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (** root table OID → set of distinct partition OIDs scanned *)
  mutable rows_updated : int;
  mutable rows_deleted : int;
  mutable filter_built : int;
      (** runtime join filters built (one per builder per segment with a
          non-empty build side) *)
  mutable rows_filtered_scan : int;
      (** probe rows dropped by a runtime filter fused into a scan *)
  mutable rows_filtered_motion : int;
      (** probe rows dropped by a runtime filter sitting below a Motion
          send *)
  mutable motion_rows_saved : int;
      (** Motion sends avoided thanks to pre-Motion filtering: for a
          Redistribute each dropped row saves one send, for a Broadcast it
          saves [nsegments] *)
}

let create () =
  {
    tuples_scanned = 0;
    tuples_moved = 0;
    partition_opens = 0;
    parts_scanned = Hashtbl.create 16;
    rows_updated = 0;
    rows_deleted = 0;
    filter_built = 0;
    rows_filtered_scan = 0;
    rows_filtered_motion = 0;
    motion_rows_saved = 0;
  }

let record_scan t ~root_oid ~part_oid ~rows =
  t.tuples_scanned <- t.tuples_scanned + rows;
  t.partition_opens <- t.partition_opens + 1;
  let set =
    match Hashtbl.find_opt t.parts_scanned root_oid with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 16 in
        Hashtbl.replace t.parts_scanned root_oid s;
        s
  in
  Hashtbl.replace set part_oid ()

let record_motion t ~rows = t.tuples_moved <- t.tuples_moved + rows

(** Distinct partitions of table [root_oid] that were actually scanned. *)
let parts_scanned_of t ~root_oid =
  match Hashtbl.find_opt t.parts_scanned root_oid with
  | None -> 0
  | Some s -> Hashtbl.length s

let total_parts_scanned t =
  Hashtbl.fold (fun _ s acc -> acc + Hashtbl.length s) t.parts_scanned 0

let pp fmt t =
  Format.fprintf fmt
    "tuples_scanned=%d tuples_moved=%d partition_opens=%d parts_scanned=%d \
     rows_updated=%d rows_deleted=%d filter_built=%d rows_filtered_scan=%d \
     rows_filtered_motion=%d motion_rows_saved=%d"
    t.tuples_scanned t.tuples_moved t.partition_opens (total_parts_scanned t)
    t.rows_updated t.rows_deleted t.filter_built t.rows_filtered_scan
    t.rows_filtered_motion t.motion_rows_saved

(** Combine two runs' counters into a fresh record: sums for the scalar
    counters, per-root union of distinct partition OIDs for
    [parts_scanned]. *)
let merge a b =
  let t = create () in
  t.tuples_scanned <- a.tuples_scanned + b.tuples_scanned;
  t.tuples_moved <- a.tuples_moved + b.tuples_moved;
  t.partition_opens <- a.partition_opens + b.partition_opens;
  t.rows_updated <- a.rows_updated + b.rows_updated;
  t.rows_deleted <- a.rows_deleted + b.rows_deleted;
  t.filter_built <- a.filter_built + b.filter_built;
  t.rows_filtered_scan <- a.rows_filtered_scan + b.rows_filtered_scan;
  t.rows_filtered_motion <- a.rows_filtered_motion + b.rows_filtered_motion;
  t.motion_rows_saved <- a.motion_rows_saved + b.motion_rows_saved;
  let union src =
    Hashtbl.iter
      (fun root set ->
        let dst =
          match Hashtbl.find_opt t.parts_scanned root with
          | Some s -> s
          | None ->
              let s = Hashtbl.create (Hashtbl.length set) in
              Hashtbl.replace t.parts_scanned root s;
              s
        in
        Hashtbl.iter (fun oid () -> Hashtbl.replace dst oid ()) set)
      src.parts_scanned
  in
  union a;
  union b;
  t

(** Merge an array of per-segment shards into one fresh record — how the
    executor folds its sharded hot-path counters into the per-query total. *)
let merge_all ts = Array.fold_left merge (create ()) ts

(** Distinct partition OIDs of table [root_oid] actually scanned,
    ascending. *)
let scanned_oids t ~root_oid =
  match Hashtbl.find_opt t.parts_scanned root_oid with
  | None -> []
  | Some s ->
      Hashtbl.fold (fun oid () acc -> oid :: acc) s []
      |> List.sort Int.compare

(** Root OIDs with at least one partition scanned, ascending. *)
let roots_scanned t =
  Hashtbl.fold (fun root _ acc -> root :: acc) t.parts_scanned []
  |> List.sort Int.compare

let to_json t =
  Mpp_obs.Json.Obj
    [
      ("tuples_scanned", Mpp_obs.Json.Int t.tuples_scanned);
      ("tuples_moved", Mpp_obs.Json.Int t.tuples_moved);
      ("partition_opens", Mpp_obs.Json.Int t.partition_opens);
      ("parts_scanned", Mpp_obs.Json.Int (total_parts_scanned t));
      ("rows_updated", Mpp_obs.Json.Int t.rows_updated);
      ("rows_deleted", Mpp_obs.Json.Int t.rows_deleted);
      ("filter_built", Mpp_obs.Json.Int t.filter_built);
      ("rows_filtered_scan", Mpp_obs.Json.Int t.rows_filtered_scan);
      ("rows_filtered_motion", Mpp_obs.Json.Int t.rows_filtered_motion);
      ("motion_rows_saved", Mpp_obs.Json.Int t.motion_rows_saved);
    ]

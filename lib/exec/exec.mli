(** The query executor: interprets a physical plan on the simulated MPP
    cluster.

    Execution is segment-synchronous — each operator produces, per segment,
    the batch of rows it would emit there; Motions re-shuffle the
    per-segment batches.  Side-effect ordering follows the paper: Sequence
    children and a join's left child run first, so a PartitionSelector
    always pushes its OIDs into the per-segment {!Channel} before the
    DynamicScan consumes them.

    Hot path (the paper's Figure 15 argument applied to the whole
    executor): expressions are compiled once per operator via
    {!Expr.compile} (column refs become fixed tuple offsets, parameters are
    bound at compile time); per-segment row sets are {!Mpp_storage.Vec.t}
    batches (unfiltered scans alias the live heap zero-copy); each
    operator's per-segment work fans out across a {!Dpool} domain pool
    ([MPP_DOMAINS] / [?domains]), with {!Channel} and {!Metrics} sharded
    per segment so parallel sections share no mutable state. *)

open Mpp_expr
module Plan = Mpp_plan.Plan
module Vec = Mpp_storage.Vec

type row = Value.t array

type fused_rf = {
  rf_make : int -> row -> bool;
      (** per-segment row-test factory: [rf_make segment] is invoked once
          per segment inside the scan's parallel section and owns that
          segment's scratch state and metrics shard *)
  rf_allowed : (int, unit) Hashtbl.t option;
      (** partition OIDs the filter's min-max summary cannot rule out
          ([None]: no partitioning level is covered by the filter keys);
          a DynamicScan intersects its channel OIDs with this set *)
}
(** A runtime join filter fused into the scan below it: the
    [Runtime_filter] node compiles the merged filter against the scan's
    layout and hands it to the scan through {!ctx.fused_rf} so the Bloom
    test runs inside the scan's row loop as a pre-predicate. *)

type ctx = {
  catalog : Mpp_catalog.Catalog.t;
  storage : Mpp_storage.Storage.t;
  channel : Channel.t;  (** sharded per segment *)
  metrics : Metrics.t array;
      (** one shard per segment; shard 0 additionally takes the
          coordinator-side counters (Motion volumes, DML row counts).
          {!metrics} merges the shards into the per-query total. *)
  params : Value.t array;
  selection_enabled : bool;
      (** [false]: selectors ignore their predicates and push every leaf —
          the "partition selection disabled" configuration of Figure 17 *)
  stats : Node_stats.t option;
      (** when set, per-plan-node actual rows / partitions / wall time are
          recorded for EXPLAIN ANALYZE; [None] skips all bookkeeping *)
  pool : Dpool.t;  (** executes the per-segment loops *)
  pindex : (int, Mpp_catalog.Partition.index) Hashtbl.t;
      (** root OID → partition-selection index, resolved once per table in
          {!create_ctx} on the coordinating domain and read-only
          thereafter *)
  verify : bool;
      (** when set, {!exec} runs the {!Mpp_verify.Verify} static analysis
          over the root plan and raises {!Mpp_verify.Verify.Rejected}
          before interpreting an invalid plan (default [false]: unit tests
          routinely execute ad-hoc plan fragments — ungathered scans,
          bare joins — that are fine to interpret but are not complete
          top-level plans) *)
  runtime_filters : bool;
      (** [false]: [Runtime_filter_build] / [Runtime_filter] nodes become
          pass-throughs — no filter is built, published, or applied (the
          [--no-runtime-filters] configuration); plans are unchanged *)
  mutable fused_rf : fused_rf option;
      (** one-shot handoff slot from a [Runtime_filter] node to the scan
          directly below it; set and consumed on the coordinating domain
          within a single parent→child call *)
  mutable rf_motion_claimed : int;
      (** pre-Motion drops already credited to
          [Metrics.motion_rows_saved]: each Motion claims the drops below
          it that no inner Motion claimed, so every drop is credited at
          exactly one Motion — its nearest enclosing send *)
  trace : Mpp_obs.Trace.t;
      (** profiler timeline: per-node events on the coordinator track,
          per-segment task events on the executing domain's track;
          {!Mpp_obs.Trace.null} when not profiling *)
  mutable cur_node : int;
      (** pre-order index of the node currently interpreted (-1 outside
          {!exec}); coordinating domain only *)
  mutable cur_label : string;
      (** current node's operator description, for trace events *)
}

val coordinator_tid : int
(** Trace track 0: the coordinating domain's per-node spans. *)

val optimizer_tid : int
(** Trace track 1: reserved for optimizer spans (front ends add them via
    {!Mpp_obs.Trace.add_obs_spans}). *)

val domain_tid : int -> int
(** Trace track of executor domain [i] (worker index [i] of the pool). *)

val create_ctx :
  ?params:Value.t array ->
  ?selection_enabled:bool ->
  ?verify:bool ->
  ?runtime_filters:bool ->
  ?stats:Node_stats.t ->
  ?trace:Mpp_obs.Trace.t ->
  ?domains:int ->
  ?pool:Dpool.t ->
  catalog:Mpp_catalog.Catalog.t ->
  storage:Mpp_storage.Storage.t ->
  unit ->
  ctx
(** [?domains] sizes the domain pool (default {!Dpool.default_domains},
    i.e. [MPP_DOMAINS] or 1).  [?pool] supplies the pool directly and
    overrides [?domains] — a {!Dpool} has one job slot, so concurrent
    executors (the serving layer's workers) must each bring their own
    pool rather than share the cached per-size ones.  When [stats] is
    given its segment count is set from [storage] before recording; when
    [trace] is enabled one track per pool domain (plus the coordinator
    track) is declared up front. *)

val metrics : ctx -> Metrics.t
(** The per-query total: all per-segment metric shards merged. *)

type result = {
  layout : (int * int) list;
      (** (range-table index, width) of the output tuples, left to right *)
  rows : row Vec.t array;  (** one row batch per segment *)
}

val exec : ctx -> Plan.t -> result
(** Evaluate a plan; side effects (channel pushes, DML writes, metrics)
    accumulate in the context.  Input batches are never mutated; unfiltered
    scans may alias live storage heaps, so treat result batches as
    read-only. *)

val run :
  ?params:Value.t array ->
  ?selection_enabled:bool ->
  ?verify:bool ->
  ?runtime_filters:bool ->
  ?stats:Node_stats.t ->
  ?trace:Mpp_obs.Trace.t ->
  ?domains:int ->
  ?pool:Dpool.t ->
  catalog:Mpp_catalog.Catalog.t ->
  storage:Mpp_storage.Storage.t ->
  Plan.t ->
  row list * Metrics.t
(** Execute with a fresh context and gather all segments' output rows. *)

val run_analyze :
  ?params:Value.t array ->
  ?selection_enabled:bool ->
  ?verify:bool ->
  ?runtime_filters:bool ->
  ?trace:Mpp_obs.Trace.t ->
  ?domains:int ->
  catalog:Mpp_catalog.Catalog.t ->
  storage:Mpp_storage.Storage.t ->
  Plan.t ->
  row list * Metrics.t * Node_stats.t
(** Like {!run}, also collecting the per-node statistics that
    {!Explain.analyze} renders. *)

(** The query executor: interprets a physical plan on the simulated MPP
    cluster.

    Execution is segment-synchronous — each operator produces, per segment,
    the rows it would emit there; Motions re-shuffle the per-segment sets.
    Side-effect ordering follows the paper: Sequence children and a join's
    left child run first, so a PartitionSelector always pushes its OIDs into
    the per-segment {!Channel} before the DynamicScan consumes them.
    Selectors are compiled once per plan node (static / point-equality /
    general paths, memoized per distinct key value) rather than interpreted
    per row — the specialized functions of paper §3.2, Figure 15. *)

open Mpp_expr
module Plan = Mpp_plan.Plan

type ctx = {
  catalog : Mpp_catalog.Catalog.t;
  storage : Mpp_storage.Storage.t;
  channel : Channel.t;
  metrics : Metrics.t;
  params : Value.t array;
  selection_enabled : bool;
      (** [false]: selectors ignore their predicates and push every leaf —
          the "partition selection disabled" configuration of Figure 17 *)
  stats : Node_stats.t option;
      (** when set, per-plan-node actual rows / partitions / wall time are
          recorded for EXPLAIN ANALYZE; [None] skips all bookkeeping *)
}

val create_ctx :
  ?params:Value.t array ->
  ?selection_enabled:bool ->
  ?stats:Node_stats.t ->
  catalog:Mpp_catalog.Catalog.t ->
  storage:Mpp_storage.Storage.t ->
  unit ->
  ctx

type result = {
  layout : (int * int) list;
      (** (range-table index, width) of the output tuples, left to right *)
  rows : Value.t array list array;  (** one row list per segment *)
}

val exec : ctx -> Plan.t -> result
(** Evaluate a plan; side effects (channel pushes, DML writes, metrics)
    accumulate in the context. *)

val run :
  ?params:Value.t array ->
  ?selection_enabled:bool ->
  ?stats:Node_stats.t ->
  catalog:Mpp_catalog.Catalog.t ->
  storage:Mpp_storage.Storage.t ->
  Plan.t ->
  Value.t array list * Metrics.t
(** Execute with a fresh context and gather all segments' output rows. *)

val run_analyze :
  ?params:Value.t array ->
  ?selection_enabled:bool ->
  catalog:Mpp_catalog.Catalog.t ->
  storage:Mpp_storage.Storage.t ->
  Plan.t ->
  Value.t array list * Metrics.t * Node_stats.t
(** Like {!run}, also collecting the per-node statistics that
    {!Explain.analyze} renders. *)

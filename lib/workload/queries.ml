(** The evaluation query workload (paper §4.3).

    Forty-three query templates over the seven partitioned fact tables,
    engineered to cover the plan-space categories of the paper's Table 3:

    - {e Equal}: static elimination or simple joins the legacy Planner's
      rudimentary dynamic elimination also handles — the bulk of the
      workload (the paper reports 80%);
    - {e Orca_only}: multi-join star queries where the partitioned fact is
      no longer a plain inheritance expansion when the date dimension is
      joined, so only Orca's selector placement eliminates (paper: 11%);
    - {e Orca_more}: multi-level partitioning, where the Planner's
      single-level dynamic elimination leaves partitions on the table
      (paper: 3%);
    - {e Orca_fewer} / {e Planner_only}: queries with injected cardinality
      misestimates that make Orca's cost-based join orientation abandon the
      DPE-friendly shape (the paper's sub-optimal 3% + 3%). *)

type category = Orca_only | Orca_more | Equal | Orca_fewer | Planner_only

let category_to_string = function
  | Orca_only -> "Orca eliminates parts, Planner does not"
  | Orca_more -> "Orca eliminates more parts than Planner"
  | Equal -> "Orca and Planner eliminate parts equally"
  | Orca_fewer -> "Orca eliminates fewer parts than Planner"
  | Planner_only -> "Orca does not eliminate parts, Planner does"

type runtime_class = Short | Medium | Long

type query = {
  name : string;
  sql : string;
  misestimates : (string * float) list;
      (** (table, factor): row-count misestimates injected before Orca
          optimizes — the Planner is not cost-based and ignores them *)
  expected : category;
  runtime_class : runtime_class;
}

let q ?(mis = []) ?(rt = Medium) name expected sql =
  { name; sql; misestimates = mis; expected; runtime_class = rt }

let all : query list =
  [
    (* ---- static partition elimination: both optimizers prune ---- *)
    q "ss_static_quarter" Equal ~rt:Short
      "SELECT avg(ss_price) FROM store_sales WHERE ss_sold_date BETWEEN \
       '2013-10-01' AND '2013-12-31'";
    q "ss_static_month" Equal ~rt:Short
      "SELECT count(*), sum(ss_price) FROM store_sales WHERE ss_sold_date >= \
       '2013-06-01' AND ss_sold_date < '2013-07-01'";
    q "ss_static_2011" Equal ~rt:Short
      "SELECT max(ss_price) FROM store_sales WHERE ss_sold_date < '2011-03-01'";
    q "ws_static_range" Equal ~rt:Short
      "SELECT avg(ws_price) FROM web_sales WHERE ws_sold_date_id BETWEEN 900 \
       AND 989";
    q "ws_static_tail" Equal ~rt:Short
      "SELECT count(*) FROM web_sales WHERE ws_sold_date_id >= 1000";
    q "cs_static_quarter" Equal ~rt:Short
      "SELECT sum(cs_price) FROM catalog_sales WHERE cs_sold_date BETWEEN \
       '2012-04-01' AND '2012-06-30'";
    q "sr_static_by_reason" Equal ~rt:Short
      "SELECT sr_reason, count(*) FROM store_returns WHERE sr_returned_date \
       >= '2013-10-01' GROUP BY sr_reason";
    q "wr_static_month" Equal ~rt:Short
      "SELECT sum(wr_qty) FROM web_returns WHERE wr_returned_date BETWEEN \
       '2013-03-01' AND '2013-03-31'";
    q "cr_static_two_level" Equal ~rt:Short
      "SELECT count(*) FROM catalog_returns WHERE cr_returned_date >= \
       '2013-07-01' AND cr_channel = 'web'";
    q "cr_static_date_only" Equal ~rt:Short
      "SELECT sum(cr_qty) FROM catalog_returns WHERE cr_returned_date \
       BETWEEN '2012-01-01' AND '2012-02-29'";
    q "inv_static_narrow" Equal ~rt:Short
      "SELECT sum(inv_qty) FROM inventory WHERE inv_date BETWEEN \
       '2013-11-01' AND '2013-11-14'";
    q "inv_static_half" Equal ~rt:Medium
      "SELECT avg(inv_qty) FROM inventory WHERE inv_date >= '2012-07-01'";
    q "ss_in_list_dates" Equal ~rt:Short
      "SELECT count(*) FROM store_sales WHERE ss_sold_date IN ('2013-01-15', \
       '2013-02-15')";
    q "sr_reasons_and_date" Equal ~rt:Short
      "SELECT count(*) FROM store_returns WHERE sr_reason IN ('damaged', \
       'late') AND sr_returned_date >= '2013-06-01'";
    q "ss_static_price_filter" Equal ~rt:Short
      "SELECT count(*) FROM store_sales WHERE ss_sold_date >= '2013-09-01' \
       AND ss_price > 250.0";
    (* ---- static elimination + dimension joins off the partition key ---- *)
    q "ss_item_category" Equal ~rt:Medium
      "SELECT i.i_category, sum(ss.ss_price) FROM store_sales ss, item i \
       WHERE ss.ss_item = i.i_id AND ss.ss_sold_date BETWEEN '2013-10-01' \
       AND '2013-12-31' GROUP BY i.i_category";
    q "ss_customer_state" Equal ~rt:Medium
      "SELECT count(*) FROM store_sales ss, customer c WHERE ss.ss_customer \
       = c.c_id AND c.c_state = 'CA' AND ss.ss_sold_date >= '2013-11-01'";
    q "cs_item_join" Equal ~rt:Medium
      "SELECT avg(cs.cs_price) FROM catalog_sales cs, item i WHERE \
       cs.cs_item = i.i_id AND i.i_category = 'books' AND cs.cs_sold_date < \
       '2011-04-01'";
    q "wr_item_join" Equal ~rt:Medium
      "SELECT count(*) FROM web_returns wr, item i WHERE wr.wr_item = i.i_id \
       AND i.i_category = 'music' AND wr.wr_returned_date >= '2013-10-01'";
    q "inv_warehouse_join" Equal ~rt:Medium
      "SELECT sum(inv.inv_qty) FROM inventory inv, warehouse w WHERE \
       inv.inv_warehouse = w.w_id AND w.w_state = 'TX' AND inv.inv_date \
       BETWEEN '2013-01-01' AND '2013-01-31'";
    (* ---- no elimination possible: equal by vacuity ---- *)
    q "ss_full_scan" Equal ~rt:Long
      "SELECT count(*), avg(ss_price) FROM store_sales";
    q "wr_full_scan" Equal ~rt:Long "SELECT sum(wr_qty) FROM web_returns";
    q "cs_group_by_month" Equal ~rt:Long
      "SELECT month(cs_sold_date), sum(cs_price) FROM catalog_sales GROUP BY \
       month(cs_sold_date)";
    q "sr_dow_join" Equal ~rt:Long
      "SELECT count(*) FROM store_returns sr, date_dim d WHERE \
       sr.sr_returned_date = d.d_date AND d.d_dow = 1";
    (* ---- runtime-join-filter targets: selective build side, probe keys off
       the partition key — no elimination, so the classifiers agree, but the
       Bloom filter drops ~7/8 of probe rows before the hash probe ---- *)
    q "ss_customer_rf_scan" Equal ~rt:Long
      "SELECT count(*), sum(ss.ss_price) FROM store_sales ss, customer c \
       WHERE ss.ss_customer = c.c_id AND c.c_state = 'CA'";
    q "ws_customer_rf_scan" Equal ~rt:Long
      "SELECT sum(ws.ws_price) FROM web_sales ws, customer c WHERE \
       ws.ws_customer = c.c_id AND c.c_state = 'TX'";
    (* ---- simple joins the Planner's rudimentary DPE also handles ---- *)
    q "ss_datedim_month" Equal ~rt:Short
      "SELECT count(*) FROM date_dim d, store_sales s WHERE s.ss_sold_date = \
       d.d_date AND d.d_year = 2013 AND d.d_month = 11";
    q "cs_datedim_quarter" Equal ~rt:Medium
      "SELECT sum(s.cs_price) FROM date_dim d, catalog_sales s WHERE \
       s.cs_sold_date = d.d_date AND d.d_year = 2012 AND d.d_quarter = 2";
    q "ws_datedim_surrogate" Equal ~rt:Medium
      "SELECT avg(w.ws_price) FROM date_dim d, web_sales w WHERE \
       w.ws_sold_date_id = d.d_date_id AND d.d_year = 2013 AND d.d_month \
       BETWEEN 10 AND 12";
    q "ss_in_subquery" Equal ~rt:Medium
      "SELECT avg(ss_price) FROM store_sales WHERE ss_sold_date IN (SELECT \
       d_date FROM date_dim WHERE d_year = 2013 AND d_month BETWEEN 10 AND \
       12)";
    q "inv_datedim_month" Equal ~rt:Medium
      "SELECT sum(i.inv_qty) FROM date_dim d, inventory i WHERE i.inv_date = \
       d.d_date AND d.d_year = 2011 AND d.d_month = 2";
    (* ---- multi-join stars: only Orca's placement eliminates ---- *)
    q "ss_star_december" Orca_only ~rt:Long
      "SELECT sum(ss.ss_price) FROM store_sales ss, item i, date_dim d WHERE \
       ss.ss_item = i.i_id AND ss.ss_sold_date = d.d_date AND d.d_year = \
       2013 AND d.d_month = 12 AND i.i_category = 'books'";
    q "cs_star_q3" Orca_only ~rt:Long
      "SELECT count(*) FROM catalog_sales cs, item i, date_dim d WHERE \
       cs.cs_item = i.i_id AND cs.cs_sold_date = d.d_date AND d.d_year = \
       2013 AND d.d_quarter = 3 AND i.i_category = 'electronics'";
    q "ws_star_surrogate" Orca_only ~rt:Long
      "SELECT sum(ws.ws_price) FROM web_sales ws, customer c, date_dim d \
       WHERE ws.ws_customer = c.c_id AND ws.ws_sold_date_id = d.d_date_id \
       AND d.d_year = 2012 AND d.d_month = 6 AND c.c_state = 'NY'";
    q "inv_star_january" Orca_only ~rt:Long
      "SELECT sum(inv.inv_qty) FROM inventory inv, warehouse w, date_dim d \
       WHERE inv.inv_warehouse = w.w_id AND inv.inv_date = d.d_date AND \
       d.d_year = 2013 AND d.d_month = 1 AND w.w_state = 'CA'";
    q "ss_star_may" Orca_only ~rt:Long
      "SELECT avg(ss.ss_price) FROM store_sales ss, customer c, date_dim d \
       WHERE ss.ss_customer = c.c_id AND ss.ss_sold_date = d.d_date AND \
       d.d_year = 2012 AND d.d_month = 5 AND c.c_state = 'WA'";
    q "ss_star_rf_year" Equal ~rt:Long
      "SELECT sum(ss.ss_price) FROM store_sales ss, customer c, date_dim d \
       WHERE ss.ss_customer = c.c_id AND ss.ss_sold_date = d.d_date AND \
       d.d_year = 2013 AND c.c_state = 'CA'";
    q "ss_static_week" Equal ~rt:Short
      "SELECT count(*) FROM store_sales WHERE ss_sold_date BETWEEN \
       '2012-08-06' AND '2012-08-12'";
    q "ss_datedim_august" Equal ~rt:Short
      "SELECT count(*) FROM date_dim d, store_sales s WHERE s.ss_sold_date = \
       d.d_date AND d.d_year = 2011 AND d.d_month = 8";
    (* ---- multi-level: Orca eliminates on both levels ---- *)
    q "cr_multilevel_dpe" Orca_more ~rt:Medium
      "SELECT count(*) FROM catalog_returns cr, date_dim d WHERE \
       cr.cr_returned_date = d.d_date AND d.d_year = 2013 AND d.d_month = 12 \
       AND cr.cr_channel = 'web'";
    (* ---- injected misestimates: Orca picks the wrong orientation ---- *)
    q "ss_misestimate_no_dpe" Planner_only ~rt:Medium
      ~mis:[ ("date_dim", 1000.0); ("store_sales", 0.001) ]
      "SELECT count(*) FROM date_dim d, store_sales s WHERE s.ss_sold_date = \
       d.d_date AND d.d_year = 2012 AND d.d_month = 3";
    q "ss_misestimate_partial" Orca_fewer ~rt:Medium
      ~mis:[ ("date_dim", 1000.0); ("store_sales", 0.001) ]
      "SELECT count(*) FROM date_dim d, store_sales s WHERE s.ss_sold_date = \
       d.d_date AND s.ss_sold_date >= '2013-07-01' AND d.d_year = 2013 AND \
       d.d_month = 9";
    (* ---- transitive pruning: the range filter sits on store_returns, and
       only the equi-join equivalence class carries it onto store_sales'
       partition key — neither Algorithm-1 static exclusion nor a selector
       sees it without the abstract-interpretation strengthening pass ---- *)
    q "ss_sr_transitive_date" Equal ~rt:Medium
      "SELECT count(*) FROM store_sales ss, store_returns sr WHERE \
       ss.ss_sold_date = sr.sr_returned_date AND sr.sr_returned_date >= \
       '2013-10-01'";
  ]

let find name = List.find (fun qu -> String.equal qu.name name) all

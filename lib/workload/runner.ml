(** Workload execution harness: optimize each query with Orca (with or
    without partition selection) or with the legacy Planner, run it on the
    simulated cluster, and collect the per-fact-table partition counts and
    wall-clock times the evaluation figures are built from. *)

module Plan = Mpp_plan.Plan
module Table = Mpp_catalog.Table

type env = {
  catalog : Mpp_catalog.Catalog.t;
  storage : Mpp_storage.Storage.t;
  stats : Mpp_stats.Stats_source.t;
  schema : Tpcds.schema;
}

let setup_env ?(scale = 1) ?(nsegments = 4) () : env =
  let catalog = Mpp_catalog.Catalog.create () in
  let storage = Mpp_storage.Storage.create ~nsegments in
  let schema = Tpcds.setup ~scale ~catalog ~storage () in
  let stats = Mpp_stats.Stats_source.create ~catalog ~storage in
  { catalog; storage; stats; schema }

type optimizer_kind = Orca | Orca_no_selection | Legacy_planner

let optimizer_kind_to_string = function
  | Orca -> "Orca"
  | Orca_no_selection -> "Orca (selection disabled)"
  | Legacy_planner -> "Planner"

type run_result = {
  query : Queries.query;
  kind : optimizer_kind;
  plan : Plan.t;
  rows : Mpp_expr.Value.t array list;
  parts_scanned : (string * int) list;
      (** per partitioned fact table actually referenced by the query *)
  parts_total : (string * int) list;
  wall_seconds : float;
  plan_bytes : int;
}

(* Fact tables referenced by this query's SQL. *)
let facts_in env (qu : Queries.query) =
  List.filter
    (fun (t : Table.t) ->
      (* cheap containment test on the raw SQL text *)
      let re = t.Table.name in
      let s = qu.Queries.sql in
      let ls = String.lowercase_ascii s in
      let rec find i =
        if i + String.length re > String.length ls then false
        else if String.sub ls i (String.length re) = re then true
        else find (i + 1)
      in
      find 0)
    (Tpcds.fact_tables env.schema)
  (* `store_sales` contains `store_sale`… exact-enough for our table names *)

let optimize_est env kind (qu : Queries.query) : Plan.t * Mpp_plan.Est.t =
  let lg = Mpp_sql.Sql.to_logical env.catalog qu.Queries.sql in
  match kind with
  | Legacy_planner ->
      let pl = Mpp_planner.Planner.create ~catalog:env.catalog () in
      (Mpp_planner.Planner.plan pl lg, Mpp_plan.Est.none)
  | Orca | Orca_no_selection ->
      (* inject this query's misestimates for the cost-based optimizer *)
      Mpp_stats.Stats_source.clear_row_scales env.stats;
      List.iter
        (fun (name, factor) ->
          let table = Mpp_catalog.Catalog.find env.catalog name in
          Mpp_stats.Stats_source.set_row_scale env.stats
            ~table_oid:table.Table.oid ~factor)
        qu.Queries.misestimates;
      let config =
        {
          Orca.Optimizer.default_config with
          enable_partition_selection = (kind = Orca);
        }
      in
      let opt =
        Orca.Optimizer.create ~config ~stats:env.stats ~catalog:env.catalog ()
      in
      let plan = Orca.Optimizer.optimize opt lg in
      (* stamp plan-time row estimates while the misestimates are still
         active — exactly what the optimizer believed when costing *)
      let est =
        Mpp_plan.Est.of_plan ~estimate:(Orca.Optimizer.row_estimator opt lg)
          plan
      in
      Mpp_stats.Stats_source.clear_row_scales env.stats;
      (plan, est)

let optimize_with env kind (qu : Queries.query) : Plan.t =
  fst (optimize_est env kind qu)

(** Optimize and execute [qu] under [kind]. *)
let run env kind (qu : Queries.query) : run_result =
  let plan = optimize_with env kind qu in
  let t0 = Unix.gettimeofday () in
  let rows, metrics =
    Mpp_exec.Exec.run ~catalog:env.catalog ~storage:env.storage plan
  in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let facts = facts_in env qu in
  {
    query = qu;
    kind;
    plan;
    rows;
    parts_scanned =
      List.map
        (fun (t : Table.t) ->
          (t.Table.name,
           Mpp_exec.Metrics.parts_scanned_of metrics ~root_oid:t.Table.oid))
        facts;
    parts_total =
      List.map (fun (t : Table.t) -> (t.Table.name, Table.nparts t)) facts;
    wall_seconds;
    plan_bytes = Mpp_plan.Plan_size.bytes ~catalog:env.catalog plan;
  }

let total_parts_scanned r =
  List.fold_left (fun acc (_, n) -> acc + n) 0 r.parts_scanned

let total_parts r = List.fold_left (fun acc (_, n) -> acc + n) 0 r.parts_total

(** Big-join workload generator: star/chain/clique join graphs of 10–30
    relations over range/list-partitioned tables, for exercising optimizer
    scaling (the 42-query workload tops out at four relations).

    Everything is deterministic from the {!spec}: table layouts,
    distributions, partitioning, row counts, data values, and local filters
    all come from one {!Rng} stream seeded by [spec.seed], so two calls
    with the same spec produce byte-identical catalogs and logical trees —
    the property the serial-vs-parallel equivalence suite leans on.

    Queries are emitted directly as {!Orca.Logical} trees (a 30-way join's
    SQL text adds nothing but parser risk): the as-written join order is
    simply relation order, which is deliberately naive — the join-order
    search has to earn its keep.  Each query is a join core under a
    count-star + sum aggregate, so plans exercise scans, DPE, Motions, and
    two-phase aggregation end to end. *)

open Mpp_expr
module Cat = Mpp_catalog.Catalog
module Part = Mpp_catalog.Partition
module Dist = Mpp_catalog.Distribution
module Logical = Orca.Logical

type shape = Star | Chain | Clique

let shape_to_string = function
  | Star -> "star"
  | Chain -> "chain"
  | Clique -> "clique"

let shape_of_string = function
  | "star" -> Some Star
  | "chain" -> Some Chain
  | "clique" -> Some Clique
  | _ -> None

type spec = { shape : shape; nrels : int; seed : int }

let spec_name s = Printf.sprintf "%s%d_s%d" (shape_to_string s.shape) s.nrels s.seed

type env = {
  name : string;
  catalog : Cat.t;
  storage : Mpp_storage.Storage.t;
  stats : Mpp_stats.Stats_source.t;
  logical : Logical.t;
}

(* Join-key values live in [0, key_domain); range-partitioned tables split
   that domain into [nparts] equal slices. *)
let key_domain = 64
let nparts = 8
let cats = [| "alpha"; "beta"; "gamma"; "delta" |]

let range_part alloc ~table_name ~key_index ~key_name =
  Part.single_level ~alloc_oid:alloc ~key_index ~key_name ~scheme:Part.Range
    ~table_name
    (Part.int_ranges ~start:0 ~width:(key_domain / nparts) ~count:nparts)

let list_part alloc ~table_name ~key_index ~key_name =
  Part.single_level ~alloc_oid:alloc ~key_index ~key_name
    ~scheme:Part.Categorical ~table_name
    (Part.categorical
       (List.map (fun c -> [ Value.String c ]) (Array.to_list cats)))

let colref ~rel ~index ~name ~dtype = Expr.col (Colref.make ~rel ~index ~name ~dtype)

let generate ?(nsegments = 4) (spec : spec) : env =
  if spec.nrels < 2 then invalid_arg "Biggen.generate: need at least 2 relations";
  if spec.nrels > 60 then invalid_arg "Biggen.generate: at most 60 relations";
  let name = spec_name spec in
  let catalog = Cat.create () in
  let storage = Mpp_storage.Storage.create ~nsegments in
  let rng = Rng.create ~seed:(Int64.of_int (0x5eed + spec.seed)) () in
  let alloc () = Cat.alloc_oid catalog in
  let ins = Mpp_storage.Storage.insert storage in
  let n = spec.nrels in
  let rand_key () = Value.Int (Rng.int rng key_domain) in
  (* Optional local filter for a leaf over its first int key column (or the
     category column): roughly a third of the relations get one, shrinking
     rows and — on partitioned tables — enabling static pruning. *)
  let leaf_filter ~rel ~key_name ~key_index ~cat_index table_cols =
    let roll = Rng.int rng 12 in
    if roll < 4 then
      Some
        (Expr.lt
           (colref ~rel ~index:key_index ~name:key_name ~dtype:Value.Tint)
           (Expr.int (16 + Rng.int rng 40)))
    else if roll < 6 && cat_index >= 0 then
      let cname, _ = List.nth table_cols cat_index in
      Some
        (Expr.eq
           (colref ~rel ~index:cat_index ~name:cname ~dtype:Value.Tstring)
           (Expr.str (Rng.pick rng cats)))
    else None
  in
  let leaf ~rel table_name filter =
    let get = Logical.get ~rel table_name in
    match filter with None -> get | Some pred -> Logical.select pred get
  in
  let logical =
    match spec.shape with
    | Star ->
        (* relation 0 is the hub (fact): one foreign key per spoke, range-
           partitioned on the first; spokes are dimension-shaped, a mix of
           replicated/hashed and partitioned/plain *)
        let fact_name = name ^ "_fact" in
        let fact_cols =
          List.init (n - 1) (fun i ->
              (Printf.sprintf "fk%d" (i + 1), Value.Tint))
          @ [ ("v", Value.Tfloat) ]
        in
        let fact =
          Cat.add_table catalog ~name:fact_name ~columns:fact_cols
            ~distribution:(Dist.Hashed [ 0 ])
            ~partitioning:
              (range_part alloc ~table_name:fact_name ~key_index:0
                 ~key_name:"fk1")
            ()
        in
        let dim_cols =
          [ ("pk", Value.Tint); ("w", Value.Tfloat); ("c", Value.Tstring) ]
        in
        let dims =
          Array.init (n - 1) (fun i ->
              let dname = Printf.sprintf "%s_dim%d" name (i + 1) in
              let distribution =
                if Rng.int rng 3 = 0 then Dist.Replicated else Dist.Hashed [ 0 ]
              in
              let partitioning =
                if (i + 1) mod 3 = 0 then
                  Some
                    (range_part alloc ~table_name:dname ~key_index:0
                       ~key_name:"pk")
                else if (i + 1) mod 5 = 0 then
                  Some
                    (list_part alloc ~table_name:dname ~key_index:2
                       ~key_name:"c")
                else None
              in
              Cat.add_table catalog ~name:dname ~columns:dim_cols
                ~distribution ?partitioning ())
        in
        let fact_rows = 300 + Rng.int rng 300 in
        for _ = 1 to fact_rows do
          ins fact
            (Array.init n (fun ci ->
                 if ci = n - 1 then Value.Float (Rng.float rng 100.0)
                 else rand_key ()))
        done;
        Array.iter
          (fun dim ->
            let rows = 20 + Rng.int rng 120 in
            for _ = 1 to rows do
              ins dim
                [| rand_key (); Value.Float (Rng.float rng 10.0);
                   Value.String (Rng.pick rng cats) |]
            done)
          dims;
        let tree =
          ref
            (leaf ~rel:0 fact_name
               (leaf_filter ~rel:0 ~key_name:"fk1" ~key_index:0 ~cat_index:(-1)
                  fact_cols))
        in
        for i = 1 to n - 1 do
          let pred =
            Expr.eq
              (colref ~rel:0 ~index:(i - 1)
                 ~name:(Printf.sprintf "fk%d" i) ~dtype:Value.Tint)
              (colref ~rel:i ~index:0 ~name:"pk" ~dtype:Value.Tint)
          in
          let f =
            leaf_filter ~rel:i ~key_name:"pk" ~key_index:0 ~cat_index:2
              dim_cols
          in
          tree :=
            Logical.join pred !tree (leaf ~rel:i dims.(i - 1).Mpp_catalog.Table.name f)
        done;
        !tree
    | Chain ->
        (* t_i.b = t_{i+1}.a down the line; every other table partitioned
           on its own key *)
        let cols =
          [ ("a", Value.Tint); ("b", Value.Tint); ("v", Value.Tfloat) ]
        in
        let tables =
          Array.init n (fun i ->
              let tname = Printf.sprintf "%s_t%d" name i in
              let distribution =
                if Rng.int rng 4 = 0 then Dist.Replicated else Dist.Hashed [ 0 ]
              in
              let partitioning =
                if i mod 2 = 0 then
                  Some
                    (range_part alloc ~table_name:tname ~key_index:0
                       ~key_name:"a")
                else None
              in
              Cat.add_table catalog ~name:tname ~columns:cols ~distribution
                ?partitioning ())
        in
        Array.iter
          (fun table ->
            let rows = 50 + Rng.int rng 250 in
            for _ = 1 to rows do
              ins table
                [| rand_key (); rand_key (); Value.Float (Rng.float rng 100.0) |]
            done)
          tables;
        let leaf_of i =
          leaf ~rel:i tables.(i).Mpp_catalog.Table.name
            (leaf_filter ~rel:i ~key_name:"a" ~key_index:0 ~cat_index:(-1) cols)
        in
        let tree = ref (leaf_of 0) in
        for i = 1 to n - 1 do
          let pred =
            Expr.eq
              (colref ~rel:(i - 1) ~index:1 ~name:"b" ~dtype:Value.Tint)
              (colref ~rel:i ~index:0 ~name:"a" ~dtype:Value.Tint)
          in
          tree := Logical.join pred !tree (leaf_of i)
        done;
        !tree
    | Clique ->
        (* every pair joined on a shared key column; a third of the tables
           partitioned on it *)
        let cols = [ ("k", Value.Tint); ("v", Value.Tfloat) ] in
        let tables =
          Array.init n (fun i ->
              let tname = Printf.sprintf "%s_t%d" name i in
              let distribution =
                if i mod 5 = 4 then Dist.Replicated else Dist.Hashed [ 0 ]
              in
              let partitioning =
                if i mod 3 = 0 then
                  Some
                    (range_part alloc ~table_name:tname ~key_index:0
                       ~key_name:"k")
                else None
              in
              Cat.add_table catalog ~name:tname ~columns:cols ~distribution
                ?partitioning ())
        in
        Array.iter
          (fun table ->
            let rows = 30 + Rng.int rng 120 in
            for _ = 1 to rows do
              ins table [| rand_key (); Value.Float (Rng.float rng 100.0) |]
            done)
          tables;
        let leaf_of i =
          leaf ~rel:i tables.(i).Mpp_catalog.Table.name
            (leaf_filter ~rel:i ~key_name:"k" ~key_index:0 ~cat_index:(-1) cols)
        in
        let kcol i = colref ~rel:i ~index:0 ~name:"k" ~dtype:Value.Tint in
        let tree = ref (leaf_of 0) in
        for i = 1 to n - 1 do
          let pred =
            Expr.conj (List.init i (fun j -> Expr.eq (kcol j) (kcol i)))
          in
          tree := Logical.join pred !tree (leaf_of i)
        done;
        !tree
  in
  let sum_col =
    match spec.shape with
    | Star -> colref ~rel:0 ~index:(n - 1) ~name:"v" ~dtype:Value.Tfloat
    | Chain -> colref ~rel:(n - 1) ~index:2 ~name:"v" ~dtype:Value.Tfloat
    | Clique -> colref ~rel:(n - 1) ~index:1 ~name:"v" ~dtype:Value.Tfloat
  in
  let logical =
    Logical.aggregate
      [ ("cnt", Mpp_plan.Plan.Count_star);
        ("total", Mpp_plan.Plan.Sum sum_col) ]
      logical
  in
  let stats = Mpp_stats.Stats_source.create ~catalog ~storage in
  { name; catalog; storage; stats; logical }

(** The fixed verification suite for [mppsim check --biggen]: every shape
    at 10/16/24 relations. *)
let default_suite () =
  List.concat_map
    (fun shape ->
      List.map (fun nrels -> { shape; nrels; seed = 7 }) [ 10; 16; 24 ])
    [ Star; Chain; Clique ]

(** Workload execution harness: optimize each evaluation query with Orca
    (with or without partition selection) or the legacy Planner, run it on
    the simulated cluster, and collect the per-fact-table partition counts
    and wall times the figures are built from. *)

module Plan = Mpp_plan.Plan

type env = {
  catalog : Mpp_catalog.Catalog.t;
  storage : Mpp_storage.Storage.t;
  stats : Mpp_stats.Stats_source.t;
  schema : Tpcds.schema;
}

val setup_env : ?scale:int -> ?nsegments:int -> unit -> env

type optimizer_kind = Orca | Orca_no_selection | Legacy_planner

val optimizer_kind_to_string : optimizer_kind -> string

type run_result = {
  query : Queries.query;
  kind : optimizer_kind;
  plan : Plan.t;
  rows : Mpp_expr.Value.t array list;
  parts_scanned : (string * int) list;
      (** per partitioned fact table the query references *)
  parts_total : (string * int) list;
  wall_seconds : float;
  plan_bytes : int;
}

val optimize_with : env -> optimizer_kind -> Queries.query -> Plan.t
(** Optimize only, applying the query's injected misestimates for the
    cost-based optimizer. *)

val optimize_est :
  env -> optimizer_kind -> Queries.query -> Plan.t * Mpp_plan.Est.t
(** Like {!optimize_with}, additionally stamping per-node plan-time row
    estimates (captured while the query's injected misestimates are still
    active, i.e. what the optimizer actually believed).  The estimate
    array is {!Mpp_plan.Est.none} for the legacy planner. *)

val run : env -> optimizer_kind -> Queries.query -> run_result

val total_parts_scanned : run_result -> int
val total_parts : run_result -> int

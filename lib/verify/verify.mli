(** Multi-pass static analysis of physical plans.

    Subsumes and extends {!Mpp_plan.Plan_valid}: both optimizers run every
    plan they emit through [check] before handing it to the executor, the
    [mppsim check] front end pretty-prints the diagnostics, and the
    mutation-kill harness asserts that each systematic plan corruption is
    rejected with the right code.

    Six passes, each emitting structured {!Diag.t} diagnostics:

    - {b structure} — the paper's §3.1 invariants (matched
      PartitionSelector/DynamicScan pairs, no Motion between a communicating
      pair, producer-before-consumer order in Sequences {e and} across join
      children, which execute left to right), plus selector arity against
      the partitioning levels, duplicate producers, and selector/scan
      root-OID agreement across nested Sequence boundaries;
    - {b schema} — re-derives every operator's output tuple layout
      (relation, width, per-column datatype) bottom-up exactly as the
      executor does, and resolves every expression against it: out-of-range
      column offsets, out-of-scope relations, class-incompatible
      comparisons, non-boolean filter predicates, non-numeric aggregate
      arguments, Append children with mismatched layouts, and DML targets
      missing from the child output are all caught at plan time instead of
      at [Expr.compile] time (or worse, silently at run time);
    - {b distribution} — infers where each operator's rows live (singleton,
      replicated, hashed on columns, or unknown-distributed) and checks
      that every join's inputs are co-located, broadcast or gathered; that
      [Gather_one] only reads replicated data; that Sort/Limit/final
      aggregation run over gathered input; that no Motion sits directly on
      another Motion; and that the plan root is gathered;
    - {b accounting} — cross-checks each DynamicScan's [ds_nparts] against
      {!Mpp_catalog.Partition.Index.count_selected} over its selector's
      statically-analyzable per-level restrictions, verifies that guarded
      leaf scans belong to their selector's table, and that a static-
      exclusion Append still covers every statically-surviving leaf;
    - {b filters} — runtime-join-filter placement legality: every
      [Runtime_filter] pairs with exactly one [Runtime_filter_build] of the
      same [rf_id], builder on the build (left) side and consumer(s) on the
      probe (right) side of the same join, key arities agree, a pre-Motion
      consumer sits directly below a Redistribute/Broadcast send, and no
      filter crosses a Gather above its join;
    - {b pruning} — partition-pruning soundness: for every DynamicScan and
      uniform leaf-expansion Append, the partitions {e permitted} by the
      site's reachable predicates (its own filter, enclosing filters, and
      join conjuncts propagated across equi-join equivalence classes — see
      {!Mpp_analysis.Analysis.pruning_sites}) are re-derived independently
      of the optimizer; a statically pruned set that excludes a permitted
      partition is an [Error] (["pruning/over-pruned"] — silently missing
      rows), while an Append branch whose own filter contradicts its
      leaf's bounds (["pruning/dead-append-child"]) or a filter predicate
      contradicting its input's derived bounds
      (["pruning/contradictory-filter"]) are [Warning]s.  A literal
      [false] filter — the sanctioned statically-empty shape — is
      exempt. *)

open Mpp_expr
module Plan = Mpp_plan.Plan

val check : catalog:Mpp_catalog.Catalog.t -> Plan.t -> Diag.t list
(** Run all six passes; diagnostics in pass order. *)

val check_pass :
  catalog:Mpp_catalog.Catalog.t -> Diag.pass -> Plan.t -> Diag.t list

val ok : catalog:Mpp_catalog.Catalog.t -> Plan.t -> bool
(** No [Error]-severity diagnostics. *)

exception Rejected of string * Diag.t list
(** [(what, errors)] raised by {!assert_valid}. *)

val assert_valid :
  catalog:Mpp_catalog.Catalog.t -> what:string -> Plan.t -> unit
(** Raise {!Rejected} when any pass reports an error. *)

val expected_nparts :
  catalog:Mpp_catalog.Catalog.t ->
  keys:Colref.t list ->
  predicates:Expr.t option list ->
  int ->
  int option
(** Statically-surviving partition count of the table rooted at the given
    OID under a selector's per-level predicates ([Expr.restriction] per
    level; unanalyzable levels select everything).  [None] when the OID is
    unknown, the table is not partitioned, or the arity is wrong. *)

val stamp_nparts : catalog:Mpp_catalog.Catalog.t -> Plan.t -> Plan.t
(** Set [ds_nparts] on every DynamicScan from its matching selector's
    statically-analyzable predicates (total partition count when the scan
    has no selector or the selector is malformed).  The optimizer runs this
    after selector placement so the accounting pass can later re-derive and
    cross-check the same number. *)

val pp_report : Format.formatter -> Diag.t list -> unit
(** Human-readable multi-line report; prints ["plan verifies clean"] for
    []. *)

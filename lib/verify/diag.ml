(** Structured diagnostics emitted by the plan verifier. *)

type severity = Error | Warning

type pass = Structure | Schema | Distribution | Accounting | Filters | Pruning

type t = {
  severity : severity;
  pass : pass;
  code : string;
  path : string;
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let pass_to_string = function
  | Structure -> "structure"
  | Schema -> "schema"
  | Distribution -> "distribution"
  | Accounting -> "accounting"
  | Filters -> "filters"
  | Pruning -> "pruning"

let pass_of_string = function
  | "structure" -> Some Structure
  | "schema" -> Some Schema
  | "distribution" -> Some Distribution
  | "accounting" -> Some Accounting
  | "filters" -> Some Filters
  | "pruning" -> Some Pruning
  | _ -> None

let make ?(severity = Error) ~pass ~code ~path message =
  { severity; pass; code; path; message }

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let has_code code ds = List.exists (fun d -> d.code = code) ds

let pp fmt d =
  Format.fprintf fmt "[%s] %s at %s: %s"
    (severity_to_string d.severity)
    d.code d.path d.message

let to_string d = Format.asprintf "%a" pp d

let to_json d =
  Mpp_obs.Json.Obj
    [
      ("severity", Mpp_obs.Json.String (severity_to_string d.severity));
      ("pass", Mpp_obs.Json.String (pass_to_string d.pass));
      ("code", Mpp_obs.Json.String d.code);
      ("path", Mpp_obs.Json.String d.path);
      ("message", Mpp_obs.Json.String d.message);
    ]

let list_to_json ds = Mpp_obs.Json.List (List.map to_json ds)

(** Structured diagnostics emitted by the plan verifier.

    Every finding carries the {e pass} that produced it, a stable machine
    code (["structure/unmatched-scan"], ["schema/unresolved-column"], …) the
    mutation-kill harness asserts against, the {e path} of the offending
    node in the plan tree, and a human message. *)

type severity = Error | Warning

type pass = Structure | Schema | Distribution | Accounting | Filters | Pruning

type t = {
  severity : severity;
  pass : pass;
  code : string;  (** stable machine-readable identifier, [pass/rule] *)
  path : string;  (** plan-tree path of the offending node, root first *)
  message : string;
}

val severity_to_string : severity -> string
val pass_to_string : pass -> string
val pass_of_string : string -> pass option

val make :
  ?severity:severity -> pass:pass -> code:string -> path:string -> string -> t
(** [severity] defaults to [Error]. *)

val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

val has_code : string -> t list -> bool
(** Does any diagnostic carry this code? *)

val pp : Format.formatter -> t -> unit
(** [[error] structure/unmatched-scan at Gather/0.HashJoin: …] *)

val to_string : t -> string
val to_json : t -> Mpp_obs.Json.t
val list_to_json : t list -> Mpp_obs.Json.t

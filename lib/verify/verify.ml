(** Multi-pass static analysis of physical plans — see [verify.mli]. *)

open Mpp_expr
module Plan = Mpp_plan.Plan
module Catalog = Mpp_catalog.Catalog
module Table = Mpp_catalog.Table
module Partition = Mpp_catalog.Partition
module Obs = Mpp_obs.Obs

(* ------------------------------------------------------------------ *)
(* Node paths                                                          *)
(* ------------------------------------------------------------------ *)

let short = function
  | Plan.Table_scan _ -> "Scan"
  | Plan.Dynamic_scan _ -> "DynScan"
  | Plan.Partition_selector _ -> "Selector"
  | Plan.Sequence _ -> "Sequence"
  | Plan.Filter _ -> "Filter"
  | Plan.Project _ -> "Project"
  | Plan.Hash_join _ -> "HashJoin"
  | Plan.Nl_join _ -> "NLJoin"
  | Plan.Agg _ -> "Agg"
  | Plan.Sort _ -> "Sort"
  | Plan.Limit _ -> "Limit"
  | Plan.Motion _ -> "Motion"
  | Plan.Append _ -> "Append"
  | Plan.Update _ -> "Update"
  | Plan.Delete _ -> "Delete"
  | Plan.Insert _ -> "Insert"
  | Plan.Runtime_filter_build _ -> "RFBuild"
  | Plan.Runtime_filter _ -> "RFApply"

(* A path is kept as a reversed segment list and rendered on demand.  The
   segments stay symbolic (child index + node) until a diagnostic is
   actually emitted: clean plans — the common case on the optimizer hot
   path — never pay for string formatting. *)
type pseg = Root of Plan.t | Child of int * Plan.t

let render path =
  String.concat "/"
    (List.rev_map
       (function
         | Root p -> short p
         | Child (i, c) -> string_of_int i ^ "." ^ short c)
       path)

let seg i child = Child (i, child)

let table_opt catalog oid =
  try Some (Catalog.find_oid catalog oid) with Invalid_argument _ -> None

(* A leaf scan's tuples use the root table's schema; the schema and
   distribution passes resolve leaf → root once and cache per root. *)

(* ------------------------------------------------------------------ *)
(* Pass 1: structure                                                   *)
(* ------------------------------------------------------------------ *)

(* Unmatched endpoint counts for one part_scan_id in a subtree; [tp]/[tc]
   record whether any of the unmatched producers/consumers crossed a Motion
   on the way up (the §3.1 process-boundary taint). *)
type ep = { prod : int; cons : int; tp : bool; tc : bool }

let ep_producer = { prod = 1; cons = 0; tp = false; tc = false }
let ep_consumer = { prod = 0; cons = 1; tp = false; tc = false }

let ep_merge a b =
  { prod = a.prod + b.prod; cons = a.cons + b.cons;
    tp = a.tp || b.tp; tc = a.tc || b.tc }

let merge_tables acc tbl =
  List.fold_left
    (fun acc (id, e) ->
      match List.assoc_opt id acc with
      | None -> (id, e) :: acc
      | Some e0 -> (id, ep_merge e0 e) :: List.remove_assoc id acc)
    acc tbl

let structure_pass ~catalog (plan : Plan.t) : Diag.t list =
  let diags = ref [] in
  let emit ?severity code path msg =
    diags :=
      Diag.make ?severity ~pass:Diag.Structure ~code ~path:(render path) msg
      :: !diags
  in
  (* --- per-node checks and the global id maps, one pre-order walk --- *)
  let sel_count : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let sel_root : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let scan_roots : (int * int * pseg list) list ref = ref [] in
  let rec pre path p =
    (match p with
    | Plan.Partition_selector { part_scan_id; root_oid; keys; predicates; _ }
      ->
        Hashtbl.replace sel_count part_scan_id
          (1 + Option.value (Hashtbl.find_opt sel_count part_scan_id)
                 ~default:0);
        if not (Hashtbl.mem sel_root part_scan_id) then
          Hashtbl.add sel_root part_scan_id root_oid;
        if List.length keys <> List.length predicates then
          emit "structure/selector-arity" path
            (Printf.sprintf
               "PartitionSelector %d has %d keys but %d per-level predicates"
               part_scan_id (List.length keys) (List.length predicates));
        (match table_opt catalog root_oid with
        | None ->
            emit "structure/unknown-root" path
              (Printf.sprintf "PartitionSelector %d targets unknown OID %d"
                 part_scan_id root_oid)
        | Some tbl -> (
            match tbl.Table.partitioning with
            | None ->
                emit "structure/selector-unpartitioned" path
                  (Printf.sprintf
                     "PartitionSelector %d targets unpartitioned table %s"
                     part_scan_id tbl.Table.name)
            | Some part ->
                if List.length keys <> Partition.nlevels part then
                  emit "structure/selector-levels" path
                    (Printf.sprintf
                       "PartitionSelector %d has %d keys for %d partitioning \
                        level(s) of %s"
                       part_scan_id (List.length keys)
                       (Partition.nlevels part) tbl.Table.name)))
    | Plan.Dynamic_scan { part_scan_id; root_oid; _ } ->
        scan_roots := (part_scan_id, root_oid, path) :: !scan_roots
    | _ -> ());
    List.iteri (fun i c -> pre (seg i c :: path) c) (Plan.children p)
  in
  pre [ Root plan ] plan;
  Hashtbl.iter
    (fun id n ->
      if n > 1 then
        emit "structure/duplicate-selector" [ Root plan ]
          (Printf.sprintf "part_scan_id %d has %d PartitionSelectors" id n))
    sel_count;
  List.iter
    (fun (id, root_oid, path) ->
      match Hashtbl.find_opt sel_root id with
      | Some r when r <> root_oid ->
          emit "structure/root-oid-mismatch" path
            (Printf.sprintf
               "DynamicScan %d scans root OID %d but its PartitionSelector \
                targets %d"
               id root_oid r)
      | _ -> ())
    !scan_roots;
  (* --- endpoint walk: pair matching, Motion taint, execution order --- *)
  let rec walk path p : (int * ep) list =
    let own =
      match p with
      | Plan.Partition_selector { part_scan_id; _ } ->
          [ (part_scan_id, ep_producer) ]
      | Plan.Dynamic_scan { part_scan_id; _ } ->
          [ (part_scan_id, ep_consumer) ]
      | Plan.Table_scan { guard = Some id; _ } -> [ (id, ep_consumer) ]
      | _ -> []
    in
    let kid_tables =
      List.mapi (fun i c -> walk (seg i c :: path) c) (Plan.children p)
    in
    (* Execution-order checks: children run left to right (Sequence by
       definition; joins by the paper's build-first convention), so a
       consumer in an earlier child than its producer never receives
       OIDs. *)
    (match p with
    | Plan.Sequence _ | Plan.Hash_join _ | Plan.Nl_join _ ->
        ignore
          (List.fold_left
             (fun seen tbl ->
               List.iter
                 (fun (id, e) ->
                   if e.prod > 0 && List.mem id seen then
                     emit "structure/consumer-before-producer" path
                       (Printf.sprintf
                          "DynamicScan %d executes before its \
                           PartitionSelector"
                          id))
                 tbl;
               List.filter_map
                 (fun (id, e) -> if e.cons > 0 then Some id else None)
                 tbl
               @ seen)
             [] kid_tables)
    | _ -> ());
    let merged = List.fold_left merge_tables own kid_tables in
    let resolved, leftover =
      List.partition (fun (_, e) -> e.prod > 0 && e.cons > 0) merged
    in
    List.iter
      (fun (id, e) ->
        if e.tp || e.tc then
          emit "structure/motion-between-pair" path
            (Printf.sprintf
               "a Motion separates PartitionSelector and DynamicScan %d" id))
      resolved;
    match p with
    | Plan.Motion _ ->
        List.map
          (fun (id, e) ->
            (id, { e with tp = e.tp || e.prod > 0; tc = e.tc || e.cons > 0 }))
          leftover
    | _ -> leftover
  in
  let leftover = walk [ Root plan ] plan in
  List.iter
    (fun (id, e) ->
      if e.prod > 0 then
        emit "structure/unmatched-selector" [ Root plan ]
          (Printf.sprintf "PartitionSelector %d has no DynamicScan" id);
      if e.cons > 0 then
        emit "structure/unmatched-scan" [ Root plan ]
          (Printf.sprintf "DynamicScan %d has no PartitionSelector" id))
    leftover;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass 2: schema / typecheck                                          *)
(* ------------------------------------------------------------------ *)

(* The executor's tuple layout, enriched with per-column datatypes: one
   entry per visible relation instance, [None] for computed columns of
   unknown type.  An empty column array poisons the entry (unknown table):
   lookups into it are silently skipped to avoid cascades. *)
type layout = (int * Value.datatype option array) list

let cls (dt : Value.datatype) =
  match dt with
  | Value.Tint | Value.Tfloat -> `Num
  | Value.Tstring -> `String
  | Value.Tdate -> `Date
  | Value.Tbool -> `Bool

let same_class a b = cls a = cls b
let is_numeric dt = cls dt = `Num

let table_layout_types (tbl : Table.t) : Value.datatype option array =
  Array.map (fun (_, dt) -> Some dt) tbl.Table.columns

let schema_pass ~catalog (plan : Plan.t) : Diag.t list =
  let diags = ref [] in
  let emit ?severity code path msg =
    diags :=
      Diag.make ?severity ~pass:Diag.Schema ~code ~path:(render path) msg
      :: !diags
  in
  (* Resolve + type an expression against a layout.  Types come from the
     layout only (the executor addresses tuples positionally), so a skewed
     offset surfaces as an out-of-range column or a class-incompatible
     comparison. *)
  let rec typ path layout (e : Expr.t) : Value.datatype option =
    match e with
    | Expr.Const v -> Value.datatype_of v
    | Expr.Param _ -> None
    | Expr.Col c -> (
        match List.assoc_opt c.Colref.rel layout with
        | None ->
            emit "schema/unresolved-column" path
              (Printf.sprintf "column %s: relation %d not in scope (scope: %s)"
                 (Colref.to_string c) c.Colref.rel
                 (String.concat ", "
                    (List.map (fun (r, _) -> string_of_int r) layout)));
            None
        | Some cols ->
            if Array.length cols = 0 then None (* poisoned: unknown table *)
            else if c.Colref.index < 0 || c.Colref.index >= Array.length cols
            then begin
              emit "schema/unresolved-column" path
                (Printf.sprintf
                   "column %s: offset %d out of range for relation %d \
                    (width %d)"
                   (Colref.to_string c) c.Colref.index c.Colref.rel
                   (Array.length cols));
              None
            end
            else cols.(c.Colref.index))
    | Expr.Cmp (_, a, b) ->
        (match (typ path layout a, typ path layout b) with
        | Some ta, Some tb when not (same_class ta tb) ->
            emit "schema/cmp-incompatible" path
              (Printf.sprintf "comparison %s mixes %s and %s"
                 (Expr.to_string e)
                 (Value.datatype_to_string ta)
                 (Value.datatype_to_string tb))
        | _ -> ());
        Some Value.Tbool
    | Expr.And es | Expr.Or es ->
        List.iter (fun sub -> pred path layout sub) es;
        Some Value.Tbool
    | Expr.Not sub ->
        pred path layout sub;
        Some Value.Tbool
    | Expr.Arith (_, a, b) -> (
        let ta = typ path layout a and tb = typ path layout b in
        List.iter
          (function
            | Some t when not (is_numeric t) ->
                emit "schema/arith-nonnumeric" path
                  (Printf.sprintf "arithmetic %s over non-numeric %s"
                     (Expr.to_string e)
                     (Value.datatype_to_string t))
            | _ -> ())
          [ ta; tb ];
        match (ta, tb) with
        | Some Value.Tfloat, _ | _, Some Value.Tfloat -> Some Value.Tfloat
        | Some Value.Tint, Some Value.Tint -> Some Value.Tint
        | _ -> None)
    | Expr.In_list (sub, vs) ->
        (match typ path layout sub with
        | Some t ->
            List.iter
              (fun v ->
                match Value.datatype_of v with
                | Some tv when not (same_class t tv) ->
                    emit "schema/cmp-incompatible" path
                      (Printf.sprintf "IN list mixes %s and %s"
                         (Value.datatype_to_string t)
                         (Value.datatype_to_string tv))
                | _ -> ())
              vs
        | None -> ());
        Some Value.Tbool
    | Expr.Is_null sub ->
        ignore (typ path layout sub);
        Some Value.Tbool
    | Expr.Func ("to_float", args) ->
        List.iter (fun a -> ignore (typ path layout a)) args;
        Some Value.Tfloat
    | Expr.Func (_, args) ->
        List.iter (fun a -> ignore (typ path layout a)) args;
        None
  (* A filter predicate: additionally require a boolean result (the
     executor's [eval_pred] raises on non-boolean values). *)
  and pred path layout e =
    match typ path layout e with
    | Some t when t <> Value.Tbool ->
        emit "schema/pred-not-bool" path
          (Printf.sprintf "predicate %s has type %s, not bool"
             (Expr.to_string e)
             (Value.datatype_to_string t))
    | _ -> ()
  in
  let agg_result_type path layout (f : Plan.agg_fun) : Value.datatype option =
    let arg_numeric what e =
      match typ path layout e with
      | Some t when not (is_numeric t) ->
          emit "schema/agg-nonnumeric" path
            (Printf.sprintf "%s over non-numeric %s argument %s" what
               (Value.datatype_to_string t) (Expr.to_string e));
          None
      | t -> t
    in
    match f with
    | Plan.Count_star -> Some Value.Tint
    | Plan.Count e ->
        ignore (typ path layout e);
        Some Value.Tint
    | Plan.Sum e -> arg_numeric "sum" e
    | Plan.Avg e ->
        ignore (arg_numeric "avg" e);
        Some Value.Tfloat
    | Plan.Min e | Plan.Max e -> typ path layout e
  in
  (* Leaf scans of one root share a schema, and an Append expansion shares
     one (physically equal) filter across its children: cache the per-OID
     column types and typecheck each distinct (oid, rel, filter) once, so a
     P-leaf expansion costs O(P) hash probes rather than P full
     typechecks. *)
  let root_of oid =
    match Catalog.root_of_leaf catalog oid with Some r -> r | None -> oid
  in
  let layout_cache : (int, Value.datatype option array option) Hashtbl.t =
    Hashtbl.create 16
  in
  let types_of_root root =
    match Hashtbl.find_opt layout_cache root with
    | Some r -> r
    | None ->
        let r = Option.map table_layout_types (table_opt catalog root) in
        Hashtbl.add layout_cache root r;
        r
  in
  let scan_layout path ~rel root : layout =
    match types_of_root root with
    | None ->
        emit "schema/unknown-oid" path
          (Printf.sprintf "scan of unknown table OID %d" root);
        [ (rel, [||]) ]
    | Some types -> [ (rel, types) ]
  in
  let checked_filters : (int * int, Expr.t list) Hashtbl.t =
    Hashtbl.create 16
  in
  let check_scan_filter path layout ~rel ~root filter =
    match filter with
    | None -> ()
    | Some f ->
        let key = (root, rel) in
        let seen =
          Option.value (Hashtbl.find_opt checked_filters key) ~default:[]
        in
        if not (List.memq f seen) then begin
          pred path layout f;
          Hashtbl.replace checked_filters key (f :: seen)
        end
  in
  let rec infer path (p : Plan.t) : layout =
    match p with
    | Plan.Table_scan { rel; table_oid; filter; guard = _ } ->
        let root = root_of table_oid in
        let layout = scan_layout path ~rel root in
        check_scan_filter path layout ~rel ~root filter;
        layout
    | Plan.Dynamic_scan { rel; root_oid; filter; _ } ->
        let root = root_of root_oid in
        let layout = scan_layout path ~rel root in
        check_scan_filter path layout ~rel ~root filter;
        layout
    | Plan.Partition_selector { keys; predicates; child; _ } ->
        let child_layout =
          match child with
          | None -> []
          | Some c -> infer (seg 0 c :: path) c
        in
        (* Selector predicates range over the (symbolic) partitioning keys
           plus whatever the child — the outer side for streaming DPE —
           produces. *)
        List.iter
          (function
            | None -> ()
            | Some pr ->
                List.iter
                  (fun (c : Colref.t) ->
                    if not (List.exists (Colref.equal c) keys) then
                      match List.assoc_opt c.Colref.rel child_layout with
                      | Some cols
                        when Array.length cols = 0
                             || (c.Colref.index >= 0
                                && c.Colref.index < Array.length cols) ->
                          ()
                      | _ ->
                          emit "schema/selector-unresolved" path
                            (Printf.sprintf
                               "selector predicate column %s is neither a \
                                partitioning key nor produced by the \
                                selector input"
                               (Colref.to_string c)))
                  (Expr.free_cols pr))
          predicates;
        child_layout
    | Plan.Sequence cs ->
        let layouts = List.mapi (fun i c -> infer (seg i c :: path) c) cs in
        (match List.rev layouts with [] -> [] | last :: _ -> last)
    | Plan.Filter { pred = f; child } ->
        let layout = infer (seg 0 child :: path) child in
        pred path layout f;
        layout
    | Plan.Project { exprs; child } ->
        let layout = infer (seg 0 child :: path) child in
        let types =
          Array.of_list (List.map (fun (_, e) -> typ path layout e) exprs)
        in
        [ (-1, types) ]
    | Plan.Hash_join { kind; pred = jp; left; right }
    | Plan.Nl_join { kind; pred = jp; left; right } ->
        let ll = infer (seg 0 left :: path) left in
        let rl = infer (seg 1 right :: path) right in
        pred path (ll @ rl) jp;
        (match kind with
        | Plan.Semi -> rl
        | Plan.Inner | Plan.Left_outer -> ll @ rl)
    | Plan.Agg { group_by; aggs; child; output_rel } ->
        let layout = infer (seg 0 child :: path) child in
        let gtypes = List.map (typ path layout) group_by in
        let atypes =
          List.map (fun (_, f) -> agg_result_type path layout f) aggs
        in
        [ (output_rel, Array.of_list (gtypes @ atypes)) ]
    | Plan.Sort { keys; child } ->
        let layout = infer (seg 0 child :: path) child in
        List.iter (fun k -> ignore (typ path layout k)) keys;
        layout
    | Plan.Limit { child; _ } -> infer (seg 0 child :: path) child
    | Plan.Runtime_filter_build { keys; child; _ }
    | Plan.Runtime_filter { keys; child; _ } ->
        (* pass-through; the filter keys must resolve in the child's
           layout — the builder hashes them, the consumer probes them *)
        let layout = infer (seg 0 child :: path) child in
        List.iter (fun c -> ignore (typ path layout (Expr.Col c))) keys;
        layout
    | Plan.Motion { kind; child } ->
        let layout = infer (seg 0 child :: path) child in
        (match kind with
        | Plan.Redistribute cols ->
            List.iter (fun c -> ignore (typ path layout (Expr.Col c))) cols
        | _ -> ());
        layout
    | Plan.Append cs ->
        let layouts = List.mapi (fun i c -> infer (seg i c :: path) c) cs in
        (match layouts with
        | [] -> []
        | first :: rest ->
            let shape l = List.map (fun (r, cols) -> (r, Array.length cols)) l in
            List.iteri
              (fun i l ->
                if shape l <> shape first then
                  emit "schema/append-mismatch" path
                    (Printf.sprintf
                       "Append child %d has a different output layout than \
                        child 0"
                       (i + 1)))
              rest;
            first)
    | Plan.Update { rel; table_oid; set_exprs; child } ->
        dml path ~rel ~table_oid ~set_exprs:(Some set_exprs) child
    | Plan.Delete { rel; table_oid; child } ->
        dml path ~rel ~table_oid ~set_exprs:None child
    | Plan.Insert { table_oid; rows } ->
        (match table_opt catalog table_oid with
        | None ->
            emit "schema/unknown-oid" path
              (Printf.sprintf "INSERT into unknown table OID %d" table_oid)
        | Some tbl ->
            let ncols = Table.ncols tbl in
            List.iteri
              (fun i row ->
                if List.length row <> ncols then
                  emit "schema/insert-arity" path
                    (Printf.sprintf
                       "INSERT row %d has %d values; %s has %d columns" i
                       (List.length row) tbl.Table.name ncols)
                else
                  List.iteri
                    (fun j e ->
                      (* VALUES expressions are compiled against the empty
                         layout: stray columns are unresolvable. *)
                      match (typ path [] e, snd tbl.Table.columns.(j)) with
                      | Some t, want when not (same_class t want) ->
                          emit "schema/insert-type" path
                            (Printf.sprintf
                               "INSERT row %d column %s expects %s, got %s" i
                               (fst tbl.Table.columns.(j))
                               (Value.datatype_to_string want)
                               (Value.datatype_to_string t))
                      | _ -> ())
                    row)
              rows);
        [ (-1, [| Some Value.Tint |]) ]
  and dml path ~rel ~table_oid ~set_exprs child : layout =
    let layout = infer (seg 0 child :: path) child in
    (match table_opt catalog table_oid with
    | None ->
        emit "schema/unknown-oid" path
          (Printf.sprintf "DML over unknown table OID %d" table_oid)
    | Some tbl -> (
        let ncols = Table.ncols tbl in
        match List.assoc_opt rel layout with
        | None ->
            emit "schema/dml-target-missing" path
              (Printf.sprintf
                 "DML target relation %d (%s) is not in the child output" rel
                 tbl.Table.name)
        | Some cols ->
            if Array.length cols <> 0 && Array.length cols <> ncols then
              emit "schema/dml-width-mismatch" path
                (Printf.sprintf
                   "DML target %s carries %d columns in the child output; \
                    the table has %d"
                   tbl.Table.name (Array.length cols) ncols);
            Option.iter
              (List.iter (fun (idx, e) ->
                   if idx < 0 || idx >= ncols then
                     emit "schema/dml-set-range" path
                       (Printf.sprintf
                          "SET targets column %d of %s (width %d)" idx
                          tbl.Table.name ncols)
                   else
                     match (typ path layout e, snd tbl.Table.columns.(idx)) with
                     | Some t, want when not (same_class t want) ->
                         emit "schema/dml-set-type" path
                           (Printf.sprintf "SET %s = %s assigns %s to %s"
                              (fst tbl.Table.columns.(idx))
                              (Expr.to_string e)
                              (Value.datatype_to_string t)
                              (Value.datatype_to_string want))
                     | _ -> ()))
              set_exprs))
    ;
    [ (-1, [| Some Value.Tint |]) ]
  in
  ignore (infer [ Root plan ] plan);
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass 3: distribution                                                *)
(* ------------------------------------------------------------------ *)

(* Abstract row placement: where an operator's output rows live.  [Dany]
   is distributed-with-unknown-alignment (random tables, projected or
   partially-aggregated streams) — conservative for co-location, but still
   distributed for the gather checks. *)
type dist = Dsingleton | Dreplicated | Dhashed of Colref.t list | Dany

let dist_to_string = function
  | Dsingleton -> "singleton"
  | Dreplicated -> "replicated"
  | Dhashed _ -> "hashed"
  | Dany -> "distributed"

let distributed = function
  | Dhashed _ | Dany -> true
  | Dsingleton | Dreplicated -> false

(* Equi-join (build expr, probe expr) pairs of [pred] — mirrors the
   optimizer's motion-decision analysis. *)
let equi_pairs ~build_rels ~probe_rels p =
  let refs_only rels e =
    Expr.rels e <> [] && List.for_all (fun r -> List.mem r rels) (Expr.rels e)
  in
  List.filter_map
    (function
      | Expr.Cmp (Expr.Eq, a, b)
        when refs_only build_rels a && refs_only probe_rels b ->
          Some (a, b)
      | Expr.Cmp (Expr.Eq, a, b)
        when refs_only probe_rels a && refs_only build_rels b ->
          Some (b, a)
      | _ -> None)
    (Expr.conjuncts p)

let hashed_on_keys d keys =
  match d with
  | Dhashed cols ->
      cols <> []
      && List.length cols <= List.length keys
      && List.for_all
           (fun c ->
             List.exists
               (function Expr.Col k -> Colref.equal k c | _ -> false)
               keys)
           cols
  | _ -> false

let distribution_pass ~catalog (plan : Plan.t) : Diag.t list =
  let diags = ref [] in
  let emit ?severity code path msg =
    diags :=
      Diag.make ?severity ~pass:Diag.Distribution ~code ~path:(render path) msg
      :: !diags
  in
  (* Every leaf of an Append expansion resolves to the same root table:
     cache the scan distribution per (oid, rel) so P leaves cost P hash
     probes, not P catalog walks and colref allocations. *)
  let dist_cache : (int * int, dist) Hashtbl.t = Hashtbl.create 16 in
  let scan_dist ~rel oid =
    let root =
      match Catalog.root_of_leaf catalog oid with Some r -> r | None -> oid
    in
    let key = (root, rel) in
    match Hashtbl.find_opt dist_cache key with
    | Some d -> d
    | None ->
        let d =
          match table_opt catalog root with
          | None -> Dany
          | Some tbl -> (
              match tbl.Table.distribution with
              | Mpp_catalog.Distribution.Hashed idxs ->
                  Dhashed
                    (List.map
                       (fun i ->
                         let name, dtype = tbl.Table.columns.(i) in
                         Colref.make ~rel ~index:i ~name ~dtype)
                       idxs)
              | Mpp_catalog.Distribution.Replicated -> Dreplicated
              | Mpp_catalog.Distribution.Random -> Dany
              | Mpp_catalog.Distribution.Singleton -> Dsingleton)
        in
        Hashtbl.add dist_cache key d;
        d
  in
  (* [agg_above]: does an ancestor Agg recombine this stream?  A partial
     (per-segment) aggregate over distributed input is only meaningful when
     a final aggregate above it does. *)
  let rec dist_of ~agg_above path (p : Plan.t) : dist =
    match p with
    | Plan.Table_scan { rel; table_oid; _ } -> scan_dist ~rel table_oid
    | Plan.Dynamic_scan { rel; root_oid; _ } -> scan_dist ~rel root_oid
    | Plan.Partition_selector { child = None; _ } -> Dsingleton
    | Plan.Partition_selector { child = Some c; _ } ->
        dist_of ~agg_above (seg 0 c :: path) c
    | Plan.Sequence cs ->
        let ds =
          List.mapi (fun i c -> dist_of ~agg_above (seg i c :: path) c) cs
        in
        (match List.rev ds with [] -> Dsingleton | last :: _ -> last)
    | Plan.Filter { child; _ } -> dist_of ~agg_above (seg 0 child :: path) child
    | Plan.Project { child; _ } -> (
        match dist_of ~agg_above (seg 0 child :: path) child with
        | Dhashed _ -> Dany (* the hash columns may be projected away *)
        | d -> d)
    | Plan.Hash_join { kind = _; pred = jp; left; right }
    | Plan.Nl_join { kind = _; pred = jp; left; right } ->
        let dl = dist_of ~agg_above (seg 0 left :: path) left in
        let dr = dist_of ~agg_above (seg 1 right :: path) right in
        let build_rels = Plan.output_rels left
        and probe_rels = Plan.output_rels right in
        let pairs = equi_pairs ~build_rels ~probe_rels jp in
        let build_keys = List.map fst pairs
        and probe_keys = List.map snd pairs in
        let colocated =
          dl = Dreplicated || dr = Dreplicated
          || (dl = Dsingleton && dr = Dsingleton)
          || (pairs <> []
             && hashed_on_keys dl build_keys
             && hashed_on_keys dr probe_keys)
        in
        if not colocated then
          emit "distribution/join-not-colocated" path
            (Printf.sprintf
               "join inputs are %s (build) and %s (probe): neither \
                co-located on the join keys, broadcast, nor gathered"
               (dist_to_string dl) (dist_to_string dr));
        if dr = Dreplicated && dl <> Dreplicated then dl else dr
    | Plan.Agg { child; _ } ->
        let d = dist_of ~agg_above:true (seg 0 child :: path) child in
        if distributed d && not agg_above then
          emit "distribution/agg-distributed" path
            (Printf.sprintf
               "aggregate over %s input with no combining aggregate above: \
                per-segment partial states are never merged"
               (dist_to_string d));
        if d = Dsingleton then Dsingleton else Dany
    | Plan.Sort { child; _ } ->
        let d = dist_of ~agg_above (seg 0 child :: path) child in
        if distributed d then
          emit "distribution/sort-distributed" path
            "Sort over distributed input: per-segment order is not a total \
             order";
        d
    | Plan.Limit { child; _ } ->
        let d = dist_of ~agg_above (seg 0 child :: path) child in
        if distributed d then
          emit "distribution/limit-distributed" path
            "Limit over distributed input truncates per segment";
        d
    | Plan.Motion { kind; child } ->
        (match child with
        | Plan.Motion _ ->
            emit "distribution/motion-over-motion" path
              "Motion directly above another Motion: the inner \
               redistribution is wasted"
        | _ -> ());
        let d = dist_of ~agg_above (seg 0 child :: path) child in
        (match kind with
        | Plan.Gather -> Dsingleton
        | Plan.Gather_one ->
            if d <> Dreplicated && d <> Dsingleton then
              emit "distribution/gather-one-nonreplicated" path
                (Printf.sprintf
                   "Gather-one over %s input reads only one segment's slice"
                   (dist_to_string d));
            Dsingleton
        | Plan.Broadcast -> Dreplicated
        | Plan.Redistribute cols -> Dhashed cols)
    | Plan.Append cs -> (
        let ds =
          List.mapi (fun i c -> dist_of ~agg_above (seg i c :: path) c) cs
        in
        match ds with
        | [] -> Dsingleton
        | first :: rest ->
            if List.for_all (fun d -> d = first) rest then first else Dany)
    | Plan.Update { child; _ } | Plan.Delete { child; _ } ->
        ignore (dist_of ~agg_above (seg 0 child :: path) child);
        Dsingleton
    | Plan.Insert _ -> Dsingleton
    | Plan.Runtime_filter_build { child; _ } ->
        (* row pass-through: publishes per-segment filter state only *)
        dist_of ~agg_above (seg 0 child :: path) child
    | Plan.Runtime_filter { child; _ } ->
        (* drops rows per segment; placement is unchanged *)
        dist_of ~agg_above (seg 0 child :: path) child
  in
  let root = dist_of ~agg_above:false [ Root plan ] plan in
  if distributed root then
    emit "distribution/root-not-gathered" [ Root plan ]
      (Printf.sprintf
         "plan root emits %s rows: the master only sees one segment's slice"
         (dist_to_string root));
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass 4: partition accounting                                        *)
(* ------------------------------------------------------------------ *)

let selector_map (plan : Plan.t) :
    (int, int * Colref.t list * Expr.t option list) Hashtbl.t =
  let sels = Hashtbl.create 8 in
  ignore
    (Plan.fold
       (fun () p ->
         match p with
         | Plan.Partition_selector
             { part_scan_id; root_oid; keys; predicates; _ } ->
             if not (Hashtbl.mem sels part_scan_id) then
               Hashtbl.add sels part_scan_id (root_oid, keys, predicates)
         | _ -> ())
       () plan);
  sels

let expected_nparts ~catalog ~keys ~predicates root_oid : int option =
  match table_opt catalog root_oid with
  | None -> None
  | Some tbl -> (
      match tbl.Table.partitioning with
      | None -> None
      | Some part ->
          if
            List.length keys <> List.length predicates
            || List.length keys <> Partition.nlevels part
          then None
          else
            let restr =
              Array.of_list
                (List.map2
                   (fun k po ->
                     match po with
                     | None -> None
                     | Some pr -> Expr.restriction k pr)
                   keys predicates)
            in
            Some
              (Partition.Index.count_selected
                 (Partition.Index.of_partitioning part)
                 restr))

let total_nparts ~catalog root_oid =
  match table_opt catalog root_oid with
  | None -> None
  | Some tbl -> Option.map Partition.nparts tbl.Table.partitioning

let accounting_pass ~catalog (plan : Plan.t) : Diag.t list =
  let diags = ref [] in
  let emit ?severity code path msg =
    diags :=
      Diag.make ?severity ~pass:Diag.Accounting ~code ~path:(render path) msg
      :: !diags
  in
  let sels = selector_map plan in
  let rec walk path (p : Plan.t) =
    (match p with
    | Plan.Dynamic_scan { part_scan_id; root_oid; ds_nparts; _ }
      when ds_nparts >= 0 -> (
        match total_nparts ~catalog root_oid with
        | None ->
            emit "accounting/not-partitioned" path
              (Printf.sprintf
                 "DynamicScan %d declares %d partitions over a table that \
                  is not partitioned"
                 part_scan_id ds_nparts)
        | Some _ -> (
            match Hashtbl.find_opt sels part_scan_id with
            | None -> () (* the structure pass reports the missing selector *)
            | Some (sel_root, keys, predicates) -> (
                match
                  expected_nparts ~catalog ~keys ~predicates sel_root
                with
                | None -> ()
                | Some expect ->
                    if ds_nparts <> expect then
                      emit "accounting/nparts-mismatch" path
                        (Printf.sprintf
                           "DynamicScan %d declares %d partition(s); static \
                            selection over its selector's predicates yields \
                            %d"
                           part_scan_id ds_nparts expect))))
    | Plan.Table_scan { table_oid; guard = Some id; _ } -> (
        match Hashtbl.find_opt sels id with
        | None -> ()
        | Some (sel_root, _, _) ->
            let root =
              match Catalog.root_of_leaf catalog table_oid with
              | Some r -> r
              | None -> table_oid
            in
            if root <> sel_root then
              emit "accounting/guard-foreign-leaf" path
                (Printf.sprintf
                   "guarded scan of OID %d (root %d) consumes channel %d of \
                    a selector over root %d"
                   table_oid root id sel_root))
    | Plan.Append cs -> check_append path cs
    | _ -> ());
    List.iteri (fun i c -> walk (seg i c :: path) c) (Plan.children p)
  (* Static-exclusion coverage: an Append expansion of one partitioned
     table must still contain every leaf that survives the per-level
     restrictions of its own (common) filter — otherwise a qualifying
     partition was dropped at plan time. *)
  and check_append path cs =
    let scan_info = function
      | Plan.Table_scan { rel; table_oid; filter; _ } ->
          Some (rel, table_oid, filter)
      | _ -> None
    in
    match List.map scan_info cs with
    | [] -> ()
    | infos when List.for_all Option.is_some infos -> (
        let infos = List.map Option.get infos in
        let rel0, oid0, filter0 = List.hd infos in
        let same_shape =
          List.for_all
            (fun (r, _, f) ->
              r = rel0
              &&
              match (f, filter0) with
              | None, None -> true
              | Some a, Some b -> a == b || Expr.equal a b
              | _ -> false)
            infos
        in
        let root0 = Catalog.root_of_leaf catalog oid0 in
        match (same_shape, root0) with
        | true, Some root
          when List.for_all
                 (fun (_, oid, _) ->
                   Catalog.root_of_leaf catalog oid = Some root)
                 infos -> (
            match table_opt catalog root with
            | Some ({ Table.partitioning = Some part; _ } as tbl) ->
                let scanned = Hashtbl.create (List.length infos) in
                List.iter
                  (fun (_, oid, _) -> Hashtbl.replace scanned oid ())
                  infos;
                (* Every scanned OID is a leaf of [root] (checked above),
                   so an Append carrying all P distinct leaves covers any
                   surviving set — skip the selection recomputation on
                   this common full-expansion shape. *)
                if Hashtbl.length scanned < Partition.nparts part then begin
                  let keys = Table.part_key_colrefs tbl ~rel:rel0 in
                  let restr =
                    Array.of_list
                      (List.map
                         (fun k ->
                           match filter0 with
                           | None -> None
                           | Some f -> Expr.restriction k f)
                         keys)
                  in
                  let surviving =
                    Partition.Index.select_oids
                      (Partition.Index.of_partitioning part)
                      restr
                  in
                  let missing =
                    List.filter
                      (fun oid -> not (Hashtbl.mem scanned oid))
                      surviving
                  in
                  if missing <> [] then
                    emit "accounting/append-undercoverage" path
                      (Printf.sprintf
                         "Append over %s drops %d statically-surviving \
                          leaf(s) (e.g. OID %d)"
                         tbl.Table.name (List.length missing)
                         (List.hd missing))
                end
            | _ -> ())
        | _ -> ())
    | _ -> ()
  in
  walk [ Root plan ] plan;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass 5: runtime-filter placement                                    *)
(* ------------------------------------------------------------------ *)

(* Legality of runtime join filters (builder = [Runtime_filter_build],
   consumer = [Runtime_filter], paired by [rf_id]):

   - each rf_id has exactly one builder, and builder/consumer sit on
     opposite sides of the same join: builder in the build (left) subtree,
     consumer(s) in the probe (right) subtree, so the filter is published
     before any consumer resolves the merge;
   - key arity agrees between builder and consumers (the Bloom probe is
     positional);
   - the filter never crosses a Gather above its join: past a Gather the
     stream is a singleton and the per-segment filter channel no longer
     corresponds to the rows' placement.  Crossing a Redistribute or
     Broadcast is the whole point and is fine — the filter crosses through
     the channel, not the data stream.

   Key resolution against the child layout is the schema pass's job. *)

(* Unmatched builder/consumer counts for one rf_id, with the §3.1-style
   taint recording whether any crossed a Gather on the way up. *)
type fep = { fb : int; fc : int; gb : bool; gc : bool }

let fep_builder = { fb = 1; fc = 0; gb = false; gc = false }
let fep_consumer = { fb = 0; fc = 1; gb = false; gc = false }

let fep_merge a b =
  { fb = a.fb + b.fb; fc = a.fc + b.fc; gb = a.gb || b.gb; gc = a.gc || b.gc }

let merge_ftables acc tbl =
  List.fold_left
    (fun acc (id, e) ->
      match List.assoc_opt id acc with
      | None -> (id, e) :: acc
      | Some e0 -> (id, fep_merge e0 e) :: List.remove_assoc id acc)
    acc tbl

let filters_pass ~catalog:_ (plan : Plan.t) : Diag.t list =
  let diags = ref [] in
  let emit ?severity code path msg =
    diags :=
      Diag.make ?severity ~pass:Diag.Filters ~code ~path:(render path) msg
      :: !diags
  in
  (* --- per-node checks: builder uniqueness, arity, at_motion placement --- *)
  let builder_keys : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let builder_count : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let consumers : (int * int * pseg list) list ref = ref [] in
  let rec pre ~under_send path p =
    (match p with
    | Plan.Runtime_filter_build { rf_id; keys; rows_est; _ } ->
        Hashtbl.replace builder_count rf_id
          (1 + Option.value (Hashtbl.find_opt builder_count rf_id) ~default:0);
        if not (Hashtbl.mem builder_keys rf_id) then
          Hashtbl.add builder_keys rf_id (List.length keys);
        if keys = [] then
          emit "filters/no-keys" path
            (Printf.sprintf "RuntimeFilterBuild %d has no key columns" rf_id);
        if rows_est < 0 then
          emit "filters/bad-estimate" path
            (Printf.sprintf
               "RuntimeFilterBuild %d has negative cardinality estimate %d"
               rf_id rows_est)
    | Plan.Runtime_filter { rf_id; keys; at_motion; _ } ->
        consumers := (rf_id, List.length keys, path) :: !consumers;
        if at_motion && not under_send then
          emit "filters/at-motion-misplaced" path
            (Printf.sprintf
               "RuntimeFilter %d is marked pre-Motion but no Redistribute or \
                Broadcast sits directly above it"
               rf_id)
    | _ -> ());
    let send =
      match p with
      | Plan.Motion { kind = Plan.Redistribute _ | Plan.Broadcast; _ } -> true
      (* a stack of consumers under one Motion: every filter in the chain
         still runs on the sending side, so pre-Motion marking stays valid
         through other Runtime_filters *)
      | Plan.Runtime_filter _ -> under_send
      | _ -> false
    in
    List.iteri
      (fun i c -> pre ~under_send:send (seg i c :: path) c)
      (Plan.children p)
  in
  pre ~under_send:false [ Root plan ] plan;
  Hashtbl.iter
    (fun id n ->
      if n > 1 then
        emit "filters/duplicate-builder" [ Root plan ]
          (Printf.sprintf "rf_id %d has %d RuntimeFilterBuild nodes" id n))
    builder_count;
  List.iter
    (fun (id, nkeys, path) ->
      match Hashtbl.find_opt builder_keys id with
      | Some n when n <> nkeys ->
          emit "filters/key-arity" path
            (Printf.sprintf
               "RuntimeFilter %d probes %d key(s); its builder hashes %d" id
               nkeys n)
      | _ -> ())
    !consumers;
  (* --- endpoint walk: build-side/probe-side pairing, Gather taint --- *)
  let rec walk path p : (int * fep) list =
    let own =
      match p with
      | Plan.Runtime_filter_build { rf_id; _ } -> [ (rf_id, fep_builder) ]
      | Plan.Runtime_filter { rf_id; _ } -> [ (rf_id, fep_consumer) ]
      | _ -> []
    in
    let kid_tables =
      List.mapi (fun i c -> walk (seg i c :: path) c) (Plan.children p)
    in
    match p with
    | Plan.Hash_join _ | Plan.Nl_join _ ->
        let left, right =
          match kid_tables with
          | [ l; r ] -> (l, r)
          | _ -> ([], []) (* malformed; the structure pass reports it *)
        in
        (* consumers in the build subtree execute before the builder
           publishes — the merge resolves to nothing *)
        List.iter
          (fun (id, e) ->
            if e.fc > 0 && List.exists (fun (i, e') -> i = id && e'.fb > 0) right
            then
              emit "filters/consumer-on-build-side" path
                (Printf.sprintf
                   "RuntimeFilter %d sits on the build side of the join \
                    whose probe side holds its builder: it executes before \
                    the filter exists"
                   id))
          left;
        (* the legal pairing: builder left (build), consumer right (probe) *)
        let merged = merge_ftables (merge_ftables own left) right in
        List.filter_map
          (fun (id, e) ->
            let lb = List.exists (fun (i, e') -> i = id && e'.fb > 0) left in
            let rc = List.exists (fun (i, e') -> i = id && e'.fc > 0) right in
            if lb && rc then begin
              if e.gb || e.gc then
                emit "filters/crosses-gather" path
                  (Printf.sprintf
                     "runtime filter %d crosses a Gather between its \
                      builder and this join"
                     id);
              (* resolved here; drop the endpoint record *)
              None
            end
            else Some (id, e))
          merged
    | Plan.Motion { kind = Plan.Gather | Plan.Gather_one; _ } ->
        List.map
          (fun (id, e) ->
            (id, { e with gb = e.gb || e.fb > 0; gc = e.gc || e.fc > 0 }))
          (List.fold_left merge_ftables own kid_tables)
    | _ -> List.fold_left merge_ftables own kid_tables
  in
  let leftover = walk [ Root plan ] plan in
  List.iter
    (fun (id, e) ->
      if e.fb > 0 && e.fc > 0 then
        emit "filters/not-across-join" [ Root plan ]
          (Printf.sprintf
             "runtime filter %d has builder and consumer on the same side \
              of every join"
             id)
      else if e.fb > 0 then
        emit ~severity:Diag.Warning "filters/unmatched-builder" [ Root plan ]
          (Printf.sprintf "RuntimeFilterBuild %d has no RuntimeFilter" id)
      else if e.fc > 0 then
        emit "filters/unmatched-consumer" [ Root plan ]
          (Printf.sprintf "RuntimeFilter %d has no RuntimeFilterBuild" id))
    leftover;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* ds_nparts stamping (the optimizer-side producer of pass 4's input)  *)
(* ------------------------------------------------------------------ *)

let stamp_nparts ~catalog (plan : Plan.t) : Plan.t =
  let sels = selector_map plan in
  let rec go p =
    match p with
    | Plan.Dynamic_scan s ->
        let nparts =
          match Hashtbl.find_opt sels s.part_scan_id with
          | Some (root, keys, predicates) -> (
              match expected_nparts ~catalog ~keys ~predicates root with
              | Some n -> Some n
              | None -> total_nparts ~catalog s.root_oid)
          | None -> total_nparts ~catalog s.root_oid
        in
        Plan.Dynamic_scan
          { s with ds_nparts = Option.value nparts ~default:(-1) }
    | _ -> Plan.with_children p (List.map go (Plan.children p))
  in
  go plan

(* ------------------------------------------------------------------ *)
(* Pass 6: pruning soundness                                           *)
(* ------------------------------------------------------------------ *)

module Analysis = Mpp_analysis.Analysis

(* Materialize a pseg path from a child-index path (root first).  The
   indices come from {!Analysis.pruning_sites}; an out-of-range index
   cannot happen for a path produced over the same plan, but degrade to
   the prefix rather than raise. *)
let path_of_indices plan idxs =
  let rec go node path = function
    | [] -> path
    | i :: rest -> (
        match List.nth_opt (Plan.children node) i with
        | Some c -> go c (seg i c :: path) rest
        | None -> path)
  in
  go plan [ Root plan ] idxs

let partitioning_opt catalog root_oid =
  match table_opt catalog root_oid with
  | None -> None
  | Some tbl -> tbl.Table.partitioning

(* Re-derive, independently of the optimizer, the partitions each pruning
   site's reachable predicates permit, and check the plan's static pruning
   kept a superset (over-pruning = silently missing rows = Error).  Two
   weaker smells are Warnings: an Append child whose own filter already
   contradicts its leaf's bounds (dead branch the optimizer failed to cut)
   and a filter predicate that contradicts the derived bounds of its
   input (always-empty subtree).  A literal [false] filter is exempt —
   that is the sanctioned statically-empty shape. *)
let pruning_pass ~catalog (plan : Plan.t) : Diag.t list =
  let diags = ref [] in
  let emit ?severity code path msg =
    diags :=
      Diag.make ?severity ~pass:Diag.Pruning ~code ~path:(render path) msg
      :: !diags
  in
  let sels = selector_map plan in
  List.iter
    (fun (s : Analysis.pruning_site) ->
      match partitioning_opt catalog s.Analysis.site_root with
      | None -> ()
      | Some part -> (
          let path = path_of_indices plan s.Analysis.site_path in
          let permitted =
            Partition.select_oids part s.Analysis.site_permitted
          in
          (* The statically selected partitions.  For a DynamicScan this is
             the selector's per-level restriction (a [None] predicate is
             runtime-only — selects everything statically); runtime
             selection can only shrink it further, driven by actual join
             values, which is sound by construction.  Malformed selectors
             are the structure pass's report, not ours. *)
          let selected =
            match s.Analysis.site_kind with
            | Analysis.Site_append present -> Some present
            | Analysis.Site_scan psid -> (
                match Hashtbl.find_opt sels psid with
                | None -> None
                | Some (_, keys, predicates) ->
                    if
                      List.length keys <> List.length predicates
                      || List.length keys <> Partition.nlevels part
                    then None
                    else
                      let restr =
                        Array.of_list
                          (List.map2
                             (fun k po ->
                               match po with
                               | None -> None
                               | Some pr -> Expr.restriction k pr)
                             keys predicates)
                      in
                      Some (Partition.select_oids part restr))
          in
          match selected with
          | None -> ()
          | Some selected ->
              let sel_tbl = Hashtbl.create (2 * List.length selected) in
              List.iter (fun o -> Hashtbl.replace sel_tbl o ()) selected;
              let missing =
                List.filter
                  (fun o -> not (Hashtbl.mem sel_tbl o))
                  permitted
              in
              if missing <> [] then
                emit "pruning/over-pruned" path
                  (Printf.sprintf
                     "%s prunes partition(s) [%s] that its reachable \
                      predicates permit (%d selected, %d permitted)"
                     (match s.Analysis.site_kind with
                     | Analysis.Site_scan id ->
                         Printf.sprintf "DynamicScan %d" id
                     | Analysis.Site_append _ -> "Append expansion")
                     (String.concat "; "
                        (List.map string_of_int missing))
                     (List.length selected) (List.length permitted))))
    (Analysis.pruning_sites ~catalog plan);
  let rec walk ~under_append path (p : Plan.t) =
    (match p with
    | Plan.Filter { pred; child } ->
        if
          (not (Expr.equal pred Expr.false_))
          && Analysis.contradicts (Analysis.derive ~catalog child) pred
        then
          emit ~severity:Diag.Warning "pruning/contradictory-filter" path
            "filter predicate contradicts the derived bounds of its input"
    | Plan.Table_scan { rel; table_oid; filter = Some f; _ }
      when not (Expr.equal f Expr.false_) ->
        if Analysis.contradicts (Analysis.scan_env ~catalog ~rel table_oid) f
        then
          if under_append then
            emit ~severity:Diag.Warning "pruning/dead-append-child" path
              (Printf.sprintf
                 "filter contradicts the partition bounds of leaf %d: the \
                  branch is statically empty"
                 table_oid)
          else
            emit ~severity:Diag.Warning "pruning/contradictory-filter" path
              "scan filter contradicts the table's partition bounds"
    | Plan.Dynamic_scan { rel; root_oid; filter = Some f; _ }
      when not (Expr.equal f Expr.false_) ->
        if Analysis.contradicts (Analysis.scan_env ~catalog ~rel root_oid) f
        then
          emit ~severity:Diag.Warning "pruning/contradictory-filter" path
            "scan filter contradicts the table's partition bounds"
    | _ -> ());
    let under_append = match p with Plan.Append _ -> true | _ -> false in
    List.iteri
      (fun i c -> walk ~under_append (seg i c :: path) c)
      (Plan.children p)
  in
  walk ~under_append:false [ Root plan ] plan;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let check_pass ~catalog (pass : Diag.pass) plan =
  match pass with
  | Diag.Structure -> structure_pass ~catalog plan
  | Diag.Schema -> schema_pass ~catalog plan
  | Diag.Distribution -> distribution_pass ~catalog plan
  | Diag.Accounting -> accounting_pass ~catalog plan
  | Diag.Filters -> filters_pass ~catalog plan
  | Diag.Pruning -> pruning_pass ~catalog plan

let all_passes =
  [
    Diag.Structure; Diag.Schema; Diag.Distribution; Diag.Accounting;
    Diag.Filters; Diag.Pruning;
  ]

let check ~catalog plan =
  let obs = Obs.current () in
  Obs.span obs "verify" (fun () ->
      Obs.incr obs "verify.plans";
      let diags =
        List.concat_map (fun p -> check_pass ~catalog p plan) all_passes
      in
      Obs.add obs "verify.diagnostics" (List.length diags);
      diags)

let ok ~catalog plan = not (Diag.has_errors (check ~catalog plan))

exception Rejected of string * Diag.t list

let assert_valid ~catalog ~what plan =
  match Diag.errors (check ~catalog plan) with
  | [] -> ()
  | errs -> raise (Rejected (what, errs))

let pp_report fmt = function
  | [] -> Format.fprintf fmt "plan verifies clean@."
  | diags ->
      List.iter (fun d -> Format.fprintf fmt "%a@." Diag.pp d) diags;
      let ne = List.length (Diag.errors diags)
      and nw = List.length (Diag.warnings diags) in
      Format.fprintf fmt "%d error(s), %d warning(s)@." ne nw

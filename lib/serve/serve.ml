(** The serving layer: a coordinator front end multiplexing N sessions'
    prepared statements over the plan cache and a pool of executor worker
    domains, behind an admission controller.

    Division of labor (the Citus-style coordinator model):
    - {e prepare} and {e plan resolution} run on the coordinator thread:
      cache probe, and on a miss optimize → verify → insert.  The cache
      and both optimizers are therefore never touched concurrently.
    - {e execution} runs on worker domains.  Each worker owns a private
      {!Mpp_exec.Dpool} — a pool has a single job slot, so two domains
      must never submit to the same pool (see {!Mpp_exec.Exec.create_ctx}'s
      [?pool]).
    - the {e admission controller} bounds in-flight queries ([capacity]),
      schedules strict-priority / per-session round-robin / FIFO, and
      enforces a global estimated-memory budget derived from the plans'
      [est_rows]: a query is only co-admitted while the in-flight memory
      estimate stays under budget; an over-budget query is admitted only
      when nothing else is in flight (it must not starve forever). *)

open Mpp_expr
module Plan = Mpp_plan.Plan
module Est = Mpp_plan.Est
module Catalog = Mpp_catalog.Catalog
module Storage = Mpp_storage.Storage
module Exec = Mpp_exec.Exec
module Dpool = Mpp_exec.Dpool
module Metrics = Mpp_exec.Metrics
module Obs = Mpp_obs.Obs
module Json = Mpp_obs.Json

type optimizer = Orca | Planner

let optimizer_to_string = function Orca -> "orca" | Planner -> "planner"

type config = {
  optimizer : optimizer;
  workers : int;  (** executor worker domains *)
  capacity : int;  (** max queries in flight *)
  mem_budget_bytes : float;  (** global estimated-memory budget *)
  cache_capacity : int;
  exec_domains : int;  (** Dpool size of each worker's private pool *)
}

let default_config =
  {
    optimizer = Orca;
    workers = 2;
    capacity = 4;
    mem_budget_bytes = 256. *. 1024. *. 1024.;
    cache_capacity = 256;
    exec_domains = 1;
  }

(* ------------------------------------------------------------------ *)
(* Memory estimates                                                    *)

let bytes_per_row = 16.0
let default_node_mem = 64. *. 1024.

(** Estimated working set: one charge per pipeline breaker (hash-join
    build side, sort/aggregate input, runtime-filter build), [est_rows] ×
    a nominal row width.  Unknown estimates (the legacy Planner stamps
    none) charge a fixed default so admission accounting still has
    something to enforce. *)
let mem_estimate plan est =
  let total = ref 0.0 in
  let charge idx =
    match Est.find est idx with
    | Some r when r > 0.0 -> total := !total +. (r *. bytes_per_row)
    | _ -> total := !total +. default_node_mem
  in
  let rec go idx node =
    (match node with
    | Plan.Hash_join _ -> charge (idx + 1)  (* build side, pre-order idx+1 *)
    | Plan.Sort _ | Plan.Agg _ -> charge (idx + 1)
    | Plan.Runtime_filter_build { rows_est; _ } ->
        total := !total +. (float_of_int (max rows_est 0) *. 1.25)
    | _ -> ());
    List.fold_left go (idx + 1) (Plan.children node)
  in
  ignore (go 0 plan);
  max !total default_node_mem

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

type prepared = {
  p_name : string;
  p_sql : string;
  p_norm : Normalize.t;
}

type result = {
  rows : Value.t array list;
  metrics : Metrics.t;
  cache_hit : bool;
  opt_seconds : float;  (** plan resolution: ~0 on a cache hit *)
  exec_seconds : float;
  wait_seconds : float;  (** queued behind admission *)
  mem_est_bytes : float;
}

type state =
  | Queued
  | Running
  | Done of result
  | Failed of exn

type ticket = {
  tk_session : int;
  tk_priority : int;
  tk_seq : int;
  tk_plan : Plan.t;
  tk_params : Value.t array;
  tk_mem : float;
  tk_cache_hit : bool;
  tk_opt_seconds : float;
  tk_submitted : float;
  mutable tk_state : state;
}

type t = {
  cfg : config;
  catalog : Catalog.t;
  storage : Storage.t;
  stats : Mpp_stats.Stats_source.t option;
  cache : Plan_cache.t;
  lock : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  mutable queued : ticket list;  (** submission order *)
  mutable rr_last : int array;  (** last session served, per priority *)
  mutable in_flight : int;
  mutable mem_in_flight : float;
  mutable next_seq : int;
  mutable shutdown : bool;
  mutable workers : unit Domain.t list;
  mutable pools : Dpool.t list;  (** the workers' private pools *)
  mutable seen_generation : int;
  (* accounting, for the admission tests and [--stats-json] *)
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable oversize_admissions : int;
  mutable peak_in_flight : int;
  mutable peak_mem_bytes : float;
  mutable peak_queued : int;
}

let n_priorities = 3

(* ------------------------------------------------------------------ *)
(* Admission policy                                                    *)

let fits t tk =
  t.mem_in_flight +. tk.tk_mem <= t.cfg.mem_budget_bytes

(** The next ticket to admit, under the lock: strict priority first; within
    a priority, sessions in round-robin order starting after the last
    session served; within a session, FIFO.  The first candidate in that
    order whose memory estimate fits is taken; when nothing is in flight
    the head candidate is admitted even over budget. *)
let select_next t =
  if t.in_flight >= t.cfg.capacity then None
  else begin
    let candidates = ref [] in
    for prio = n_priorities - 1 downto 0 do
      let at_prio =
        List.filter (fun tk -> tk.tk_priority = prio) t.queued
      in
      if at_prio <> [] then begin
        let sessions =
          List.sort_uniq Int.compare
            (List.map (fun tk -> tk.tk_session) at_prio)
        in
        let last = t.rr_last.(prio) in
        let after, upto =
          List.partition (fun s -> s > last) sessions
        in
        let order = after @ upto in
        let per_session =
          List.map
            (fun s ->
              List.fold_left
                (fun best tk ->
                  if tk.tk_session <> s then best
                  else
                    match best with
                    | Some b when b.tk_seq <= tk.tk_seq -> best
                    | _ -> Some tk)
                None at_prio)
            order
        in
        candidates :=
          List.filter_map (fun x -> x) per_session @ !candidates
      end
    done;
    let candidates = !candidates in
    match List.find_opt (fits t) candidates with
    | Some tk -> Some tk
    | None -> (
        match candidates with
        | tk :: _ when t.in_flight = 0 ->
            t.oversize_admissions <- t.oversize_admissions + 1;
            Obs.incr (Obs.current ()) "serve.admit.oversize";
            Some tk
        | _ -> None)
  end

let admit t tk =
  t.queued <- List.filter (fun x -> x != tk) t.queued;
  t.rr_last.(tk.tk_priority) <- tk.tk_session;
  t.in_flight <- t.in_flight + 1;
  t.mem_in_flight <- t.mem_in_flight +. tk.tk_mem;
  if t.in_flight > t.peak_in_flight then t.peak_in_flight <- t.in_flight;
  if t.mem_in_flight > t.peak_mem_bytes then
    t.peak_mem_bytes <- t.mem_in_flight;
  tk.tk_state <- Running;
  Obs.incr (Obs.current ()) "serve.admit.admitted"

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)

let worker_loop t =
  let pool = Dpool.create t.cfg.exec_domains in
  Mutex.lock t.lock;
  t.pools <- pool :: t.pools;
  Mutex.unlock t.lock;
  let rec loop () =
    Mutex.lock t.lock;
    let rec next () =
      if t.shutdown then None
      else
        match select_next t with
        | Some tk ->
            admit t tk;
            Some tk
        | None ->
            Condition.wait t.work_cv t.lock;
            next ()
    in
    let tk = next () in
    Mutex.unlock t.lock;
    match tk with
    | None -> Dpool.shutdown pool
    | Some tk ->
        let started = Unix.gettimeofday () in
        let outcome =
          try
            let rows, metrics =
              Exec.run ~params:tk.tk_params ~verify:false ~pool
                ~catalog:t.catalog ~storage:t.storage tk.tk_plan
            in
            Done
              {
                rows;
                metrics;
                cache_hit = tk.tk_cache_hit;
                opt_seconds = tk.tk_opt_seconds;
                exec_seconds = Unix.gettimeofday () -. started;
                wait_seconds = started -. tk.tk_submitted;
                mem_est_bytes = tk.tk_mem;
              }
          with e -> Failed e
        in
        Mutex.lock t.lock;
        t.in_flight <- t.in_flight - 1;
        t.mem_in_flight <- t.mem_in_flight -. tk.tk_mem;
        tk.tk_state <- outcome;
        (match outcome with
        | Failed _ -> t.failed <- t.failed + 1
        | _ -> t.completed <- t.completed + 1);
        Obs.incr (Obs.current ()) "serve.admit.completed";
        Condition.broadcast t.done_cv;
        Condition.broadcast t.work_cv;
        Mutex.unlock t.lock;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Server lifecycle                                                    *)

(** Resolve every partitioned table's selection index on the calling
    thread: the build-once cache must be populated before worker domains
    race to read it. *)
let prewarm_indexes t =
  List.iter
    (fun (tbl : Mpp_catalog.Table.t) ->
      match tbl.partitioning with
      | Some p -> ignore (Mpp_catalog.Partition.Index.of_partitioning p)
      | None -> ())
    (Catalog.tables t.catalog);
  t.seen_generation <- Catalog.generation t.catalog

let create ?(config = default_config) ?stats ~catalog ~storage () =
  if config.workers < 1 then invalid_arg "Serve.create: workers < 1";
  if config.capacity < 1 then invalid_arg "Serve.create: capacity < 1";
  let t =
    {
      cfg = config;
      catalog;
      storage;
      stats;
      cache = Plan_cache.create ~capacity:config.cache_capacity ();
      lock = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      queued = [];
      rr_last = Array.make n_priorities (-1);
      in_flight = 0;
      mem_in_flight = 0.0;
      next_seq = 0;
      shutdown = false;
      workers = [];
      pools = [];
      seen_generation = -1;
      submitted = 0;
      completed = 0;
      failed = 0;
      oversize_admissions = 0;
      peak_in_flight = 0;
      peak_mem_bytes = 0.0;
      peak_queued = 0;
    }
  in
  prewarm_indexes t;
  t.workers <-
    List.init config.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let close t =
  Mutex.lock t.lock;
  t.shutdown <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let cache t = t.cache

(** Total parallel jobs submitted across the workers' private pools —
    the Dpool-accounting hook the admission tests compare against a
    serial baseline. *)
let worker_jobs_submitted t =
  Mutex.lock t.lock;
  let pools = t.pools in
  Mutex.unlock t.lock;
  List.fold_left (fun acc p -> acc + Dpool.jobs_submitted p) 0 pools

(* ------------------------------------------------------------------ *)
(* Prepare and plan resolution                                         *)

let prepare t ?(name = "") sql =
  let lg = Mpp_sql.Sql.to_logical t.catalog sql in
  { p_name = name; p_sql = sql; p_norm = Normalize.of_logical ~catalog:t.catalog lg }

let optimize t lg =
  let nsegments = Storage.nsegments t.storage in
  match t.cfg.optimizer with
  | Planner ->
      let config =
        { Mpp_planner.Planner.default_config with nsegments }
      in
      let pl = Mpp_planner.Planner.create ~config ~catalog:t.catalog () in
      (Mpp_planner.Planner.plan pl lg, Est.none)
  | Orca ->
      let config = { Orca.Optimizer.default_config with nsegments } in
      let opt =
        Orca.Optimizer.create ~config ?stats:t.stats ~catalog:t.catalog ()
      in
      let plan = Orca.Optimizer.optimize opt lg in
      let est =
        Est.of_plan ~estimate:(Orca.Optimizer.row_estimator opt lg) plan
      in
      (plan, est)

(** Coordinator-side plan resolution: cache probe, else optimize + verify +
    insert.  Returns (plan, est, hit, seconds). *)
let resolve t prepared params =
  (* DDL since the last resolution: re-resolve partition indexes before
     any worker touches a new table's build-once cache. *)
  if Catalog.generation t.catalog <> t.seen_generation then
    prewarm_indexes t;
  let key =
    Plan_cache.key
      ~fingerprint:prepared.p_norm.Normalize.fingerprint
      ~kind:(optimizer_to_string t.cfg.optimizer)
      ~shape:(Normalize.shape_key prepared.p_norm params)
  in
  let t0 = Unix.gettimeofday () in
  match Plan_cache.find t.cache ~catalog:t.catalog key with
  | Some (plan, est) -> (plan, est, true, Unix.gettimeofday () -. t0)
  | None ->
      let lg = Normalize.specialize prepared.p_norm params in
      let plan, est = optimize t lg in
      Plan_cache.insert t.cache ~catalog:t.catalog key plan est;
      (plan, est, false, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Submission                                                          *)

let submit t ~session ?(priority = 1) prepared binds =
  if priority < 0 || priority >= n_priorities then
    invalid_arg "Serve.submit: priority out of range";
  let params = Normalize.params prepared.p_norm binds in
  let plan, est, hit, opt_seconds = resolve t prepared params in
  let mem = mem_estimate plan est in
  Mutex.lock t.lock;
  let tk =
    {
      tk_session = session;
      tk_priority = priority;
      tk_seq = t.next_seq;
      tk_plan = plan;
      tk_params = params;
      tk_mem = mem;
      tk_cache_hit = hit;
      tk_opt_seconds = opt_seconds;
      tk_submitted = Unix.gettimeofday ();
      tk_state = Queued;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.submitted <- t.submitted + 1;
  t.queued <- t.queued @ [ tk ];
  let q = List.length t.queued in
  if q > t.peak_queued then t.peak_queued <- q;
  Obs.incr (Obs.current ()) "serve.admit.submitted";
  Condition.broadcast t.work_cv;
  Mutex.unlock t.lock;
  tk

let await t tk =
  Mutex.lock t.lock;
  let rec wait () =
    match tk.tk_state with
    | Done r ->
        Mutex.unlock t.lock;
        r
    | Failed e ->
        Mutex.unlock t.lock;
        raise e
    | Queued | Running ->
        Condition.wait t.done_cv t.lock;
        wait ()
  in
  wait ()

(** One-shot convenience: submit and wait. *)
let execute t ~session ?priority prepared binds =
  await t (submit t ~session ?priority prepared binds)

(* ------------------------------------------------------------------ *)
(* Closed-loop session driver                                          *)

(** Drive one closed loop per session: session [i] submits
    [sessions.(i)]'s statements in order, keeping exactly one of its own
    queries in flight at a time (the next is submitted as soon as the
    previous completes — concurrency comes from the sessions, capacity
    from the admission controller).  Returns per-session results in
    submission order. *)
let run_stream t ?(priority = fun _session -> 1) sessions =
  let n = Array.length sessions in
  let results = Array.map (fun _ -> []) sessions in
  let pending = Array.map (fun l -> ref l) sessions in
  let current = Array.make n None in
  let submit_next i =
    match !(pending.(i)) with
    | [] -> ()
    | (prepared, binds) :: rest ->
        pending.(i) <- ref rest;
        current.(i) <-
          Some (submit t ~session:i ~priority:(priority i) prepared binds)
  in
  for i = 0 to n - 1 do
    submit_next i
  done;
  let live () = Array.exists (fun c -> c <> None) current in
  while live () do
    (* harvest every completed session slot, then refill *)
    let ready = ref [] in
    Mutex.lock t.lock;
    let rec wait () =
      Array.iteri
        (fun i c ->
          match c with
          | Some tk -> (
              match tk.tk_state with
              | Done _ | Failed _ -> ready := (i, tk) :: !ready
              | Queued | Running -> ())
          | None -> ())
        current;
      if !ready = [] then begin
        Condition.wait t.done_cv t.lock;
        wait ()
      end
    in
    wait ();
    Mutex.unlock t.lock;
    List.iter
      (fun (i, tk) ->
        (match tk.tk_state with
        | Done r -> results.(i) <- r :: results.(i)
        | Failed e -> raise e
        | Queued | Running -> assert false);
        current.(i) <- None;
        submit_next i)
      (List.sort (fun (a, _) (b, _) -> Int.compare a b) !ready)
  done;
  Array.map List.rev results

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

type admission_stats = {
  submitted : int;
  completed : int;
  failed : int;
  oversize_admissions : int;
  peak_in_flight : int;
  peak_mem_bytes : float;
  peak_queued : int;
  capacity : int;
  mem_budget_bytes : float;
}

let admission_stats (t : t) : admission_stats =
  Mutex.lock t.lock;
  let s =
    {
      submitted = t.submitted;
      completed = t.completed;
      failed = t.failed;
      oversize_admissions = t.oversize_admissions;
      peak_in_flight = t.peak_in_flight;
      peak_mem_bytes = t.peak_mem_bytes;
      peak_queued = t.peak_queued;
      capacity = t.cfg.capacity;
      mem_budget_bytes = t.cfg.mem_budget_bytes;
    }
  in
  Mutex.unlock t.lock;
  s

let admission_stats_to_json t =
  let s = admission_stats t in
  Json.Obj
    [
      ("submitted", Json.Int s.submitted);
      ("completed", Json.Int s.completed);
      ("failed", Json.Int s.failed);
      ("oversize_admissions", Json.Int s.oversize_admissions);
      ("peak_in_flight", Json.Int s.peak_in_flight);
      ("peak_mem_bytes", Json.Float s.peak_mem_bytes);
      ("peak_queued", Json.Int s.peak_queued);
      ("capacity", Json.Int s.capacity);
      ("mem_budget_bytes", Json.Float s.mem_budget_bytes);
    ]

let stats_to_json t =
  Json.Obj
    [
      ("cache", Plan_cache.stats_to_json t.cache);
      ("admission", admission_stats_to_json t);
    ]

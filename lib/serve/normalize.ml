(** Query normalization for the plan cache: lift predicate literals to bind
    parameters, fingerprint the resulting shape, and classify each
    parameter position.

    Normalization runs {e after} binding, on the logical tree — so the
    binder's type coercions (a date-shaped string literal compared against
    a date column has already become a [Value.Date]) are baked into the
    lifted parameter values, and a cache-hit execution binds values of
    exactly the type a fresh bind would have produced.

    Only literals in {e predicate} positions (Select and Join predicates)
    are lifted: those are the positions partition selection and selectivity
    estimation read.  Literals in projections, aggregates, sort keys,
    IN-lists and DML payloads stay in the tree and hence in the
    fingerprint — two queries differing there are different plans.

    The sensitivity rule (the cache's reuse policy):
    - a parameter is {e pruning-relevant} when some conjunct containing it
      reaches a partitioning-key column — directly or through the
      equi-join equivalence classes of {!Mpp_analysis.Analysis.equiv_class}.
      Such parameters stay [Param]s in the cached plan: the executor
      re-runs partition selection with the fresh bindings
      ([Exec.compile_selector] binds parameters before deriving the
      restriction), so reuse is sound for {e any} value, merely not
      re-costed.
    - every other parameter is {e shape-relevant}: its value feeds only
      selectivity and cost, so it is substituted back as a constant before
      optimization and becomes part of the cache key — a different value
      re-optimizes. *)

open Mpp_expr
module Logical = Orca.Logical
module Plan = Mpp_plan.Plan
module Catalog = Mpp_catalog.Catalog
module Table = Mpp_catalog.Table
module Analysis = Mpp_analysis.Analysis

type sensitivity = Pruning | Shape

type t = {
  tree : Logical.t;  (** predicate literals lifted to [Expr.Param] *)
  defaults : Value.t array;
      (** full parameter vector: lifted slots hold the original literals,
          explicit ([$n]) slots hold [Value.Null] until bound *)
  first_lifted : int;
      (** slots [>= first_lifted] were lifted here; lower slots are the
          statement's own [$n] parameters (plus the unused slot 0) *)
  classes : sensitivity array;  (** one per parameter slot *)
  fingerprint : string;  (** deterministic print of [tree] *)
}

(* ------------------------------------------------------------------ *)
(* Expression walks                                                    *)

let rec max_param_expr acc = function
  | Expr.Const _ | Expr.Col _ -> acc
  | Expr.Param i -> max acc i
  | Expr.Cmp (_, a, b) | Expr.Arith (_, a, b) ->
      max_param_expr (max_param_expr acc a) b
  | Expr.And es | Expr.Or es | Expr.Func (_, es) ->
      List.fold_left max_param_expr acc es
  | Expr.Not e | Expr.Is_null e | Expr.In_list (e, _) -> max_param_expr acc e

let rec param_occurs p = function
  | Expr.Const _ | Expr.Col _ -> false
  | Expr.Param i -> i = p
  | Expr.Cmp (_, a, b) | Expr.Arith (_, a, b) ->
      param_occurs p a || param_occurs p b
  | Expr.And es | Expr.Or es | Expr.Func (_, es) ->
      List.exists (param_occurs p) es
  | Expr.Not e | Expr.Is_null e | Expr.In_list (e, _) -> param_occurs p e

(** Every expression embedded in a logical node, for whole-tree folds. *)
let node_exprs = function
  | Logical.Get _ -> []
  | Logical.Select { pred; _ } -> [ pred ]
  | Logical.Join { pred; _ } -> [ pred ]
  | Logical.Aggregate { group_by; aggs; _ } ->
      group_by
      @ List.filter_map
          (fun (_, f) ->
            match f with
            | Plan.Count_star -> None
            | Plan.Count e | Plan.Sum e | Plan.Avg e | Plan.Min e
            | Plan.Max e ->
                Some e)
          aggs
  | Logical.Project { exprs; _ } -> List.map snd exprs
  | Logical.Sort { keys; _ } -> keys
  | Logical.Limit _ -> []
  | Logical.Update { set_cols; _ } -> List.map snd set_cols
  | Logical.Delete _ -> []
  | Logical.Insert { rows; _ } -> List.concat rows

let max_param_tree lg =
  Logical.fold
    (fun acc n -> List.fold_left max_param_expr acc (node_exprs n))
    (-1) lg

(* ------------------------------------------------------------------ *)
(* Lifting                                                             *)

let liftable = function
  | Value.Int _ | Value.Float _ | Value.String _ | Value.Date _ -> true
  | Value.Null | Value.Bool _ -> false

(* IN-list members are [Value.t]s, not sub-expressions — they stay, which
   also matches the binder's literals-only rule for IN. *)
let lift_expr ~next ~acc e =
  let rec go = function
    | Expr.Const v when liftable v ->
        let i = !next in
        incr next;
        acc := v :: !acc;
        Expr.Param i
    | (Expr.Const _ | Expr.Col _ | Expr.Param _) as e -> e
    | Expr.Cmp (op, a, b) -> Expr.Cmp (op, go a, go b)
    | Expr.And es -> Expr.And (List.map go es)
    | Expr.Or es -> Expr.Or (List.map go es)
    | Expr.Not e -> Expr.Not (go e)
    | Expr.Arith (op, a, b) -> Expr.Arith (op, go a, go b)
    | Expr.In_list (e, vs) -> Expr.In_list (go e, vs)
    | Expr.Is_null e -> Expr.Is_null (go e)
    | Expr.Func (f, es) -> Expr.Func (f, List.map go es)
  in
  go e

let lift lg =
  let first = max_param_tree lg + 1 in
  let next = ref first and acc = ref [] in
  let rec go = function
    | (Logical.Get _ | Logical.Insert _) as n -> n
    | Logical.Select { pred; child } ->
        Logical.Select { pred = lift_expr ~next ~acc pred; child = go child }
    | Logical.Join { kind; pred; left; right } ->
        Logical.Join
          {
            kind;
            pred = lift_expr ~next ~acc pred;
            left = go left;
            right = go right;
          }
    | Logical.Aggregate { group_by; aggs; child } ->
        Logical.Aggregate { group_by; aggs; child = go child }
    | Logical.Project { exprs; child } ->
        Logical.Project { exprs; child = go child }
    | Logical.Sort { keys; child } -> Logical.Sort { keys; child = go child }
    | Logical.Limit { rows; child } ->
        Logical.Limit { rows; child = go child }
    | Logical.Update { rel; table_name; set_cols; child } ->
        Logical.Update { rel; table_name; set_cols; child = go child }
    | Logical.Delete { rel; table_name; child } ->
        Logical.Delete { rel; table_name; child = go child }
  in
  let tree = go lg in
  (tree, List.rev !acc, first)

(* ------------------------------------------------------------------ *)
(* Fingerprint                                                         *)

let agg_to_string (name, f) =
  name ^ "="
  ^
  match f with
  | Plan.Count_star -> "count(*)"
  | Plan.Count e -> "count(" ^ Expr.to_string e ^ ")"
  | Plan.Sum e -> "sum(" ^ Expr.to_string e ^ ")"
  | Plan.Avg e -> "avg(" ^ Expr.to_string e ^ ")"
  | Plan.Min e -> "min(" ^ Expr.to_string e ^ ")"
  | Plan.Max e -> "max(" ^ Expr.to_string e ^ ")"

let exprs_to_string es = String.concat "," (List.map Expr.to_string es)

let fingerprint_of tree =
  let buf = Buffer.create 256 in
  let rec go n =
    (match n with
    | Logical.Get { rel; table_name } ->
        Buffer.add_string buf (Printf.sprintf "get(%d,%s)" rel table_name)
    | Logical.Select { pred; _ } ->
        Buffer.add_string buf ("select(" ^ Expr.to_string pred ^ ")")
    | Logical.Join { kind; pred; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "join[%s](%s)"
             (Plan.join_kind_to_string kind)
             (Expr.to_string pred))
    | Logical.Aggregate { group_by; aggs; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "agg(gb=[%s];[%s])"
             (exprs_to_string group_by)
             (String.concat "," (List.map agg_to_string aggs)))
    | Logical.Project { exprs; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "proj(%s)"
             (String.concat ","
                (List.map
                   (fun (n, e) -> n ^ "=" ^ Expr.to_string e)
                   exprs)))
    | Logical.Sort { keys; _ } ->
        Buffer.add_string buf ("sort(" ^ exprs_to_string keys ^ ")")
    | Logical.Limit { rows; _ } ->
        Buffer.add_string buf (Printf.sprintf "limit(%d)" rows)
    | Logical.Update { rel; table_name; set_cols; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "update(%d,%s,[%s])" rel table_name
             (String.concat ","
                (List.map
                   (fun (c, e) -> c ^ "=" ^ Expr.to_string e)
                   set_cols)))
    | Logical.Delete { rel; table_name; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "delete(%d,%s)" rel table_name)
    | Logical.Insert { table_name; rows } ->
        Buffer.add_string buf
          (Printf.sprintf "insert(%s,[%s])" table_name
             (String.concat ";" (List.map exprs_to_string rows))));
    match Logical.children n with
    | [] -> ()
    | cs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i c ->
            if i > 0 then Buffer.add_char buf '|';
            go c)
          cs;
        Buffer.add_char buf '}'
  in
  go tree;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Sensitivity                                                         *)

let classify ~catalog tree ~nparams =
  let preds =
    Logical.fold
      (fun acc n ->
        match n with
        | Logical.Select { pred; _ } | Logical.Join { pred; _ } ->
            pred :: acc
        | _ -> acc)
      [] tree
  in
  let conjs = List.concat_map Expr.conjuncts preds in
  let pkeys =
    List.concat_map
      (fun (rel, name) ->
        match Catalog.find_opt catalog name with
        | Some tbl when tbl.Table.partitioning <> None ->
            Table.part_key_colrefs tbl ~rel
        | _ -> [])
      (Logical.base_tables tree)
  in
  let is_key c = List.exists (Colref.equal c) pkeys in
  let reaches_key c = List.exists is_key (Analysis.equiv_class ~conjs c) in
  Array.init nparams (fun p ->
      let touching = List.filter (param_occurs p) conjs in
      match touching with
      | [] ->
          (* not in any predicate (projection-only or unused slot): the
             value never shapes the plan, reuse is always safe *)
          Pruning
      | _ ->
          let cols = List.concat_map Expr.free_cols touching in
          if List.exists reaches_key cols then Pruning else Shape)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let of_logical ~catalog lg =
  let tree, lifted, first_lifted = lift lg in
  let nparams = first_lifted + List.length lifted in
  let defaults = Array.make (max nparams 0) Value.Null in
  List.iteri (fun k v -> defaults.(first_lifted + k) <- v) lifted;
  let classes = classify ~catalog tree ~nparams in
  { tree; defaults; first_lifted; classes; fingerprint = fingerprint_of tree }

let nparams t = Array.length t.defaults

(** Merge caller bindings over the lifted defaults into the full vector
    the executor (and {!shape_key}) consumes. *)
let params t binds =
  let ps = Array.copy t.defaults in
  List.iter
    (fun (i, v) ->
      if i < 0 || i >= Array.length ps then
        invalid_arg (Printf.sprintf "Normalize.params: no parameter $%d" i);
      ps.(i) <- v)
    binds;
  ps

let value_tag = function
  | Value.Null -> "n"
  | Value.Bool b -> "b" ^ string_of_bool b
  | Value.Int i -> "i" ^ string_of_int i
  | Value.Float f -> "f" ^ string_of_float f
  | Value.String s -> "s" ^ String.escaped s
  | Value.Date _ as v -> "d" ^ Value.to_string v

(** The cache-key component carrying the shape-relevant bindings: distinct
    values here are distinct cache entries (i.e. re-optimizations). *)
let shape_key t values =
  let buf = Buffer.create 32 in
  Array.iteri
    (fun i c ->
      if c = Shape then begin
        Buffer.add_string buf (string_of_int i);
        Buffer.add_char buf '=';
        Buffer.add_string buf
          (if i < Array.length values then value_tag values.(i) else "n");
        Buffer.add_char buf ';'
      end)
    t.classes;
  Buffer.contents buf

(** The tree handed to the optimizer on a cache miss: shape-relevant
    parameters substituted back as constants (so costing sees real
    literals), pruning-relevant ones left as [Param]s (so the cached plan
    replays partition selection under fresh bindings). *)
let specialize t values =
  let lookup i =
    if
      i >= 0
      && i < Array.length t.classes
      && t.classes.(i) = Shape
      && i < Array.length values
    then Some values.(i)
    else None
  in
  let sub = Expr.bind_params lookup in
  let rec go = function
    | (Logical.Get _ | Logical.Insert _) as n -> n
    | Logical.Select { pred; child } ->
        Logical.Select { pred = sub pred; child = go child }
    | Logical.Join { kind; pred; left; right } ->
        Logical.Join { kind; pred = sub pred; left = go left; right = go right }
    | Logical.Aggregate { group_by; aggs; child } ->
        Logical.Aggregate { group_by; aggs; child = go child }
    | Logical.Project { exprs; child } ->
        Logical.Project { exprs; child = go child }
    | Logical.Sort { keys; child } -> Logical.Sort { keys; child = go child }
    | Logical.Limit { rows; child } ->
        Logical.Limit { rows; child = go child }
    | Logical.Update { rel; table_name; set_cols; child } ->
        Logical.Update { rel; table_name; set_cols; child = go child }
    | Logical.Delete { rel; table_name; child } ->
        Logical.Delete { rel; table_name; child = go child }
  in
  go t.tree

(** The normalized plan cache: fingerprint + optimizer + shape-bindings →
    verified physical plan.

    Invariants:
    - every entry was checked by the plan verifier {e once, at insert} —
      the cache-hit path then executes with per-query verification off,
      which is where the "near-zero optimizer time on hits" comes from;
    - every entry records the catalog generation it was optimized under;
      a lookup that finds a stale entry drops it and reports a miss
      (counted as an invalidation), so DDL can never serve a plan built
      against the old catalog;
    - the cache is bounded: inserting into a full cache evicts the
      least-recently-used entry.

    Thread-safety: all operations take the cache mutex.  In the serving
    layer only the coordinator thread touches the cache, but the lock
    keeps the counters exact if front ends probe from elsewhere. *)

module Plan = Mpp_plan.Plan
module Est = Mpp_plan.Est
module Catalog = Mpp_catalog.Catalog
module Verify = Mpp_verify.Verify
module Diag = Mpp_verify.Diag
module Obs = Mpp_obs.Obs
module Json = Mpp_obs.Json

exception Rejected of string
(** The verifier found errors in a plan offered for caching — optimizer
    bug; the plan must not be served. *)

type entry = {
  plan : Plan.t;
  est : Est.t;
  generation : int;
  mutable last_used : int;
}

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable invalidations : int;
  mutable evictions : int;
  mutable rejects : int;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity < 1";
  {
    capacity;
    tbl = Hashtbl.create 64;
    lock = Mutex.create ();
    clock = 0;
    hits = 0;
    misses = 0;
    inserts = 0;
    invalidations = 0;
    evictions = 0;
    rejects = 0;
  }

let key ~fingerprint ~kind ~shape =
  fingerprint ^ "\x00" ^ kind ^ "\x00" ^ shape

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ~catalog k =
  with_lock t (fun () ->
      t.clock <- t.clock + 1;
      match Hashtbl.find_opt t.tbl k with
      | Some e when e.generation = Catalog.generation catalog ->
          e.last_used <- t.clock;
          t.hits <- t.hits + 1;
          Obs.incr (Obs.current ()) "serve.cache.hit";
          Some (e.plan, e.est)
      | Some _ ->
          Hashtbl.remove t.tbl k;
          t.invalidations <- t.invalidations + 1;
          t.misses <- t.misses + 1;
          Obs.incr (Obs.current ()) "serve.cache.invalidated";
          Obs.incr (Obs.current ()) "serve.cache.miss";
          None
      | None ->
          t.misses <- t.misses + 1;
          Obs.incr (Obs.current ()) "serve.cache.miss";
          None)

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, v) when v.last_used <= e.last_used -> ()
      | _ -> victim := Some (k, e))
    t.tbl;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      t.evictions <- t.evictions + 1;
      Obs.incr (Obs.current ()) "serve.cache.evicted"
  | None -> ()

(** Verify-at-insert: the one verifier pass a cached plan ever gets.
    Raises {!Rejected} when the verifier reports errors. *)
let insert t ~catalog k plan est =
  let diags = Verify.check ~catalog plan in
  if Diag.has_errors diags then begin
    with_lock t (fun () -> t.rejects <- t.rejects + 1);
    Obs.incr (Obs.current ()) "serve.cache.rejected";
    let msg = String.concat "; " (List.map Diag.to_string (Diag.errors diags)) in
    raise (Rejected msg)
  end;
  with_lock t (fun () ->
      if Hashtbl.length t.tbl >= t.capacity && not (Hashtbl.mem t.tbl k)
      then evict_lru t;
      t.clock <- t.clock + 1;
      Hashtbl.replace t.tbl k
        {
          plan;
          est;
          generation = Catalog.generation catalog;
          last_used = t.clock;
        };
      t.inserts <- t.inserts + 1;
      Obs.incr (Obs.current ()) "serve.cache.insert")

let size t = with_lock t (fun () -> Hashtbl.length t.tbl)

type stats = {
  hits : int;
  misses : int;
  inserts : int;
  invalidations : int;
  evictions : int;
  rejects : int;
  entries : int;
}

let stats (t : t) : stats =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        inserts = t.inserts;
        invalidations = t.invalidations;
        evictions = t.evictions;
        rejects = t.rejects;
        entries = Hashtbl.length t.tbl;
      })

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let stats_to_json t =
  let s = stats t in
  Json.Obj
    [
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("inserts", Json.Int s.inserts);
      ("invalidations", Json.Int s.invalidations);
      ("evictions", Json.Int s.evictions);
      ("rejects", Json.Int s.rejects);
      ("entries", Json.Int s.entries);
      ("hit_rate", Json.Float (hit_rate s));
    ]

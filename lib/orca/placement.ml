(** PartitionSelector placement — the paper's Algorithms 1–4 (§2.3), with
    the multi-level extension of §2.4.

    Input: a physical operator tree that contains [DynamicScan]s but no
    [PartitionSelector]s yet.  Output: the same tree with every selector
    placed, choosing for each unresolved scan the deepest placement that
    maximizes partition elimination:

    - predicates on the partitioning key found in [Filter] (Select) nodes are
      folded into the spec on the way down (Algorithm 3);
    - a join whose predicate constrains the partitioning key of a scan in its
      {e right} (inner) child pushes the spec into its {e left} (outer) child
      — the child that executes first — yielding join-induced {e dynamic
      partition elimination} (Algorithm 4);
    - everything else forwards specs toward the defining child, or enforces
      them on top when the scan is out of scope (Algorithm 2);
    - when a spec reaches its own [DynamicScan], it becomes a leaf selector
      ordered before the scan by a [Sequence] (Figure 5(a–c)). *)

open Mpp_expr
module Plan = Mpp_plan.Plan

let log_src = Logs.Src.create "orca.placement" ~doc:"PartitionSelector placement"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Obs = Mpp_obs.Obs

(* Result of ComputePartSelectors for one operator. *)
type routed = {
  on_top : Part_spec.t list;  (** enforced as streaming selectors above *)
  child_specs : Part_spec.t list list;  (** pushed to each child, in order *)
  at_scan : Part_spec.t list;  (** reached their own DynamicScan *)
}

let no_routing nchildren =
  { on_top = []; child_specs = List.init nchildren (fun _ -> []); at_scan = [] }

let push_to routed ~index spec =
  {
    routed with
    child_specs =
      List.mapi
        (fun i l -> if i = index then l @ [ spec ] else l)
        routed.child_specs;
  }

(* Are all non-key columns of the (per-level) predicates computable from the
   relations in [rels]?  The key columns themselves belong to the scan being
   selected and are symbolic at selection time. *)
let predicates_evaluable ~keys ~rels preds =
  List.for_all
    (function
      | None -> true
      | Some p ->
          List.for_all
            (fun (c : Colref.t) ->
              List.exists (Colref.equal c) keys || List.mem c.Colref.rel rels)
            (Expr.free_cols p))
    preds

(* The paper's FindPredOnKey, multi-level form: one optional predicate per
   partitioning key. *)
let find_preds_on_keys keys pred = Expr.find_preds_on_keys keys pred

(* Is DynamicScan [id] reachable from [expr] without crossing a Motion?
   A selector resolved at or above [expr] drives the scan through a
   segment-local bitmap, so any Motion on the path breaks the pair (and
   the verifier rejects the plan).  Join trees built by the join-order
   search routinely put a former build side — Motion on top — under a
   later join's inner child, so this is a real routing condition, not a
   formality. *)
let rec motion_free_to_scan (expr : Plan.t) id =
  match expr with
  | Plan.Dynamic_scan { part_scan_id; _ } -> part_scan_id = id
  | Plan.Motion _ -> false
  | _ ->
      List.exists
        (fun c -> Plan.has_part_scan_id c id && motion_free_to_scan c id)
        (Plan.children expr)

(* ComputePartSelectors — dispatch on the operator (Algorithms 2, 3, 4).
   With [eliminate = false] the Filter/Join refinements are disabled and all
   specs take the default route, yielding Φ leaf selectors that scan every
   partition — the "partition selection disabled" configuration of the
   paper's Figure 17. *)
let compute_part_selectors ~eliminate (expr : Plan.t)
    (input : Part_spec.t list) : routed =
  let nchildren = List.length (Plan.children expr) in
  let in_scope spec = Plan.has_part_scan_id expr spec.Part_spec.part_scan_id in
  let defining_child_index spec =
    let rec go i = function
      | [] -> None
      | c :: rest ->
          if Plan.has_part_scan_id c spec.Part_spec.part_scan_id then Some i
          else go (i + 1) rest
    in
    go 0 (Plan.children expr)
  in
  List.fold_left
    (fun acc spec ->
      if not (in_scope spec) then { acc with on_top = acc.on_top @ [ spec ] }
      else
        match expr with
        | Plan.Dynamic_scan { part_scan_id; filter; _ }
          when part_scan_id = spec.Part_spec.part_scan_id ->
            (* The scan's own residual qual is a Select in disguise: harvest
               partition-filtering conjuncts from it too (Algorithm 3). *)
            let spec =
              match filter with
              | Some f when eliminate -> (
                  match find_preds_on_keys spec.Part_spec.keys f with
                  | Some found -> Part_spec.add_predicates spec found
                  | None -> spec)
              | _ -> spec
            in
            { acc with at_scan = acc.at_scan @ [ spec ] }
        | Plan.Filter { pred; _ } when eliminate -> (
            (* Algorithm 3: fold partition-filtering conjuncts into the
               spec before pushing it to the child. *)
            match find_preds_on_keys spec.Part_spec.keys pred with
            | Some found ->
                Obs.incr (Obs.current ()) "placement.filter_folds";
                Log.debug (fun m ->
                    m "Select: folding predicate into spec %a" Part_spec.pp
                      spec);
                push_to acc ~index:0
                  (Part_spec.add_predicates spec found)
            | None -> push_to acc ~index:0 spec)
        | (Plan.Hash_join { pred; left; _ } | Plan.Nl_join { pred; left; _ })
          when eliminate -> (
            (* Algorithm 4. *)
            let defined_in_outer =
              Plan.has_part_scan_id left spec.Part_spec.part_scan_id
            in
            if defined_in_outer then push_to acc ~index:0 spec
            else
              (* the streaming selector would sit above the outer child;
                 it can only drive the scan if no Motion intervenes on the
                 inner side *)
              let reachable =
                match defining_child_index spec with
                | Some i ->
                    motion_free_to_scan
                      (List.nth (Plan.children expr) i)
                      spec.Part_spec.part_scan_id
                | None -> false
              in
              match find_preds_on_keys spec.Part_spec.keys pred with
              | Some found
                when reachable
                     && predicates_evaluable ~keys:spec.Part_spec.keys
                          ~rels:(Plan.output_rels left) found ->
                  (* the join predicate constrains the partitioning key and
                     the outer child can evaluate it: dynamic partition
                     elimination — push the spec to the opposite side *)
                  Obs.incr (Obs.current ()) "placement.dpe_pushes";
                  Log.debug (fun m ->
                      m "Join: dynamic partition elimination for %a"
                        Part_spec.pp spec);
                  push_to acc ~index:0
                    (Part_spec.add_predicates spec found)
              | _ ->
                  (* resolve close to where the DynamicScan is defined *)
                  push_to acc ~index:1 spec)
        | _ -> (
            (* Algorithm 2: default — forward to the defining child. *)
            match defining_child_index spec with
            | Some i -> push_to acc ~index:i spec
            | None -> { acc with on_top = acc.on_top @ [ spec ] }))
    (no_routing nchildren) input

(* EnforcePartSelectors: wrap [expr] in streaming selectors for [on_top]. *)
let enforce_part_selectors on_top expr =
  List.fold_left
    (fun e (spec : Part_spec.t) ->
      Obs.incr (Obs.current ()) "placement.selectors_on_top";
      Plan.partition_selector ~child:e ~part_scan_id:spec.part_scan_id
        ~root_oid:spec.root_oid ~keys:spec.keys ~predicates:spec.predicates ())
    expr on_top

(* A leaf selector ordered before its DynamicScan (Figure 5(a–c)). *)
let enforce_at_scan at_scan scan =
  match at_scan with
  | [] -> scan
  | specs ->
      Plan.Sequence
        (List.map
           (fun (spec : Part_spec.t) ->
             Obs.incr (Obs.current ()) "placement.selectors_at_scan";
             Plan.partition_selector ~part_scan_id:spec.part_scan_id
               ~root_oid:spec.root_oid ~keys:spec.keys
               ~predicates:spec.predicates ())
           specs
        @ [ scan ])

(** Algorithm 1: place all PartitionSelectors described by
    [input_part_selectors] in [expr]. *)
let rec place_part_selectors ?(eliminate = true) (input : Part_spec.t list)
    (expr : Plan.t) : Plan.t =
  let routed = compute_part_selectors ~eliminate expr input in
  let new_children =
    List.map2
      (place_part_selectors ~eliminate)
      routed.child_specs (Plan.children expr)
  in
  let rebuilt = Plan.with_children expr new_children in
  let rebuilt = enforce_at_scan routed.at_scan rebuilt in
  enforce_part_selectors routed.on_top rebuilt

(** Initial specs: one per unresolved DynamicScan in the tree, with no
    predicates yet. *)
let initial_specs ~catalog (plan : Plan.t) : Part_spec.t list =
  let resolved = Plan.selector_ids plan in
  Plan.fold
    (fun acc p ->
      match p with
      | Plan.Dynamic_scan { rel; part_scan_id; root_oid; _ }
        when not (List.mem part_scan_id resolved) ->
          let table = Mpp_catalog.Catalog.find_oid catalog root_oid in
          let keys = Mpp_catalog.Table.part_key_colrefs table ~rel in
          Part_spec.initial ~part_scan_id ~root_oid ~keys :: acc
      | _ -> acc)
    [] plan
  |> List.rev

(** End-to-end placement pass: derive the specs and run Algorithm 1.
    [eliminate:false] places Φ selectors only (no partition elimination). *)
let place ?(eliminate = true) ~catalog (plan : Plan.t) : Plan.t =
  place_part_selectors ~eliminate (initial_specs ~catalog plan) plan

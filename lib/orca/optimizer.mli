(** The Orca-style optimizer pipeline: logical tree → cost-based physical
    skeleton (join orientation values dynamic partition elimination; Motions
    co-locate without ever separating a selector from its scan) → the
    {!Placement} pass of paper §2.3 → a {!Mpp_plan.Plan_valid} check.

    The memo-based property-enforcement machinery of §3.1 lives in {!Memo};
    this pipeline is the production path used by the benchmarks. *)

module Plan = Mpp_plan.Plan

type config = {
  enable_partition_selection : bool;
      (** master switch for the Figure-17 ablation: when off, only Φ
          selectors are placed and every partition is scanned *)
  cost_based_joins : bool;
      (** when off, join orientation is taken as written (left = build) *)
  enable_two_phase_agg : bool;
      (** aggregate locally per segment before moving rows (the MPP norm);
          off = gather everything and aggregate once *)
  enable_partition_wise_join : bool;
      (** ablation of the related-work alternative (paper §5): expand a
          key-to-key join of identically partitioned, co-located tables into
          an Append of per-partition joins — re-coupling plan size to the
          partition count *)
  join_reorder : bool;
      (** search for a left-deep join order over inner-join regions with at
          least [join_reorder_min_rels] relations ({!Joinorder}); smaller
          regions keep the order as written *)
  join_reorder_min_rels : int;
  opt_domains : int;
      (** domains the join-order search fans out over (1 = serial; the
          chosen plan is identical for every value) *)
  simplify : bool;
      (** abstract-interpretation pass over the placed plan
          ({!Mpp_analysis.Analysis.simplify_plan}): drop always-true
          conjuncts, collapse always-false filters to the statically-empty
          shape, and (when partition selection is on) strengthen selectors
          with partition-key restrictions implied across equi-join
          equivalence classes *)
  nsegments : int;
}

val default_config : config

val default_opt_domains : unit -> int
(** The [MPP_OPT_DOMAINS] environment variable; 1 (serial) when
    unset/invalid. *)

type t

val create :
  ?config:config ->
  ?stats:Mpp_stats.Stats_source.t ->
  catalog:Mpp_catalog.Catalog.t ->
  unit ->
  t

exception Invalid_plan of string

val optimize : t -> Logical.t -> Plan.t
(** Optimize into an executable physical plan; raises {!Invalid_plan} if the
    result violates the Motion/selector rules (a bug, not an input error). *)

val estimate : t -> Logical.t -> float
(** Estimated cost of the plan the optimizer would pick. *)

val row_estimator : t -> Logical.t -> Plan.t -> float
(** [row_estimator t lg] is the per-node row estimator over [lg]'s base
    tables: apply it to each node of the finished physical plan (e.g. via
    {!Mpp_plan.Est.of_plan}) to stamp plan-time cardinality estimates.
    Call at plan time, while any injected misestimates are still
    active. *)

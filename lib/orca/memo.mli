(** A compact Cascades-style Memo with the property-enforcement framework of
    paper §3.1.

    Optimization requests pair a distribution requirement with the list of
    {!Part_spec}s the subtree must resolve (partition propagation as a
    physical property).  [PartitionSelector] enforces the partition
    property, [Motion] enforces distribution, and the enforcement-order
    rules keep every selector/scan pair within one process: a Motion may
    only be applied when all pending specs' scans are inside the subtree,
    and a scan whose selector resolves remotely is {e pinned} — no Motion
    may move it.  Reproduces the paper's Figure 13/14 example.

    Scope: [Get] / [Select(Get)] / inner-[Join] trees (the shapes of §3.1);
    {!Optimizer} is the production path for full queries. *)

module Plan = Mpp_plan.Plan

type dist_req =
  | Any
  | Req_hashed of Mpp_expr.Colref.t list
  | Req_replicated
  | Req_singleton

type request = {
  dist : dist_req;
  parts : Part_spec.t list;
  pinned : int list;
      (** part-scan ids whose PartitionSelector is being resolved *above*
          this subtree: the scan below must not cross a Motion *)
}

val request_to_string : request -> string

val best_plan :
  ?stats:Mpp_stats.Stats_source.t ->
  ?nsegments:int ->
  ?domains:int ->
  catalog:Mpp_catalog.Catalog.t ->
  Logical.t ->
  (Plan.t * float) option
(** Cheapest valid plan and its cost for the initial request
    ({Any, one spec per partitioned base table} — the paper's req. #1);
    [None] when no plan satisfies it.  [domains] (default 1) explores the
    root request's candidates across that many pool domains, each with a
    private memo table merged at the barrier; the returned plan and cost
    are bit-identical to the serial result for every domain count. *)

val plan_space :
  ?stats:Mpp_stats.Stats_source.t ->
  ?nsegments:int ->
  ?limit:int ->
  catalog:Mpp_catalog.Catalog.t ->
  Logical.t ->
  Plan.t list
(** Up to [limit] distinct valid alternatives (paper Figure 14). *)

(** A compact Cascades-style Memo with the property-enforcement framework of
    paper §3.1.

    Partition propagation is modelled as a {e physical property} requested
    alongside data distribution: an optimization request is a pair
    [{dist; parts}] where [parts] lists the {!Part_spec}s the subtree must
    resolve.  [PartitionSelector] is the enforcer of the partition property,
    [Motion] the enforcer of distribution, and the enforcement-order rule of
    the paper — "operator-specific logic guarantees enforcers are plugged in
    the right order" — appears as one guard: a Motion enforcer may only be
    applied when every pending spec's DynamicScan lives {e inside} this
    group's subtree (then selector and scan stay in the same process below
    the Motion); a spec for a scan {e elsewhere} must be resolved by a
    PartitionSelector {e above} any Motion, never below one.

    The memo reproduces the paper's Figure 13/14 example exactly: for
    [SELECT * FROM R, S WHERE R.pk = S.a] with R partitioned, four plan
    shapes are enumerated and only the [HashJoin(Selector(Replicate(S)), R)]
    alternative performs partition selection.

    {1 Shape}

    Groups live in an array-backed arena indexed by gid (group lookup is
    O(1) and the group store is immutable once built, so worker domains can
    share it freely).  Memoized results live in a per-exploration {!ctx}:
    requests are interned to dense integer ids through a structural
    hash/equality table — no string building on the memoized-lookup hot
    path — and the best table is keyed by one packed int per (group,
    request) pair.

    {1 Parallel exploration}

    [best_plan ~domains] splits the root request's candidate list into one
    contiguous chunk per domain (Trummer & Koch's search-space allocation,
    arXiv 1511.01768, applied at the top of the memo lattice), evaluates
    each chunk in a private {!ctx}, and merges the per-domain best tables
    at the barrier.  This is sound because the request lattice is a DAG:
    join children go to strictly smaller groups, a selector child drops one
    spec, and a Motion child requests [Any] (from which no non-[Any]
    same-group request is reachable) — so every (group, request) pair has a
    unique order-independent value and merged entries are identical to what
    a serial run computes.  The winner fold and plan extraction then run
    serially with the serial tie-break, keeping the emitted plan
    bit-identical across domain counts.

    Scope: [Get]/[Select]/[Join] trees (the shapes of the paper's §3.1);
    the production path for full queries is {!Optimizer}. *)

open Mpp_expr
module Plan = Mpp_plan.Plan
module Table = Mpp_catalog.Table
module Obs = Mpp_obs.Obs
module Dpool = Mpp_exec.Dpool

(* ------------------------------------------------------------------ *)
(* Requests (physical properties)                                      *)
(* ------------------------------------------------------------------ *)

type dist_req =
  | Any
  | Req_hashed of Colref.t list
  | Req_replicated
  | Req_singleton

type request = {
  dist : dist_req;
  parts : Part_spec.t list;
  pinned : int list;
      (** part-scan ids whose PartitionSelector is being resolved *above*
          this subtree: the scan below must not cross a Motion, so Motion
          enforcers are prohibited while any pinned scan is in scope *)
}

let dist_req_to_string = function
  | Any -> "Any"
  | Req_hashed cols ->
      "Hashed(" ^ String.concat "," (List.map Colref.to_string cols) ^ ")"
  | Req_replicated -> "Replicated"
  | Req_singleton -> "Singleton"

let request_to_string r =
  Printf.sprintf "{%s, <%s>%s}" (dist_req_to_string r.dist)
    (String.concat "; " (List.map Part_spec.to_string r.parts))
    (match r.pinned with
    | [] -> ""
    | ids ->
        ", pinned:" ^ String.concat "," (List.map string_of_int ids))

(* Structural hashing/equality for requests — the intern-table key.  The
   old key was [request_to_string], which allocated and hashed a fresh
   string on every memoized lookup; this compares the fields directly.
   The hash folds over cheap integer features (predicate *presence* rather
   than structure); [equal] is exact, including [Expr.equal] on per-level
   selector predicates. *)
module Req_key = struct
  type t = request

  let dist_equal a b =
    match (a, b) with
    | Any, Any | Req_replicated, Req_replicated | Req_singleton, Req_singleton
      ->
        true
    | Req_hashed xs, Req_hashed ys ->
        List.length xs = List.length ys && List.for_all2 Colref.equal xs ys
    | _ -> false

  let spec_equal (a : Part_spec.t) (b : Part_spec.t) =
    a.part_scan_id = b.part_scan_id
    && a.root_oid = b.root_oid
    && List.length a.keys = List.length b.keys
    && List.for_all2 Colref.equal a.keys b.keys
    && List.length a.predicates = List.length b.predicates
    && List.for_all2
         (fun x y ->
           match (x, y) with
           | None, None -> true
           | Some p, Some q -> Expr.equal p q
           | _ -> false)
         a.predicates b.predicates

  let equal a b =
    dist_equal a.dist b.dist
    && List.length a.parts = List.length b.parts
    && List.for_all2 spec_equal a.parts b.parts
    && a.pinned = b.pinned

  let hash r =
    let mix h x = ((h * 131) + x) land max_int in
    let h =
      match r.dist with
      | Any -> 3
      | Req_replicated -> 5
      | Req_singleton -> 7
      | Req_hashed cols ->
          List.fold_left
            (fun h (c : Colref.t) -> mix h ((c.rel * 97) + c.index))
            11 cols
    in
    let h =
      List.fold_left
        (fun h (s : Part_spec.t) ->
          let p =
            List.fold_left
              (fun a p -> (2 * a) + (match p with None -> 0 | Some _ -> 1))
              0 s.predicates
          in
          mix h ((s.part_scan_id * 193) + s.root_oid + p))
        h r.parts
    in
    List.fold_left (fun h id -> mix h (id + 17)) h r.pinned
end

module Req_tbl = Hashtbl.Make (Req_key)

(* ------------------------------------------------------------------ *)
(* Groups and expressions                                              *)
(* ------------------------------------------------------------------ *)

type lexpr =
  | L_get of { rel : int; table : Table.t; pred : Expr.t option }
  | L_join of { pred : Expr.t; left : int; right : int }

type pexpr =
  | P_scan of { rel : int; table : Table.t; pred : Expr.t option }
  | P_dynamic_scan of {
      rel : int;
      table : Table.t;
      part_scan_id : int;
      pred : Expr.t option;
    }
  | P_hash_join of { pred : Expr.t; left : int; right : int }
      (** left = build side, executed first *)
  | P_selector of Part_spec.t  (** enforcer; child in the same group *)
  | P_motion of Plan.motion_kind  (** enforcer; child in the same group *)

(* Immutable once built: worker domains read groups without coordination. *)
type group = {
  gid : int;
  lexprs : lexpr list;
  rels : int list;  (** range-table indices reachable in this group *)
}

type candidate = {
  cand_pexpr : pexpr;
  cand_children : (int * request) list;
      (** (group, request) per child; enforcers have their child in the same
          group *)
  cand_local_cost : float;
}

type best = { total_cost : float; chosen : candidate }

type t = {
  catalog : Mpp_catalog.Catalog.t;
  stats : Mpp_stats.Stats_source.t option;
  mutable groups : group array;  (** arena: index = gid; grows on insert *)
  mutable ngroups : int;
  nsegments : int;
}

let group t gid = t.groups.(gid)

(* ------------------------------------------------------------------ *)
(* Construction from a logical tree                                    *)
(* ------------------------------------------------------------------ *)

let add_group t lexprs rels =
  let gid = t.ngroups in
  let g = { gid; lexprs; rels } in
  let cap = Array.length t.groups in
  if gid = cap then begin
    let bigger = Array.make (max 8 (2 * cap)) g in
    Array.blit t.groups 0 bigger 0 cap;
    t.groups <- bigger
  end;
  t.groups.(gid) <- g;
  t.ngroups <- gid + 1;
  let obs = Obs.current () in
  Obs.incr obs "memo.groups";
  Obs.add obs "memo.group_exprs" (List.length lexprs);
  gid

let rec insert t (lg : Logical.t) : int =
  match lg with
  | Logical.Get { rel; table_name } ->
      let table = Mpp_catalog.Catalog.find t.catalog table_name in
      add_group t [ L_get { rel; table; pred = None } ] [ rel ]
  | Logical.Select { pred; child = Logical.Get { rel; table_name } } ->
      let table = Mpp_catalog.Catalog.find t.catalog table_name in
      add_group t [ L_get { rel; table; pred = Some pred } ] [ rel ]
  | Logical.Join { kind = Plan.Inner; pred; left; right } ->
      let l = insert t left and r = insert t right in
      let rels = (group t l).rels @ (group t r).rels in
      (* join commutativity: both orders are group expressions, as in the
         paper's Figure 13 (HashJoin[1,2] and HashJoin[2,1]) *)
      add_group t
        [ L_join { pred; left = l; right = r };
          L_join { pred; left = r; right = l } ]
        rels
  | _ ->
      invalid_arg
        "Memo.insert: only Get/Select(Get)/inner-Join trees are supported"

let create ?stats ?(nsegments = 4) ~catalog () =
  { catalog; stats; groups = [||]; ngroups = 0; nsegments }

(* ------------------------------------------------------------------ *)
(* Statistics helpers                                                  *)
(* ------------------------------------------------------------------ *)

let table_rows t (table : Table.t) =
  match t.stats with
  | Some src ->
      float_of_int (Mpp_stats.Stats_source.table_stats src table).rowcount
  | None -> float_of_int (Mpp_stats.Stats.defaults table).rowcount

let rec group_rows t gid =
  let g = group t gid in
  match g.lexprs with
  | L_get { table; pred; _ } :: _ ->
      let rows = table_rows t table in
      (match pred with None -> rows | Some _ -> Float.max 1.0 (rows *. 0.1))
  | L_join { left; right; _ } :: _ ->
      Float.max 1.0 (group_rows t left *. group_rows t right /. 100.0)
  | [] -> 1.0

(* Stats_source caches ANALYZE results per table in a hash table on first
   touch.  Warm it for every base table serially so the parallel region
   below only ever reads the cache. *)
let prewarm_stats t =
  if t.stats <> None then
    for gid = 0 to t.ngroups - 1 do
      List.iter
        (fun le ->
          match le with
          | L_get { table; _ } -> ignore (table_rows t table)
          | L_join _ -> ())
        t.groups.(gid).lexprs
    done

(* ------------------------------------------------------------------ *)
(* Property satisfaction                                               *)
(* ------------------------------------------------------------------ *)

let natural_dist (table : Table.t) ~rel =
  match table.Table.distribution with
  | Mpp_catalog.Distribution.Hashed cols ->
      Req_hashed
        (List.map
           (fun i ->
             let name, dtype = table.Table.columns.(i) in
             Colref.make ~rel ~index:i ~name ~dtype)
           cols)
  | Mpp_catalog.Distribution.Replicated -> Req_replicated
  | Mpp_catalog.Distribution.Random | Mpp_catalog.Distribution.Singleton -> Any

let dist_satisfied ~delivered ~required =
  match (required, delivered) with
  | Any, _ -> true
  | Req_replicated, Req_replicated -> true
  | Req_singleton, Req_singleton -> true
  | Req_hashed want, Req_hashed have ->
      List.length want = List.length have
      && List.for_all2 Colref.equal want have
  | _ -> false

(* A Motion enforcer may only be placed when (a) every pending spec's scan
   is inside this subtree — the selector can then live below the Motion,
   next to its scan — and (b) no scan in scope is pinned to a remote
   selector above.  This is the §3.1 enforcement-order rule. *)
let motion_allowed g req =
  List.for_all
    (fun (s : Part_spec.t) -> List.mem s.Part_spec.part_scan_id g.rels)
    req.parts
  && List.for_all (fun id -> not (List.mem id g.rels)) req.pinned

(* ------------------------------------------------------------------ *)
(* Exploration contexts                                                *)
(* ------------------------------------------------------------------ *)

(* All memoized state for one exploration.  The arena [memo] is shared
   (read-only during optimization); everything here is private to one
   domain, so the parallel driver hands each worker its own [ctx] and
   merges the tables at the barrier. *)
type ctx = {
  memo : t;
  stride : int;
      (** [memo.ngroups] at creation — packs (gid, request id) into one
          int key: [rid * stride + gid].  No groups are created during
          optimization, so the packing is stable. *)
  ids : int Req_tbl.t;  (** request -> dense id (structural interning) *)
  mutable reqs : request array;  (** id -> request, for cross-ctx merging *)
  mutable nreqs : int;
  best : (int, best option) Hashtbl.t;
}

let ctx_create t =
  {
    memo = t;
    stride = max 1 t.ngroups;
    ids = Req_tbl.create 64;
    reqs = [||];
    nreqs = 0;
    best = Hashtbl.create 256;
  }

let intern ctx req =
  match Req_tbl.find_opt ctx.ids req with
  | Some id -> id
  | None ->
      let id = ctx.nreqs in
      Req_tbl.add ctx.ids req id;
      let cap = Array.length ctx.reqs in
      if id = cap then begin
        let bigger = Array.make (max 16 (2 * cap)) req in
        Array.blit ctx.reqs 0 bigger 0 cap;
        ctx.reqs <- bigger
      end;
      ctx.reqs.(id) <- req;
      ctx.nreqs <- id + 1;
      id

let bkey ctx gid rid = (rid * ctx.stride) + gid

(* ------------------------------------------------------------------ *)
(* Optimization                                                        *)
(* ------------------------------------------------------------------ *)

let remove_spec parts spec =
  List.filter (fun s -> not (s == spec)) parts


let rec optimize_req ctx gid (req : request) : best option =
  let key = bkey ctx gid (intern ctx req) in
  match Hashtbl.find_opt ctx.best key with
  | Some b -> b
  | None ->
      (* in-progress marker: a request re-entering itself is unsatisfiable
         along that path *)
      Hashtbl.replace ctx.best key None;
      let t = ctx.memo in
      let g = group t gid in
      let impls = implementation_candidates t g req in
      let enfs = enforcer_candidates t g req in
      let obs = Obs.current () in
      Obs.incr obs "memo.requests";
      Obs.add obs "memo.impl_candidates" (List.length impls);
      Obs.add obs "memo.enforcer_candidates" (List.length enfs);
      let candidates = impls @ enfs in
      let best =
        List.fold_left
          (fun acc cand ->
            match total_cost ctx gid cand with
            | None -> acc
            | Some cost -> (
                match acc with
                | Some b when b.total_cost <= cost -> acc
                | _ -> Some { total_cost = cost; chosen = cand }))
          None candidates
      in
      Hashtbl.replace ctx.best key best;
      best

and total_cost ctx gid cand =
  ignore gid;
  List.fold_left
    (fun acc (cg, creq) ->
      match acc with
      | None -> None
      | Some c -> (
          match optimize_req ctx cg creq with
          | Some b -> Some (c +. b.total_cost)
          | None -> None))
    (Some cand.cand_local_cost) cand.cand_children

(* Implementation alternatives for the group's logical expressions. *)
and implementation_candidates t g req : candidate list =
  List.concat_map
    (fun le ->
      match le with
      | L_get { rel; table; pred } -> (
          match table.Table.partitioning with
          | None ->
              if
                req.parts = []
                && dist_satisfied ~delivered:(natural_dist table ~rel)
                     ~required:req.dist
              then
                [ { cand_pexpr = P_scan { rel; table; pred };
                    cand_children = [];
                    cand_local_cost = table_rows t table; } ]
              else []
          | Some p ->
              if
                req.parts = []
                && dist_satisfied ~delivered:(natural_dist table ~rel)
                     ~required:req.dist
              then
                [ { cand_pexpr =
                      P_dynamic_scan { rel; table; part_scan_id = rel; pred };
                    cand_children = [];
                    cand_local_cost =
                      table_rows t table
                      +. (40.0 *. float_of_int (Mpp_catalog.Partition.nparts p));
                  } ]
              else [])
      | L_join { pred; left; right } ->
          if req.dist <> Any then []
          else join_candidates t g req ~pred ~left ~right)
    g.lexprs

and join_candidates t g req ~pred ~left ~right : candidate list =
  ignore g;
  let gl = group t left and gr = group t right in
  (* Route the pending partition specs (and create new ones for DynamicScans
     of the probe side that the join predicate can constrain). *)
  let route spec (lparts, rparts, rpinned) =
    if List.mem spec.Part_spec.part_scan_id gl.rels then
      (lparts @ [ spec ], rparts, rpinned)
    else if List.mem spec.Part_spec.part_scan_id gr.rels then
      match Expr.find_preds_on_keys spec.Part_spec.keys pred with
      | Some found
        when List.exists Option.is_some found
             && List.for_all
                  (function
                    | None -> true
                    | Some p ->
                        List.for_all
                          (fun (c : Colref.t) ->
                            List.exists (Colref.equal c) spec.Part_spec.keys
                            || List.mem c.Colref.rel gl.rels)
                          (Expr.free_cols p))
                  found ->
          (* dynamic partition elimination: resolve on the build side; the
             probe-side scan is now pinned (it must not cross a Motion) *)
          ( lparts @ [ Part_spec.add_predicates spec found ],
            rparts,
            rpinned @ [ spec.Part_spec.part_scan_id ] )
      | _ -> (lparts, rparts @ [ spec ], rpinned)
    else (lparts, rparts, rpinned)
  in
  let handled =
    List.filter
      (fun (s : Part_spec.t) ->
        List.mem s.Part_spec.part_scan_id gl.rels
        || List.mem s.Part_spec.part_scan_id gr.rels)
      req.parts
  in
  if List.length handled <> List.length req.parts then []
  else begin
    let lparts, rparts, rpinned = List.fold_right route req.parts ([], [], []) in
    let lpinned = List.filter (fun id -> List.mem id gl.rels) req.pinned in
    let rpinned =
      rpinned @ List.filter (fun id -> List.mem id gr.rels) req.pinned
    in
    let lrows = group_rows t left and rrows = group_rows t right in
    let local =
      (lrows *. 1.5) +. (rrows *. 1.0)
    in
    (* distribution alternatives: replicate the build side, or co-locate by
       hashing both sides on the join keys *)
    let bkeys, pkeys =
      List.fold_left
        (fun (bs, ps) c ->
          match c with
          | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b)
            when List.mem a.Colref.rel gl.rels && List.mem b.Colref.rel gr.rels
            ->
              (bs @ [ a ], ps @ [ b ])
          | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b)
            when List.mem b.Colref.rel gl.rels && List.mem a.Colref.rel gr.rels
            ->
              (bs @ [ b ], ps @ [ a ])
          | _ -> (bs, ps))
        ([], []) (Expr.conjuncts pred)
    in
    let replicate_alt =
      {
        cand_pexpr = P_hash_join { pred; left; right };
        cand_children =
          [ (left, { dist = Req_replicated; parts = lparts; pinned = lpinned });
            (right, { dist = Any; parts = rparts; pinned = rpinned }) ];
        cand_local_cost = local;
      }
    in
    let hashed_alt =
      if bkeys = [] then []
      else
        [ {
            cand_pexpr = P_hash_join { pred; left; right };
            cand_children =
              [ (left,
                 { dist = Req_hashed bkeys; parts = lparts; pinned = lpinned });
                (right,
                 { dist = Req_hashed pkeys; parts = rparts; pinned = rpinned })
              ];
            cand_local_cost = local;
          } ]
    in
    replicate_alt :: hashed_alt
  end

(* Enforcer alternatives: PartitionSelector resolves one pending spec;
   Motion delivers a required distribution. *)
and enforcer_candidates t g req : candidate list =
  (* Enforcement-order rule: a selector for a scan *inside* this subtree
     must stay below any Motion (apply Motion first, i.e. only enforce the
     selector here when no distribution is pending); a selector for a
     *remote* scan must go above any Motion (enforce it here regardless of
     the pending distribution — the Motion will be applied below it). *)
  let selector_alts =
    List.filter_map
      (fun (spec : Part_spec.t) ->
        let scan_inside = List.mem spec.Part_spec.part_scan_id g.rels in
        if scan_inside && req.dist <> Any then None
        else
          Some
            {
              cand_pexpr = P_selector spec;
              cand_children =
                [ (g.gid,
                   {
                     req with
                     parts = remove_spec req.parts spec;
                     pinned =
                       (if scan_inside then
                          spec.Part_spec.part_scan_id :: req.pinned
                        else req.pinned);
                   }) ];
              cand_local_cost = 1.0;
            })
      req.parts
  in
  let rows = group_rows t g.gid in
  let motion_alts =
    if not (motion_allowed g req) then []
    else
      match req.dist with
      | Any -> []
      | Req_replicated ->
          [ {
              cand_pexpr = P_motion Plan.Broadcast;
              cand_children =
                [ (g.gid, { req with dist = Any }) ];
              cand_local_cost = rows *. float_of_int t.nsegments *. 2.0;
            } ]
      | Req_hashed cols ->
          [ {
              cand_pexpr = P_motion (Plan.Redistribute cols);
              cand_children = [ (g.gid, { req with dist = Any }) ];
              cand_local_cost = rows *. 2.0;
            } ]
      | Req_singleton ->
          [ {
              cand_pexpr = P_motion Plan.Gather;
              cand_children = [ (g.gid, { req with dist = Any }) ];
              cand_local_cost = rows *. 2.0;
            } ]
  in
  selector_alts @ motion_alts

(* ------------------------------------------------------------------ *)
(* Parallel exploration                                                *)
(* ------------------------------------------------------------------ *)

(* Adopt every (group, request) result a worker domain memoized.  Values
   are order-independent (the request lattice is a DAG — see the module
   header), so when two domains computed the same key the entries are
   identical and first-wins is fine.  The root request is skipped: each
   worker pre-marks it in-progress (mirroring the serial recursion), so
   its entry is the marker, not a result. *)
let merge_ctx ctx dctx ~root ~root_req =
  Hashtbl.iter
    (fun key v ->
      let gid = key mod ctx.stride and rid = key / ctx.stride in
      let r = dctx.reqs.(rid) in
      if not (gid = root && Req_key.equal r root_req) then begin
        let mkey = bkey ctx gid (intern ctx r) in
        if not (Hashtbl.mem ctx.best mkey) then Hashtbl.replace ctx.best mkey v
      end)
    dctx.best

(* Parallel root evaluation: partition the root candidate list into one
   contiguous chunk per domain, evaluate each chunk in a private ctx, merge
   tables at the barrier, then re-run the winner fold serially in candidate
   order (the serial tie-break: first minimal candidate wins). *)
let optimize_root ctx ~pool root (req : request) : best option =
  let t = ctx.memo in
  if Dpool.size pool <= 1 then optimize_req ctx root req
  else begin
    let g = group t root in
    let impls = implementation_candidates t g req in
    let enfs = enforcer_candidates t g req in
    let obs = Obs.current () in
    Obs.incr obs "memo.requests";
    Obs.add obs "memo.impl_candidates" (List.length impls);
    Obs.add obs "memo.enforcer_candidates" (List.length enfs);
    let candidates = Array.of_list (impls @ enfs) in
    let n = Array.length candidates in
    let root_key ctx = bkey ctx root (intern ctx req) in
    if n = 0 then begin
      Hashtbl.replace ctx.best (root_key ctx) None;
      None
    end
    else begin
      let nchunks = min (Dpool.size pool) n in
      let dctxs = Array.init nchunks (fun _ -> ctx_create t) in
      let costs = Array.make n None in
      Obs.add obs "memo.parallel_chunks" nchunks;
      Dpool.parallel_chunks pool ~n (fun ci lo hi ->
          let dctx = dctxs.(ci) in
          Hashtbl.replace dctx.best (root_key dctx) None;
          for i = lo to hi - 1 do
            costs.(i) <- total_cost dctx root candidates.(i)
          done);
      Array.iter (fun dctx -> merge_ctx ctx dctx ~root ~root_req:req) dctxs;
      let best = ref None in
      for i = 0 to n - 1 do
        match costs.(i) with
        | None -> ()
        | Some cost -> (
            match !best with
            | Some b when b.total_cost <= cost -> ()
            | _ -> best := Some { total_cost = cost; chosen = candidates.(i) })
      done;
      Hashtbl.replace ctx.best (root_key ctx) !best;
      !best
    end
  end

(* ------------------------------------------------------------------ *)
(* Plan extraction                                                     *)
(* ------------------------------------------------------------------ *)

let rec extract ctx gid (req : request) : Plan.t option =
  match optimize_req ctx gid req with
  | None -> None
  | Some best -> extract_candidate ctx gid best.chosen

and extract_candidate ctx _gid (cand : candidate) : Plan.t option =
  let children =
    List.map (fun (cg, creq) -> extract ctx cg creq) cand.cand_children
  in
  if List.exists Option.is_none children then None
  else
    let children = List.map Option.get children in
    match (cand.cand_pexpr, children) with
    | P_scan { rel; table; pred }, [] ->
        Some (Plan.table_scan ?filter:pred ~rel table.Table.oid)
    | P_dynamic_scan { rel; table; part_scan_id; pred }, [] ->
        Some (Plan.dynamic_scan ?filter:pred ~rel ~part_scan_id table.Table.oid)
    | P_selector spec, [ child ] ->
        if Plan.has_part_scan_id child spec.Part_spec.part_scan_id then
          (* the scan is below: a leaf selector ordered by a Sequence *)
          Some
            (Plan.Sequence
               [ Plan.partition_selector ~part_scan_id:spec.part_scan_id
                   ~root_oid:spec.root_oid ~keys:spec.keys
                   ~predicates:spec.predicates ();
                 child ])
        else
          (* streaming selector: OIDs flow to a scan elsewhere *)
          Some
            (Plan.partition_selector ~child ~part_scan_id:spec.part_scan_id
               ~root_oid:spec.root_oid ~keys:spec.keys
               ~predicates:spec.predicates ())
    | P_motion kind, [ child ] -> Some (Plan.motion kind child)
    | P_hash_join { pred; _ }, [ l; r ] ->
        Some (Plan.hash_join ~kind:Plan.Inner ~pred l r)
    | _ -> None
  [@@warning "-8"]

(* ------------------------------------------------------------------ *)
(* Exhaustive enumeration (for the Figure-14 plan-space display)        *)
(* ------------------------------------------------------------------ *)

let rec enumerate t gid (req : request) ~limit : Plan.t list =
  if limit <= 0 then []
  else
    let g = group t gid in
    let candidates =
      implementation_candidates t g req @ enforcer_candidates t g req
    in
    List.concat_map
      (fun cand ->
        let rec combine children =
          match children with
          | [] -> [ [] ]
          | (cg, creq) :: rest ->
              let subs =
                if cg = gid && Req_key.equal creq req then []
                else enumerate t cg creq ~limit:(min limit 4)
              in
              List.concat_map
                (fun sub -> List.map (fun tail -> sub :: tail) (combine rest))
                subs
        in
        combine cand.cand_children
        |> List.filter_map (fun children ->
               match (cand.cand_pexpr, children) with
               | P_scan { rel; table; pred }, [] ->
                   Some (Plan.table_scan ?filter:pred ~rel table.Table.oid)
               | P_dynamic_scan { rel; table; part_scan_id; pred }, [] ->
                   Some
                     (Plan.dynamic_scan ?filter:pred ~rel ~part_scan_id
                        table.Table.oid)
               | P_selector spec, [ child ] ->
                   if Plan.has_part_scan_id child spec.Part_spec.part_scan_id
                   then
                     Some
                       (Plan.Sequence
                          [ Plan.partition_selector
                              ~part_scan_id:spec.part_scan_id
                              ~root_oid:spec.root_oid ~keys:spec.keys
                              ~predicates:spec.predicates ();
                            child ])
                   else
                     Some
                       (Plan.partition_selector ~child
                          ~part_scan_id:spec.part_scan_id
                          ~root_oid:spec.root_oid ~keys:spec.keys
                          ~predicates:spec.predicates ())
               | P_motion kind, [ child ] -> Some (Plan.motion kind child)
               | P_hash_join { pred; _ }, [ l; r ] ->
                   Some (Plan.hash_join ~kind:Plan.Inner ~pred l r)
               | _ -> None))
      candidates
    |> List.filteri (fun i _ -> i < limit)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Initial optimization request for the root group: any distribution, and
    one partition-propagation spec per partitioned base table, as in the
    paper's req. #1. *)
let initial_request t ~root_gid : request =
  let g = group t root_gid in
  let find_partitioned rel =
    let rec scan i =
      if i >= t.ngroups then None
      else
        match
          List.find_map
            (fun le ->
              match le with
              | L_get { rel = r; table; _ }
                when r = rel && Table.is_partitioned table ->
                  Some
                    (Part_spec.initial ~part_scan_id:rel
                       ~root_oid:table.Table.oid
                       ~keys:(Table.part_key_colrefs table ~rel))
              | _ -> None)
            t.groups.(i).lexprs
        with
        | Some _ as s -> s
        | None -> scan (i + 1)
    in
    scan 0
  in
  { dist = Any; parts = List.filter_map find_partitioned g.rels; pinned = [] }

(** Optimize [lg] through the memo; returns the best plan and its cost.
    [domains > 1] explores the root candidates across that many pool
    domains; the plan and cost are bit-identical to the serial result. *)
let best_plan ?stats ?(nsegments = 4) ?(domains = 1) ~catalog (lg : Logical.t)
    : (Plan.t * float) option =
  Obs.span (Obs.current ()) "memo.optimize" (fun () ->
      let t = create ?stats ~nsegments ~catalog () in
      let root = insert t lg in
      let req = initial_request t ~root_gid:root in
      let ctx = ctx_create t in
      let best =
        if domains <= 1 then optimize_req ctx root req
        else begin
          prewarm_stats t;
          optimize_root ctx ~pool:(Dpool.get ~domains) root req
        end
      in
      match best with
      | None -> None
      | Some best -> (
          match extract ctx root req with
          | Some plan -> Some (plan, best.total_cost)
          | None -> None))

(** Enumerate up to [limit] alternative plans for [lg] (paper Figure 14). *)
let plan_space ?stats ?(nsegments = 4) ?(limit = 16) ~catalog (lg : Logical.t)
    : Plan.t list =
  let t = create ?stats ~nsegments ~catalog () in
  let root = insert t lg in
  let req = initial_request t ~root_gid:root in
  let seen = Hashtbl.create 16 in
  enumerate t root req ~limit:(limit * 4)
  |> List.filter (fun p ->
         let k = Plan.to_string p in
         if Hashtbl.mem seen k then false
         else begin
           Hashtbl.replace seen k ();
           true
         end)
  |> List.filteri (fun i _ -> i < limit)

(** Parallel left-deep join-order search over relation bitsets.

    The production optimizer takes join order as written (it only flips
    hash-join orientation), which is fine for the 42-query workload's
    handful of joins but hopeless for 10–30-relation star/chain/clique
    graphs.  This module runs a level-synchronous dynamic program over
    connected subsets: level [k] holds the best left-deep prefix for every
    reachable [k]-relation subset, and each level's extensions are
    partitioned across the {!Mpp_exec.Dpool} domains — Trummer & Koch's
    search-space allocation (arXiv 1511.01768): workers own disjoint slices
    of the subset frontier, keep private candidate tables, and merge at a
    per-level barrier.

    Determinism is load-bearing (the serial-vs-parallel equivalence suite
    pins plans bit-identical across domain counts), so every merge is a
    pure minimum under a total order: candidates for the same subset are
    compared by [(cost, predecessor mask, last relation)], which never
    ties — the merged frontier is independent of how states were sliced
    across domains and of hash-table iteration order.  Selectivity
    products are computed in fixed edge-index order so float rounding is
    identical everywhere.

    The frontier is beam-bounded (default 1024 states per level — full DP
    on a 30-clique would need 2^30 subsets); when a level produces no
    connected extension (disconnected join graph) the level is redone
    allowing cross products, so search always reaches [n] relations. *)

module Obs = Mpp_obs.Obs
module Dpool = Mpp_exec.Dpool

type graph = {
  nleaves : int;
  leaf_rows : float array;  (** post-filter row estimate per leaf *)
  edges : (int * float) array;
      (** (leaf bitmask, selectivity) per join conjunct *)
  incident : int list array;  (** leaf -> indices into [edges], ascending *)
}

let make ~leaf_rows ~edges =
  let n = Array.length leaf_rows in
  if n > 60 then invalid_arg "Joinorder.make: more than 60 relations";
  let incident = Array.make n [] in
  Array.iteri
    (fun ei (mask, _) ->
      for j = 0 to n - 1 do
        if mask land (1 lsl j) <> 0 then incident.(j) <- ei :: incident.(j)
      done)
    edges;
  { nleaves = n;
    leaf_rows;
    edges;
    incident = Array.map List.rev incident;
  }

(* One DP state: the best left-deep prefix found for [s_mask].  [s_prev]
   and [s_last] identify the extension that produced it — they double as
   the deterministic tie-break and as the reconstruction chain. *)
type state = {
  s_mask : int;
  s_rows : float;
  s_cost : float;
  s_last : int;  (** leaf joined last *)
  s_prev : int;  (** predecessor mask (0 for singletons) *)
}

(* Total order on candidates for one subset: no two candidates share
   (s_prev, s_last), so this never ties — merges are order-independent. *)
let better a b =
  a.s_cost < b.s_cost
  || (a.s_cost = b.s_cost
     && (a.s_prev < b.s_prev || (a.s_prev = b.s_prev && a.s_last < b.s_last)))

(* Extend [s] by leaf [j] into [out], keeping the per-subset minimum.
   Newly covered edges are exactly the incident edges of [j] whose mask is
   a subset of the extended mask; their selectivities multiply in edge
   index order (fixed — float determinism). *)
let extend g ~cross out s j =
  let nm = s.s_mask lor (1 lsl j) in
  let sel = ref 1.0 and connected = ref false in
  List.iter
    (fun ei ->
      let mask, es = g.edges.(ei) in
      if mask land lnot nm = 0 then begin
        sel := !sel *. es;
        connected := true
      end)
    g.incident.(j);
  if !connected || cross then begin
    let jr = g.leaf_rows.(j) in
    let rows = Float.max 1.0 (s.s_rows *. jr *. !sel) in
    (* C_out-style: pay each leaf's scan once plus every intermediate
       result; the real cost model re-costs the chosen order downstream *)
    let cand =
      {
        s_mask = nm;
        s_rows = rows;
        s_cost = s.s_cost +. jr +. rows;
        s_last = j;
        s_prev = s.s_mask;
      }
    in
    match Hashtbl.find_opt out nm with
    | Some cur when not (better cand cur) -> ()
    | _ -> Hashtbl.replace out nm cand
  end

(* The beam: keep the best [beam] states of a level under the total order
   (cost, mask, prev, last) — again tie-free, so the kept set is the same
   for every domain count. *)
let prune ~beam states =
  if Array.length states <= beam then states
  else begin
    let arr = Array.copy states in
    Array.sort
      (fun a b ->
        let c = Float.compare a.s_cost b.s_cost in
        if c <> 0 then c
        else compare (a.s_mask, a.s_prev, a.s_last) (b.s_mask, b.s_prev, b.s_last))
      arr;
    Array.sub arr 0 beam
  end

(** Best left-deep join order over [g]: leaf indices, first-joined first.
    The result is identical for every pool size. *)
let order ?(pool = Dpool.get ~domains:1) ?(beam = 1024) (g : graph) : int list
    =
  let n = g.nleaves in
  if n = 0 then []
  else if n = 1 then [ 0 ]
  else begin
    let beam = max 1 beam in
    let obs = Obs.current () in
    Obs.incr obs "joinorder.searches";
    let levels = Array.init n (fun _ -> Hashtbl.create 64) in
    for i = 0 to n - 1 do
      Hashtbl.replace levels.(0) (1 lsl i)
        {
          s_mask = 1 lsl i;
          s_rows = g.leaf_rows.(i);
          s_cost = g.leaf_rows.(i);
          s_last = i;
          s_prev = 0;
        }
    done;
    for k = 0 to n - 2 do
      let states =
        Hashtbl.fold (fun _ s acc -> s :: acc) levels.(k) []
        |> List.sort (fun a b -> compare a.s_mask b.s_mask)
        |> Array.of_list
      in
      let states = prune ~beam states in
      Obs.add obs "joinorder.states" (Array.length states);
      let ns = Array.length states in
      let nchunks = min (Dpool.size pool) ns in
      let locals = Array.init nchunks (fun _ -> Hashtbl.create 64) in
      Dpool.parallel_chunks pool ~n:ns (fun ci lo hi ->
          let out = locals.(ci) in
          for si = lo to hi - 1 do
            let s = states.(si) in
            for j = 0 to n - 1 do
              if s.s_mask land (1 lsl j) = 0 then extend g ~cross:false out s j
            done
          done);
      let merged = levels.(k + 1) in
      Array.iter
        (fun local ->
          Hashtbl.iter
            (fun m cand ->
              match Hashtbl.find_opt merged m with
              | Some cur when not (better cand cur) -> ()
              | _ -> Hashtbl.replace merged m cand)
            local)
        locals;
      if Hashtbl.length merged = 0 then
        (* disconnected graph at this level: no connected extension exists
           anywhere, so redo it (serially — rare) allowing cross products *)
        Array.iter
          (fun s ->
            for j = 0 to n - 1 do
              if s.s_mask land (1 lsl j) = 0 then extend g ~cross:true merged s j
            done)
          states
    done;
    let full = (1 lsl n) - 1 in
    let final =
      match Hashtbl.find_opt levels.(n - 1) full with
      | Some s -> s
      | None ->
          (* unreachable: each level extends every surviving state *)
          assert false
    in
    let rec walk acc mask k =
      if k < 0 then acc
      else
        match Hashtbl.find_opt levels.(k) mask with
        | Some s -> walk (s.s_last :: acc) s.s_prev (k - 1)
        | None -> assert false
    in
    walk [] final.s_mask (n - 1)
  end

(** The Orca-style optimizer pipeline.

    [optimize] turns a {!Logical.t} into an executable {!Mpp_plan.Plan.t}:

    1. bottom-up translation to a physical skeleton, choosing hash-join
       orientation by cost.  The cost model values join-induced dynamic
       partition elimination: a candidate whose probe side contains a
       DynamicScan constrained by the join predicate is charged only for the
       estimated fraction of partitions it will scan, so plans that enable
       DPE win whenever the statistics say they should — and lose when
       injected misestimates say otherwise (the paper's Table-3 outliers);
    2. Motion insertion for co-location (broadcast or redistribute the build
       side; the probe side never moves when it contains a DynamicScan, which
       keeps every selector/scan pair within one process — the §3.1
       constraint by construction);
    3. the PartitionSelector placement pass of {!Placement} (paper §2.3);
    4. a {!Mpp_plan.Plan_valid} check.

    The full memo-based property-enforcement machinery of paper §3.1 is in
    {!Memo}; this pipeline is the production path used by the benchmarks. *)

open Mpp_expr
module Plan = Mpp_plan.Plan
module Table = Mpp_catalog.Table
module Distribution = Mpp_catalog.Distribution

let log_src = Logs.Src.create "orca.optimizer" ~doc:"Orca optimizer pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Obs = Mpp_obs.Obs

type dist = Hashed_on of Colref.t list | Replicated_d | Random_d | Singleton_d

type config = {
  enable_partition_selection : bool;
      (** master switch for the Figure-17 ablation: when off, only Φ
          selectors are placed and every partition is scanned *)
  cost_based_joins : bool;
      (** when off, join orientation is taken as written (left = build) *)
  enable_two_phase_agg : bool;
      (** aggregate locally on each segment before moving rows (the MPP
          norm); off = gather everything and aggregate once *)
  enable_partition_wise_join : bool;
      (** ablation of the related-work alternative (paper §5, Herodotou et
          al.): when two tables partitioned identically are equi-joined on
          their partitioning keys, expand into an Append of per-partition
          joins.  Often faster per pair, but re-couples plan size to the
          partition count — exactly the drawback the paper's DynamicScan
          representation avoids. *)
  join_reorder : bool;
      (** search for a left-deep join order over inner-join regions with at
          least [join_reorder_min_rels] relations ({!Joinorder}); smaller
          regions keep the order as written, so the classic workload's
          plans are untouched *)
  join_reorder_min_rels : int;
  opt_domains : int;
      (** domains the join-order search fans out over (1 = serial; the
          chosen plan is identical for every value) *)
  simplify : bool;
      (** abstract-interpretation pass over the placed plan: drop
          always-true conjuncts, collapse always-false filters, and (when
          partition selection is on) strengthen selectors with implied
          partition-key restrictions *)
  nsegments : int;
}

let default_config =
  {
    enable_partition_selection = true;
    cost_based_joins = true;
    enable_two_phase_agg = true;
    enable_partition_wise_join = false;
    join_reorder = true;
    join_reorder_min_rels = 5;
    opt_domains = 1;
    simplify = true;
    nsegments = 4;
  }

(** The [MPP_OPT_DOMAINS] environment variable; 1 (serial) when
    unset/invalid.  The optimizer-side sibling of
    {!Mpp_exec.Dpool.default_domains}. *)
let default_opt_domains () =
  match Sys.getenv_opt "MPP_OPT_DOMAINS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)

type t = {
  catalog : Mpp_catalog.Catalog.t;
  stats : Mpp_stats.Stats_source.t option;
  config : config;
  mutable next_scan_id : int;
  mutable next_synth_rel : int;
      (** synthetic range-table indices for aggregate outputs *)
}

let create ?(config = default_config) ?stats ~catalog () =
  { catalog; stats; config; next_scan_id = 1; next_synth_rel = 1000 }

let fresh_scan_id t =
  let id = t.next_scan_id in
  t.next_scan_id <- id + 1;
  id

let fresh_synth_rel t =
  let r = t.next_synth_rel in
  t.next_synth_rel <- r + 1;
  r

(* ------------------------------------------------------------------ *)
(* Cost model parameters                                               *)
(* ------------------------------------------------------------------ *)

let cost_tuple_scan = 1.0
let cost_partition_open = 40.0
let cost_hash_build = 1.5
let cost_probe = 1.0
let cost_motion_tuple = 2.0
let cost_filter_tuple = 0.1
let cost_agg_tuple = 1.5

(* ------------------------------------------------------------------ *)
(* Annotated subplans                                                  *)
(* ------------------------------------------------------------------ *)

(* A DynamicScan visible in a subtree, for DPE costing. *)
type dyn_scan_info = {
  ds_rel : int;
  ds_root_oid : int;
  ds_keys : Colref.t list;
  ds_nparts : int;
  ds_rows : float;  (** estimated rows this scan feeds upward *)
}

type annotated = {
  plan : Plan.t;
  rows : float;
  dist : dist;
  cost : float;
  dyn_scans : dyn_scan_info list;
}

let table_of t name = Mpp_catalog.Catalog.find t.catalog name

let stats_of t (table : Table.t) : Mpp_stats.Stats.table_stats =
  match t.stats with
  | Some src -> Mpp_stats.Stats_source.table_stats src table
  | None -> Mpp_stats.Stats.defaults table

let dist_of_table t (table : Table.t) ~rel =
  ignore t;
  match table.Table.distribution with
  | Distribution.Hashed cols ->
      Hashed_on
        (List.map
           (fun i ->
             let name, dtype = table.Table.columns.(i) in
             Colref.make ~rel ~index:i ~name ~dtype)
           cols)
  | Distribution.Replicated -> Replicated_d
  | Distribution.Random -> Random_d
  | Distribution.Singleton -> Singleton_d

let col_ndv t (table : Table.t) ~col_index =
  let stats = stats_of t table in
  if col_index < Array.length stats.columns then
    stats.columns.(col_index).Mpp_stats.Stats.ndv
  else 100

(* Statically-surviving partition count of the scan rooted at [root_oid]
   under [pred], via the selection index: per-level [Expr.restriction] →
   {!Mpp_catalog.Partition.Index.count_selected} (one bitset cardinality, no
   leaf materialization).  [None] when the predicate restricts no
   partitioning level — the count would just be the leaf total. *)
let indexed_nparts t ~root_oid ~keys pred =
  match (Mpp_catalog.Catalog.find_oid t.catalog root_oid).Table.partitioning with
  | None -> None
  | Some p ->
      let restrictions =
        Array.of_list (List.map (fun k -> Expr.restriction k pred) keys)
      in
      if Array.for_all Option.is_none restrictions then None
      else begin
        Obs.incr (Obs.current ()) "optimizer.indexed_part_counts";
        let ix = Mpp_catalog.Partition.Index.of_partitioning p in
        Some (Mpp_catalog.Partition.Index.count_selected ix restrictions)
      end

(* ------------------------------------------------------------------ *)
(* Scans and filters                                                   *)
(* ------------------------------------------------------------------ *)

let plan_get t ~rel name : annotated =
  let table = table_of t name in
  let stats = stats_of t table in
  let rows = float_of_int stats.rowcount in
  let dist = dist_of_table t table ~rel in
  match table.Table.partitioning with
  | None ->
      {
        plan = Plan.table_scan ~rel table.Table.oid;
        rows;
        dist;
        cost = rows *. cost_tuple_scan;
        dyn_scans = [];
      }
  | Some p ->
      let part_scan_id = fresh_scan_id t in
      let nparts = Mpp_catalog.Partition.nparts p in
      {
        plan = Plan.dynamic_scan ~rel ~part_scan_id table.Table.oid;
        rows;
        dist;
        cost =
          (rows *. cost_tuple_scan)
          +. (float_of_int nparts *. cost_partition_open);
        dyn_scans =
          [
            {
              ds_rel = rel;
              ds_root_oid = table.Table.oid;
              ds_keys = Table.part_key_colrefs table ~rel;
              ds_nparts = nparts;
              ds_rows = rows;
            };
          ];
      }

(* Selectivity of [pred] against the single-relation stats reachable in the
   subtree; multi-relation predicates use defaults. *)
let selectivity_for t ~rel_tables pred =
  let per_rel rel =
    match List.assoc_opt rel rel_tables with
    | None -> 0.5
    | Some table ->
        Mpp_stats.Selectivity.estimate ~stats:(stats_of t table) ~rel pred
  in
  match Expr.rels pred with
  | [] -> 1.0
  | [ rel ] -> per_rel rel
  | rels ->
      (* keep only the per-relation conjuncts; join conjuncts are handled by
         the join cardinality model *)
      List.fold_left (fun acc rel -> acc *. per_rel rel) 1.0 rels

let plan_select t ~rel_tables pred (child : annotated) : annotated =
  let sel = selectivity_for t ~rel_tables pred in
  let rows = Float.max 1.0 (child.rows *. sel) in
  let plan =
    (* push the filter into a bare scan; otherwise keep a Filter node *)
    match child.plan with
    | Plan.Table_scan ({ filter = None; _ } as s) ->
        Plan.Table_scan { s with filter = Some pred }
    | Plan.Dynamic_scan ({ filter = None; _ } as s) ->
        Plan.Dynamic_scan { s with filter = Some pred }
    | p -> Plan.filter pred p
  in
  (* Refine each visible DynamicScan with the statically-surviving
     partition count under [pred] (the index makes this one bitset
     cardinality per scan): downstream DPE costing then discounts against
     the partitions that static selection already eliminated, and the
     statically pruned partition opens come off this subplan's cost. *)
  let pruned_opens = ref 0.0 in
  let dyn_scans =
    List.map
      (fun ds ->
        let ds = { ds with ds_rows = ds.ds_rows *. sel } in
        match
          indexed_nparts t ~root_oid:ds.ds_root_oid ~keys:ds.ds_keys pred
        with
        | Some n when n < ds.ds_nparts ->
            pruned_opens :=
              !pruned_opens
              +. (float_of_int (ds.ds_nparts - n) *. cost_partition_open);
            { ds with ds_nparts = n }
        | _ -> ds)
      child.dyn_scans
  in
  {
    child with
    plan;
    rows;
    cost = child.cost +. (child.rows *. cost_filter_tuple) -. !pruned_opens;
    dyn_scans;
  }

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)
(* ------------------------------------------------------------------ *)

(* Equi-join column pairs (build expr, probe expr) of [pred]. *)
let equi_pairs ~build_rels ~probe_rels pred =
  let refs_only rels e =
    Expr.rels e <> [] && List.for_all (fun r -> List.mem r rels) (Expr.rels e)
  in
  List.filter_map
    (function
      | Expr.Cmp (Expr.Eq, a, b)
        when refs_only build_rels a && refs_only probe_rels b ->
          Some (a, b)
      | Expr.Cmp (Expr.Eq, a, b)
        when refs_only probe_rels a && refs_only build_rels b ->
          Some (b, a)
      | _ -> None)
    (Expr.conjuncts pred)


(* Is [side] already distributed on its join keys?  (So the other side can be
   redistributed to match, or no motion is needed if both match.) *)
let hashed_on_keys dist keys =
  match dist with
  | Hashed_on cols ->
      List.length cols <= List.length keys
      && List.for_all
           (fun c ->
             List.exists
               (function Expr.Col k -> Colref.equal k c | _ -> false)
               keys)
           cols
  | _ -> false

(* Is the DynamicScan for [rel]/[root_oid] reachable in [plan] without
   crossing a Motion?  Placement refuses the DPE push otherwise (the
   selector's bitmap is segment-local), so costing must not discount a
   scan that cannot actually be selected. *)
let rec motion_free_scan (plan : Plan.t) ~rel ~root_oid =
  match plan with
  | Plan.Dynamic_scan d -> d.rel = rel && d.root_oid = root_oid
  | Plan.Motion _ -> false
  | _ ->
      List.exists
        (fun c -> motion_free_scan c ~rel ~root_oid)
        (Plan.children plan)

(* DPE opportunity: DynamicScans in the probe subtree whose keys the join
   predicate constrains with expressions the build side can evaluate —
   and that no Motion inside the probe subtree hides from the selector. *)
let dpe_opportunities ~pred ~build ~probe =
  let build_rels = Plan.output_rels build.plan in
  List.filter
    (fun ds ->
      motion_free_scan probe.plan ~rel:ds.ds_rel ~root_oid:ds.ds_root_oid
      &&
      match Expr.find_preds_on_keys ds.ds_keys pred with
      | None -> false
      | Some found ->
          List.exists Option.is_some found
          && List.for_all
               (function
                 | None -> true
                 | Some p ->
                     List.for_all
                       (fun (c : Colref.t) ->
                         List.exists (Colref.equal c) ds.ds_keys
                         || List.mem c.Colref.rel build_rels)
                       (Expr.free_cols p))
               found)
    probe.dyn_scans

type join_candidate = {
  jc_plan : Plan.t;
  jc_rows : float;
  jc_dist : dist;
  jc_cost : float;
  jc_dyn_scans : dyn_scan_info list;
}

let key_ndv t ~rel_tables e =
  match e with
  | Expr.Col c -> (
      match List.assoc_opt c.Colref.rel rel_tables with
      | Some table -> col_ndv t table ~col_index:c.Colref.index
      | None -> 1000)
  | _ -> 1000

let candidate t ~rel_tables ~kind ~pred ~(build : annotated)
    ~(probe : annotated) : join_candidate option =
  Obs.incr (Obs.current ()) "optimizer.plans_costed";
  let nseg = float_of_int t.config.nsegments in
  let build_rels = Plan.output_rels build.plan
  and probe_rels = Plan.output_rels probe.plan in
  let pairs = equi_pairs ~build_rels ~probe_rels pred in
  let build_keys = List.map fst pairs and probe_keys = List.map snd pairs in
  (* Motion choice for the build side; the probe side never moves (keeps
     selector/scan co-located when the probe holds a DynamicScan). *)
  let colocated =
    pairs <> []
    && hashed_on_keys build.dist build_keys
    && hashed_on_keys probe.dist probe_keys
  in
  let build_plan, build_motion_cost, build_dist =
    if build.dist = Replicated_d || build.dist = Singleton_d then
      (build.plan, 0.0, build.dist)
    else if colocated then (build.plan, 0.0, build.dist)
    else if probe.dist = Replicated_d then
      (* the probe side already lives everywhere: joining the distributed
         build side locally produces each pair exactly once *)
      (build.plan, 0.0, build.dist)
    else if pairs <> [] && hashed_on_keys probe.dist probe_keys then
      (* redistribute build to match the probe's hashing *)
      let cols =
        List.filter_map
          (function Expr.Col c -> Some c | _ -> None)
          build_keys
      in
      if List.length cols = List.length build_keys then
        ( Plan.motion (Plan.Redistribute cols) build.plan,
          build.rows *. cost_motion_tuple,
          Hashed_on cols )
      else
        ( Plan.motion Plan.Broadcast build.plan,
          build.rows *. nseg *. cost_motion_tuple,
          Replicated_d )
    else
      ( Plan.motion Plan.Broadcast build.plan,
        build.rows *. nseg *. cost_motion_tuple,
        Replicated_d )
  in

  (* When the build side is not replicated everywhere, a streaming selector
     above it sees only a slice of the rows on each segment, which still
     yields correct (per-segment-conservative) selection. *)
  let dpe = dpe_opportunities ~pred ~build ~probe in
  Obs.add (Obs.current ()) "optimizer.dpe_opportunities" (List.length dpe);
  let probe_cost_effective =
    match dpe with
    | [] -> probe.cost
    | _ ->
        (* fraction of partitions surviving selection, per DPE'd scan *)
        List.fold_left
          (fun cost ds ->
            let build_ndv =
              match build_keys with
              | [ k ] -> float_of_int (key_ndv t ~rel_tables k)
              | _ -> build.rows
            in
            let distinct = Float.min build.rows build_ndv in
            let frac =
              Float.min 1.0 (distinct /. float_of_int (max 1 ds.ds_nparts))
            in
            (* discount the partition opens and tuple reads of this scan *)
            let scan_cost =
              (ds.ds_rows *. cost_tuple_scan)
              +. (float_of_int ds.ds_nparts *. cost_partition_open)
            in
            cost -. (scan_cost *. (1.0 -. frac)))
          probe.cost dpe
  in
  let rows =
    match kind with
    | Plan.Semi ->
        Float.max 1.0 (probe.rows *. 0.5)
    | Plan.Inner | Plan.Left_outer -> (
        match pairs with
        | [] -> Float.max 1.0 (build.rows *. probe.rows *. 0.1)
        | (bk, pk) :: _ ->
            Mpp_stats.Selectivity.join_rows ~left_rows:build.rows
              ~right_rows:probe.rows
              ~left_ndv:(key_ndv t ~rel_tables bk)
              ~right_ndv:(key_ndv t ~rel_tables pk))
  in
  let cost =
    build.cost +. build_motion_cost +. probe_cost_effective
    +. (build.rows *. cost_hash_build)
    +. (probe.rows *. cost_probe)
  in
  Some
    {
      jc_plan = Plan.hash_join ~kind ~pred build_plan probe.plan;
      jc_rows = rows;
      jc_dist =
        (* a join's rows live where its distributed side lives *)
        (if probe.dist = Replicated_d && build_dist <> Replicated_d then
           build_dist
         else probe.dist);
      jc_cost = cost;
      jc_dyn_scans =
        (* scans already consumed below stay visible for upper joins only if
           their columns are still in the output *)
        build.dyn_scans @ probe.dyn_scans;
    }

(* Partition-wise join (ablation, paper §5): both sides are bare
   DynamicScans of tables partitioned with *identical* level-0 constraints,
   equi-joined on those keys — expand into an Append of per-pair joins.
   Returns [None] when the pattern does not apply. *)
let try_partition_wise_join t ~kind ~pred (left : annotated)
    (right : annotated) : annotated option =
  if not (t.config.enable_partition_wise_join && kind = Plan.Inner) then None
  else
    match (left.plan, right.plan, left.dyn_scans, right.dyn_scans) with
    | ( Plan.Dynamic_scan ls,
        Plan.Dynamic_scan rs,
        [ lds ],
        [ rds ] ) -> (
        let ltable = Mpp_catalog.Catalog.find_oid t.catalog ls.root_oid in
        let rtable = Mpp_catalog.Catalog.find_oid t.catalog rs.root_oid in
        match (ltable.Table.partitioning, rtable.Table.partitioning) with
        | Some lp, Some rp
          when Mpp_catalog.Partition.nlevels lp = 1
               && Mpp_catalog.Partition.nlevels rp = 1
               && Mpp_catalog.Partition.nparts lp
                  = Mpp_catalog.Partition.nparts rp ->
            let lkey = List.hd lds.ds_keys and rkey = List.hd rds.ds_keys in
            let keys_joined =
              List.exists
                (function
                  | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
                      (Colref.equal a lkey && Colref.equal b rkey)
                      || (Colref.equal a rkey && Colref.equal b lkey)
                  | _ -> false)
                (Expr.conjuncts pred)
            in
            let constraints_match =
              List.for_all2
                (fun (a : Mpp_catalog.Partition.leaf)
                     (b : Mpp_catalog.Partition.leaf) ->
                  match (a.bounds.(0), b.bounds.(0)) with
                  | Mpp_catalog.Partition.Cset x, Mpp_catalog.Partition.Cset y
                    ->
                      Interval.Set.equal x y
                  | Mpp_catalog.Partition.Default,
                    Mpp_catalog.Partition.Default ->
                      true
                  | _ -> false)
                (Array.to_list lp.Mpp_catalog.Partition.leaves)
                (Array.to_list rp.Mpp_catalog.Partition.leaves)
            in
            (* per-pair local joins are only correct when both sides are
               hash-distributed on the joined keys (co-located) *)
            let colocated =
              match (left.dist, right.dist) with
              | Hashed_on [ a ], Hashed_on [ b ] ->
                  Colref.equal a lkey && Colref.equal b rkey
              | _ -> false
            in
            if not (keys_joined && constraints_match && colocated) then None
            else begin
              let pairs =
                List.map2
                  (fun (a : Mpp_catalog.Partition.leaf)
                       (b : Mpp_catalog.Partition.leaf) ->
                    Plan.hash_join ~kind ~pred
                      (Plan.table_scan ?filter:ls.filter ~rel:ls.rel
                         a.leaf_oid)
                      (Plan.table_scan ?filter:rs.filter ~rel:rs.rel
                         b.leaf_oid))
                  (Array.to_list lp.Mpp_catalog.Partition.leaves)
                  (Array.to_list rp.Mpp_catalog.Partition.leaves)
              in
              Some
                {
                  plan = Plan.Append pairs;
                  rows =
                    Mpp_stats.Selectivity.join_rows ~left_rows:left.rows
                      ~right_rows:right.rows ~left_ndv:1000 ~right_ndv:1000;
                  dist = right.dist;
                  cost = left.cost +. right.cost +. (left.rows *. cost_hash_build);
                  dyn_scans = [];
                }
            end
        | _ -> None)
    | _ -> None

(* Plan a join, trying both orientations when allowed.  [pinned_rel] (DML
   target) must stay on the probe side, unmoved. *)
let plan_join t ~rel_tables ~pinned_rel ~kind ~pred (left : annotated)
    (right : annotated) : annotated =
  match try_partition_wise_join t ~kind ~pred left right with
  | Some ann -> ann
  | None ->
  (* fall through to the DynamicScan-based join below *)
  let orientations =
    match kind with
    | Plan.Semi | Plan.Left_outer ->
        (* semantics fix the roles: logical left is the preserved/probe side
           for semi joins (build = subquery side) *)
        (match kind with
        | Plan.Semi -> [ (right, left) ]
        | _ -> [ (left, right) ])
    | Plan.Inner ->
        if t.config.cost_based_joins then
          [ (left, right); (right, left) ]
        else [ (left, right) ]
  in
  let allowed (build, probe) =
    match pinned_rel with
    | None -> true
    | Some rel ->
        (* the DML target must be on the (unmoved) probe side if present *)
        (not (List.mem rel (Plan.output_rels build.plan)))
        || List.mem rel (Plan.output_rels probe.plan)
  in
  let candidates =
    List.filter allowed orientations
    |> List.filter_map (fun (build, probe) ->
           candidate t ~rel_tables ~kind ~pred ~build ~probe)
  in
  match
    List.sort (fun a b -> Float.compare a.jc_cost b.jc_cost) candidates
  with
  | [] -> invalid_arg "Optimizer.plan_join: no valid join orientation"
  | best :: _ ->
      Obs.incr (Obs.current ()) "optimizer.joins_planned";
      Log.debug (fun m ->
          m "join orientation chosen: cost=%.0f of %d candidate(s), pred=%s"
            best.jc_cost (List.length candidates) (Expr.to_string pred));
      {
        plan = best.jc_plan;
        rows = best.jc_rows;
        dist = best.jc_dist;
        cost = best.jc_cost;
        dyn_scans = best.jc_dyn_scans;
      }

(* ------------------------------------------------------------------ *)
(* Join-order search (big inner-join regions)                          *)
(* ------------------------------------------------------------------ *)

(* Row estimate of a logical subtree, for seeding the join-order search.
   Deliberately the same crude shapes as [est_rows]: the search only ranks
   orders; the chosen order is then re-costed by the full model. *)
let rec logical_rows t ~rel_tables (lg : Logical.t) : float =
  match lg with
  | Logical.Get { table_name; _ } ->
      float_of_int (stats_of t (table_of t table_name)).rowcount
  | Logical.Select { pred; child } ->
      Float.max 1.0
        (logical_rows t ~rel_tables child *. selectivity_for t ~rel_tables pred)
  | Logical.Join { kind = Plan.Semi; left; _ } ->
      Float.max 1.0 (logical_rows t ~rel_tables left *. 0.5)
  | Logical.Join { left; right; _ } ->
      Float.max 1.0
        (logical_rows t ~rel_tables left
        *. logical_rows t ~rel_tables right
        /. 100.0)
  | Logical.Aggregate { group_by = []; _ } -> 1.0
  | Logical.Aggregate { child; _ } ->
      Float.max 1.0 (logical_rows t ~rel_tables child /. 10.0)
  | Logical.Project { child; _ } | Logical.Sort { child; _ } ->
      logical_rows t ~rel_tables child
  | Logical.Limit { rows; child } ->
      Float.min (float_of_int rows) (logical_rows t ~rel_tables child)
  | Logical.Update _ | Logical.Delete _ | Logical.Insert _ -> 1.0

(* Selectivity of one join conjunct: the textbook 1/max(ndv) for an
   equi-pair, a flat guess otherwise. *)
let edge_sel t ~rel_tables c =
  match c with
  | Expr.Cmp (Expr.Eq, (Expr.Col _ as a), (Expr.Col _ as b)) ->
      let n =
        Float.max
          (float_of_int (key_ndv t ~rel_tables a))
          (float_of_int (key_ndv t ~rel_tables b))
      in
      1.0 /. Float.max 1.0 n
  | _ -> 0.25

(* Flatten a maximal inner-join region: the non-inner-join leaf subtrees in
   tree order, plus every join conjunct of the region. *)
let rec flatten_region (lg : Logical.t) : Logical.t list * Expr.t list =
  match lg with
  | Logical.Join { kind = Plan.Inner; pred; left; right } ->
      let ll, lc = flatten_region left and rl, rc = flatten_region right in
      (ll @ rl, lc @ rc @ Expr.conjuncts pred)
  | leaf -> ([ leaf ], [])

let bit_index m =
  let rec go m i = if m = 1 then i else go (m lsr 1) (i + 1) in
  go m 0

(* Rebuild a left-deep tree over [leaves] in [order], attaching each edge
   conjunct at the first join whose extended leaf set covers it (original
   conjunct order within a predicate is preserved).  [residual] conjuncts
   (no column references) go in a Select on top. *)
let rebuild_region leaves (edges : (int * Expr.t) array) order residual :
    Logical.t =
  match order with
  | [] -> assert false
  | first :: rest ->
      let used = Array.make (Array.length edges) false in
      let tree = ref leaves.(first) and mask = ref (1 lsl first) in
      List.iter
        (fun j ->
          let nm = !mask lor (1 lsl j) in
          let cs = ref [] in
          Array.iteri
            (fun ei (em, c) ->
              if (not used.(ei)) && em land lnot nm = 0 then begin
                used.(ei) <- true;
                cs := c :: !cs
              end)
            edges;
          let pred =
            match List.rev !cs with [] -> Expr.true_ | l -> Expr.conj l
          in
          tree := Logical.join pred !tree leaves.(j);
          mask := nm)
        rest;
      (match residual with
      | [] -> !tree
      | l -> Logical.select (Expr.conj l) !tree)

(* Reorder one flattened region; [None] when a conjunct references a
   relation outside the region's leaves (bail out, keep the written order —
   the safety valve for shapes the binder never produces today). *)
let try_reorder t ~rel_tables ~pool leaves conjs : Logical.t option =
  let leaves = Array.of_list leaves in
  let n = Array.length leaves in
  let rel_leaf = Hashtbl.create 16 in
  Array.iteri
    (fun i leaf ->
      List.iter
        (fun (rel, _) -> Hashtbl.replace rel_leaf rel i)
        (Logical.base_tables leaf))
    leaves;
  let ok = ref true in
  let classified =
    List.map
      (fun c ->
        let mask =
          List.fold_left
            (fun m rel ->
              match Hashtbl.find_opt rel_leaf rel with
              | Some i -> m lor (1 lsl i)
              | None ->
                  ok := false;
                  m)
            0 (Expr.rels c)
        in
        (mask, c))
      conjs
  in
  if not !ok then None
  else begin
    let locals = Array.make n [] in
    let edges = ref [] and residual = ref [] in
    List.iter
      (fun (m, c) ->
        if m = 0 then residual := c :: !residual
        else if m land (m - 1) = 0 then
          let i = bit_index m in
          locals.(i) <- c :: locals.(i)
        else edges := (m, c) :: !edges)
      classified;
    let edges = Array.of_list (List.rev !edges) in
    let residual = List.rev !residual in
    (* single-leaf conjuncts become local filters, shrinking that leaf's
       row estimate before the search sees it *)
    let leaves =
      Array.mapi
        (fun i leaf ->
          match List.rev locals.(i) with
          | [] -> leaf
          | l -> Logical.select (Expr.conj l) leaf)
        leaves
    in
    let leaf_rows =
      Array.map (fun leaf -> logical_rows t ~rel_tables leaf) leaves
    in
    let graph =
      Joinorder.make ~leaf_rows
        ~edges:(Array.map (fun (m, c) -> (m, edge_sel t ~rel_tables c)) edges)
    in
    let order = Joinorder.order ~pool graph in
    Obs.incr (Obs.current ()) "optimizer.join_reorders";
    Log.debug (fun m ->
        m "join reorder: %d relations, %d edges, order=%s" n
          (Array.length edges)
          (String.concat "," (List.map string_of_int order)));
    Some (rebuild_region leaves edges order residual)
  end

(* Walk the logical tree; every maximal inner-join region of at least
   [join_reorder_min_rels] leaves is re-ordered by {!Joinorder} (fanned out
   over [opt_domains] pool domains).  DML subtrees are left as written —
   the target relation's plan position is semantic there. *)
let reorder_joins t ~rel_tables (lg : Logical.t) : Logical.t =
  let pool = Mpp_exec.Dpool.get ~domains:t.config.opt_domains in
  let rec go lg =
    match lg with
    | Logical.Join { kind = Plan.Inner; _ } -> (
        let leaves, conjs = flatten_region lg in
        let n = List.length leaves in
        if n < t.config.join_reorder_min_rels || n > 60 then descend lg
        else
          let leaves = List.map go leaves in
          match try_reorder t ~rel_tables ~pool leaves conjs with
          | Some lg' -> lg'
          | None -> descend lg)
    | _ -> descend lg
  and descend lg =
    match lg with
    | Logical.Get _ | Logical.Insert _ | Logical.Update _ | Logical.Delete _
      ->
        lg
    | Logical.Select s -> Logical.Select { s with child = go s.child }
    | Logical.Join j -> Logical.Join { j with left = go j.left; right = go j.right }
    | Logical.Aggregate a -> Logical.Aggregate { a with child = go a.child }
    | Logical.Project p -> Logical.Project { p with child = go p.child }
    | Logical.Sort s -> Logical.Sort { s with child = go s.child }
    | Logical.Limit l -> Logical.Limit { l with child = go l.child }
  in
  go lg

(* ------------------------------------------------------------------ *)
(* Top-level translation                                               *)
(* ------------------------------------------------------------------ *)

let gather (ann : annotated) : annotated =
  match ann.dist with
  | Singleton_d -> ann
  | Replicated_d ->
      (* replicated data: read one copy, do not concatenate all copies *)
      {
        ann with
        plan = Plan.motion Plan.Gather_one ann.plan;
        dist = Singleton_d;
      }
  | Hashed_on _ | Random_d ->
      {
        ann with
        plan = Plan.motion Plan.Gather ann.plan;
        dist = Singleton_d;
        cost = ann.cost +. (ann.rows *. cost_motion_tuple);
      }

(* Two-phase aggregation (the MPP norm): a partial aggregate runs on each
   segment over its local rows, the (much smaller) partial states move once,
   and a final aggregate combines them — count combines by summing partial
   counts, avg is decomposed into sum and count recombined by a projection.
   Falls back to gather-then-aggregate when disabled or already local. *)
let rec plan_aggregate t ~rel_tables ~pinned_rel ~group_by ~aggs child :
    annotated =
  let c = build_physical t ~rel_tables ~pinned_rel child in
  let rows = if group_by = [] then 1.0 else Float.max 1.0 (c.rows /. 10.0) in
  if (not t.config.enable_two_phase_agg) || c.dist = Singleton_d then begin
    let c = gather c in
    {
      plan = Plan.agg ~group_by ~aggs c.plan;
      rows;
      dist = Singleton_d;
      cost = c.cost +. (c.rows *. cost_agg_tuple);
      dyn_scans = [];
    }
  end
  else begin
    let partial_rel = fresh_synth_rel t and final_rel = fresh_synth_rel t in
    let pcol index =
      Expr.col
        (Colref.make ~rel:partial_rel ~index
           ~name:(Printf.sprintf "p%d" index) ~dtype:Mpp_expr.Value.Tfloat)
    in
    let fcol index =
      Expr.col
        (Colref.make ~rel:final_rel ~index
           ~name:(Printf.sprintf "f%d" index) ~dtype:Mpp_expr.Value.Tfloat)
    in
    let k = List.length group_by in
    (* decompose each requested aggregate into partial slots, the final
       combine over those slots, and the output expression *)
    let partial_aggs = ref [] in
    let final_aggs = ref [] in
    let next_partial = ref k and next_final = ref k in
    let add_partial name f =
      let slot = !next_partial in
      partial_aggs := !partial_aggs @ [ (name, f) ];
      incr next_partial;
      slot
    in
    let add_final name f =
      let slot = !next_final in
      final_aggs := !final_aggs @ [ (name, f) ];
      incr next_final;
      slot
    in
    let needs_project = ref false in
    let outputs =
      List.map
        (fun (name, f) ->
          match f with
          | Plan.Count_star ->
              let p = add_partial name Plan.Count_star in
              let fi = add_final name (Plan.Sum (pcol p)) in
              (name, fcol fi)
          | Plan.Count e ->
              let p = add_partial name (Plan.Count e) in
              let fi = add_final name (Plan.Sum (pcol p)) in
              (name, fcol fi)
          | Plan.Sum e ->
              let p = add_partial name (Plan.Sum e) in
              let fi = add_final name (Plan.Sum (pcol p)) in
              (name, fcol fi)
          | Plan.Min e ->
              let p = add_partial name (Plan.Min e) in
              let fi = add_final name (Plan.Min (pcol p)) in
              (name, fcol fi)
          | Plan.Max e ->
              let p = add_partial name (Plan.Max e) in
              let fi = add_final name (Plan.Max (pcol p)) in
              (name, fcol fi)
          | Plan.Avg e ->
              needs_project := true;
              let ps = add_partial (name ^ "_sum") (Plan.Sum e) in
              let pc = add_partial (name ^ "_cnt") (Plan.Count e) in
              let fs = add_final (name ^ "_sum") (Plan.Sum (pcol ps)) in
              let fc = add_final (name ^ "_cnt") (Plan.Sum (pcol pc)) in
              ( name,
                Expr.Arith
                  (Expr.Div,
                   Expr.Func ("to_float", [ fcol fs ]),
                   Expr.Func ("to_float", [ fcol fc ])) ))
        aggs
    in
    let partial =
      Plan.agg ~output_rel:partial_rel ~group_by ~aggs:!partial_aggs c.plan
    in
    let moved = Plan.motion Plan.Gather partial in
    let final_group = List.init k pcol in
    let final =
      Plan.agg ~output_rel:final_rel ~group_by:final_group ~aggs:!final_aggs
        moved
    in
    let plan =
      if (not !needs_project) && k = 0 then final
      else if not !needs_project then final
      else
        Plan.Project
          { exprs =
              List.init k (fun i -> (Printf.sprintf "g%d" (i + 1), fcol i))
              @ outputs;
            child = final }
    in
    {
      plan;
      rows;
      dist = Singleton_d;
      cost =
        c.cost +. (c.rows *. cost_agg_tuple)
        +. (rows *. float_of_int t.config.nsegments *. cost_motion_tuple);
      dyn_scans = [];
    }
  end

and build_physical t ~rel_tables ~pinned_rel (lg : Logical.t) : annotated =
  match lg with
  | Logical.Get { rel; table_name } -> plan_get t ~rel table_name
  | Logical.Select { pred; child } ->
      plan_select t ~rel_tables pred
        (build_physical t ~rel_tables ~pinned_rel child)
  | Logical.Join { kind; pred; left; right } ->
      let l = build_physical t ~rel_tables ~pinned_rel left in
      let r = build_physical t ~rel_tables ~pinned_rel right in
      plan_join t ~rel_tables ~pinned_rel ~kind ~pred l r
  | Logical.Aggregate { group_by; aggs; child } ->
      plan_aggregate t ~rel_tables ~pinned_rel ~group_by ~aggs child
  | Logical.Project { exprs; child } ->
      let c = build_physical t ~rel_tables ~pinned_rel child in
      { c with plan = Plan.Project { exprs; child = c.plan }; dyn_scans = [] }
  | Logical.Sort { keys; child } ->
      let c = gather (build_physical t ~rel_tables ~pinned_rel child) in
      { c with plan = Plan.Sort { keys; child = c.plan } }
  | Logical.Limit { rows; child } ->
      let c = gather (build_physical t ~rel_tables ~pinned_rel child) in
      {
        c with
        plan = Plan.Limit { rows; child = c.plan };
        rows = Float.min c.rows (float_of_int rows);
      }
  | Logical.Update { rel; table_name; set_cols; child } ->
      let table = table_of t table_name in
      let c = build_physical t ~rel_tables ~pinned_rel:(Some rel) child in
      let set_exprs =
        List.map (fun (col, e) -> (Table.col_index table col, e)) set_cols
      in
      {
        plan =
          Plan.Update { rel; table_oid = table.Table.oid; set_exprs; child = c.plan };
        rows = 1.0;
        dist = Singleton_d;
        cost = c.cost +. c.rows;
        dyn_scans = [];
      }
  | Logical.Delete { rel; table_name; child } ->
      let table = table_of t table_name in
      let c = build_physical t ~rel_tables ~pinned_rel:(Some rel) child in
      {
        plan = Plan.Delete { rel; table_oid = table.Table.oid; child = c.plan };
        rows = 1.0;
        dist = Singleton_d;
        cost = c.cost +. c.rows;
        dyn_scans = [];
      }
  | Logical.Insert { table_name; rows } ->
      let table = table_of t table_name in
      {
        plan = Plan.Insert { table_oid = table.Table.oid; rows };
        rows = 1.0;
        dist = Singleton_d;
        cost = float_of_int (List.length rows);
        dyn_scans = [];
      }

(* ------------------------------------------------------------------ *)
(* Runtime-join-filter annotation (costing side)                       *)
(* ------------------------------------------------------------------ *)

(* Row estimate of a *physical* subtree, for sizing and costing runtime
   filters after placement (the annotated-subplan estimates are gone by
   then).  Deliberately crude — scan rowcounts shaped by filter
   selectivity, the textbook join and aggregate discounts — but it only
   gates the filter-or-not decision and the Bloom's deterministic size. *)
let rec est_rows t ~rel_tables (p : Plan.t) : float =
  let scan_rows ~rel oid filter =
    let table =
      match List.assoc_opt rel rel_tables with
      | Some tbl -> tbl
      | None -> Mpp_catalog.Catalog.find_oid t.catalog oid
    in
    let rows = float_of_int (stats_of t table).Mpp_stats.Stats.rowcount in
    match filter with
    | None -> rows
    | Some f ->
        Float.max 1.0
          (rows
          *. Mpp_stats.Selectivity.estimate ~stats:(stats_of t table) ~rel f)
  in
  match p with
  | Plan.Table_scan { rel; table_oid; filter; _ } ->
      scan_rows ~rel table_oid filter
  | Plan.Dynamic_scan { rel; root_oid; filter; _ } ->
      scan_rows ~rel root_oid filter
  | Plan.Filter { pred = _; child } ->
      Float.max 1.0 (est_rows t ~rel_tables child *. 0.5)
  | Plan.Hash_join { kind; pred; left; right }
  | Plan.Nl_join { kind; pred; left; right } -> (
      let lr = est_rows t ~rel_tables left
      and rr = est_rows t ~rel_tables right in
      match kind with
      | Plan.Semi -> Float.max 1.0 (rr *. 0.5)
      | Plan.Inner | Plan.Left_outer -> (
          match
            Mpp_plan.Rf_annotate.equi_col_pairs
              ~build_rels:(Plan.output_rels left)
              ~probe_rels:(Plan.output_rels right) pred
          with
          | (bk, pk) :: _ ->
              Mpp_stats.Selectivity.join_rows ~left_rows:lr ~right_rows:rr
                ~left_ndv:(key_ndv t ~rel_tables (Expr.Col bk))
                ~right_ndv:(key_ndv t ~rel_tables (Expr.Col pk))
          | [] -> Float.max 1.0 (lr *. rr *. 0.1)))
  | Plan.Agg { group_by = []; _ } -> 1.0
  | Plan.Agg { child; _ } ->
      Float.max 1.0 (est_rows t ~rel_tables child /. 10.0)
  | Plan.Limit { rows; child } ->
      Float.min (float_of_int rows) (est_rows t ~rel_tables child)
  | Plan.Append cs ->
      List.fold_left (fun acc c -> acc +. est_rows t ~rel_tables c) 0.0 cs
  | Plan.Sequence cs -> (
      match List.rev cs with
      | last :: _ -> est_rows t ~rel_tables last
      | [] -> 0.0)
  | Plan.Partition_selector { child = Some c; _ }
  | Plan.Project { child = c; _ }
  | Plan.Sort { child = c; _ }
  | Plan.Motion { child = c; _ }
  | Plan.Runtime_filter_build { child = c; _ }
  | Plan.Runtime_filter { child = c; _ } ->
      est_rows t ~rel_tables c
  | Plan.Partition_selector { child = None; _ }
  | Plan.Update _ | Plan.Delete _ | Plan.Insert _ ->
      1.0

(* Annotate-or-not, per eligible join: expected probe-row reduction from
   the NDV ratio of the key pair (the fraction of probe key values the
   build side can match), charged against the constant per-row test.  The
   filter pays for itself when the probe stream is non-trivial and at
   least ~10% of it is expected to drop; the Bloom is sized from the
   build-side estimate (the executor caps the bit count). *)
let rf_decide t ~rel_tables ~build ~probe ~build_keys ~probe_keys =
  let build_rows = est_rows t ~rel_tables build in
  let probe_rows = est_rows t ~rel_tables probe in
  let bk = List.hd build_keys and pk = List.hd probe_keys in
  let build_ndv = float_of_int (key_ndv t ~rel_tables (Expr.Col bk)) in
  let probe_ndv = float_of_int (key_ndv t ~rel_tables (Expr.Col pk)) in
  let distinct_build = Float.min build_rows build_ndv in
  let keep = Float.min 1.0 (distinct_build /. Float.max 1.0 probe_ndv) in
  let saved = probe_rows *. (1.0 -. keep) in
  if probe_rows >= 256.0 && saved >= 0.1 *. probe_rows then begin
    Obs.incr (Obs.current ()) "optimizer.runtime_filters_placed";
    Log.debug (fun m ->
        m "runtime filter: build=%.0f rows probe=%.0f rows keep=%.2f" build_rows
          probe_rows keep);
    Some (int_of_float (Float.min build_rows 1e7))
  end
  else None

exception Invalid_plan of string

(** Optimize a logical tree into an executable physical plan. *)
let optimize t (lg : Logical.t) : Plan.t =
  let obs = Obs.current () in
  Obs.span obs "optimize" (fun () ->
      Obs.incr obs "optimizer.queries";
      t.next_scan_id <- 1;
      let rel_tables =
        List.map
          (fun (rel, name) -> (rel, table_of t name))
          (Logical.base_tables lg)
      in
      let lg =
        if t.config.join_reorder then
          Obs.span obs "optimize.join_reorder" (fun () ->
              reorder_joins t ~rel_tables lg)
        else lg
      in
      let ann =
        Obs.span obs "optimize.physical" (fun () ->
            build_physical t ~rel_tables ~pinned_rel:None lg)
      in
      let ann =
        match lg with
        | Logical.Update _ | Logical.Delete _ | Logical.Insert _ -> ann
        | _ -> gather ann
      in
      let placed =
        Obs.span obs "optimize.placement" (fun () ->
            Placement.place ~eliminate:t.config.enable_partition_selection
              ~catalog:t.catalog ann.plan)
      in
      (* Abstract-interpretation cleanup of the placed plan: always-true
         conjuncts dropped, always-false filters collapsed, and implied
         partition-key restrictions conjoined onto selectors (so the
         nparts stamp below sees the strengthened predicates). *)
      let placed =
        if t.config.simplify then
          Obs.span obs "optimize.simplify" (fun () ->
              Mpp_analysis.Analysis.simplify_plan ~catalog:t.catalog
                ~strengthen:t.config.enable_partition_selection placed)
        else placed
      in
      if Obs.enabled obs then begin
        Obs.annotate obs "estimated_cost" (Mpp_obs.Json.Float ann.cost);
        Obs.annotate obs "estimated_rows" (Mpp_obs.Json.Float ann.rows);
        Obs.annotate obs "plan_nodes"
          (Mpp_obs.Json.Int (Plan.node_count placed))
      end;
      (* Annotate eligible hash joins with runtime-join-filter pairs (a
         semantic no-op; the executor's [runtime_filters] knob decides
         whether they run), after placement so Placement never sees the
         new operators and the streaming-DPE redundancy skip can see the
         placed selectors. *)
      let placed =
        (* the Figure-17 ablation disables the whole partition-selection /
           runtime-pruning machinery, so its plans stay unannotated *)
        if not t.config.enable_partition_selection then placed
        else
          Obs.span obs "optimize.runtime_filters" (fun () ->
              Mpp_plan.Rf_annotate.annotate ~catalog:t.catalog
                ~decide:(rf_decide t ~rel_tables) placed)
      in
      (* Stamp each DynamicScan's statically-surviving partition count from
         its placed selector, then run the full static verifier: every plan
         this optimizer emits passes all five passes or is rejected. *)
      let placed = Mpp_verify.Verify.stamp_nparts ~catalog:t.catalog placed in
      match
        Mpp_verify.Diag.errors
          (Mpp_verify.Verify.check ~catalog:t.catalog placed)
      with
      | [] -> placed
      | errors ->
          raise
            (Invalid_plan
               (String.concat "; "
                  (List.map Mpp_verify.Diag.to_string errors))))

(** The per-physical-node row estimator over [lg]'s base tables, for
    stamping {!Mpp_plan.Est} arrays onto finished plans.  Must be applied
    {e at plan time} — while any injected misestimates are still active —
    so [EXPLAIN ANALYZE]'s est-vs-actual report shows the numbers the
    optimizer actually planned with. *)
let row_estimator t (lg : Logical.t) : Plan.t -> float =
  let rel_tables =
    List.map (fun (rel, name) -> (rel, table_of t name)) (Logical.base_tables lg)
  in
  fun p -> est_rows t ~rel_tables p

(** Estimated cost of the plan the optimizer would pick (for tests and the
    memo comparison). *)
let estimate t (lg : Logical.t) : float =
  t.next_scan_id <- 1;
  let rel_tables =
    List.map (fun (rel, name) -> (rel, table_of t name)) (Logical.base_tables lg)
  in
  let lg =
    if t.config.join_reorder then reorder_joins t ~rel_tables lg else lg
  in
  (build_physical t ~rel_tables ~pinned_rel:None lg).cost

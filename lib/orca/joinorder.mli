(** Parallel left-deep join-order search over relation bitsets.

    Level-synchronous dynamic programming over connected subsets of the
    join graph, with each level's extensions partitioned across the
    {!Mpp_exec.Dpool} domains (Trummer & Koch's search-space allocation,
    arXiv 1511.01768) and merged at a per-level barrier under a tie-free
    total order — the chosen order is identical for every pool size.
    Beam-bounded; cross products only when the graph is disconnected. *)

type graph = {
  nleaves : int;
  leaf_rows : float array;  (** post-filter row estimate per leaf *)
  edges : (int * float) array;
      (** (leaf bitmask, selectivity) per join conjunct *)
  incident : int list array;  (** leaf -> indices into [edges], ascending *)
}

val make : leaf_rows:float array -> edges:(int * float) array -> graph
(** Build the join graph.  Raises [Invalid_argument] beyond 60 leaves
    (subsets are int bitmasks). *)

val order : ?pool:Mpp_exec.Dpool.t -> ?beam:int -> graph -> int list
(** Best left-deep join order: leaf indices, first-joined first.
    [pool] (default serial) parallelizes each level's extensions; [beam]
    (default 1024) bounds the per-level frontier.  Deterministic: the
    result depends only on the graph and the beam, never on the pool. *)

(** The physical plan algebra — the operator vocabulary of paper §2.2
    embedded in a conventional MPP executor algebra.

    - [Dynamic_scan] (consumer) scans exactly the partitions whose OIDs were
      pushed to its [part_scan_id] channel;
    - [Partition_selector] (producer) evaluates its per-level predicates —
      statically, or per input tuple for join-induced dynamic elimination —
      and pushes the selected OIDs;
    - [Sequence] runs children left to right, returning the last child's
      rows (orders a leaf selector before its scan);
    - [Motion] is the distribution enforcer and the process boundary of
      §3.1: a selector/scan pair must not be separated by one;
    - [Append] is the legacy Planner's explicit per-partition expansion.

    Join convention (the paper's "implicit execution order of join children,
    left to right"): a join's {e left} child executes first — the build side
    of a hash join — so a PartitionSelector on the left can feed a
    DynamicScan on the right. *)

open Mpp_expr

type oid = Mpp_catalog.Partition.oid

type motion_kind =
  | Gather  (** collect all rows on a single host *)
  | Gather_one
      (** read a single copy of already-replicated data on the master —
          gathering replicated data with a plain Gather would duplicate it *)
  | Broadcast  (** replicate rows to every segment *)
  | Redistribute of Colref.t list  (** re-hash rows on the given columns *)

type join_kind = Inner | Left_outer | Semi

type agg_fun =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

type t =
  | Table_scan of {
      rel : int;
      table_oid : oid;
      filter : Expr.t option;
      guard : int option;
          (** the legacy Planner's parameter-driven dynamic elimination: the
              scan is skipped at run time unless its OID was pushed to this
              part-scan channel; the partition still appears in the plan
              (paper §4.4.2) *)
    }
  | Dynamic_scan of {
      rel : int;
      part_scan_id : int;
      root_oid : oid;
      filter : Expr.t option;
      ds_nparts : int;
          (** number of leaf partitions the optimizer expects this scan to
              open (after static pruning); [-1] = unknown / not accounted *)
    }
  | Partition_selector of {
      part_scan_id : int;
      root_oid : oid;
      keys : Colref.t list;  (** partitioning-key colrefs, one per level *)
      predicates : Expr.t option list;  (** per-level selection predicates *)
      child : t option;  (** [None]: leaf selector (no input rows) *)
    }
  | Sequence of t list
  | Filter of { pred : Expr.t; child : t }
  | Project of { exprs : (string * Expr.t) list; child : t }
  | Hash_join of { kind : join_kind; pred : Expr.t; left : t; right : t }
      (** [left] = build side, executed first *)
  | Nl_join of { kind : join_kind; pred : Expr.t; left : t; right : t }
  | Agg of {
      group_by : Expr.t list;
      aggs : (string * agg_fun) list;
      child : t;
      output_rel : int;
          (** synthetic range-table index of the output tuple (group keys
              then aggregate values); [-1] when consumed only positionally *)
    }
  | Sort of { keys : Expr.t list; child : t }
  | Limit of { rows : int; child : t }
  | Motion of { kind : motion_kind; child : t }
  | Append of t list
  | Update of {
      rel : int;  (** range-table index of the target *)
      table_oid : oid;  (** root OID of the target table *)
      set_exprs : (int * Expr.t) list;  (** (column index, new value) *)
      child : t;
    }
  | Delete of { rel : int; table_oid : oid; child : t }
  | Insert of { table_oid : oid; rows : Expr.t list list }
      (** INSERT … VALUES: row expressions evaluated at run time (they may
          reference parameters) and routed through distribution and f_T *)
  | Runtime_filter_build of {
      rf_id : int;
      keys : Colref.t list;
          (** build-side join-key colrefs, in join-key order *)
      rows_est : int;
          (** optimizer cardinality estimate of the build side — the only
              input to Bloom sizing, so per-segment filters merge *)
      child : t;
    }
      (** producer of a runtime join filter: pass-through on the build
          (left) subtree of a hash join; publishes a per-segment
          Bloom + min-max filter over its rows' key tuples on channel
          [rf_id].  Placed below the build side's Motion so the filter
          crosses the Motion boundary through the channel, not the data
          path. *)
  | Runtime_filter of {
      rf_id : int;
      keys : Colref.t list;
          (** probe-side join-key colrefs, positionally matching the
              builder's [keys] *)
      at_motion : bool;
          (** directly below a Redistribute/Broadcast send: rows dropped
              here never pay Motion cost *)
      child : t;
    }
      (** consumer: on the probe (right) subtree of the same join, drops
          rows whose key tuple fails the merged filter; semantically a
          no-op (no false negatives, NULL keys cannot join) *)

(** {2 Smart constructors} *)

val table_scan : ?filter:Expr.t -> ?guard:int -> rel:int -> oid -> t
val dynamic_scan :
  ?filter:Expr.t -> ?nparts:int -> rel:int -> part_scan_id:int -> oid -> t
(** [nparts] defaults to [-1] (unknown). *)

val partition_selector :
  ?child:t ->
  part_scan_id:int ->
  root_oid:oid ->
  keys:Colref.t list ->
  predicates:Expr.t option list ->
  unit ->
  t

val filter : Expr.t -> t -> t
val hash_join : kind:join_kind -> pred:Expr.t -> t -> t -> t
val nl_join : kind:join_kind -> pred:Expr.t -> t -> t -> t
val motion : motion_kind -> t -> t

val agg :
  ?output_rel:int -> group_by:Expr.t list -> aggs:(string * agg_fun) list ->
  t -> t

val runtime_filter_build :
  rf_id:int -> keys:Colref.t list -> rows_est:int -> t -> t

val runtime_filter :
  ?at_motion:bool -> rf_id:int -> keys:Colref.t list -> t -> t
(** [at_motion] defaults to [false]. *)

(** {2 Traversal} *)

val children : t -> t list

val with_children : t -> t list -> t
(** Rebuild a node with new children (same arity as {!children} returned);
    raises [Invalid_argument] on arity mismatch. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order over the whole tree. *)

val output_rels : t -> int list
(** Range-table indices whose columns appear in this subtree's output
    tuples; computed outputs (Project, anonymous Agg) hide what is below. *)

val node_count : t -> int

val dynamic_scan_ids : t -> int list
(** [part_scan_id]s of all DynamicScans (guarded Table_scans count — they
    consume the same channel). *)

val selector_ids : t -> int list

val has_part_scan_id : t -> int -> bool
(** The paper's [Operator::HasPartScanId]. *)

(** {2 Printing} *)

val join_kind_to_string : join_kind -> string
val motion_kind_to_string : motion_kind -> string
val agg_fun_to_string : agg_fun -> string

val describe : t -> string
(** One line for the root operator. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

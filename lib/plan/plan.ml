(** The physical plan algebra.

    This is the operator vocabulary of paper §2.2, embedded in a conventional
    MPP executor algebra:

    - {!constructor:Dynamic_scan} — consumer: scans exactly the partitions
      whose OIDs were pushed to its [part_scan_id] channel;
    - {!constructor:Partition_selector} — producer: evaluates its per-level
      predicates (statically, or per input tuple for join-induced dynamic
      elimination) and pushes the selected OIDs;
    - {!constructor:Sequence} — runs children left to right, returns the last
      child's rows (orders a leaf selector before its scan);
    - {!constructor:Motion} — distribution enforcer; the process boundary of
      §3.1: a selector/scan pair must not be separated by one;
    - {!constructor:Append} — the legacy Planner's expansion of a partitioned
      table into an explicit list of per-partition scans.

    Join convention (matching the paper's "implicit execution order of join
    children, left to right"): the {e left} child of a join executes first —
    for a hash join it is the build side — so a PartitionSelector placed on
    the left can feed a DynamicScan on the right. *)

open Mpp_expr

type oid = Mpp_catalog.Partition.oid

type motion_kind =
  | Gather  (** collect all rows on a single host *)
  | Gather_one
      (** read a single copy of already-replicated data on the master —
          gathering replicated data with a plain Gather would duplicate it *)
  | Broadcast  (** replicate rows to every segment *)
  | Redistribute of Colref.t list  (** re-hash rows on the given columns *)

type join_kind = Inner | Left_outer | Semi

type agg_fun =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

type t =
  | Table_scan of {
      rel : int;
      table_oid : oid;
      filter : Expr.t option;
      guard : int option;
          (** the legacy Planner's parameter-driven dynamic elimination: the
              scan is skipped at run time unless its OID was pushed to this
              part-scan channel.  The partition still appears in the plan —
              which is exactly why Planner plans grow with the partition
              count (paper §4.4.2). *)
    }
      (** scan of a non-partitioned table (or of one explicit leaf, when
          [table_oid] is a leaf OID — the Planner's per-partition scans) *)
  | Dynamic_scan of {
      rel : int;
      part_scan_id : int;
      root_oid : oid;
      filter : Expr.t option;
      ds_nparts : int;
          (** number of leaf partitions the optimizer expects this scan to
              open (after static pruning); [-1] = unknown / not accounted.
              The verifier's accounting pass cross-checks this against
              [Partition.Index.count_selected] on the matching selector's
              statically-analyzable predicates. *)
    }
  | Partition_selector of {
      part_scan_id : int;
      root_oid : oid;
      keys : Colref.t list;  (** partitioning-key colrefs, one per level *)
      predicates : Expr.t option list;  (** per-level selection predicates *)
      child : t option;  (** [None]: leaf selector (no input rows) *)
    }
  | Sequence of t list
  | Filter of { pred : Expr.t; child : t }
  | Project of { exprs : (string * Expr.t) list; child : t }
  | Hash_join of { kind : join_kind; pred : Expr.t; left : t; right : t }
      (** [left] = build side, executed first *)
  | Nl_join of { kind : join_kind; pred : Expr.t; left : t; right : t }
  | Agg of {
      group_by : Expr.t list;
      aggs : (string * agg_fun) list;
      child : t;
      output_rel : int;
          (** synthetic range-table index of the aggregate's output tuple
              (group keys then aggregate values); lets a final-phase
              aggregate or projection address the columns.  [-1] when the
              output is only consumed positionally at the plan root. *)
    }
  | Sort of { keys : Expr.t list; child : t }
  | Limit of { rows : int; child : t }
  | Motion of { kind : motion_kind; child : t }
  | Append of t list
  | Update of {
      rel : int;  (** range-table index of the target *)
      table_oid : oid;  (** root OID of the target table *)
      set_exprs : (int * Expr.t) list;  (** (column index, new value) *)
      child : t;
    }
  | Delete of { rel : int; table_oid : oid; child : t }
  | Insert of { table_oid : oid; rows : Expr.t list list }
      (** INSERT … VALUES: row expressions evaluated at run time (they may
          reference parameters) and routed through distribution and f_T *)
  | Runtime_filter_build of {
      rf_id : int;
      keys : Colref.t list;
          (** build-side join-key colrefs, in join-key order *)
      rows_est : int;
          (** optimizer cardinality estimate of the build side — the
              {e only} input to Bloom sizing, so every segment builds an
              identically-shaped filter *)
      child : t;
    }
      (** producer: sits on the build (left) subtree of a hash join, feeds
          every build row's key tuple into a per-segment Bloom + min-max
          filter and publishes it on channel [rf_id].  Pass-through for
          rows.  Placed {e below} the build side's Motion so the filter is
          built from pre-Motion rows and crosses the Motion boundary
          through the channel, not the data path. *)
  | Runtime_filter of {
      rf_id : int;
      keys : Colref.t list;
          (** probe-side join-key colrefs, positionally matching the
              builder's [keys] *)
      at_motion : bool;
          (** directly below a Redistribute/Broadcast send: rows dropped
              here never pay Motion cost *)
      child : t;
    }
      (** consumer: on the probe (right) subtree of the same join, drops
          rows whose key tuple fails the merged filter.  Semantically a
          no-op (Bloom filters have no false negatives; NULL keys cannot
          join) — only row counts and timings change. *)

(* Smart constructors: the common node shapes, with optional fields
   defaulted. *)
let table_scan ?filter ?guard ~rel table_oid =
  Table_scan { rel; table_oid; filter; guard }

let dynamic_scan ?filter ?(nparts = -1) ~rel ~part_scan_id root_oid =
  Dynamic_scan { rel; part_scan_id; root_oid; filter; ds_nparts = nparts }

let partition_selector ?child ~part_scan_id ~root_oid ~keys ~predicates () =
  Partition_selector { part_scan_id; root_oid; keys; predicates; child }

let filter pred child = Filter { pred; child }
let hash_join ~kind ~pred left right = Hash_join { kind; pred; left; right }
let nl_join ~kind ~pred left right = Nl_join { kind; pred; left; right }
let motion kind child = Motion { kind; child }
let agg ?(output_rel = -1) ~group_by ~aggs child =
  Agg { group_by; aggs; child; output_rel }

let runtime_filter_build ~rf_id ~keys ~rows_est child =
  Runtime_filter_build { rf_id; keys; rows_est; child }

let runtime_filter ?(at_motion = false) ~rf_id ~keys child =
  Runtime_filter { rf_id; keys; at_motion; child }

let children = function
  | Table_scan _ -> []
  | Dynamic_scan _ -> []
  | Insert _ -> []
  | Partition_selector { child = None; _ } -> []
  | Partition_selector { child = Some c; _ } -> [ c ]
  | Sequence cs | Append cs -> cs
  | Filter { child; _ }
  | Project { child; _ }
  | Agg { child; _ }
  | Sort { child; _ }
  | Limit { child; _ }
  | Motion { child; _ }
  | Update { child; _ }
  | Delete { child; _ }
  | Runtime_filter_build { child; _ }
  | Runtime_filter { child; _ } ->
      [ child ]
  | Hash_join { left; right; _ } | Nl_join { left; right; _ } ->
      [ left; right ]

(** Rebuild a node with new children (same arity as {!children} returned). *)
let with_children (p : t) (cs : t list) : t =
  match (p, cs) with
  | Table_scan _, [] | Dynamic_scan _, [] | Insert _, [] -> p
  | Partition_selector s, [] -> Partition_selector { s with child = None }
  | Partition_selector s, [ c ] -> Partition_selector { s with child = Some c }
  | Sequence _, cs -> Sequence cs
  | Append _, cs -> Append cs
  | Filter f, [ child ] -> Filter { f with child }
  | Project pr, [ child ] -> Project { pr with child }
  | Agg a, [ child ] -> Agg { a with child }
  | Sort s, [ child ] -> Sort { s with child }
  | Limit l, [ child ] -> Limit { l with child }
  | Motion m, [ child ] -> Motion { m with child }
  | Update u, [ child ] -> Update { u with child }
  | Delete d, [ child ] -> Delete { d with child }
  | Runtime_filter_build b, [ child ] -> Runtime_filter_build { b with child }
  | Runtime_filter r, [ child ] -> Runtime_filter { r with child }
  | Hash_join j, [ left; right ] -> Hash_join { j with left; right }
  | Nl_join j, [ left; right ] -> Nl_join { j with left; right }
  | _ -> invalid_arg "Plan.with_children: arity mismatch"

let rec fold f acc plan =
  List.fold_left (fold f) (f acc plan) (children plan)

(** Range-table indices whose columns appear in this subtree's output
    tuples.  Computed outputs (Agg, Project) hide the relations below. *)
let rec output_rels = function
  | Table_scan { rel; _ } | Dynamic_scan { rel; _ } -> [ rel ]
  | Agg { output_rel; _ } when output_rel >= 0 -> [ output_rel ]
  | Agg _ | Project _ -> []
  | Hash_join { kind = Semi; right; _ } | Nl_join { kind = Semi; right; _ } ->
      output_rels right
  | Hash_join { left; right; _ } | Nl_join { left; right; _ } ->
      output_rels left @ output_rels right
  | Sequence cs -> (
      match List.rev cs with [] -> [] | last :: _ -> output_rels last)
  | Append (c :: _) -> output_rels c
  | Append [] -> []
  | Partition_selector { child = None; _ } -> []
  | Partition_selector { child = Some c; _ } -> output_rels c
  | Filter { child; _ }
  | Sort { child; _ }
  | Limit { child; _ }
  | Motion { child; _ }
  | Runtime_filter_build { child; _ }
  | Runtime_filter { child; _ } ->
      output_rels child
  | Update _ | Delete _ | Insert _ -> []

(** Number of operator nodes. *)
let node_count plan = fold (fun acc _ -> acc + 1) 0 plan

(** All [part_scan_id]s of DynamicScans in the plan (guarded Table_scans
    count: they consume the same channel). *)
let dynamic_scan_ids plan =
  fold
    (fun acc p ->
      match p with
      | Dynamic_scan { part_scan_id; _ } -> part_scan_id :: acc
      | Table_scan { guard = Some id; _ } -> id :: acc
      | _ -> acc)
    [] plan
  |> List.sort_uniq Int.compare

(** All [part_scan_id]s of PartitionSelectors in the plan. *)
let selector_ids plan =
  fold
    (fun acc p ->
      match p with
      | Partition_selector { part_scan_id; _ } -> part_scan_id :: acc
      | _ -> acc)
    [] plan
  |> List.sort_uniq Int.compare

(** Does the subtree contain the DynamicScan with this id?  The paper's
    [Operator::HasPartScanId]. *)
let has_part_scan_id plan id = List.mem id (dynamic_scan_ids plan)

let join_kind_to_string = function
  | Inner -> "inner"
  | Left_outer -> "left"
  | Semi -> "semi"

let motion_kind_to_string = function
  | Gather -> "Gather Motion"
  | Gather_one -> "Gather Motion (one copy)"
  | Broadcast -> "Broadcast Motion"
  | Redistribute cols ->
      "Redistribute Motion ("
      ^ String.concat ", " (List.map Colref.to_string cols)
      ^ ")"

let agg_fun_to_string = function
  | Count_star -> "count(*)"
  | Count e -> "count(" ^ Expr.to_string e ^ ")"
  | Sum e -> "sum(" ^ Expr.to_string e ^ ")"
  | Avg e -> "avg(" ^ Expr.to_string e ^ ")"
  | Min e -> "min(" ^ Expr.to_string e ^ ")"
  | Max e -> "max(" ^ Expr.to_string e ^ ")"

let describe = function
  | Table_scan { rel; table_oid; filter; guard } ->
      Printf.sprintf "Scan(rel=%d, oid=%d%s%s)" rel table_oid
        (match filter with
        | None -> ""
        | Some f -> ", filter=" ^ Expr.to_string f)
        (match guard with
        | None -> ""
        | Some id -> Printf.sprintf ", skip-unless-param(%d)" id)
  | Dynamic_scan { rel; part_scan_id; root_oid; filter; ds_nparts } ->
      Printf.sprintf "DynamicScan(%d, rel=%d, root=%d%s%s)" part_scan_id rel
        root_oid
        (if ds_nparts >= 0 then Printf.sprintf ", nparts=%d" ds_nparts else "")
        (match filter with
        | None -> ""
        | Some f -> ", filter=" ^ Expr.to_string f)
  | Partition_selector { part_scan_id; root_oid; predicates; _ } ->
      Printf.sprintf "PartitionSelector(%d, root=%d, %s)" part_scan_id root_oid
        (String.concat "; "
           (List.map
              (function None -> "Φ" | Some p -> Expr.to_string p)
              predicates))
  | Sequence _ -> "Sequence"
  | Filter { pred; _ } -> "Filter(" ^ Expr.to_string pred ^ ")"
  | Project { exprs; _ } ->
      "Project("
      ^ String.concat ", "
          (List.map (fun (n, e) -> n ^ "=" ^ Expr.to_string e) exprs)
      ^ ")"
  | Hash_join { kind; pred; _ } ->
      Printf.sprintf "HashJoin[%s](%s)" (join_kind_to_string kind)
        (Expr.to_string pred)
  | Nl_join { kind; pred; _ } ->
      Printf.sprintf "NLJoin[%s](%s)" (join_kind_to_string kind)
        (Expr.to_string pred)
  | Agg { group_by; aggs; _ } ->
      Printf.sprintf "Agg(groups=%d, %s)" (List.length group_by)
        (String.concat ", " (List.map (fun (n, a) ->
             n ^ "=" ^ agg_fun_to_string a) aggs))
  | Sort _ -> "Sort"
  | Limit { rows; _ } -> Printf.sprintf "Limit(%d)" rows
  | Motion { kind; _ } -> motion_kind_to_string kind
  | Append cs -> Printf.sprintf "Append(%d children)" (List.length cs)
  | Update { table_oid; _ } -> Printf.sprintf "Update(oid=%d)" table_oid
  | Delete { table_oid; _ } -> Printf.sprintf "Delete(oid=%d)" table_oid
  | Insert { table_oid; rows } ->
      Printf.sprintf "Insert(oid=%d, %d rows)" table_oid (List.length rows)
  | Runtime_filter_build { rf_id; keys; rows_est; _ } ->
      Printf.sprintf "RuntimeFilterBuild(%d, keys=[%s], est=%d)" rf_id
        (String.concat ", " (List.map Colref.to_string keys))
        rows_est
  | Runtime_filter { rf_id; keys; at_motion; _ } ->
      Printf.sprintf "RuntimeFilter(%d, keys=[%s]%s)" rf_id
        (String.concat ", " (List.map Colref.to_string keys))
        (if at_motion then ", pre-Motion" else "")

let rec pp fmt plan =
  let rec go indent p =
    Format.fprintf fmt "%s-> %s@," (String.make indent ' ') (describe p);
    List.iter (go (indent + 2)) (children p)
  in
  Format.fprintf fmt "@[<v>";
  go 0 plan;
  Format.fprintf fmt "@]"

and to_string plan = Format.asprintf "%a" pp plan

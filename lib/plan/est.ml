(** Plan-time cardinality estimates, stamped per physical node.

    The optimizer's row estimator runs once over the finished plan and the
    per-node results are frozen into a pre-order array — the same node
    numbering {!Mpp_exec.Exec} and {!Mpp_exec.Explain} use (root = 0, a
    node's first child is its index + 1, siblings after the whole
    subtree).  [EXPLAIN ANALYZE] then reports estimated-vs-actual rows
    with an error factor per node: the raw misestimate-detection signal
    for adaptive execution, captured {e at plan time} (misestimate
    injections are cleared right after optimization, so stamping later
    would see different statistics).

    Estimates are non-negative floats; a negative entry (or an index past
    the array) means "unknown" — legacy-Planner plans and hand-built test
    plans carry no estimates. *)

type t = float array
(** One estimate per pre-order node index; negative = unknown. *)

let none : t = [||]

(** Stamp a plan: [estimate] is called once per node with the subtree
    rooted there (the optimizer's recursive row estimator) in pre-order.
    An estimator exception marks that node unknown rather than aborting —
    estimation must never make a valid plan unrunnable. *)
let of_plan ~(estimate : Plan.t -> float) (plan : Plan.t) : t =
  let ests =
    Plan.fold
      (fun acc node ->
        let e = try estimate node with _ -> -1.0 in
        (if Float.is_nan e then -1.0 else e) :: acc)
      [] plan
  in
  Array.of_list (List.rev ests)

let find (t : t) id =
  if id >= 0 && id < Array.length t && t.(id) >= 0.0 then Some t.(id)
  else None

(** The error factor between an estimate and an actual row count — the
    symmetric "q-error": [max (est / act, act / est)] with both sides
    clamped to at least 1 row, so a node estimated at 100 rows that
    produced 10 and one estimated at 10 that produced 100 both report
    10.0.  Always >= 1.0; 1.0 is a perfect estimate. *)
let error_factor ~est ~actual =
  let e = Float.max est 1.0 in
  let a = Float.max (float_of_int actual) 1.0 in
  Float.max (e /. a) (a /. e)

(** Runtime-join-filter annotation: the shared plan rewrite both optimizers
    run after Motion insertion and selector placement.

    For each eligible [Hash_join] (equi-join with simple column keys on both
    sides), insert a [Runtime_filter_build] on the build (left) subtree —
    below the build side's Redistribute/Broadcast, so each segment builds
    over its pre-Motion slice and the filter crosses the Motion through the
    channel — and a [Runtime_filter] consumer on the probe (right) subtree,
    pushed down to the probe relation's scan (where the executor fuses it
    into the row loop) or, when the probe stream crosses a
    Redistribute/Broadcast on the way up, directly below that send so
    dropped rows never pay Motion cost.

    The rewrite never changes what the plan computes: both operators are
    semantic no-ops (the consumer only drops probe rows that cannot find a
    build match).  Whether filters actually run is the executor's
    [runtime_filters] knob, so annotated plans are byte-identical across
    the on/off configurations the benchmarks compare.

    Skip rule (DPE redundancy): when every probe key is a partitioning key
    of the probe's DynamicScan and a {e streaming} PartitionSelector
    already routes that scan (join-driven partition elimination, paper
    §2.2), the filter would re-derive exactly what the selector computes —
    the join is left unannotated.  The same applies to the legacy planner's
    guarded-Append expansion. *)

open Mpp_expr
module Partition = Mpp_catalog.Partition
module Table = Mpp_catalog.Table

(* Equi-join (build column, probe column) pairs of [pred]: only simple
   column = column conjuncts qualify — the Bloom key tuple is positional
   over raw column values on both sides. *)
let equi_col_pairs ~build_rels ~probe_rels pred =
  List.filter_map
    (function
      | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
          if
            List.mem a.Colref.rel build_rels
            && List.mem b.Colref.rel probe_rels
          then Some (a, b)
          else if
            List.mem b.Colref.rel build_rels
            && List.mem a.Colref.rel probe_rels
          then Some (b, a)
          else None
      | _ -> None)
    (Expr.conjuncts pred)

(* part_scan_ids driven by a *streaming* selector (child = Some _): those
   DynamicScans already receive join-driven partition elimination. *)
let streaming_selector_ids plan =
  Plan.fold
    (fun acc p ->
      match p with
      | Plan.Partition_selector { part_scan_id; child = Some _; _ } ->
          part_scan_id :: acc
      | _ -> acc)
    [] plan

let part_keys_of ~catalog ~root_oid ~rel =
  match
    (Mpp_catalog.Catalog.find_oid catalog root_oid).Table.partitioning
  with
  | None -> []
  | Some _ ->
      Table.part_key_colrefs
        (Mpp_catalog.Catalog.find_oid catalog root_oid)
        ~rel

let keys_subset keys part_keys =
  keys <> []
  && List.for_all
       (fun k -> List.exists (Colref.equal k) part_keys)
       keys

let root_of_leaf_or_self catalog oid =
  match Mpp_catalog.Catalog.root_of_leaf catalog oid with
  | Some r -> r
  | None -> oid

(* Highest existing rf_id, so re-annotation never reuses a live id. *)
let max_rf_id plan =
  Plan.fold
    (fun acc p ->
      match p with
      | Plan.Runtime_filter_build { rf_id; _ }
      | Plan.Runtime_filter { rf_id; _ } ->
          max acc rf_id
      | _ -> acc)
    0 plan

(* Place the consumer in the probe subtree.  Descends only through
   pass-through operators (the probe relation's full layout survives), so
   wrapping at any reached point typechecks.  Returns [None] when the
   filter is redundant with streaming partition selection. *)
let place_consumer ~catalog ~streaming ~rf_id ~keys probe =
  let key_rel =
    match keys with
    | (k : Colref.t) :: rest
      when List.for_all (fun (c : Colref.t) -> c.Colref.rel = k.Colref.rel)
             rest ->
        Some k.Colref.rel
    | _ -> None
  in
  let wrap ?at_motion child = Plan.runtime_filter ?at_motion ~rf_id ~keys child in
  let rec go node =
    match key_rel with
    | None -> Some (wrap node) (* multi-relation keys: filter the join output *)
    | Some krel -> (
        match node with
        | Plan.Table_scan { rel; table_oid; guard; _ } when rel = krel ->
            (* the legacy planner's guarded leaf scan: when the guard's
               selector already routes on these keys, skip *)
            let root = root_of_leaf_or_self catalog table_oid in
            let part_keys = part_keys_of ~catalog ~root_oid:root ~rel in
            if guard <> None && keys_subset keys part_keys then None
            else Some (wrap node)
        | Plan.Dynamic_scan { rel; root_oid; part_scan_id; _ } when rel = krel
          ->
            let part_keys = part_keys_of ~catalog ~root_oid ~rel in
            if List.mem part_scan_id streaming && keys_subset keys part_keys
            then None (* streaming DPE already routes this scan *)
            else Some (wrap node)
        | Plan.Append children
          when children <> []
               && List.for_all
                    (function
                      | Plan.Table_scan { rel; guard; table_oid; _ } ->
                          rel = krel
                          && (guard = None
                             ||
                             let root =
                               root_of_leaf_or_self catalog table_oid
                             in
                             not
                               (keys_subset keys
                                  (part_keys_of ~catalog ~root_oid:root ~rel)))
                      | _ -> false)
                    children ->
            (* plain (or non-redundantly guarded) leaf expansion: one
               consumer over the Append output *)
            Some (wrap node)
        | Plan.Append children
          when List.for_all
                 (function
                   | Plan.Table_scan { rel; guard = Some _; _ } -> rel = krel
                   | _ -> false)
                 children ->
            None (* guarded expansion already routed on these keys *)
        | Plan.Filter f -> Option.map (fun c -> Plan.Filter { f with child = c }) (go f.child)
        | Plan.Runtime_filter_build b ->
            Option.map
              (fun c -> Plan.Runtime_filter_build { b with child = c })
              (go b.child)
        | Plan.Runtime_filter f ->
            Option.map
              (fun c -> Plan.Runtime_filter { f with child = c })
              (go f.child)
        | Plan.Sequence cs -> (
            (* selectors first, the output child last *)
            match List.rev cs with
            | last :: before ->
                Option.map
                  (fun last' -> Plan.Sequence (List.rev (last' :: before)))
                  (go last)
            | [] -> Some (wrap node))
        | Plan.Motion { kind = (Plan.Redistribute _ | Plan.Broadcast) as kind; child }
          ->
            (* pre-Motion placement: dropped rows never pay Motion cost *)
            Some (Plan.Motion { kind; child = wrap ~at_motion:true child })
        | Plan.Motion { kind = Plan.Gather | Plan.Gather_one; _ } ->
            (* never push a filter across a Gather: filter above it *)
            Some (wrap node)
        | Plan.Hash_join j ->
            descend_join node krel
              (fun l -> Plan.Hash_join { j with left = l })
              (fun r -> Plan.Hash_join { j with right = r })
              j.left j.right
        | Plan.Nl_join j ->
            descend_join node krel
              (fun l -> Plan.Nl_join { j with left = l })
              (fun r -> Plan.Nl_join { j with right = r })
              j.left j.right
        | _ -> Some (wrap node))
  and descend_join node krel mkl mkr left right =
    let inl = List.mem krel (Plan.output_rels left)
    and inr = List.mem krel (Plan.output_rels right) in
    if inl && not inr then Option.map mkl (go left)
    else if inr && not inl then Option.map mkr (go right)
    else Some (Plan.runtime_filter ~rf_id ~keys node)
  in
  go probe

(* Place the builder on the build subtree: below the build side's top
   Redistribute/Broadcast when one exists (per-segment pre-Motion build),
   directly on top otherwise.  The builder's keys are build-side join keys,
   so they resolve in either position. *)
let place_builder ~rf_id ~keys ~rows_est build =
  match build with
  | Plan.Motion { kind = (Plan.Redistribute _ | Plan.Broadcast) as kind; child }
    ->
      Plan.Motion
        { kind; child = Plan.runtime_filter_build ~rf_id ~keys ~rows_est child }
  | p -> Plan.runtime_filter_build ~rf_id ~keys ~rows_est p

let eligible_kind = function
  | Plan.Inner | Plan.Left_outer | Plan.Semi -> true

let annotate ~catalog ~decide plan =
  let streaming = streaming_selector_ids plan in
  let next = ref (max_rf_id plan + 1) in
  let rec go p =
    (* bottom-up: inner joins annotate first; outer descents treat the
       inserted nodes as pass-through *)
    let p = Plan.with_children p (List.map go (Plan.children p)) in
    match p with
    | Plan.Hash_join { kind; pred; left; right } when eligible_kind kind -> (
        let build_rels = Plan.output_rels left
        and probe_rels = Plan.output_rels right in
        match equi_col_pairs ~build_rels ~probe_rels pred with
        | [] -> p
        | pairs -> (
            let build_keys = List.map fst pairs
            and probe_keys = List.map snd pairs in
            match decide ~build:left ~probe:right ~build_keys ~probe_keys with
            | None -> p
            | Some rows_est -> (
                let rf_id = !next in
                match
                  place_consumer ~catalog ~streaming ~rf_id ~keys:probe_keys
                    right
                with
                | None -> p
                | Some right' ->
                    incr next;
                    let left' =
                      place_builder ~rf_id ~keys:build_keys ~rows_est left
                    in
                    Plan.Hash_join { kind; pred; left = left'; right = right' }
                )))
    | p -> p
  in
  go plan

(** Runtime-join-filter annotation: the shared post-placement rewrite that
    inserts [Runtime_filter_build] / [Runtime_filter] pairs around eligible
    hash joins — see [rf_annotate.ml] for the placement rules and the
    streaming-DPE redundancy skip.  Both operators are semantic no-ops, so
    the rewrite never changes query results; the executor's
    [runtime_filters] knob decides whether the filters actually run. *)

open Mpp_expr

val annotate :
  catalog:Mpp_catalog.Catalog.t ->
  decide:
    (build:Plan.t ->
    probe:Plan.t ->
    build_keys:Colref.t list ->
    probe_keys:Colref.t list ->
    int option) ->
  Plan.t ->
  Plan.t
(** [annotate ~catalog ~decide plan] rewrites every eligible [Hash_join]
    (Inner/Semi/Left_outer equi-join with column keys on both sides) whose
    [decide] callback returns [Some rows_est] — the build-side cardinality
    estimate that sizes the Bloom filter deterministically.  Returning
    [None] skips the join (the optimizer's cost veto).  Joins whose filter
    would only re-derive streaming partition selection are skipped
    regardless. *)

val equi_col_pairs :
  build_rels:int list ->
  probe_rels:int list ->
  Expr.t ->
  (Colref.t * Colref.t) list
(** The (build column, probe column) equality pairs of a join predicate —
    exposed for the optimizers' costing. *)

(** Plan-time cardinality estimates, stamped per physical node in the
    pre-order numbering shared with the executor and [EXPLAIN ANALYZE]
    (root = 0; a node's first child is its index + 1). *)

type t = float array
(** One estimate per pre-order node index; negative = unknown. *)

val none : t
(** No estimates (legacy-Planner and hand-built plans). *)

val of_plan : estimate:(Plan.t -> float) -> Plan.t -> t
(** Stamp every node: [estimate] receives the subtree rooted at each node,
    pre-order.  An estimator exception (or NaN) marks that node unknown
    instead of aborting. *)

val find : t -> int -> float option
(** The estimate for node [id]; [None] when unknown or out of range. *)

val error_factor : est:float -> actual:int -> float
(** Symmetric q-error: [max (est/act, act/est)], both clamped to >= 1 row.
    Always >= 1.0; 1.0 is a perfect estimate. *)

(** The plan-size model behind the paper's §4.4 experiments.

    Plan size is what gets serialized and shipped to every segment.  The
    model charges:
    - a fixed header per operator node;
    - the serialized size of every expression in the node;
    - a fat "relation descriptor" for each scan node (relation metadata and
      target list) — this is why Planner plans that enumerate partitions
      explicitly grow linearly (or, for DML, quadratically) with the number
      of partitions;
    - for each [PartitionSelector], the partition-constraint metadata of its
      root table, which in the real system must be embedded in the plan
      because segments cannot look it up (the "limitation of the way
      metadata is replicated" the paper reports) — this reproduces the mild
      growth of Orca plan sizes in Figures 18(b) and 18(c).

    Constants are calibrated to the structure of Greenplum plans, not to
    reproduce the paper's absolute byte counts; the claims under test are
    the growth shapes and the Planner/Orca gap. *)

let node_header = 128
(* relation metadata + target list of a scan *)
let scan_descriptor = 2048
let selector_descriptor = 256
let motion_descriptor = 256
let join_descriptor = 256
let agg_descriptor = 256
let dml_descriptor = 512
(* one constraint row shipped in-plan *)
let per_partition_metadata = 64

let expr_size = Mpp_expr.Expr.serialized_size

let opt_expr_size = function None -> 1 | Some e -> expr_size e

(** Serialized size in bytes of [plan].  [catalog] supplies partition counts
    for the metadata charge of PartitionSelectors. *)
let bytes ~catalog (plan : Plan.t) : int =
  let rec size (p : Plan.t) =
    let payload =
      match p with
      | Plan.Table_scan { filter; _ } -> scan_descriptor + opt_expr_size filter
      | Plan.Dynamic_scan { filter; _ } ->
          scan_descriptor + opt_expr_size filter
      | Plan.Partition_selector { root_oid; predicates; child; _ } ->
          let nparts =
            Mpp_catalog.Table.nparts (Mpp_catalog.Catalog.find_oid catalog root_oid)
          in
          selector_descriptor
          + List.fold_left (fun acc pr -> acc + opt_expr_size pr) 0 predicates
          + (nparts * per_partition_metadata)
          + (match child with None -> 0 | Some c -> size c)
      | Plan.Sequence cs | Plan.Append cs ->
          List.fold_left (fun acc c -> acc + size c) (8 * List.length cs) cs
      | Plan.Filter { pred; child } -> expr_size pred + size child
      | Plan.Project { exprs; child } ->
          List.fold_left (fun acc (_, e) -> acc + expr_size e) 0 exprs
          + size child
      | Plan.Hash_join { pred; left; right; _ }
      | Plan.Nl_join { pred; left; right; _ } ->
          join_descriptor + expr_size pred + size left + size right
      | Plan.Agg { group_by; aggs; child; output_rel = _ } ->
          agg_descriptor
          + List.fold_left (fun acc e -> acc + expr_size e) 0 group_by
          + (64 * List.length aggs)
          + size child
      | Plan.Sort { keys; child } ->
          List.fold_left (fun acc e -> acc + expr_size e) 64 keys + size child
      | Plan.Limit { child; _ } -> 16 + size child
      | Plan.Motion { child; _ } -> motion_descriptor + size child
      | Plan.Update { set_exprs; child; _ } ->
          dml_descriptor
          + List.fold_left (fun acc (_, e) -> acc + expr_size e) 0 set_exprs
          + size child
      | Plan.Delete { child; _ } -> dml_descriptor + size child
      | Plan.Insert { rows; _ } ->
          List.fold_left
            (fun acc row ->
              List.fold_left (fun a e -> a + expr_size e) acc row)
            dml_descriptor rows
      | Plan.Runtime_filter_build { keys; child; _ }
      | Plan.Runtime_filter { keys; child; _ } ->
          (* a filter spec ships key colrefs and an id, never filter bits *)
          64 + (16 * List.length keys) + size child
    in
    node_header + payload
  in
  size plan

let kilobytes ~catalog plan = float_of_int (bytes ~catalog plan) /. 1024.0

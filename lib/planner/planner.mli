(** The legacy "Planner" baseline — the comparison system of the paper's
    evaluation (§4), faithful to the documented pre-Orca Greenplum planner:

    - partitioned tables expand into an [Append] of per-leaf scans, so plan
      size grows with the partition count;
    - static elimination is constraint exclusion at plan time;
    - dynamic elimination is rudimentary: only a direct equality join
      against the level-0 key of a plain expansion, realized as a run-time
      parameter (a selector feeding the leaf scans' [guard]s) while the plan
      still lists every surviving leaf (§4.4.2);
    - join orientation is as written; DML expands the join per target leaf,
      making DML plans quadratic in the partition count (§4.4.3). *)

type config = {
  enable_static_elimination : bool;
  enable_dynamic_elimination : bool;
  simplify : bool;
      (** abstract-interpretation pass over the finished plan
          ({!Mpp_analysis.Analysis.simplify_plan}) *)
  nsegments : int;
}

val default_config : config

type t

val create : ?config:config -> catalog:Mpp_catalog.Catalog.t -> unit -> t

exception Invalid_plan of string

val plan : t -> Orca.Logical.t -> Mpp_plan.Plan.t
(** Plan a logical tree with the legacy planner; raises {!Invalid_plan} on a
    malformed result (a bug, not an input error). *)

(** The legacy "Planner" baseline — the comparison system of the paper's
    evaluation (§4).

    Faithful to the documented behaviour of the pre-Orca Greenplum planner
    (PostgreSQL inheritance):

    - a partitioned table is expanded into an [Append] of one [Table_scan]
      per leaf partition, so {e plan size grows with the partition count};
    - {e static} partition elimination is constraint exclusion: leaves whose
      check constraint contradicts the query's constant predicates are
      dropped from the Append at plan time;
    - {e dynamic} elimination exists but is rudimentary: only for a direct
      equality join against the level-0 partitioning key of a plain
      (possibly filtered) partitioned-table expansion.  The partition OIDs
      are computed at run time into a parameter — modelled by a
      [Partition_selector] feeding the [guard] field of the leaf scans — but
      the plan still lists {e every} surviving leaf (paper §4.4.2);
    - join orientation is as written (no cost-based flip), with a broadcast
      of the build side when not co-located;
    - DML over partitioned tables enumerates the join per target leaf,
      which makes DML plan size quadratic in the partition count (§4.4.3). *)

open Mpp_expr
module Plan = Mpp_plan.Plan
module Table = Mpp_catalog.Table
module Partition = Mpp_catalog.Partition
module Distribution = Mpp_catalog.Distribution
module Logical = Orca.Logical

type config = {
  enable_static_elimination : bool;
  enable_dynamic_elimination : bool;
  simplify : bool;
      (** abstract-interpretation pass over the finished plan: drop
          always-true conjuncts, collapse always-false filters, and (when
          static elimination is on) re-run static exclusion with implied
          partition-key restrictions *)
  nsegments : int;
}

let default_config =
  {
    enable_static_elimination = true;
    enable_dynamic_elimination = true;
    simplify = true;
    nsegments = 4;
  }

type t = {
  catalog : Mpp_catalog.Catalog.t;
  config : config;
  mutable next_scan_id : int;
}

let create ?(config = default_config) ~catalog () =
  { catalog; config; next_scan_id = 1 }

let fresh_scan_id t =
  let id = t.next_scan_id in
  t.next_scan_id <- id + 1;
  id

(* Information about a subtree that is still a plain expansion of one
   partitioned table — the only shape the legacy planner can apply dynamic
   elimination to. *)
type expansion = {
  exp_rel : int;
  exp_table : Table.t;
  exp_partitioning : Partition.t;
  exp_leaves : Partition.leaf list;  (** survivors of static exclusion *)
  exp_filter : Expr.t option;
}

type sub = {
  plan : Plan.t;
  dist : [ `Hashed of Colref.t list | `Replicated | `Other ];
  expansion : expansion option;
}

let append_of_expansion ?guard (e : expansion) : Plan.t =
  match e.exp_leaves with
  | [] ->
      (* Static exclusion eliminated every partition.  An empty Append has
         no output layout, so any parent operator that references the
         table's columns (a measure aggregate, a join key) would fail to
         compile at run time — a latent crash the plan verifier's schema
         pass rejects.  Scan a single leaf under an always-false filter
         instead: same empty result, correct tuple layout, nothing read. *)
      let lf = e.exp_partitioning.Partition.leaves.(0) in
      Plan.Append
        [ Plan.table_scan ~filter:Expr.false_ ?guard ~rel:e.exp_rel
            lf.Partition.leaf_oid ]
  | leaves ->
      Plan.Append
        (List.map
           (fun (lf : Partition.leaf) ->
             Plan.table_scan ?filter:e.exp_filter ?guard ~rel:e.exp_rel
               lf.Partition.leaf_oid)
           leaves)

let finalize (s : sub) : Plan.t =
  match s.expansion with Some e -> append_of_expansion e | None -> s.plan

(* Constraint exclusion: drop the leaves whose constraints contradict the
   constant restrictions derivable from [pred]. *)
let static_exclusion t (e : expansion) pred : expansion =
  if not t.config.enable_static_elimination then e
  else begin
    let keys = Table.part_key_colrefs e.exp_table ~rel:e.exp_rel in
    let restrictions =
      List.map
        (fun key ->
          match Expr.restriction key pred with
          | Some set -> Some set
          | None -> None)
        keys
      |> Array.of_list
    in
    let surviving = Partition.select e.exp_partitioning restrictions in
    let surviving_oids =
      List.map (fun (lf : Partition.leaf) -> lf.Partition.leaf_oid) surviving
    in
    {
      e with
      exp_leaves =
        List.filter
          (fun (lf : Partition.leaf) ->
            List.mem lf.Partition.leaf_oid surviving_oids)
          e.exp_leaves;
    }
  end

let dist_of_table (table : Table.t) ~rel =
  match table.Table.distribution with
  | Distribution.Hashed cols ->
      `Hashed
        (List.map
           (fun i ->
             let name, dtype = table.Table.columns.(i) in
             Colref.make ~rel ~index:i ~name ~dtype)
           cols)
  | Distribution.Replicated -> `Replicated
  | Distribution.Random | Distribution.Singleton -> `Other

let plan_get t ~rel name : sub =
  let table = Mpp_catalog.Catalog.find t.catalog name in
  let dist = dist_of_table table ~rel in
  match table.Table.partitioning with
  | None -> { plan = Plan.table_scan ~rel table.Table.oid; dist; expansion = None }
  | Some p ->
      {
        plan = Plan.Append [] (* replaced by [finalize] *);
        dist;
        expansion =
          Some
            {
              exp_rel = rel;
              exp_table = table;
              exp_partitioning = p;
              exp_leaves = Array.to_list p.Partition.leaves;
              exp_filter = None;
            };
      }

let plan_select t pred (child : sub) : sub =
  match child.expansion with
  | Some e ->
      let e =
        {
          e with
          exp_filter =
            (match e.exp_filter with
            | None -> Some pred
            | Some f -> Some (Expr.conj [ f; pred ]));
        }
      in
      { child with expansion = Some (static_exclusion t e pred) }
  | None -> (
      match child.plan with
      | Plan.Table_scan ({ filter = None; _ } as s) ->
          { child with plan = Plan.Table_scan { s with filter = Some pred } }
      | p -> { child with plan = Plan.filter pred p })

(* The single pattern the legacy planner's dynamic elimination handles:
   equality between the probe expansion's level-0 partitioning key and an
   expression over the build side. *)
let planner_dpe_predicate ~(probe : expansion) ~build_rels pred =
  match Table.part_key_colrefs probe.exp_table ~rel:probe.exp_rel with
  | [ key ] -> (
      match
        List.find_opt
          (function
            | Expr.Cmp (Expr.Eq, a, b) ->
                let is_key e =
                  match e with Expr.Col c -> Colref.equal c key | _ -> false
                in
                let other_side e =
                  Expr.rels e <> []
                  && List.for_all (fun r -> List.mem r build_rels) (Expr.rels e)
                in
                (is_key a && other_side b) || (is_key b && other_side a)
            | _ -> false)
          (Expr.conjuncts pred)
      with
      | Some c -> Some (key, c)
      | None -> None)
  | _ -> None (* multi-level: not supported by the legacy planner *)

let plan_join t ~kind ~pred (left : sub) (right : sub) : sub =
  (* As-written orientation (left = build) — except semi joins, whose
     preserved side is the logical left and must be the probe. *)
  let build, probe =
    match kind with Plan.Semi -> (right, left) | _ -> (left, right)
  in
  let build_plan = finalize build in
  let build_rels = Plan.output_rels build_plan in
  (* co-location: only when the build side is already replicated; the legacy
     planner otherwise broadcasts the build side *)
  let build_plan =
    match (build.dist, probe.dist) with
    | `Replicated, _ -> build_plan
    | _, `Replicated ->
        (* the probe side lives everywhere: the distributed build side can
           stay in place *)
        build_plan
    | (`Hashed _ | `Other), _ -> Plan.motion Plan.Broadcast build_plan
  in
  let join_plan =
    match probe.expansion with
    | Some e when t.config.enable_dynamic_elimination -> (
        match planner_dpe_predicate ~probe:e ~build_rels pred with
        | Some (key, key_pred) ->
            (* runtime parameter: selector on the build side fills the
               channel; every leaf scan is guarded by it *)
            let part_scan_id = fresh_scan_id t in
            let selector =
              Plan.partition_selector ~child:build_plan ~part_scan_id
                ~root_oid:e.exp_table.Table.oid ~keys:[ key ]
                ~predicates:[ Some key_pred ] ()
            in
            let guarded = append_of_expansion ~guard:part_scan_id e in
            Plan.Hash_join { kind; pred; left = selector; right = guarded }
        | None ->
            Plan.Hash_join
              { kind; pred; left = build_plan; right = finalize probe })
    | _ ->
        Plan.Hash_join { kind; pred; left = build_plan; right = finalize probe }
  in
  {
    plan = join_plan;
    dist =
      (match (probe.dist, build.dist) with
      | `Replicated, ((`Hashed _ | `Other) as d) -> d
      | d, _ -> d);
    expansion = None;
  }

let gather (s : sub) : Plan.t =
  let p = finalize s in
  match s.dist with
  | `Other | `Hashed _ -> Plan.motion Plan.Gather p
  | `Replicated -> Plan.motion Plan.Gather_one p

let rec build t (lg : Logical.t) : sub =
  match lg with
  | Logical.Get { rel; table_name } -> plan_get t ~rel table_name
  | Logical.Select { pred; child } -> plan_select t pred (build t child)
  | Logical.Join { kind; pred; left; right } ->
      plan_join t ~kind ~pred (build t left) (build t right)
  | Logical.Aggregate { group_by; aggs; child } ->
      let c = build t child in
      {
        plan = Plan.agg ~group_by ~aggs (gather c);
        dist = `Other;
        expansion = None;
      }
  | Logical.Project { exprs; child } ->
      let c = build t child in
      { plan = Plan.Project { exprs; child = finalize c }; dist = c.dist;
        expansion = None }
  | Logical.Sort { keys; child } ->
      let c = build t child in
      { plan = Plan.Sort { keys; child = gather c }; dist = `Other;
        expansion = None }
  | Logical.Limit { rows; child } ->
      let c = build t child in
      { plan = Plan.Limit { rows; child = gather c }; dist = `Other;
        expansion = None }
  | Logical.Update { rel; table_name; set_cols; child } ->
      plan_dml t ~rel ~table_name ~set_cols:(Some set_cols) child
  | Logical.Delete { rel; table_name; child } ->
      plan_dml t ~rel ~table_name ~set_cols:None child
  | Logical.Insert { table_name; rows } ->
      let table = Mpp_catalog.Catalog.find t.catalog table_name in
      { plan = Plan.Insert { table_oid = table.Table.oid; rows };
        dist = `Other; expansion = None }

(* DML: the legacy planner plans the (join) child once per leaf of the
   target table — each target leaf joined against the full expansion of the
   other side — which is the quadratic plan growth of paper §4.4.3. *)
and plan_dml t ~rel ~table_name ~set_cols child : sub =
  let table = Mpp_catalog.Catalog.find t.catalog table_name in
  let set_exprs =
    match set_cols with
    | None -> None
    | Some cols ->
        Some (List.map (fun (c, e) -> (Table.col_index table c, e)) cols)
  in
  let dml_node body =
    match set_exprs with
    | Some set_exprs ->
        Plan.Update { rel; table_oid = table.Table.oid; set_exprs; child = body }
    | None -> Plan.Delete { rel; table_oid = table.Table.oid; child = body }
  in
  match table.Table.partitioning with
  | None ->
      let c = build t child in
      { plan = dml_node (finalize c); dist = `Other; expansion = None }
  | Some p ->
      (* Rebuild the child once per target leaf, with the target Get
         replaced by a scan of that leaf. *)
      let leaves = Array.to_list p.Partition.leaves in
      let per_leaf (lf : Partition.leaf) =
        let rec subst (lg : Logical.t) : sub =
          match lg with
          | Logical.Get { rel = r; table_name = n } when r = rel && n = table_name
            ->
              {
                plan = Plan.table_scan ~rel:r lf.Partition.leaf_oid;
                dist = dist_of_table table ~rel:r;
                expansion = None;
              }
          | Logical.Get { rel = r; table_name = n } -> plan_get t ~rel:r n
          | Logical.Select { pred; child } -> plan_select t pred (subst child)
          | Logical.Join { kind; pred; left; right } ->
              plan_join t ~kind ~pred (subst left) (subst right)
          | _ -> { plan = finalize (build t lg); dist = `Other; expansion = None }
        in
        finalize (subst child)
      in
      let body = Plan.Append (List.map per_leaf leaves) in
      { plan = dml_node body; dist = `Other; expansion = None }

exception Invalid_plan of string

(* Build-side cardinality for sizing a runtime join filter: textbook
   default rowcounts of the base relations in the subtree (the legacy
   planner has no analyzed statistics), leaf scans resolved to their one
   partition's share.  It only has to be deterministic and roughly
   order-of-magnitude right — the executor caps the Bloom size. *)
let rf_rows_est t (p : Plan.t) : int =
  let rows =
    Plan.fold
      (fun acc node ->
        match node with
        | Plan.Table_scan { table_oid; _ } -> (
            match Mpp_catalog.Catalog.root_of_leaf t.catalog table_oid with
            | Some root ->
                let tbl = Mpp_catalog.Catalog.find_oid t.catalog root in
                let nparts =
                  match tbl.Table.partitioning with
                  | Some pt -> max 1 (Partition.nparts pt)
                  | None -> 1
                in
                acc
                + max 1
                    ((Mpp_stats.Stats.defaults tbl).Mpp_stats.Stats.rowcount
                    / nparts)
            | None ->
                let tbl = Mpp_catalog.Catalog.find_oid t.catalog table_oid in
                acc + (Mpp_stats.Stats.defaults tbl).Mpp_stats.Stats.rowcount)
        | Plan.Dynamic_scan { root_oid; _ } ->
            let tbl = Mpp_catalog.Catalog.find_oid t.catalog root_oid in
            acc + (Mpp_stats.Stats.defaults tbl).Mpp_stats.Stats.rowcount
        | _ -> acc)
      0 p
  in
  max 1 rows

(* The legacy planner is not cost-based, and its runtime-filter policy is
   equally simple: annotate every eligible equi-join (the shared rewrite
   still skips joins whose filter would only re-derive the guard-based
   dynamic elimination). *)
let rf_decide t ~build ~probe:_ ~build_keys:_ ~probe_keys:_ =
  Some (rf_rows_est t build)

(** Plan a logical tree with the legacy planner. *)
let plan t (lg : Logical.t) : Plan.t =
  t.next_scan_id <- 1;
  let s = build t lg in
  let p =
    match lg with
    | Logical.Update _ | Logical.Delete _ | Logical.Insert _
    | Logical.Aggregate _ | Logical.Sort _ | Logical.Limit _ ->
        finalize s
    | _ -> gather s
  in
  let p =
    if t.config.simplify then
      Mpp_analysis.Analysis.simplify_plan ~catalog:t.catalog
        ~strengthen:t.config.enable_static_elimination p
    else p
  in
  let p = Mpp_plan.Rf_annotate.annotate ~catalog:t.catalog ~decide:(rf_decide t) p in
  (* Every plan the legacy planner emits runs the full static verifier —
     the same six passes the Orca pipeline must satisfy, which is what
     makes the two optimizers differentially checkable. *)
  match Mpp_verify.Diag.errors (Mpp_verify.Verify.check ~catalog:t.catalog p) with
  | [] -> p
  | errors ->
      raise
        (Invalid_plan
           (String.concat "; " (List.map Mpp_verify.Diag.to_string errors)))

(** Fixed-width bitsets over leaf-partition indices — see bitset.mli.

    Representation: an [int array] of [Sys.int_size]-bit words (63 on
    64-bit).  The invariant that bits at or beyond [length] are clear is
    maintained by every operation ({!full} masks its last word), so the
    word-parallel queries ([cardinal], [is_empty], [equal]) need no
    per-query masking. *)

let bits_per_word = Sys.int_size

type t = { len : int; words : int array }

let nwords len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative length";
  { len; words = Array.make (nwords len) 0 }

let full len =
  if len < 0 then invalid_arg "Bitset.full: negative length";
  let n = nwords len in
  let words = Array.make n (-1) in
  (* clear the ghost bits of the last word *)
  let rem = len - ((n - 1) * bits_per_word) in
  if n > 0 && rem < bits_per_word then
    words.(n - 1) <- (1 lsl rem) - 1;
  { len; words }

let length t = t.len

let set t i =
  if i < 0 || i >= t.len then invalid_arg "Bitset.set: index out of range";
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let mem t i =
  if i < 0 || i >= t.len then false
  else t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let check_same_len op a b =
  if a.len <> b.len then invalid_arg ("Bitset." ^ op ^ ": length mismatch")

let union_into ~into src =
  check_same_len "union_into" into src;
  for w = 0 to Array.length into.words - 1 do
    into.words.(w) <- into.words.(w) lor src.words.(w)
  done

let inter_into ~into src =
  check_same_len "inter_into" into src;
  for w = 0 to Array.length into.words - 1 do
    into.words.(w) <- into.words.(w) land src.words.(w)
  done

let set_list t l = List.iter (set t) l
let set_array t a = Array.iter (set t) a

let is_empty t = Array.for_all (fun w -> w = 0) t.words

(* SWAR popcount on the non-negative word images; OCaml ints are 63-bit so
   the 64-bit constants truncate harmlessly. *)
let popcount x =
  let x = x - ((x lsr 1) land 0x5555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

let cardinal t =
  Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter_set f t =
  let n = Array.length t.words in
  for wi = 0 to n - 1 do
    let w = ref t.words.(wi) in
    let i = ref (wi * bits_per_word) in
    while !w <> 0 do
      if !w land 1 = 1 then f !i;
      w := !w lsr 1;
      incr i
    done
  done

let fold_right_set f t init =
  let acc = ref init in
  let n = Array.length t.words in
  for wi = n - 1 downto 0 do
    let w = t.words.(wi) in
    if w <> 0 then begin
      let base = wi * bits_per_word in
      for b = bits_per_word - 1 downto 0 do
        if w land (1 lsl b) <> 0 then acc := f (base + b) !acc
      done
    end
  done;
  !acc

let first_set t =
  let n = Array.length t.words in
  let rec go wi =
    if wi >= n then None
    else
      let w = t.words.(wi) in
      if w = 0 then go (wi + 1)
      else begin
        let i = ref (wi * bits_per_word) and w = ref w in
        while !w land 1 = 0 do
          w := !w lsr 1;
          incr i
        done;
        Some !i
      end
  in
  go 0

let to_list t = fold_right_set (fun i acc -> i :: acc) t []

let copy t = { len = t.len; words = Array.copy t.words }

let equal a b = a.len = b.len && a.words = b.words

(** Fixed-width bitsets over leaf-partition indices.

    The partition-selection index ({!Partition.Index}) computes per-level
    survivor sets as bitsets and intersects them across levels — compact
    word-parallel set algebra instead of filtering leaf lists.  A bitset is
    created with a fixed [length]; bits at or beyond [length] are always
    clear (operations maintain the invariant, so {!cardinal} / {!is_empty} /
    {!equal} never see ghost bits). *)

type t

val create : int -> t
(** [create n]: length-[n] bitset, all bits clear. *)

val full : int -> t
(** [full n]: length-[n] bitset, bits [0..n-1] set. *)

val length : t -> int

val set : t -> int -> unit
(** Set bit [i]; raises [Invalid_argument] when out of range. *)

val mem : t -> int -> bool

val union_into : into:t -> t -> unit
(** [union_into ~into s]: [into := into ∪ s].  Lengths must match. *)

val inter_into : into:t -> t -> unit
(** [into := into ∩ s].  Lengths must match. *)

val set_list : t -> int list -> unit
(** Set every index of the list. *)

val set_array : t -> int array -> unit

val is_empty : t -> bool
val cardinal : t -> int

val iter_set : (int -> unit) -> t -> unit
(** Visit set bits in ascending order. *)

val fold_right_set : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over set bits in descending order — builds ascending lists without
    a reversal. *)

val first_set : t -> int option
val to_list : t -> int list
val copy : t -> t
val equal : t -> t -> bool

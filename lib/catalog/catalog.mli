(** The metadata catalog: OID allocation and table lookup by name or OID.
    Leaf partitions register alongside their root so storage can locate a
    partition's tuples from its OID alone (paper §2.1). *)

type t

val create : unit -> t
val alloc_oid : t -> int

val add_table :
  t ->
  name:string ->
  columns:(string * Mpp_expr.Value.datatype) list ->
  distribution:Distribution.t ->
  ?partitioning:Partition.t ->
  unit ->
  Table.t
(** Registers a table; [partitioning] must have been built with this
    catalog's {!alloc_oid}.  Raises [Invalid_argument] on duplicates. *)

val find : t -> string -> Table.t
(** Raises [Invalid_argument] for unknown names. *)

val find_opt : t -> string -> Table.t option

val find_oid : t -> int -> Table.t
(** Lookup by root OID; raises [Invalid_argument] when absent. *)

val root_of_leaf : t -> int -> int option
(** Root OID of the partitioned table a leaf belongs to. *)

val tables : t -> Table.t list
(** All registered tables, by ascending OID. *)

val generation : t -> int
(** Monotone DDL generation stamp: starts at 0 and increments on every
    {!add_table} (and on explicit {!bump_generation}).  Plan caches record
    the generation a plan was optimized under and drop entries whose stamp
    no longer matches. *)

val bump_generation : t -> unit
(** Force an invalidation without a schema change — e.g. after a bulk load
    that shifts the statistics a cached plan was costed against. *)

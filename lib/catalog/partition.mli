(** Partitioning metadata: the logical model of paper §2.1 plus the
    multi-level extension of §2.4.

    A partitioned table has a list of {e levels} (key column + scheme) and
    {e leaf} partitions, each a separate physical table (own OID) carrying
    one constraint per level in the §3.2 normal form — an interval set — or
    [Default], the catch-all for values (including NULL) no sibling accepts.

    This module implements the paper's two functions:
    - [f_T] — {!route}: key values → leaf (or ⊥);
    - [f*_T] — {!select}: per-level restrictions → the leaves that can hold
      satisfying tuples (an over-approximation, never dropping a qualifying
      leaf).

    Both are served by a selection {!Index} built once per table and cached
    on the metadata record: sorted boundary arrays (binary-searched interval
    → leaf-set lookup) per range level, a value → leaf-set hash per
    categorical level, precomputed per-(level, prefix) covered sets for O(1)
    default-arm checks, and an OID hash for leaf lookup; per-level survivor
    sets are intersected as {!Bitset}s.  The pre-index linear
    implementations remain as [*_legacy] oracles. *)

open Mpp_expr

type oid = int
type scheme = Range | Categorical

type level = { key_index : int; key_name : string; scheme : scheme }

type constr =
  | Cset of Interval.Set.t
      (** the values this partition accepts at this level *)
  | Default  (** everything the siblings reject, and NULLs *)

type leaf = {
  leaf_oid : oid;
  leaf_name : string;
  bounds : constr array;  (** one constraint per level, root to leaf *)
}

type index
(** The per-table selection index; build/obtain one via
    {!Index.of_partitioning}. *)

type t = {
  levels : level array;
  leaves : leaf array;
  mutable cached_index : index option;
      (** internal build-once cache; always construct with [None] (the
          layout constructors below do) *)
}

val nlevels : t -> int
val nparts : t -> int
val leaf_oids : t -> oid list
val key_indices : t -> int list

val find_leaf : t -> oid -> leaf option
(** OID → leaf via the index's hash table. *)

val route : t -> Value.t array -> leaf option
(** [f_T]: the leaf that must store a tuple with these key values (one per
    level); [None] is the invalid partition ⊥.  Indexed: O(log P) binary
    search (or O(1) hash for categorical levels) per level. *)

val select : t -> Interval.Set.t option array -> leaf list
(** [f*_T]: leaves that may hold satisfying tuples under the given per-level
    restrictions ([None] = no predicate on that level).  Sound by
    construction, indexed, and oid-for-oid equal to {!select_legacy}. *)

val select_oids : t -> Interval.Set.t option array -> oid list

val route_legacy : t -> Value.t array -> leaf option
(** The pre-index O(P·levels) implementation — the executable oracle the
    property tests and [bench part-select] compare the index against. *)

val select_legacy : t -> Interval.Set.t option array -> leaf list
(** The pre-index implementation scanning every leaf (with an O(P) sibling
    rescan per default-arm check) — the selection oracle. *)

val select_oids_legacy : t -> Interval.Set.t option array -> oid list

(** The partition-selection index of one table (paper §5's plan-scalability
    concern, applied to selection itself): built once, cached on the
    metadata record, and consulted by {!route} / {!select} / {!find_leaf}
    and by the executor, storage router and optimizer. *)
module Index : sig
  type partitioning := t
  type t = index

  val of_partitioning : partitioning -> t
  (** The table's index, building and caching it on first use.  Build the
      index from a single domain before sharing the partitioning across
      domains (the executor does this in [create_ctx]). *)

  val build : partitioning -> t
  (** Always builds fresh, ignoring the cache (benchmarks use this to time
      construction). *)

  val nparts : t -> int
  val find_leaf : t -> oid -> leaf option
  val route : t -> Value.t array -> leaf option
  val select : t -> Interval.Set.t option array -> leaf list
  val select_oids : t -> Interval.Set.t option array -> oid list

  val select_bits : t -> Interval.Set.t option array -> Bitset.t
  (** Survivors as a bitset over leaf indices (positions in
      [partitioning.leaves]) — the executor's streaming-selection
      currency. *)

  val count_selected : t -> Interval.Set.t option array -> int
  (** [cardinal (select_bits …)] without materializing leaves — the
      optimizer's statically-surviving partition count. *)
end

(** {2 Constructors for common layouts} *)

val single_level :
  alloc_oid:(unit -> oid) ->
  key_index:int ->
  key_name:string ->
  scheme:scheme ->
  table_name:string ->
  constr list ->
  t

val monthly_ranges : start_year:int -> start_month:int -> months:int -> constr list
(** Monthly range partitions — the chronological layout of paper Figure 1. *)

val daily_ranges : start_date:Date.t -> width_days:int -> count:int -> constr list
val int_ranges : start:int -> width:int -> count:int -> constr list

val categorical : Value.t list list -> constr list
(** One categorical partition per value list. *)

val two_level :
  alloc_oid:(unit -> oid) ->
  table_name:string ->
  level1:level ->
  constrs1:constr list ->
  level2:level ->
  constrs2:constr list ->
  t
(** Cross product of two levels (the orders-by-date-and-region layout of
    paper Figure 9). *)

val multi_level :
  alloc_oid:(unit -> oid) ->
  table_name:string ->
  (level * constr list) list ->
  t
(** Arbitrary-depth hierarchy as the cross product of per-level constraint
    lists. *)

val pp_constr : Format.formatter -> constr -> unit
val pp : Format.formatter -> t -> unit

(** Partitioning metadata: the logical model of paper §2.1 plus the
    multi-level extension of §2.4.

    A partitioned table carries a list of {e levels}, each naming a
    partitioning-key column and a scheme (range or categorical).  Its data is
    held by {e leaf} partitions; each leaf has an OID, a physical-table name
    and one constraint per level.  Constraints are in the paper's §3.2 normal
    form: [pk ∈ ∪ᵢ (aᵢ₁, aᵢₖ)], i.e. an {!Mpp_expr.Interval.Set.t} — or
    [Default], the catch-all partition for values (including NULL) no sibling
    accepts.

    This module implements the two functions of §2.1:
    - [f_T] — {!route}: map a tuple's key values to its leaf (or ⊥);
    - [f*_T] — {!select}: map per-level restrictions to the set of leaf OIDs
      that can satisfy them (an over-approximation, never dropping a
      qualifying leaf).

    Both are served by a {!Index} built once per table (cached in
    [cached_index]): per-level sorted boundary arrays answer interval →
    leaf-set questions by binary search, a value → leaf-set hash serves
    point-partitioned (categorical) levels, per-(level, prefix) covered
    sets make default-arm checks O(1) set operations instead of an O(P)
    sibling rescan, and an OID hash replaces the linear leaf lookup.
    Survival across levels is intersected on compact {!Bitset}s.  The
    pre-index implementations are kept as {!select_legacy} /
    {!route_legacy} — the executable oracles the property tests and the
    [bench part-select] scaling curve compare against. *)

open Mpp_expr

type oid = int

type scheme = Range | Categorical

type level = {
  key_index : int;  (** column position of the partitioning key *)
  key_name : string;
  scheme : scheme;
}

type constr =
  | Cset of Interval.Set.t
      (** the values this partition accepts at this level *)
  | Default  (** catch-all: everything the siblings reject, and NULLs *)

type leaf = {
  leaf_oid : oid;
  leaf_name : string;
  bounds : constr array;  (** one constraint per level, root to leaf *)
}

(* ------------------------------------------------------------------ *)
(* Index representation                                                 *)
(* ------------------------------------------------------------------ *)

(* Value-keyed hash table for the categorical point index.  [Value.hash] is
   only consistent with [Value.equal] within one type, and Int/Float compare
   numerically across types, so keys are normalized first (integral floats
   become ints — see [norm_key]). *)
module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* One default-arm equivalence class at a level: all default leaves sharing
   a constraint prefix.  [dc_covered] is what their non-default siblings
   accept at this level — precomputed once, so the per-query default-arm
   check is a single interval-set operation instead of an O(P) rescan. *)
type default_class = {
  dc_covered : Interval.Set.t;
  dc_members : int array;  (** leaf indices of the class's default leaves *)
}

(* Per-level selection structures.  The value line is cut at every bound
   appearing in any arm at this level; the resulting elementary regions
   (gap, point, gap, point, …) are each either fully inside or fully
   outside every arm, so [li_regions.(r)] — the leaves whose arm overlaps
   region [r] — is exact, and an interval → leaf-set query is a binary
   search for the boundary regions plus a union of the member arrays in
   between. *)
type level_index = {
  li_cuts : Value.t array;  (** sorted distinct bound values *)
  li_regions : int array array;
      (** region index → leaf indices; region [2k+1] is the point
          [li_cuts.(k)], regions [2k] the open gaps between cuts *)
  li_all_points : bool;
      (** every arm interval at this level is a single value *)
  li_points : int array VH.t;
      (** normalized value → leaf indices (the categorical fast path;
          authoritative only when [li_all_points]) *)
  li_defaults : default_class array;
}

type index = {
  ix_nleaves : int;
  ix_leaves : leaf array;
  ix_levels : level_index array;
  ix_by_oid : (oid, leaf) Hashtbl.t;
}

type t = {
  levels : level array;
  leaves : leaf array;
  mutable cached_index : index option;
      (** built on first use by {!Index.of_partitioning}; treat as an
          implementation detail (always construct with [None]) *)
}

let nlevels t = Array.length t.levels
let nparts t = Array.length t.leaves
let leaf_oids t = Array.to_list (Array.map (fun l -> l.leaf_oid) t.leaves)

let key_indices t =
  Array.to_list (Array.map (fun lv -> lv.key_index) t.levels)

(* The union of the sibling (non-default) constraints at [level], restricted
   to leaves matching [prefix_pred]; used to decide what a Default arm
   covers.  O(P) per call — the index precomputes one result per
   (level, prefix) class at build time; the legacy oracle below calls it per
   default-arm check. *)
let covered_at t ~level ~prefix =
  Array.to_list t.leaves
  |> List.filter (fun lf ->
         let rec agrees i =
           i >= level
           || (match (lf.bounds.(i), prefix.(i)) with
              | Default, Default -> true
              | Cset a, Cset b -> Interval.Set.equal a b
              | (Default | Cset _), _ -> false)
              && agrees (i + 1)
         in
         agrees 0)
  |> List.filter_map (fun lf ->
         match lf.bounds.(level) with Cset s -> Some s | Default -> None)
  |> List.fold_left Interval.Set.union Interval.Set.empty

(* ------------------------------------------------------------------ *)
(* Legacy oracles: the original linear implementations                  *)
(* ------------------------------------------------------------------ *)

(** [f_T] by linear scan: route a tuple's key values (one per level) to the
    leaf that must store it; [None] is the invalid partition ⊥ of §2.1.
    Kept as the executable oracle for {!route}. *)
let route_legacy t (keys : Value.t array) : leaf option =
  let n = nlevels t in
  assert (Array.length keys = n);
  let matches lf =
    let rec go i =
      if i >= n then true
      else
        (match lf.bounds.(i) with
        | Cset s -> (not (Value.is_null keys.(i))) && Interval.Set.contains s keys.(i)
        | Default ->
            (* Default accepts what no sibling (same prefix) covers. *)
            Value.is_null keys.(i)
            || not
                 (Interval.Set.contains
                    (covered_at t ~level:i ~prefix:lf.bounds)
                    keys.(i)))
        && go (i + 1)
    in
    go 0
  in
  Array.to_seq t.leaves |> Seq.filter matches |> fun s ->
  match s () with Seq.Nil -> None | Seq.Cons (lf, _) -> Some lf

(** [f*_T] by linear scan: given an optional restriction per level ([None] =
    no predicate on that level's key), return the leaves that may hold
    satisfying tuples.  Sound by construction: a leaf is excluded only when
    one of its level constraints provably cannot intersect the restriction.
    Kept as the executable oracle for {!select}. *)
let select_legacy t (restrictions : Interval.Set.t option array) : leaf list =
  let n = nlevels t in
  assert (Array.length restrictions = n);
  let survives lf =
    let rec go i =
      if i >= n then true
      else
        (match restrictions.(i) with
        | None -> true
        | Some r -> (
            match lf.bounds.(i) with
            | Cset s -> Interval.Set.overlaps_set s r
            | Default ->
                (* keep the default arm unless the restriction lies entirely
                   inside what the siblings cover *)
                let covered = covered_at t ~level:i ~prefix:lf.bounds in
                not (Interval.Set.is_empty (Interval.Set.diff r covered))))
        && go (i + 1)
    in
    go 0
  in
  Array.to_list t.leaves |> List.filter survives

let select_oids_legacy t restrictions =
  List.map (fun lf -> lf.leaf_oid) (select_legacy t restrictions)

(* ------------------------------------------------------------------ *)
(* The selection index                                                  *)
(* ------------------------------------------------------------------ *)

type partitioning = t

module Index = struct
  type t = index

  let nparts (ix : t) = ix.ix_nleaves

  (* Int/Float compare numerically across types, so integral floats are
     folded onto ints before hashing — the hash then agrees with
     [Value.equal] for every key pair the catalog can produce. *)
  let norm_key = function
    | Value.Float f
      when Float.is_integer f && Float.abs f <= 4.611686018427387904e18 ->
        Value.Int (int_of_float f)
    | v -> v

  (* first index with cuts.(i) >= v *)
  let lower_bound (cuts : Value.t array) v =
    let lo = ref 0 and hi = ref (Array.length cuts) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Value.compare cuts.(mid) v < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Region numbering over m cuts: region [2k] is the open gap before cut
     [k] (region [2m] the gap after the last cut), region [2k+1] the point
     [cuts.(k)].  Every arm bound is a cut, so each region is fully inside
     or fully outside every arm. *)
  let region_of_lo cuts = function
    | Interval.Neg_inf -> 0
    | Interval.Pos_inf -> 2 * Array.length cuts
    | Interval.B (v, incl) ->
        let k = lower_bound cuts v in
        if k < Array.length cuts && Value.equal cuts.(k) v then
          if incl then (2 * k) + 1 else (2 * k) + 2
        else 2 * k

  let region_of_hi cuts = function
    | Interval.Pos_inf -> 2 * Array.length cuts
    | Interval.Neg_inf -> 0
    | Interval.B (v, incl) ->
        let k = lower_bound cuts v in
        if k < Array.length cuts && Value.equal cuts.(k) v then
          if incl then (2 * k) + 1 else 2 * k
        else 2 * k

  (* the region containing value [v] *)
  let region_of_value cuts v =
    let k = lower_bound cuts v in
    if k < Array.length cuts && Value.equal cuts.(k) v then (2 * k) + 1
    else 2 * k

  let constr_equal a b =
    match (a, b) with
    | Default, Default -> true
    | Cset x, Cset y -> Interval.Set.equal x y
    | (Default | Cset _), _ -> false

  let prefix_equal ~level a b =
    let rec go i = i >= level || (constr_equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let build_level (p : partitioning) lvl : level_index =
    let nleaves = Array.length p.leaves in
    (* 1. cuts: every bound value of every arm at this level *)
    let values = ref [] in
    for j = 0 to nleaves - 1 do
      match p.leaves.(j).bounds.(lvl) with
      | Default -> ()
      | Cset s ->
          List.iter
            (fun (iv : Interval.t) ->
              (match iv.Interval.lo with
              | Interval.B (v, _) -> values := v :: !values
              | _ -> ());
              match iv.Interval.hi with
              | Interval.B (v, _) -> values := v :: !values
              | _ -> ())
            (Interval.Set.to_list s)
    done;
    let cuts =
      List.sort_uniq Value.compare !values |> Array.of_list
    in
    let nregions = (2 * Array.length cuts) + 1 in
    let members : int list ref array = Array.init nregions (fun _ -> ref []) in
    let points : int list ref VH.t = VH.create 64 in
    let all_points = ref true in
    (* 2. region membership + point hash *)
    for j = nleaves - 1 downto 0 do
      (* downto: member lists come out ascending *)
      match p.leaves.(j).bounds.(lvl) with
      | Default -> ()
      | Cset s ->
          List.iter
            (fun (iv : Interval.t) ->
              (match Interval.is_point iv with
              | Some v ->
                  let key = norm_key v in
                  let cell =
                    match VH.find_opt points key with
                    | Some c -> c
                    | None ->
                        let c = ref [] in
                        VH.add points key c;
                        c
                  in
                  cell := j :: !cell
              | None -> all_points := false);
              let s_idx = region_of_lo cuts iv.Interval.lo
              and e_idx = region_of_hi cuts iv.Interval.hi in
              for r = s_idx to e_idx do
                let cell = members.(r) in
                cell := j :: !cell
              done)
            (Interval.Set.to_list s)
    done;
    (* 3. default classes: group default leaves by constraint prefix and
       precompute each class's covered set once *)
    let classes : (constr array * int list ref) list ref = ref [] in
    for j = nleaves - 1 downto 0 do
      let lf = p.leaves.(j) in
      if lf.bounds.(lvl) = Default then begin
        match
          List.find_opt
            (fun (prefix, _) -> prefix_equal ~level:lvl prefix lf.bounds)
            !classes
        with
        | Some (_, cell) -> cell := j :: !cell
        | None -> classes := (lf.bounds, ref [ j ]) :: !classes
      end
    done;
    let defaults =
      List.map
        (fun (prefix, cell) ->
          {
            dc_covered = covered_at p ~level:lvl ~prefix;
            dc_members = Array.of_list !cell;
          })
        !classes
      |> Array.of_list
    in
    let point_index = VH.create (max 16 (VH.length points)) in
    VH.iter (fun k c -> VH.add point_index k (Array.of_list !c)) points;
    {
      li_cuts = cuts;
      li_regions = Array.map (fun c -> Array.of_list !c) members;
      li_all_points = !all_points;
      li_points = point_index;
      li_defaults = defaults;
    }

  let build (p : partitioning) : t =
    let by_oid = Hashtbl.create (2 * Array.length p.leaves) in
    Array.iter (fun lf -> Hashtbl.replace by_oid lf.leaf_oid lf) p.leaves;
    {
      ix_nleaves = Array.length p.leaves;
      ix_leaves = p.leaves;
      ix_levels = Array.init (Array.length p.levels) (fun i -> build_level p i);
      ix_by_oid = by_oid;
    }

  (* Build-once cache.  Single-writer discipline: the executor resolves
     indexes on the coordinating domain before fanning out (create_ctx),
     and storage/bench/tests build from one domain, so the mutable field is
     never raced; a duplicate build would only waste work, not corrupt. *)
  let of_partitioning (p : partitioning) : t =
    match p.cached_index with
    | Some ix -> ix
    | None ->
        let ix = build p in
        p.cached_index <- Some ix;
        ix

  let find_leaf (ix : t) oid = Hashtbl.find_opt ix.ix_by_oid oid

  (* Survivors of one level under restriction [r], as a bitset. *)
  let level_bits (ix : t) (li : level_index) (r : Interval.Set.t) : Bitset.t =
    let bits = Bitset.create ix.ix_nleaves in
    List.iter
      (fun (iv : Interval.t) ->
        match Interval.is_point iv with
        | Some v when li.li_all_points -> (
            (* categorical fast path: O(1) hash hit *)
            match VH.find_opt li.li_points (norm_key v) with
            | Some ms -> Bitset.set_array bits ms
            | None -> ())
        | _ ->
            (* boundary binary search, then union the member arrays of the
               regions the restriction interval overlaps *)
            let s_idx = region_of_lo li.li_cuts iv.Interval.lo
            and e_idx = region_of_hi li.li_cuts iv.Interval.hi in
            for reg = s_idx to e_idx do
              Bitset.set_array bits li.li_regions.(reg)
            done)
      (Interval.Set.to_list r);
    (* default arms: one precomputed covered set per (level, prefix) class *)
    Array.iter
      (fun dc ->
        if not (Interval.Set.is_empty (Interval.Set.diff r dc.dc_covered))
        then Bitset.set_array bits dc.dc_members)
      li.li_defaults;
    bits

  let select_bits (ix : t) (restrictions : Interval.Set.t option array) :
      Bitset.t =
    if Array.length restrictions <> Array.length ix.ix_levels then
      invalid_arg "Partition.Index.select: wrong number of restrictions";
    let acc = Bitset.full ix.ix_nleaves in
    Array.iteri
      (fun i r ->
        match r with
        | None -> ()
        | Some r -> Bitset.inter_into ~into:acc (level_bits ix ix.ix_levels.(i) r))
      restrictions;
    acc

  let select ix restrictions =
    Bitset.fold_right_set
      (fun j acc -> ix.ix_leaves.(j) :: acc)
      (select_bits ix restrictions) []

  let select_oids ix restrictions =
    Bitset.fold_right_set
      (fun j acc -> ix.ix_leaves.(j).leaf_oid :: acc)
      (select_bits ix restrictions) []

  let count_selected ix restrictions =
    Bitset.cardinal (select_bits ix restrictions)

  (* Leaves accepting value [v] (possibly NULL) at one level. *)
  let route_bits (ix : t) (li : level_index) (v : Value.t) : Bitset.t =
    let bits = Bitset.create ix.ix_nleaves in
    if Value.is_null v then
      (* NULLs go to default arms only *)
      Array.iter (fun dc -> Bitset.set_array bits dc.dc_members) li.li_defaults
    else begin
      (if li.li_all_points then (
         match VH.find_opt li.li_points (norm_key v) with
         | Some ms -> Bitset.set_array bits ms
         | None -> ())
       else
         Bitset.set_array bits
           li.li_regions.(region_of_value li.li_cuts v));
      Array.iter
        (fun dc ->
          if not (Interval.Set.contains dc.dc_covered v) then
            Bitset.set_array bits dc.dc_members)
        li.li_defaults
    end;
    bits

  let route (ix : t) (keys : Value.t array) : leaf option =
    if Array.length keys <> Array.length ix.ix_levels then
      invalid_arg "Partition.Index.route: wrong number of keys";
    let acc = Bitset.full ix.ix_nleaves in
    Array.iteri
      (fun i v -> Bitset.inter_into ~into:acc (route_bits ix ix.ix_levels.(i) v))
      keys;
    Option.map (fun j -> ix.ix_leaves.(j)) (Bitset.first_set acc)
end

(* ------------------------------------------------------------------ *)
(* Public f_T / f*_T — served by the index                              *)
(* ------------------------------------------------------------------ *)

(** OID → leaf via the index's hash (replaces the pre-index O(P) linear
    scan, removed once all callers migrated). *)
let find_leaf t oid = Index.find_leaf (Index.of_partitioning t) oid

(** [f_T]: route a tuple's key values (one per level) to the leaf that must
    store it; [None] is the invalid partition ⊥ of §2.1.  O(log P) per
    level via the index. *)
let route t (keys : Value.t array) : leaf option =
  Index.route (Index.of_partitioning t) keys

(** [f*_T]: given an optional restriction per level ([None] = no predicate on
    that level's key), return the leaves that may hold satisfying tuples.
    Sound by construction, and exactly equal to {!select_legacy} (the
    property suite holds them to oid-for-oid equality). *)
let select t (restrictions : Interval.Set.t option array) : leaf list =
  Index.select (Index.of_partitioning t) restrictions

let select_oids t restrictions =
  Index.select_oids (Index.of_partitioning t) restrictions

(* ------------------------------------------------------------------ *)
(* Constructors for common partitioning layouts                        *)
(* ------------------------------------------------------------------ *)

(** Build single-level metadata from explicit per-leaf constraints.
    [alloc_oid] supplies fresh OIDs for the leaves. *)
let single_level ~alloc_oid ~key_index ~key_name ~scheme ~table_name constrs =
  let leaves =
    List.mapi
      (fun i c ->
        {
          leaf_oid = alloc_oid ();
          leaf_name = Printf.sprintf "%s_1_prt_%d" table_name (i + 1);
          bounds = [| c |];
        })
      constrs
    |> Array.of_list
  in
  { levels = [| { key_index; key_name; scheme } |]; leaves;
    cached_index = None }

(** Monthly range partitions covering [months] months starting at the first
    of [start_year]-[start_month]; the classic chronological layout of the
    paper's Figure 1. *)
let monthly_ranges ~start_year ~start_month ~months =
  List.init months (fun i ->
      let lo = Date.add_months (Date.of_ymd start_year start_month 1) i in
      let hi = Date.add_months lo 1 in
      match Interval.closed_open (Value.Date lo) (Value.Date hi) with
      | Some iv -> Cset (Interval.Set.singleton iv)
      | None -> assert false)

(** [n] consecutive day-granularity range partitions of width [width_days]. *)
let daily_ranges ~start_date ~width_days ~count =
  List.init count (fun i ->
      let lo = Date.add_days start_date (i * width_days) in
      let hi = Date.add_days lo width_days in
      match Interval.closed_open (Value.Date lo) (Value.Date hi) with
      | Some iv -> Cset (Interval.Set.singleton iv)
      | None -> assert false)

(** Integer range partitions: part [i] holds [start + i*width, start +
    (i+1)*width). *)
let int_ranges ~start ~width ~count =
  List.init count (fun i ->
      let lo = start + (i * width) and hi = start + ((i + 1) * width) in
      match Interval.closed_open (Value.Int lo) (Value.Int hi) with
      | Some iv -> Cset (Interval.Set.singleton iv)
      | None -> assert false)

(** One categorical partition per value list. *)
let categorical values_per_part =
  List.map
    (fun vs -> Cset (Interval.Set.of_list (List.map Interval.point vs)))
    values_per_part

(** Two-level metadata as the cross product of per-level constraints (the
    orders-by-date-and-region layout of paper Figure 9). *)
let two_level ~alloc_oid ~table_name ~level1 ~constrs1 ~level2 ~constrs2 =
  let leaves =
    List.concat_map
      (fun (i, c1) ->
        List.map
          (fun (j, c2) ->
            {
              leaf_oid = alloc_oid ();
              leaf_name =
                Printf.sprintf "%s_1_prt_%d_2_prt_%d" table_name (i + 1) (j + 1);
              bounds = [| c1; c2 |];
            })
          (List.mapi (fun j c -> (j, c)) constrs2))
      (List.mapi (fun i c -> (i, c)) constrs1)
    |> Array.of_list
  in
  { levels = [| level1; level2 |]; leaves; cached_index = None }

(** General n-level metadata as the cross product of per-level constraint
    lists — two_level generalized to arbitrary hierarchies. *)
let multi_level ~alloc_oid ~table_name (levels : (level * constr list) list) =
  if levels = [] then invalid_arg "Partition.multi_level: no levels";
  let rec product = function
    | [] -> [ [] ]
    | (_, constrs) :: rest ->
        let tails = product rest in
        List.concat_map
          (fun (i, c) -> List.map (fun tail -> (i, c) :: tail) tails)
          (List.mapi (fun i c -> (i, c)) constrs)
  in
  let leaves =
    product levels
    |> List.map (fun combo ->
           {
             leaf_oid = alloc_oid ();
             leaf_name =
               table_name
               ^ String.concat ""
                   (List.mapi
                      (fun lvl (i, _) ->
                        Printf.sprintf "_%d_prt_%d" (lvl + 1) (i + 1))
                      combo);
             bounds = Array.of_list (List.map snd combo);
           })
    |> Array.of_list
  in
  { levels = Array.of_list (List.map fst levels); leaves;
    cached_index = None }

let pp_constr fmt = function
  | Default -> Format.pp_print_string fmt "DEFAULT"
  | Cset s -> Interval.Set.pp fmt s

let pp fmt t =
  Format.fprintf fmt "@[<v>partitioned by (%s), %d leaves@,"
    (String.concat ", "
       (Array.to_list (Array.map (fun lv -> lv.key_name) t.levels)))
    (nparts t);
  Array.iter
    (fun lf ->
      Format.fprintf fmt "  %s (oid %d): %s@," lf.leaf_name lf.leaf_oid
        (String.concat " / "
           (Array.to_list
              (Array.map (Format.asprintf "%a" pp_constr) lf.bounds))))
    t.leaves;
  Format.fprintf fmt "@]"

(** The metadata catalog: OID allocation and table lookup by name or OID.
    Leaf partitions are registered alongside their root so that the storage
    layer can "locate and retrieve the tuples belonging to a partition"
    given only a leaf OID (paper §2.1). *)

type t = {
  mutable next_oid : int;
  by_oid : (int, Table.t) Hashtbl.t;
  by_name : (string, Table.t) Hashtbl.t;
  leaf_root : (int, int) Hashtbl.t;  (** leaf OID → root OID *)
  mutable generation : int;
      (** bumped on every DDL change; plan caches key on it so a cached
          plan never outlives the catalog state it was optimized against *)
}

let create () =
  {
    next_oid = 16384;
    by_oid = Hashtbl.create 64;
    by_name = Hashtbl.create 64;
    leaf_root = Hashtbl.create 256;
    generation = 0;
  }

let generation t = t.generation
let bump_generation t = t.generation <- t.generation + 1

let alloc_oid t =
  let o = t.next_oid in
  t.next_oid <- o + 1;
  o

(** Register a table.  [partitioning] must have been built with this
    catalog's {!alloc_oid} (see the helpers in {!Partition}). *)
let add_table t ~name ~columns ~distribution ?partitioning () =
  if Hashtbl.mem t.by_name name then
    invalid_arg ("Catalog.add_table: duplicate table " ^ name);
  let oid = alloc_oid t in
  let tbl =
    {
      Table.oid;
      name;
      columns = Array.of_list columns;
      distribution;
      partitioning;
    }
  in
  Hashtbl.replace t.by_oid oid tbl;
  Hashtbl.replace t.by_name name tbl;
  (match partitioning with
  | None -> ()
  | Some p ->
      Array.iter
        (fun (lf : Partition.leaf) ->
          Hashtbl.replace t.leaf_root lf.leaf_oid oid)
        p.Partition.leaves);
  bump_generation t;
  tbl

let find t name =
  match Hashtbl.find_opt t.by_name name with
  | Some tbl -> tbl
  | None -> invalid_arg ("Catalog.find: no table " ^ name)

let find_opt t name = Hashtbl.find_opt t.by_name name

let find_oid t oid =
  match Hashtbl.find_opt t.by_oid oid with
  | Some tbl -> tbl
  | None -> invalid_arg ("Catalog.find_oid: no table with oid " ^ string_of_int oid)

(** Root OID of the partitioned table a leaf belongs to. *)
let root_of_leaf t leaf_oid = Hashtbl.find_opt t.leaf_root leaf_oid

let tables t =
  Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.by_oid []
  |> List.sort (fun (a : Table.t) b -> Int.compare a.oid b.oid)

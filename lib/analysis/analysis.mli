(** Abstract interpretation of scalar expressions and plans.

    The partition-selection machinery (paper §3.2) reduces predicates on the
    partitioning key to interval normal form; this module generalizes that
    reduction into a proper abstract domain over {e every} column — an
    interval set for the possible values plus a nullability bit — and
    derives per-column bounds bottom-up through every plan operator.  On top
    of the domain sits a decision layer ([contradicts] / [always_true] /
    [implies]) and a filter-semantics-preserving [simplify], used by

    - both optimizers ({!simplify_plan}): always-false filters collapse to
      the single-false-leaf empty shape, always-true conjuncts are dropped,
      and partition-key restrictions implied across equi-join equivalence
      classes strengthen partition selectors and Append expansions;
    - the verifier's sixth pass ({!pruning_sites}): the partitions a scan's
      reachable predicates {e permit} are re-derived independently so that
      over-pruning — a selected set that excludes a permitted partition —
      is a structural error, not a silent wrong answer;
    - the executor: runtime min-max filter summaries are cross-checked
      against the static bounds of the build subtree
      ({!minmax_violations}).

    Soundness convention: every abstract operation over-approximates.  A
    column's abstract value contains every value the column can actually
    take (assuming base tables store no NULLs — the storage layer and both
    workload generators never materialize one); [can_t]/[can_f]/[can_n]
    may be true spuriously but never false spuriously.  Decisions only act
    on the {e negations} ([not can_f] …), so a precision loss can only
    suppress a simplification, never enable a wrong one. *)

open Mpp_expr
module Plan = Mpp_plan.Plan
module Catalog = Mpp_catalog.Catalog

(** {2 The abstract domain} *)

type aval = {
  range : Interval.Set.t;  (** every value the expression can take *)
  nullable : bool;  (** whether it can evaluate to NULL *)
}

type abool = {
  can_t : bool;  (** may evaluate to [true] *)
  can_f : bool;  (** may evaluate to [false] *)
  can_n : bool;  (** may evaluate to NULL (or a non-boolean) *)
}

type env
(** Per-column abstract values, keyed by (rel, column index); columns not
    present are unconstrained.  [Bottom] means "no tuple can reach here". *)

val env_top : env
val is_bottom : env -> bool

val find : env -> Colref.t -> aval
(** Top for unconstrained columns; the empty non-nullable value under a
    bottom environment. *)

val set : env -> Colref.t -> aval -> env
(** Collapses to bottom when the value is unsatisfiable. *)

val env_join : env -> env -> env
(** Least upper bound: the environment of a row coming from {e either}
    input (an Append of both). *)

val pp_env : Format.formatter -> env -> unit

(** {2 Abstract evaluation} *)

val aeval : env -> Expr.t -> aval
(** Over-approximate the value of a scalar expression. *)

val aeval_pred : env -> Expr.t -> abool
(** Over-approximate the three-valued outcome of a predicate. *)

val restrict : env -> Expr.t -> env
(** Assume the predicate evaluated to [true] (filter semantics): meet each
    restricted column with its derived interval set, clear nullability for
    columns a true comparison forces non-null, bottom when the predicate
    cannot hold. *)

(** {2 Decisions} *)

val contradicts : env -> Expr.t -> bool
(** No row satisfying [env] passes the filter. *)

val always_true : env -> Expr.t -> bool
(** Every row satisfying [env] passes the filter (the outcome is [true],
    never [false] or NULL). *)

val implies : env -> Expr.t -> Expr.t -> bool
(** [implies env p q]: every row of [env] passing [p] also passes [q]. *)

val simplify :
  ?report:([ `Redundant | `Contradiction ] -> Expr.t -> unit) ->
  env ->
  Expr.t ->
  Expr.t
(** Filter-semantics-preserving rewrite: for every row satisfying [env] the
    simplified predicate keeps the row iff the original did.  Always-true
    conjuncts are dropped, contradictory conjuncts collapse the conjunction
    to [false], impossible disjuncts are removed.  [report] is invoked once
    per dropped conjunct/disjunct (the linter's hook).  Physically returns
    the input when nothing changed. *)

val expr_of_set : Colref.t -> Interval.Set.t -> Expr.t
(** Synthesize a predicate whose {!Expr.restriction} on the column is
    exactly the given set ([true] for the full set, [false] for the empty
    one). *)

(** {2 Plan-level derivation} *)

val scan_env : catalog:Catalog.t -> rel:int -> int -> env
(** Base environment of a table scan by root {e or} leaf OID: every stored
    column is non-nullable, and each partitioning-key column is bounded by
    the union of the leaf constraint sets (the whole table's, for a root
    OID; the one leaf's, for a leaf OID; unconstrained once a default arm
    is involved). *)

val derive : catalog:Catalog.t -> Plan.t -> env
(** Bottom-up per-column bounds of the rows an operator can emit. *)

(** {2 Implication across equivalence classes} *)

val equiv_class : conjs:Expr.t list -> Colref.t -> Colref.t list
(** The equi-join equivalence class of a column: the closure of [k] under
    the [a = b] column-to-column conjuncts of [conjs] (includes [k]
    itself).  This is the connectivity relation {!implied_restrictions}
    transports restrictions along; the serving layer's
    parameter-sensitivity analysis uses it to decide whether a bind
    parameter's predicate can reach a partitioning key. *)

val implied_restrictions :
  keys:Colref.t list -> Expr.t list -> Interval.Set.t option array
(** For each key, the interval restriction implied by the conjunct list:
    the intersection of {!Expr.restriction} over the key's equi-join
    equivalence class (union-find over [a = b] column conjuncts).  [None]
    when nothing is derivable for a level. *)

(** {2 Pruning sites (the verifier's sixth pass)} *)

type site_kind =
  | Site_scan of int  (** a DynamicScan, by [part_scan_id] *)
  | Site_append of int list
      (** a uniform Append expansion; the leaf OIDs actually present
          (children under a literal-false filter excluded) *)

type pruning_site = {
  site_path : int list;  (** child-index path from the plan root *)
  site_kind : site_kind;
  site_rel : int;
  site_root : int;  (** root OID of the partitioned table *)
  site_permitted : Interval.Set.t option array;
      (** per-level restriction derived from every predicate reachable from
          the site — its own filter, enclosing filters, and join conjuncts
          harvested across equi-join equivalence classes *)
}

val pruning_sites : catalog:Catalog.t -> Plan.t -> pruning_site list
(** Every DynamicScan and uniform leaf-expansion Append, with the
    partitions its reachable predicates permit.  A sound pruner must keep a
    superset of each site's permitted partitions; the context-collection
    rules mirror the optimizer-side strengthening walk, so a plan
    strengthened by {!simplify_plan} always satisfies the check.  An Append
    whose children are {e all} literal-false leaf scans is the sanctioned
    statically-empty shape and yields no site. *)

(** {2 Plan simplification and strengthening} *)

val simplify_plan : catalog:Catalog.t -> ?strengthen:bool -> Plan.t -> Plan.t
(** Two phases.  Phase 1 rewrites every Filter predicate and scan filter
    with {!simplify} (Filter preds against the derived child environment,
    scan filters against the scan's base environment; a uniform Append
    expansion's shared filter is rewritten once and stays physically
    shared).  Phase 2 (when [strengthen], default true) walks the
    simplified plan collecting reachable predicates and equivalence
    classes, then (a) conjoins implied partition-key restrictions onto
    partition-selector predicates that they tighten, and (b) re-runs
    static exclusion on unguarded uniform Append expansions with the
    strengthened shared filter — dropping statically-impossible children,
    collapsing to the single-false-leaf empty shape when none survive.
    Guarded (runtime-eliminated) Appends are never restructured.  Row sets
    are preserved exactly. *)

(** {2 Runtime filter cross-check} *)

val minmax_violations :
  catalog:Catalog.t ->
  child:Plan.t ->
  keys:Colref.t list ->
  minmax:(int -> (Value.t * Value.t) option) ->
  string list
(** Check a built runtime filter's per-key [lo, hi] summary (by key
    position; [None] = no non-null key seen) against the statically derived
    bounds of the build subtree.  Any endpoint outside the static range is
    a filter-construction bug: described violations are returned. *)

(** {2 Linting} *)

module Lint : sig
  type finding = { code : string; path : string; detail : string }

  val pp_finding : Format.formatter -> finding -> unit

  val plan : catalog:Catalog.t -> Plan.t -> finding list
  (** Run the engine over an (unsimplified) plan as a linter: redundant
      conjuncts ([lint/redundant-conjunct]), contradictory conjuncts and
      filters ([lint/contradictory-conjunct], [lint/contradiction]), and
      statically dead Append branches ([lint/dead-branch]). *)
end

(** Abstract interpretation of scalar expressions and plans.

    The abstract domain is interval-set × nullability per column
    ({!aval}), with a three-valued abstraction of predicate outcomes
    ({!abool}).  Everything over-approximates: [can_t]/[can_f]/[can_n] may
    be true spuriously but never false spuriously, and an {!aval}'s range
    contains every value the expression can actually produce.  Decisions
    ([contradicts], [always_true], [simplify]) only ever act on the
    {e negations} of the [can_*] bits, so imprecision can suppress a
    rewrite but never enable an unsound one.

    Base tables are assumed NULL-free (the storage layer and both workload
    generators never materialize a NULL); NULLs enter the domain only
    through outer joins and ungrouped aggregates, which the derivation
    rules model explicitly. *)

open Mpp_expr
module Plan = Mpp_plan.Plan
module Catalog = Mpp_catalog.Catalog
module Table = Mpp_catalog.Table
module Partition = Mpp_catalog.Partition

type aval = { range : Interval.Set.t; nullable : bool }
type abool = { can_t : bool; can_f : bool; can_n : bool }

(* ------------------------------------------------------------------ *)
(* The environment: per-(rel, column) abstract values.                 *)

module M = Map.Make (struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    let c = Int.compare a1 a2 in
    if c <> 0 then c else Int.compare b1 b2
end)

type env = Bottom | Env of aval M.t

let av_top = { range = Interval.Set.full; nullable = true }
let av_is_top a = a.nullable && Interval.Set.is_full a.range
let av_is_bottom a = (not a.nullable) && Interval.Set.is_empty a.range

let av_join a b =
  {
    range = Interval.Set.union a.range b.range;
    nullable = a.nullable || b.nullable;
  }

let av_meet a b =
  {
    range = Interval.Set.inter a.range b.range;
    nullable = a.nullable && b.nullable;
  }

let env_top = Env M.empty
let is_bottom = function Bottom -> true | Env _ -> false
let ckey (c : Colref.t) = (c.Colref.rel, c.Colref.index)

let find env c =
  match env with
  | Bottom -> { range = Interval.Set.empty; nullable = false }
  | Env m -> ( match M.find_opt (ckey c) m with Some v -> v | None -> av_top)

let set env c v =
  match env with
  | Bottom -> Bottom
  | Env m ->
      if av_is_bottom v then Bottom
      else if av_is_top v then Env (M.remove (ckey c) m)
      else Env (M.add (ckey c) v m)

(* Least upper bound: a row coming from either input.  Only columns
   constrained on both sides stay constrained. *)
let env_join a b =
  match (a, b) with
  | Bottom, e | e, Bottom -> e
  | Env ma, Env mb ->
      Env
        (M.merge
           (fun _ va vb ->
             match (va, vb) with
             | Some va, Some vb ->
                 let j = av_join va vb in
                 if av_is_top j then None else Some j
             | _ -> None)
           ma mb)

(* Greatest lower bound: a row satisfying both environments (the joined
   tuple of two join inputs). *)
let env_meet a b =
  match (a, b) with
  | Bottom, _ | _, Bottom -> Bottom
  | Env ma, Env mb ->
      M.fold
        (fun k v acc ->
          match acc with
          | Bottom -> Bottom
          | Env m ->
              let v' =
                match M.find_opt k m with
                | None -> v
                | Some w -> av_meet v w
              in
              if av_is_bottom v' then Bottom else Env (M.add k v' m))
        mb (Env ma)

let pp_env fmt = function
  | Bottom -> Format.pp_print_string fmt "⊥"
  | Env m ->
      if M.is_empty m then Format.pp_print_string fmt "⊤"
      else (
        Format.fprintf fmt "@[<v>";
        M.iter
          (fun (r, i) v ->
            Format.fprintf fmt "(%d.%d) ∈ %a%s@," r i Interval.Set.pp v.range
              (if v.nullable then " ∪ {NULL}" else ""))
          m;
        Format.fprintf fmt "@]")

(* ------------------------------------------------------------------ *)
(* Abstract evaluation.                                                *)

let ab_true = { can_t = true; can_f = false; can_n = false }
let ab_false = { can_t = false; can_f = true; can_n = false }
let ab_null = { can_t = false; can_f = false; can_n = true }
let ab_any = { can_t = true; can_f = true; can_n = true }

let set_lo (s : Interval.Set.t) =
  match Interval.Set.to_list s with [] -> None | i :: _ -> Some i.Interval.lo

let set_hi (s : Interval.Set.t) =
  match List.rev (Interval.Set.to_list s) with
  | [] -> None
  | i :: _ -> Some i.Interval.hi

(* May some value of [a] be strictly below some value of [b]?  The order is
   treated as dense (an over-approximation for discrete types, which is the
   sound direction).  Empty sets have no values. *)
let can_lt a b =
  match (set_lo a, set_hi b) with
  | None, _ | _, None -> false
  | Some lo, Some hi -> (
      match (lo, hi) with
      | Interval.Neg_inf, _ | _, Interval.Pos_inf -> true
      | Interval.Pos_inf, _ | _, Interval.Neg_inf -> false
      | Interval.B (va, _), Interval.B (vb, _) -> Value.compare va vb < 0)

(* May some value of [a] be ≤ some value of [b]? *)
let can_le a b =
  match (set_lo a, set_hi b) with
  | None, _ | _, None -> false
  | Some lo, Some hi -> (
      match (lo, hi) with
      | Interval.Neg_inf, _ | _, Interval.Pos_inf -> true
      | Interval.Pos_inf, _ | _, Interval.Neg_inf -> false
      | Interval.B (va, ai), Interval.B (vb, bi) ->
          let c = Value.compare va vb in
          c < 0 || (c = 0 && ai && bi))

(* Are both ranges the same single point? *)
let same_point a b =
  match (Interval.Set.to_list a, Interval.Set.to_list b) with
  | [ ia ], [ ib ] -> (
      match (Interval.is_point ia, Interval.is_point ib) with
      | Some va, Some vb -> Value.equal va vb
      | _ -> false)
  | _ -> false

let cmp_abool (op : Expr.cmp_op) (a : aval) (b : aval) =
  let n = a.nullable || b.nullable in
  if Interval.Set.is_empty a.range || Interval.Set.is_empty b.range then
    (* one side has no non-null value: the comparison can only be NULL *)
    { can_t = false; can_f = false; can_n = n }
  else
    let t, f =
      match op with
      | Expr.Eq -> (Interval.Set.overlaps_set a.range b.range, not (same_point a.range b.range))
      | Expr.Neq -> (not (same_point a.range b.range), Interval.Set.overlaps_set a.range b.range)
      | Expr.Lt -> (can_lt a.range b.range, can_le b.range a.range)
      | Expr.Le -> (can_le a.range b.range, can_lt b.range a.range)
      | Expr.Gt -> (can_lt b.range a.range, can_le a.range b.range)
      | Expr.Ge -> (can_le b.range a.range, can_lt a.range b.range)
    in
    { can_t = t; can_f = f; can_n = n }

let bool_range ~t ~f =
  Interval.Set.of_list
    ((if t then [ Interval.point (Value.Bool true) ] else [])
    @ if f then [ Interval.point (Value.Bool false) ] else [])

let rec aeval env (e : Expr.t) : aval =
  match env with
  | Bottom -> { range = Interval.Set.empty; nullable = false }
  | Env _ -> (
      match e with
      | Expr.Const Value.Null -> { range = Interval.Set.empty; nullable = true }
      | Expr.Const v -> { range = Interval.Set.point v; nullable = false }
      | Expr.Col c -> find env c
      | Expr.Param _ | Expr.Func _ -> av_top
      | Expr.Arith (op, a, b) ->
          let va = aeval env a and vb = aeval env b in
          let nullable =
            va.nullable || vb.nullable
            || match op with Expr.Div | Expr.Mod -> true | _ -> false
          in
          { range = Interval.Set.full; nullable }
      | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ | Expr.In_list _
      | Expr.Is_null _ ->
          let ab = aeval_pred env e in
          { range = bool_range ~t:ab.can_t ~f:ab.can_f; nullable = ab.can_n })

and aeval_pred env (e : Expr.t) : abool =
  match env with
  | Bottom -> { can_t = false; can_f = false; can_n = false }
  | Env _ -> (
      match e with
      | Expr.Const (Value.Bool true) -> ab_true
      | Expr.Const (Value.Bool false) -> ab_false
      | Expr.Const Value.Null -> ab_null
      | Expr.Const _ -> ab_any
      | Expr.Cmp (op, a, b) -> cmp_abool op (aeval env a) (aeval env b)
      | Expr.And es ->
          let abs = List.map (aeval_pred env) es in
          {
            can_t = List.for_all (fun a -> a.can_t) abs;
            can_f = List.exists (fun a -> a.can_f) abs;
            can_n = List.exists (fun a -> a.can_n) abs;
          }
      | Expr.Or es ->
          let abs = List.map (aeval_pred env) es in
          {
            can_t = List.exists (fun a -> a.can_t) abs;
            can_f = List.for_all (fun a -> a.can_f) abs;
            can_n = List.exists (fun a -> a.can_n) abs;
          }
      | Expr.Not e ->
          let a = aeval_pred env e in
          { can_t = a.can_f; can_f = a.can_t; can_n = a.can_n }
      | Expr.Is_null e ->
          let v = aeval env e in
          {
            can_t = v.nullable;
            can_f = not (Interval.Set.is_empty v.range);
            can_n = false;
          }
      | Expr.In_list (e, vals) ->
          let v = aeval env e in
          let has_null = List.exists Value.is_null vals in
          let pts =
            Interval.Set.of_list
              (List.filter_map
                 (fun x -> if Value.is_null x then None else Some (Interval.point x))
                 vals)
          in
          {
            can_t = Interval.Set.overlaps_set v.range pts;
            can_f = (not has_null) && not (Interval.Set.is_subset v.range pts);
            can_n = v.nullable || has_null;
          }
      | Expr.Col _ | Expr.Param _ | Expr.Arith _ | Expr.Func _ ->
          let v = aeval env e in
          {
            can_t = Interval.Set.contains v.range (Value.Bool true);
            can_f = Interval.Set.contains v.range (Value.Bool false);
            can_n = v.nullable;
          })

(* ------------------------------------------------------------------ *)
(* Assuming a predicate holds (filter semantics).                      *)

(* Does a true outcome of [p] force column [c] to be non-NULL? *)
let rec forces_nonnull (c : Colref.t) (p : Expr.t) =
  match p with
  | Expr.Cmp (_, Expr.Col d, _) | Expr.Cmp (_, _, Expr.Col d) -> Colref.equal c d
  | Expr.In_list (Expr.Col d, _) -> Colref.equal c d
  | Expr.Not (Expr.Is_null (Expr.Col d)) -> Colref.equal c d
  | Expr.And es -> List.exists (forces_nonnull c) es
  | Expr.Or es -> es <> [] && List.for_all (forces_nonnull c) es
  | _ -> false

(* Does a true outcome force [c] to be NULL? *)
let rec forces_null (c : Colref.t) (p : Expr.t) =
  match p with
  | Expr.Is_null (Expr.Col d) -> Colref.equal c d
  | Expr.And es -> List.exists (forces_null c) es
  | Expr.Or es -> es <> [] && List.for_all (forces_null c) es
  | _ -> false

let restrict env p =
  match env with
  | Bottom -> Bottom
  | Env _ ->
      if not (aeval_pred env p).can_t then Bottom
      else
        let cols = List.sort_uniq Colref.compare (Expr.free_cols p) in
        List.fold_left
          (fun env c ->
            match env with
            | Bottom -> Bottom
            | Env _ ->
                let v = find env c in
                let v =
                  match Expr.restriction c p with
                  | Some s ->
                      (* a derivable restriction also implies the column was
                         compared non-NULL *)
                      { range = Interval.Set.inter v.range s; nullable = false }
                  | None -> v
                in
                let v =
                  if forces_nonnull c p then { v with nullable = false } else v
                in
                let v =
                  if forces_null c p then { v with range = Interval.Set.empty }
                  else v
                in
                set env c v)
          env cols

(* ------------------------------------------------------------------ *)
(* Decisions.                                                          *)

let contradicts env e =
  is_bottom env
  || (not (aeval_pred env e).can_t)
  || is_bottom (restrict env e)

let always_true env e =
  is_bottom env
  ||
  let ab = aeval_pred env e in
  ab.can_t && (not ab.can_f) && not ab.can_n

let implies env p q = always_true (restrict env p) q

(* ------------------------------------------------------------------ *)
(* Simplification.                                                     *)

let simplify ?(report = fun _ _ -> ()) env0 e0 =
  let is_lit_true e = Expr.equal e Expr.true_ in
  let is_lit_false e = Expr.equal e Expr.false_ in
  let rec simp env e =
    if is_bottom env then e
    else
      match e with
      | Expr.And _ -> (
          let cs = Expr.conjuncts e in
          let exception Contradicted in
          try
            let _, kept_rev =
              List.fold_left
                (fun (env, acc) c ->
                  let c' = simp env c in
                  if is_lit_false c' || contradicts env c' then (
                    report `Contradiction c;
                    raise Contradicted)
                  else if is_lit_true c' || always_true env c' then (
                    report `Redundant c;
                    (env, acc))
                  else (restrict env c', c' :: acc))
                (env, []) cs
            in
            let e' = Expr.conj (List.rev kept_rev) in
            if Expr.equal e' e then e else e'
          with Contradicted -> Expr.false_)
      | Expr.Or es ->
          let pairs = List.map (fun c -> (c, simp env c)) es in
          if
            List.exists
              (fun (_, b) -> is_lit_true b || always_true env b)
              pairs
          then Expr.true_
          else (
            let kept =
              List.filter_map
                (fun (c, b) ->
                  if is_lit_false b || contradicts env b then (
                    report `Contradiction c;
                    None)
                  else Some b)
                pairs
            in
            match kept with
            | [] -> Expr.false_
            | [ b ] -> b
            | kept ->
                let e' = Expr.Or kept in
                if Expr.equal e' e then e else e')
      | _ ->
          (* atoms — including compound expressions under Not, treated
             atomically *)
          if is_lit_true e || is_lit_false e then e
          else if contradicts env e then Expr.false_
          else if always_true env e then Expr.true_
          else e
  in
  simp env0 e0

(* A predicate whose {!Expr.restriction} on [c] is exactly [s]. *)
let expr_of_interval (c : Colref.t) (i : Interval.t) : Expr.t =
  match Interval.is_point i with
  | Some v -> Expr.eq (Expr.col c) (Expr.Const v)
  | None -> (
      let lo =
        match i.Interval.lo with
        | Interval.Neg_inf | Interval.Pos_inf -> []
        | Interval.B (v, true) -> [ Expr.ge (Expr.col c) (Expr.Const v) ]
        | Interval.B (v, false) -> [ Expr.gt (Expr.col c) (Expr.Const v) ]
      and hi =
        match i.Interval.hi with
        | Interval.Pos_inf | Interval.Neg_inf -> []
        | Interval.B (v, true) -> [ Expr.le (Expr.col c) (Expr.Const v) ]
        | Interval.B (v, false) -> [ Expr.lt (Expr.col c) (Expr.Const v) ]
      in
      match lo @ hi with [] -> Expr.true_ | [ e ] -> e | es -> Expr.And es)

let expr_of_set (c : Colref.t) (s : Interval.Set.t) : Expr.t =
  if Interval.Set.is_full s then Expr.true_
  else if Interval.Set.is_empty s then Expr.false_
  else
    match Interval.Set.to_list s with
    | [ i ] -> expr_of_interval c i
    | is -> Expr.Or (List.map (expr_of_interval c) is)

(* ------------------------------------------------------------------ *)
(* Plan-level derivation.                                              *)

let root_oid_of cat oid =
  match Catalog.root_of_leaf cat oid with Some r -> r | None -> oid

let table_opt cat oid =
  try Some (Catalog.find_oid cat (root_oid_of cat oid))
  with Invalid_argument _ -> None

let scan_env ~catalog ~rel oid =
  match table_opt catalog oid with
  | None -> env_top
  | Some tbl ->
      (* every stored column: full range, non-nullable (base tables store no
         NULLs) *)
      let base =
        List.fold_left
          (fun env c -> set env c { range = Interval.Set.full; nullable = false })
          env_top
          (Table.colrefs tbl ~rel)
      in
      let root = tbl.Table.oid in
      (match tbl.Table.partitioning with
      | None -> base
      | Some part ->
          let keys = Table.part_key_colrefs tbl ~rel in
          let nlv = Partition.nlevels part in
          let ranges =
            if oid = root then
              (* union of the leaf constraint sets per level; a default arm
                 makes the level unconstrained *)
              Array.init nlv (fun l ->
                  if
                    Array.exists
                      (fun (lf : Partition.leaf) ->
                        match lf.Partition.bounds.(l) with
                        | Partition.Default -> true
                        | Partition.Cset _ -> false)
                      part.Partition.leaves
                  then Interval.Set.full
                  else
                    Array.fold_left
                      (fun acc (lf : Partition.leaf) ->
                        match lf.Partition.bounds.(l) with
                        | Partition.Cset s -> Interval.Set.union acc s
                        | Partition.Default -> acc)
                      Interval.Set.empty part.Partition.leaves)
            else
              match Partition.find_leaf part oid with
              | None -> Array.make nlv Interval.Set.full
              | Some lf ->
                  Array.map
                    (function
                      | Partition.Cset s -> s
                      | Partition.Default -> Interval.Set.full)
                    lf.Partition.bounds
          in
          List.fold_left
            (fun (env, l) k ->
              (set env k { range = ranges.(l); nullable = false }, l + 1))
            (base, 0) keys
          |> fst)

let rec derive_c cat (p : Plan.t) : env =
  match p with
  | Plan.Table_scan { rel; table_oid; filter; guard = _ } ->
      let env = scan_env ~catalog:cat ~rel table_oid in
      (match filter with None -> env | Some f -> restrict env f)
  | Plan.Dynamic_scan { rel; root_oid; filter; _ } ->
      let env = scan_env ~catalog:cat ~rel root_oid in
      (match filter with None -> env | Some f -> restrict env f)
  | Plan.Filter { pred; child } -> restrict (derive_c cat child) pred
  | Plan.Hash_join { kind; pred; left; right }
  | Plan.Nl_join { kind; pred; left; right } -> (
      let l = derive_c cat left and r = derive_c cat right in
      match kind with
      | Plan.Inner | Plan.Semi -> restrict (env_meet l r) pred
      | Plan.Left_outer ->
          (* matched rows satisfy the join predicate; unmatched left rows
             survive NULL-extended, so join with the plain left env (right
             columns fall back to ⊤, which is nullable) *)
          env_join (restrict (env_meet l r) pred) l)
  | Plan.Append cs ->
      List.fold_left (fun acc c -> env_join acc (derive_c cat c)) Bottom cs
  | Plan.Agg { group_by; aggs; child; output_rel } ->
      if output_rel < 0 then env_top
      else
        let ce = derive_c cat child in
        let grouped = group_by <> [] in
        if is_bottom ce && grouped then Bottom
        else
          let mk i = Colref.make ~rel:output_rel ~index:i ~name:"" ~dtype:Value.Tint in
          let env, ng =
            List.fold_left
              (fun (env, i) g -> (set env (mk i) (aeval ce g), i + 1))
              (env_top, 0) group_by
          in
          List.fold_left
            (fun (env, i) (_, af) ->
              let v =
                match af with
                | Plan.Count_star | Plan.Count _ ->
                    {
                      range = Interval.Set.singleton (Interval.at_least (Value.Int 0));
                      nullable = false;
                    }
                | Plan.Min e | Plan.Max e ->
                    let v = aeval ce e in
                    { v with nullable = v.nullable || not grouped }
                | Plan.Sum e | Plan.Avg e ->
                    {
                      range = Interval.Set.full;
                      nullable = (aeval ce e).nullable || not grouped;
                    }
              in
              (set env (mk i) v, i + 1))
            (env, ng) aggs
          |> fst
  | Plan.Project _ -> env_top
  | Plan.Sort { child; _ }
  | Plan.Limit { child; _ }
  | Plan.Motion { child; _ }
  | Plan.Runtime_filter_build { child; _ }
  | Plan.Runtime_filter { child; _ } ->
      derive_c cat child
  | Plan.Sequence cs -> (
      match List.rev cs with [] -> env_top | last :: _ -> derive_c cat last)
  | Plan.Partition_selector { child = Some c; _ } -> derive_c cat c
  | Plan.Partition_selector { child = None; _ } -> Bottom
  | Plan.Update _ | Plan.Delete _ | Plan.Insert _ -> env_top

let derive ~catalog p = derive_c catalog p

(* ------------------------------------------------------------------ *)
(* Reachable-predicate collection.                                     *)

(* Conjuncts guaranteed to hold of every row a subtree contributes to the
   final result — used as join-side context for the sibling. *)
let rec harvest (p : Plan.t) : Expr.t list =
  match p with
  | Plan.Table_scan { filter = Some f; _ }
  | Plan.Dynamic_scan { filter = Some f; _ } ->
      Expr.conjuncts f
  | Plan.Table_scan _ | Plan.Dynamic_scan _ -> []
  | Plan.Filter { pred; child } -> Expr.conjuncts pred @ harvest child
  | Plan.Hash_join { kind; pred; left; right }
  | Plan.Nl_join { kind; pred; left; right } -> (
      match kind with
      | Plan.Inner | Plan.Semi ->
          Expr.conjuncts pred @ harvest left @ harvest right
      | Plan.Left_outer -> harvest left)
  | Plan.Sequence cs -> (
      match List.rev cs with [] -> [] | last :: _ -> harvest last)
  | Plan.Sort { child; _ }
  | Plan.Limit { child; _ }
  | Plan.Motion { child; _ }
  | Plan.Runtime_filter_build { child; _ }
  | Plan.Runtime_filter { child; _ } ->
      harvest child
  | Plan.Partition_selector { child = Some c; _ } -> harvest c
  | Plan.Append [] -> []
  | Plan.Append cs -> (
      (* every emitted row comes from some child, so a conjunct holds of
         the Append's output iff it holds of every contributing child's;
         a branch whose harvest contains a literal [false] contributes no
         rows and constrains nothing (the Planner's static-exclusion shape
         shares one filter across live leaves, so the intersection
         recovers it) *)
      let lit_false e = Expr.equal e Expr.false_ in
      let live =
        List.filter
          (fun h -> not (List.exists lit_false h))
          (List.map harvest cs)
      in
      match live with
      | [] -> [ Expr.false_ ]
      | h0 :: rest ->
          List.filter
            (fun c -> List.for_all (List.exists (Expr.equal c)) rest)
            h0)
  | Plan.Partition_selector { child = None; _ }
  | Plan.Agg _ | Plan.Project _ | Plan.Update _ | Plan.Delete _
  | Plan.Insert _ ->
      []

(* Context to push to each child: conjuncts every row the child contributes
   to the result must satisfy.  Must stay in lock-step with the verifier's
   pruning pass, which re-runs the same collection. *)
let child_ctxs (p : Plan.t) (ctx : Expr.t list) : Expr.t list list =
  match p with
  | Plan.Filter { pred; _ } -> [ ctx @ Expr.conjuncts pred ]
  | Plan.Hash_join { kind; pred; left = _; right; _ }
  | Plan.Nl_join { kind; pred; left = _; right; _ } ->
      let jp = Expr.conjuncts pred in
      let lctx =
        match kind with
        | Plan.Inner | Plan.Semi -> ctx @ jp @ harvest right
        | Plan.Left_outer -> ctx
      in
      let rctx =
        ctx @ jp
        @
        match p with
        | Plan.Hash_join { left; _ } | Plan.Nl_join { left; _ } -> harvest left
        | _ -> []
      in
      [ lctx; rctx ]
  | Plan.Agg _ | Plan.Project _ | Plan.Update _ | Plan.Delete _ -> [ [] ]
  | Plan.Append cs -> List.map (fun _ -> []) cs
  | Plan.Sequence cs -> (
      (* only the last child's rows surface *)
      match List.length cs with
      | 0 -> []
      | n -> List.mapi (fun i _ -> if i = n - 1 then ctx else []) cs)
  | Plan.Sort _ | Plan.Limit _ | Plan.Motion _ | Plan.Runtime_filter_build _
  | Plan.Runtime_filter _ ->
      [ ctx ]
  | Plan.Partition_selector { child = Some _; _ } -> [ ctx ]
  | Plan.Partition_selector { child = None; _ }
  | Plan.Table_scan _ | Plan.Dynamic_scan _ | Plan.Insert _ ->
      []

(* ------------------------------------------------------------------ *)
(* Implication across equi-join equivalence classes.                   *)

let equiv_class ~conjs k =
  let eq_pairs =
    List.filter_map
      (function
        | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) -> Some (a, b)
        | _ -> None)
      conjs
  in
  let rec grow cls =
    let next =
      List.fold_left
        (fun cls (a, b) ->
          let mem c = List.exists (Colref.equal c) cls in
          if mem a && not (mem b) then b :: cls
          else if mem b && not (mem a) then a :: cls
          else cls)
        cls eq_pairs
    in
    if List.length next = List.length cls then cls else grow next
  in
  grow [ k ]

let implied_restrictions ~keys conjs =
  let conj_all = Expr.conj conjs in
  let class_of k = equiv_class ~conjs k in
  Array.of_list
    (List.map
       (fun k ->
         let rs =
           List.filter_map
             (fun m -> Expr.restriction m conj_all)
             (class_of k)
         in
         match rs with
         | [] -> None
         | r :: rest -> Some (List.fold_left Interval.Set.inter r rest))
       keys)

(* ------------------------------------------------------------------ *)
(* Uniform Append expansions (the Planner's partitioned-table shape).   *)

type expansion = {
  x_rel : int;
  x_root : int;
  x_table : Table.t;
  x_part : Partition.t;
  x_scans : (int * Expr.t option * int option) list;
      (** (leaf oid, filter, guard) per child, in child order *)
}

let expansion_of cat (cs : Plan.t list) : expansion option =
  match cs with
  | Plan.Table_scan { rel; table_oid; _ } :: _ -> (
      match Catalog.root_of_leaf cat table_oid with
      | None -> None
      | Some root -> (
          match table_opt cat root with
          | None -> None
          | Some tbl -> (
              match tbl.Table.partitioning with
              | None -> None
              | Some part ->
                  let scans =
                    List.filter_map
                      (function
                        | Plan.Table_scan { rel = r; table_oid = o; filter; guard }
                          when r = rel
                               && Catalog.root_of_leaf cat o = Some root ->
                            Some (o, filter, guard)
                        | _ -> None)
                      cs
                  in
                  if List.length scans = List.length cs then
                    Some { x_rel = rel; x_root = root; x_table = tbl; x_part = part; x_scans = scans }
                  else None)))
  | _ -> None

let is_lit_false_opt = function
  | Some f -> Expr.equal f Expr.false_
  | None -> false

(* Filter layout of an expansion: [`Shared f] when every live (non-false)
   child carries the same filter, physically or structurally. *)
let shared_filter (scans : (int * Expr.t option * int option) list) =
  let live = List.filter (fun (_, f, _) -> not (is_lit_false_opt f)) scans in
  match live with
  | [] -> `All_false
  | (_, f0, _) :: rest ->
      if
        List.for_all
          (fun (_, f, _) ->
            match (f0, f) with
            | None, None -> true
            | Some a, Some b -> a == b || Expr.equal a b
            | _ -> false)
          rest
      then `Shared f0
      else `Mixed

(* ------------------------------------------------------------------ *)
(* Pruning sites — the currency of the verifier's sixth pass.           *)

type site_kind = Site_scan of int | Site_append of int list

type pruning_site = {
  site_path : int list;
  site_kind : site_kind;
  site_rel : int;
  site_root : int;
  site_permitted : Interval.Set.t option array;
}

let conjuncts_opt = function Some f -> Expr.conjuncts f | None -> []

let pruning_sites ~catalog plan =
  let sites = ref [] in
  let rec walk path ctx (p : Plan.t) =
    (match p with
    | Plan.Dynamic_scan { rel; part_scan_id; root_oid; filter; _ } -> (
        match table_opt catalog root_oid with
        | Some ({ Table.partitioning = Some _; _ } as tbl) ->
            let keys = Table.part_key_colrefs tbl ~rel in
            let permitted =
              implied_restrictions ~keys (ctx @ conjuncts_opt filter)
            in
            sites :=
              {
                site_path = List.rev path;
                site_kind = Site_scan part_scan_id;
                site_rel = rel;
                site_root = root_oid;
                site_permitted = permitted;
              }
              :: !sites
        | _ -> ())
    | Plan.Append cs -> (
        match expansion_of catalog cs with
        | Some x -> (
            match shared_filter x.x_scans with
            | `All_false ->
                (* the sanctioned statically-empty shape: the predicate that
                   proved emptiness is gone, nothing to re-check *)
                ()
            | `Mixed -> ()
            | `Shared fopt ->
                let present =
                  List.filter_map
                    (fun (o, f, _) ->
                      if is_lit_false_opt f then None else Some o)
                    x.x_scans
                in
                let keys = Table.part_key_colrefs x.x_table ~rel:x.x_rel in
                let permitted =
                  implied_restrictions ~keys (ctx @ conjuncts_opt fopt)
                in
                sites :=
                  {
                    site_path = List.rev path;
                    site_kind = Site_append present;
                    site_rel = x.x_rel;
                    site_root = x.x_root;
                    site_permitted = permitted;
                  }
                  :: !sites)
        | None -> ())
    | _ -> ());
    List.iteri
      (fun i (c, cx) -> walk (i :: path) cx c)
      (List.combine (Plan.children p) (child_ctxs p ctx))
  in
  walk [] [] plan;
  List.rev !sites

(* ------------------------------------------------------------------ *)
(* Plan simplification (phase 1) and strengthening (phase 2).           *)

let scan_base_env cat ~rel oid = scan_env ~catalog:cat ~rel (root_oid_of cat oid)

(* Phase 1: pure expression rewrite, no cross-operator context. *)
let rec s1 cat (p : Plan.t) : Plan.t =
  match p with
  | Plan.Filter { pred; child } ->
      let child' = s1 cat child in
      let env = derive_c cat child' in
      let pred' = simplify env pred in
      if Expr.equal pred' Expr.true_ then child'
      else if child' == child && pred' == pred then p
      else Plan.Filter { pred = pred'; child = child' }
  | Plan.Append cs -> (
      match expansion_of cat cs with
      | Some x -> (
          match shared_filter x.x_scans with
          | `Shared (Some f) ->
              let env = scan_base_env cat ~rel:x.x_rel x.x_root in
              let f' = simplify env f in
              if f' == f then p
              else if
                Expr.equal f' Expr.false_
                && List.for_all (fun (_, _, g) -> g = None) x.x_scans
              then
                (* statically empty: collapse to the single-false-leaf shape *)
                Plan.Append
                  [
                    Plan.table_scan ~filter:Expr.false_ ~rel:x.x_rel
                      x.x_part.Partition.leaves.(0).Partition.leaf_oid;
                  ]
              else
                let fopt' =
                  if Expr.equal f' Expr.true_ then None else Some f'
                in
                Plan.Append
                  (List.map
                     (fun (c : Plan.t) ->
                       match c with
                       | Plan.Table_scan ({ filter; _ } as s) ->
                           if is_lit_false_opt filter then c
                           else Plan.Table_scan { s with filter = fopt' }
                       | _ -> c)
                     cs)
          | `Shared None | `All_false | `Mixed ->
              let cs' = List.map (s1 cat) cs in
              if List.for_all2 ( == ) cs cs' then p else Plan.Append cs')
      | None ->
          let cs' = List.map (s1 cat) cs in
          if List.for_all2 ( == ) cs cs' then p else Plan.Append cs')
  | Plan.Table_scan ({ rel; table_oid; filter = Some f; _ } as s) ->
      if Expr.equal f Expr.false_ then p
      else
        let env = scan_base_env cat ~rel table_oid in
        let f' = simplify env f in
        if f' == f then p
        else
          Plan.Table_scan
            {
              s with
              filter = (if Expr.equal f' Expr.true_ then None else Some f');
            }
  | Plan.Dynamic_scan ({ rel; root_oid; filter = Some f; _ } as s) ->
      let env = scan_base_env cat ~rel root_oid in
      let f' = simplify env f in
      if f' == f then p
      else
        Plan.Dynamic_scan
          {
            s with
            filter = (if Expr.equal f' Expr.true_ then None else Some f');
          }
  | _ ->
      let cs = Plan.children p in
      let cs' = List.map (s1 cat) cs in
      if List.for_all2 ( == ) cs cs' then p else Plan.with_children p cs'

(* Phase 2: context-aware strengthening.  Walks the simplified plan
   collecting reachable predicates (the same rules the verifier's pruning
   pass replays), conjoins implied partition-key restrictions onto
   partition-selector predicates, and re-runs static exclusion on unguarded
   uniform Append expansions. *)
let strengthen_pass cat (plan : Plan.t) : Plan.t =
  let scan_implied : (int, Interval.Set.t option array) Hashtbl.t =
    Hashtbl.create 8
  in
  let rec go ctx (p : Plan.t) : Plan.t =
    match p with
    | Plan.Dynamic_scan { rel; part_scan_id; root_oid; filter; _ } ->
        (match table_opt cat root_oid with
        | Some ({ Table.partitioning = Some _; _ } as tbl) ->
            let keys = Table.part_key_colrefs tbl ~rel in
            let imp =
              implied_restrictions ~keys (ctx @ conjuncts_opt filter)
            in
            if Array.exists Option.is_some imp then
              Hashtbl.replace scan_implied part_scan_id imp
        | _ -> ());
        p
    | Plan.Append cs -> (
        match expansion_of cat cs with
        | Some x
          when List.for_all (fun (_, _, g) -> g = None) x.x_scans -> (
            match shared_filter x.x_scans with
            | `All_false | `Mixed -> p
            | `Shared fopt -> (
                let keys = Table.part_key_colrefs x.x_table ~rel:x.x_rel in
                let imp =
                  implied_restrictions ~keys (ctx @ conjuncts_opt fopt)
                in
                (* synthesize a conjunct for each level the implication
                   tightens beyond the filter's own restriction *)
                let synths =
                  List.concat
                    (List.mapi
                       (fun l k ->
                         match imp.(l) with
                         | None -> []
                         | Some s_imp ->
                             let own =
                               match fopt with
                               | None -> Interval.Set.full
                               | Some f -> (
                                   match Expr.restriction k f with
                                   | Some r -> r
                                   | None -> Interval.Set.full)
                             in
                             if Interval.Set.is_subset own s_imp then []
                             else [ expr_of_set k s_imp ])
                       keys)
                in
                match synths with
                | [] -> p
                | _ ->
                    let f' = Expr.conj (conjuncts_opt fopt @ synths) in
                    let restr =
                      Array.of_list
                        (List.map (fun k -> Expr.restriction k f') keys)
                    in
                    let kept = Partition.select_oids x.x_part restr in
                    let children' =
                      List.filter_map
                        (fun (o, _, _) ->
                          if List.mem o kept then
                            Some (Plan.table_scan ~filter:f' ~rel:x.x_rel o)
                          else None)
                        x.x_scans
                    in
                    if children' = [] then
                      Plan.Append
                        [
                          Plan.table_scan ~filter:Expr.false_ ~rel:x.x_rel
                            x.x_part.Partition.leaves.(0).Partition.leaf_oid;
                        ]
                    else Plan.Append children'))
        | _ -> p)
    | _ ->
        let cs = Plan.children p in
        let cs' = List.map2 (fun c cx -> go cx c) cs (child_ctxs p ctx) in
        if List.for_all2 ( == ) cs cs' then p else Plan.with_children p cs'
  in
  let plan = go [] plan in
  if Hashtbl.length scan_implied = 0 then plan
  else
    (* conjoin implied restrictions onto the matching selectors' per-level
       predicates where they tighten them *)
    let rec fx (p : Plan.t) : Plan.t =
      match p with
      | Plan.Partition_selector ({ part_scan_id; keys; predicates; child; _ } as s)
        -> (
          let child' = Option.map fx child in
          let base =
            if child' == child then p
            else Plan.Partition_selector { s with child = child' }
          in
          match Hashtbl.find_opt scan_implied part_scan_id with
          | Some imp
            when Array.length imp = List.length predicates
                 && List.length keys = List.length predicates ->
              let changed = ref false in
              let preds' =
                List.mapi
                  (fun l pe ->
                    match imp.(l) with
                    | None -> pe
                    | Some s_imp ->
                        let k = List.nth keys l in
                        let cur =
                          match pe with
                          | None -> Interval.Set.full
                          | Some e -> (
                              match Expr.restriction k e with
                              | Some r -> r
                              | None -> Interval.Set.full)
                        in
                        if Interval.Set.is_subset cur s_imp then pe
                        else (
                          changed := true;
                          let synth = expr_of_set k s_imp in
                          match pe with
                          | None -> Some synth
                          | Some e -> Some (Expr.conj [ e; synth ])))
                  predicates
              in
              if !changed then
                Plan.Partition_selector
                  { s with predicates = preds'; child = child' }
              else base
          | _ -> base)
      | _ ->
          let cs = Plan.children p in
          let cs' = List.map fx cs in
          if List.for_all2 ( == ) cs cs' then p else Plan.with_children p cs'
    in
    fx plan

let simplify_plan ~catalog ?(strengthen = true) plan =
  let p1 = s1 catalog plan in
  if strengthen then strengthen_pass catalog p1 else p1

(* ------------------------------------------------------------------ *)
(* Runtime-filter cross-check.                                         *)

let minmax_violations ~catalog ~child ~keys ~minmax =
  let env = derive_c catalog child in
  List.concat
    (List.mapi
       (fun i k ->
         match minmax i with
         | None -> []
         | Some (lo, hi) ->
             let v = find env k in
             let bad w = not (Interval.Set.contains v.range w) in
             let describe which value =
               Printf.sprintf
                 "runtime filter key %d (%s): %s endpoint %s outside static range %s"
                 i (Colref.to_string k) which (Value.to_string value)
                 (Format.asprintf "%a" Interval.Set.pp v.range)
             in
             (if bad lo then [ describe "min" lo ] else [])
             @ if bad hi then [ describe "max" hi ] else [])
       keys)

(* ------------------------------------------------------------------ *)
(* Linting.                                                            *)

module Lint = struct
  type finding = { code : string; path : string; detail : string }

  let pp_finding fmt f =
    Format.fprintf fmt "%s at %s: %s" f.code f.path f.detail

  let short = function
    | Plan.Table_scan _ -> "Scan"
    | Plan.Dynamic_scan _ -> "DynamicScan"
    | Plan.Partition_selector _ -> "PartitionSelector"
    | Plan.Sequence _ -> "Sequence"
    | Plan.Filter _ -> "Filter"
    | Plan.Project _ -> "Project"
    | Plan.Hash_join _ -> "HashJoin"
    | Plan.Nl_join _ -> "NLJoin"
    | Plan.Agg _ -> "Agg"
    | Plan.Sort _ -> "Sort"
    | Plan.Limit _ -> "Limit"
    | Plan.Motion _ -> "Motion"
    | Plan.Append _ -> "Append"
    | Plan.Update _ -> "Update"
    | Plan.Delete _ -> "Delete"
    | Plan.Insert _ -> "Insert"
    | Plan.Runtime_filter_build _ -> "RuntimeFilterBuild"
    | Plan.Runtime_filter _ -> "RuntimeFilter"

  let plan ~catalog (plan : Plan.t) =
    let findings = ref [] in
    let emit code path detail = findings := { code; path; detail } :: !findings in
    let seen_shared : Expr.t list ref = ref [] in
    let check_pred env path (f : Expr.t) =
      let report kind c =
        match kind with
        | `Redundant -> emit "lint/redundant-conjunct" path (Expr.to_string c)
        | `Contradiction ->
            emit "lint/contradictory-conjunct" path (Expr.to_string c)
      in
      let f' = simplify ~report env f in
      if Expr.equal f' Expr.false_ && not (Expr.equal f Expr.false_) then
        emit "lint/contradiction" path (Expr.to_string f)
      else if Expr.equal f' Expr.true_ && not (Expr.equal f Expr.true_) then
        emit "lint/redundant-conjunct" path (Expr.to_string f)
    in
    let rec walk path (p : Plan.t) =
      let here = String.concat "/" (List.rev path) in
      (match p with
      | Plan.Filter { pred; child } ->
          check_pred (derive_c catalog child) here pred
      | Plan.Table_scan { rel; table_oid; filter = Some f; _ }
        when not (List.memq f !seen_shared) ->
          seen_shared := f :: !seen_shared;
          if not (Expr.equal f Expr.false_) then
            check_pred (scan_base_env catalog ~rel table_oid) here f
      | Plan.Dynamic_scan { rel; root_oid; filter = Some f; _ } ->
          check_pred (scan_base_env catalog ~rel root_oid) here f
      | Plan.Append cs ->
          List.iteri
            (fun i c ->
              match c with
              | Plan.Table_scan { rel; table_oid; filter; _ }
                when not (is_lit_false_opt filter) ->
                  let env = scan_env ~catalog ~rel table_oid in
                  let dead =
                    match filter with
                    | Some f -> contradicts env f
                    | None -> is_bottom env
                  in
                  if dead then
                    emit "lint/dead-branch"
                      (String.concat "/"
                         (List.rev (Printf.sprintf "%d.Scan" i :: path)))
                      (Printf.sprintf "leaf oid %d can match no row" table_oid)
              | _ -> ())
            cs
      | _ -> ());
      List.iteri
        (fun i c -> walk (Printf.sprintf "%d.%s" i (short c) :: path) c)
        (Plan.children p)
    in
    walk [ short plan ] plan;
    List.rev !findings
end
